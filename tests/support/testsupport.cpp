#include "support/testsupport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace kar::testsupport {

namespace {

std::optional<std::uint64_t>& override_slot() {
  static std::optional<std::uint64_t> slot;
  return slot;
}

/// (context, effective seed) pairs drawn by the currently running test.
std::vector<std::pair<std::string, std::uint64_t>>& drawn_seeds() {
  static std::vector<std::pair<std::string, std::uint64_t>> seeds;
  return seeds;
}

class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo&) override { drawn_seeds().clear(); }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    for (const auto& [context, seed] : drawn_seeds()) {
      std::printf("[  SEED  ] %s: %llu (replay with --seed=%llu)\n",
                  context.c_str(), static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(seed));
    }
  }
};

}  // namespace

std::optional<std::uint64_t> seed_override() { return override_slot(); }

std::uint64_t seed_or(std::uint64_t fallback) {
  return override_slot().value_or(fallback);
}

common::Rng make_rng(std::uint64_t fallback, std::string_view context) {
  const std::uint64_t seed = seed_or(fallback);
  drawn_seeds().emplace_back(std::string(context), seed);
  return common::Rng(seed);
}

namespace internal {

void set_seed_override(std::optional<std::uint64_t> seed) {
  override_slot() = seed;
}

void install_seed_reporter() {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
}

}  // namespace internal

}  // namespace kar::testsupport

// Shared gtest harness support: seeded-RNG plumbing for randomized tests.
//
// Every randomized test draws its generator through make_rng(), which
//   * honors a global override (`--seed=N` on the test binary command line,
//     or the KAR_SEED environment variable) so any randomized failure can
//     be replayed exactly, and
//   * records the effective seed, which the installed listener prints when
//     the test fails — no more silent ad-hoc constants.
//
// The custom main in support/test_main.cpp wires this up; test targets
// link kar_testsupport instead of GTest::gtest_main.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/rng.hpp"

namespace kar::testsupport {

/// The global seed override (--seed / KAR_SEED), if one was given.
[[nodiscard]] std::optional<std::uint64_t> seed_override();

/// `fallback` unless the run was started with --seed=N / KAR_SEED=N.
[[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback);

/// An Rng seeded with seed_or(fallback). The effective seed and `context`
/// are recorded for the current test and printed if it fails:
///     [  SEED  ] CrtProperty: 42 (replay with --seed=42)
[[nodiscard]] common::Rng make_rng(std::uint64_t fallback,
                                   std::string_view context);

namespace internal {
/// Installs the override parsed by the custom main.
void set_seed_override(std::optional<std::uint64_t> seed);
/// Registers the gtest listener that prints recorded seeds on failure.
void install_seed_reporter();
}  // namespace internal

}  // namespace kar::testsupport

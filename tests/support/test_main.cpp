// Custom gtest main: gtest flags first, then KAR test flags via
// common::Flags — currently `--seed=N`, the global override for every
// randomized test (see support/testsupport.hpp). The KAR_SEED environment
// variable is the equivalent for runs driven through ctest.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "common/flags.hpp"
#include "support/testsupport.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest's own flags

  std::optional<std::uint64_t> seed;
  const auto flags = kar::common::Flags::parse(argc, argv);
  if (flags.has("seed")) {
    seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  } else if (const char* env = std::getenv("KAR_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  kar::testsupport::internal::set_seed_override(seed);
  kar::testsupport::internal::install_seed_reporter();
  return RUN_ALL_TESTS();
}

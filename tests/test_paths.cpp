#include "routing/paths.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "topology/builders.hpp"

namespace kar::routing {
namespace {

using topo::NodeId;
using topo::Scenario;

std::vector<std::string> names(const topo::Topology& t, const Path& p) {
  std::vector<std::string> out;
  for (const NodeId n : p.nodes) out.push_back(t.name(n));
  return out;
}

TEST(ShortestPath, LineTopologyIsTheLine) {
  const Scenario s = topo::make_line(4);
  const auto path = shortest_path(s.topology, s.topology.at("SRC"),
                                  s.topology.at("DST"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes.size(), 6u);  // SRC + 4 switches + DST
  EXPECT_DOUBLE_EQ(path->cost, 5.0);
}

TEST(ShortestPath, Fig1PrefersDirectRoute) {
  const Scenario s = topo::make_fig1_network();
  const auto path =
      shortest_path(s.topology, s.topology.at("S"), s.topology.at("D"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(names(s.topology, *path),
            (std::vector<std::string>{"S", "SW4", "SW7", "SW11", "D"}));
}

TEST(ShortestPath, IgnoresFailuresByDefault) {
  Scenario s = topo::make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  // Paper evaluation policy: the controller ignores failures.
  const auto path =
      shortest_path(s.topology, s.topology.at("S"), s.topology.at("D"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(names(s.topology, *path),
            (std::vector<std::string>{"S", "SW4", "SW7", "SW11", "D"}));
}

TEST(ShortestPath, FailureAwareModeRoutesAround) {
  Scenario s = topo::make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  PathOptions options;
  options.ignore_failures = false;
  const auto path = shortest_path(s.topology, s.topology.at("S"),
                                  s.topology.at("D"), options);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(names(s.topology, *path),
            (std::vector<std::string>{"S", "SW4", "SW7", "SW5", "SW11", "D"}));
}

TEST(ShortestPath, DisconnectedReturnsNullopt) {
  topo::Topology t;
  const NodeId a = t.add_edge_node("A");
  const NodeId b = t.add_edge_node("B");
  EXPECT_FALSE(shortest_path(t, a, b).has_value());
}

TEST(ShortestPath, EdgeNodesDoNotTransit) {
  // A - sw1 - E - sw2 - B: the only "path" goes through edge node E, which
  // must not forward transit traffic.
  topo::Topology t;
  const NodeId a = t.add_edge_node("A");
  const NodeId b = t.add_edge_node("B");
  const NodeId e = t.add_edge_node("E");
  const NodeId s1 = t.add_switch("SW5", 5);
  const NodeId s2 = t.add_switch("SW7", 7);
  t.add_link(a, s1);
  t.add_link(s1, e);
  t.add_link(e, s2);
  t.add_link(s2, b);
  EXPECT_FALSE(shortest_path(t, a, b).has_value());
}

TEST(ShortestPath, DelayMetricPrefersLowLatency) {
  topo::Topology t;
  const NodeId a = t.add_edge_node("A");
  const NodeId b = t.add_edge_node("B");
  const NodeId s1 = t.add_switch("SW5", 5);
  const NodeId s2 = t.add_switch("SW7", 7);
  const NodeId s3 = t.add_switch("SW11", 11);
  topo::LinkParams slow;
  slow.delay_s = 10e-3;
  topo::LinkParams fast;
  fast.delay_s = 1e-3;
  t.add_link(a, s1, fast);
  t.add_link(s1, b, slow);       // 1 hop but slow
  t.add_link(s1, s2, fast);      // 2 extra hops but fast
  t.add_link(s2, s3, fast);
  t.add_link(s3, b, fast);
  PathOptions options;
  options.metric = PathMetric::kDelay;
  const auto path = shortest_path(t, a, b, options);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes.size(), 5u);  // takes the low-delay detour
}

TEST(DistancesTo, MatchesShortestPathCosts) {
  const Scenario s = topo::make_experimental15();
  const auto dist = distances_to(s.topology, s.topology.at("AS3"));
  // AS3 hangs off SW29: distance 1 from SW29, 2 from SW13, 4 from SW10.
  EXPECT_DOUBLE_EQ(dist[s.topology.at("SW29")], 1.0);
  EXPECT_DOUBLE_EQ(dist[s.topology.at("SW13")], 2.0);
  EXPECT_DOUBLE_EQ(dist[s.topology.at("SW10")], 4.0);
  EXPECT_DOUBLE_EQ(dist[s.topology.at("AS3")], 0.0);
}

TEST(DistancesTo, UnreachableIsInfinity) {
  topo::Topology t;
  t.add_switch("SW5", 5);
  const NodeId island = t.add_switch("SW7", 7);
  const NodeId dst = t.add_edge_node("D");
  t.add_link(t.at("SW5"), dst);
  const auto dist = distances_to(t, dst);
  EXPECT_TRUE(std::isinf(dist[island]));
}

TEST(KShortestPaths, FindsDistinctLooplessPaths) {
  const Scenario s = topo::make_fig1_network();
  const auto paths = k_shortest_paths(s.topology, s.topology.at("S"),
                                      s.topology.at("D"), 3);
  ASSERT_GE(paths.size(), 2u);
  // Best: S-4-7-11-D (cost 4); second: S-4-7-5-11-D (cost 5).
  EXPECT_DOUBLE_EQ(paths[0].cost, 4.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 5.0);
  EXPECT_EQ(names(s.topology, paths[1]),
            (std::vector<std::string>{"S", "SW4", "SW7", "SW5", "SW11", "D"}));
  // All returned paths are distinct and loopless.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes, paths[j].nodes);
    }
    std::vector<NodeId> sorted = paths[i].nodes;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "path " << i << " revisits a node";
  }
}

TEST(KShortestPaths, CostsAreNonDecreasing) {
  const Scenario s = topo::make_rnp28();
  const auto paths = k_shortest_paths(s.topology, s.topology.at("AS1"),
                                      s.topology.at("AS-SP"), 6);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].cost, paths[i - 1].cost);
  }
}

TEST(KShortestPaths, KZeroAndDisconnected) {
  const Scenario s = topo::make_fig1_network();
  EXPECT_TRUE(
      k_shortest_paths(s.topology, s.topology.at("S"), s.topology.at("D"), 0)
          .empty());
  topo::Topology t;
  const NodeId a = t.add_edge_node("A");
  const NodeId b = t.add_edge_node("B");
  EXPECT_TRUE(k_shortest_paths(t, a, b, 4).empty());
}

TEST(KShortestPaths, ExhaustsSmallGraphGracefully) {
  const Scenario s = topo::make_line(3);
  const auto paths = k_shortest_paths(s.topology, s.topology.at("SRC"),
                                      s.topology.at("DST"), 10);
  EXPECT_EQ(paths.size(), 1u);  // a line has exactly one loopless path
}

}  // namespace
}  // namespace kar::routing

// Randomized property tests for the RNS/CRT layer (paper §2.2):
//   * CRT round-trip — R mod s_i == residue_i for random coprime bases;
//   * bit length    — RnsBasis::bit_length matches Eq. 9 and ceil_log2(M-1);
//   * BigUint divmod against an independent schoolbook shift-subtract
//     reference on random multi-limb operands.
// All randomness flows through testsupport::make_rng so any failure prints
// a replayable seed and --seed=N / KAR_SEED=N re-runs it exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rns/biguint.hpp"
#include "rns/crt.hpp"
#include "rns/modular.hpp"
#include "rns/prepared_mod.hpp"
#include "support/testsupport.hpp"

namespace kar::rns {
namespace {

/// Random pairwise-coprime moduli via the same generator the controller's
/// ID assignment uses, started from a random floor so bases differ per draw.
std::vector<std::uint64_t> random_coprime_moduli(common::Rng& rng,
                                                 std::size_t count) {
  const std::uint64_t minimum = 2 + rng.below(500);
  return next_coprime_ids(count, minimum, {});
}

/// Random BigUint with roughly `bits` significant bits.
BigUint random_biguint(common::Rng& rng, std::size_t bits) {
  BigUint value;
  for (std::size_t produced = 0; produced < bits; produced += 32) {
    value <<= 32;
    value += BigUint(rng.below(std::uint64_t{1} << 32));
  }
  return value;
}

class RnsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RnsProperty, CrtRoundTripRecoversEveryResidue) {
  auto rng = testsupport::make_rng(GetParam(), "CrtRoundTrip");
  for (int iteration = 0; iteration < 40; ++iteration) {
    const std::size_t count = 2 + rng.below(10);
    const auto moduli = random_coprime_moduli(rng, count);
    const RnsBasis basis(moduli);

    std::vector<std::uint64_t> residues;
    residues.reserve(count);
    for (const std::uint64_t modulus : moduli) {
      residues.push_back(rng.below(modulus));
    }

    const BigUint route_id = basis.encode(residues);
    EXPECT_LT(route_id, basis.range());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(route_id.mod_u64(moduli[i]), residues[i])
          << "modulus " << moduli[i] << " in iteration " << iteration;
    }
    EXPECT_EQ(basis.decode(route_id), residues);

    // crt_encode (the unordered one-shot form) must agree with the basis.
    std::vector<Residue> congruences;
    for (std::size_t i = 0; i < count; ++i) {
      congruences.push_back({moduli[i], residues[i]});
    }
    EXPECT_EQ(crt_encode(congruences), route_id);
  }
}

TEST_P(RnsProperty, BitLengthMatchesEq9) {
  auto rng = testsupport::make_rng(GetParam() ^ 0xE99ULL, "BitLengthEq9");
  for (int iteration = 0; iteration < 60; ++iteration) {
    const std::size_t count = 1 + rng.below(12);
    const auto moduli = random_coprime_moduli(rng, count);
    const RnsBasis basis(moduli);

    EXPECT_EQ(basis.bit_length(), route_id_bit_length(moduli));

    // Eq. 9 says the header needs ceil(log2(M - 1)) bits: every encodable
    // route ID (anything below M) must fit, and the bound must be tight.
    const BigUint largest = basis.range() - BigUint(1);
    EXPECT_LE(largest.bit_length(), basis.bit_length());
    EXPECT_EQ(ceil_log2(largest), basis.bit_length());
  }
}

/// Schoolbook shift-subtract long division: the independent reference
/// implementation divmod() is checked against. O(bits^2) but obviously
/// correct — it only uses comparison, shift and subtraction.
BigUint::DivMod schoolbook_divmod(const BigUint& dividend,
                                  const BigUint& divisor) {
  BigUint quotient;
  BigUint remainder = dividend;
  if (divisor > dividend) return {quotient, remainder};
  std::size_t shift = dividend.bit_length() - divisor.bit_length();
  BigUint shifted = divisor << shift;
  for (;; --shift) {
    quotient <<= 1;
    if (shifted <= remainder) {
      remainder -= shifted;
      quotient += BigUint(1);
    }
    if (shift == 0) break;
    shifted >>= 1;
  }
  return {quotient, remainder};
}

TEST_P(RnsProperty, DivModMatchesSchoolbookReference) {
  auto rng = testsupport::make_rng(GetParam() ^ 0xD17ULL, "DivModReference");
  for (int iteration = 0; iteration < 30; ++iteration) {
    const BigUint dividend = random_biguint(rng, 32 + rng.below(200));
    BigUint divisor = random_biguint(rng, 1 + rng.below(150));
    if (divisor.is_zero()) divisor = BigUint(1 + rng.below(1000));

    const auto fast = dividend.divmod(divisor);
    const auto slow = schoolbook_divmod(dividend, divisor);
    EXPECT_EQ(fast.quotient, slow.quotient);
    EXPECT_EQ(fast.remainder, slow.remainder);

    // Reconstruction identity and remainder bound close the loop.
    EXPECT_EQ(fast.quotient * divisor + fast.remainder, dividend);
    EXPECT_LT(fast.remainder, divisor);

    // mod_u64 must agree with full divmod on native-width divisors.
    const std::uint64_t small = 1 + rng.below(0xFFFFFFFFULL);
    EXPECT_EQ(dividend.mod_u64(small),
              (dividend % BigUint(small)).to_u64());
  }
}

TEST_P(RnsProperty, DivModMatchesRetiredBinaryDivider) {
  // The bit-at-a-time divider the word-level Knuth D implementation
  // replaced stays in the tree as divmod_binary — an always-on
  // differential oracle with completely different failure modes.
  auto rng = testsupport::make_rng(GetParam() ^ 0xB1DULL, "DivModBinary");
  for (int iteration = 0; iteration < 30; ++iteration) {
    const BigUint dividend = random_biguint(rng, 32 + rng.below(300));
    BigUint divisor = random_biguint(rng, 1 + rng.below(250));
    if (divisor.is_zero()) divisor = BigUint(1 + rng.below(1000));

    const auto fast = dividend.divmod(divisor);
    const auto reference = dividend.divmod_binary(divisor);
    EXPECT_EQ(fast.quotient, reference.quotient)
        << dividend << " / " << divisor;
    EXPECT_EQ(fast.remainder, reference.remainder)
        << dividend << " % " << divisor;
  }
}

TEST_P(RnsProperty, StringRoundTripsPreserveValue) {
  auto rng = testsupport::make_rng(GetParam() ^ 0x57FULL, "StringRoundTrip");
  for (int iteration = 0; iteration < 30; ++iteration) {
    const BigUint value = random_biguint(rng, 1 + rng.below(260));
    EXPECT_EQ(BigUint::from_string(value.to_string()), value);
    EXPECT_EQ(BigUint::from_string("0x" + value.to_hex()), value);
  }
}

TEST_P(RnsProperty, PreparedModMatchesModU64) {
  auto rng = testsupport::make_rng(GetParam() ^ 0x9DULL, "PreparedMod");
  for (int iteration = 0; iteration < 40; ++iteration) {
    const BigUint value = random_biguint(rng, 1 + rng.below(300));
    // Half the draws stay in the Barrett range (< 2^32), half exercise the
    // wide-divisor fallback path.
    const std::uint64_t divisor =
        iteration % 2 == 0 ? 1 + rng.below(0xFFFFFFFFULL)
                           : (std::uint64_t{1} << 32) + rng.below(1u << 30);
    const PreparedMod prepared(divisor);
    EXPECT_EQ(prepared.reduce(value), value.mod_u64(divisor))
        << value << " mod " << divisor;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RnsProperty,
                         ::testing::Values(1u, 7u, 42u, 2026u, 0xBEEFu));

}  // namespace
}  // namespace kar::rns

// End-to-end scenario tests: the paper's qualitative claims exercised
// through the full stack (topology -> controller -> encoded route -> DES
// network -> TCP), at reduced time scale so the suite stays fast.
#include <gtest/gtest.h>

#include "analysis/reorder.hpp"
#include "routing/controller.hpp"
#include "sim/network.hpp"
#include "topology/builders.hpp"
#include "transport/flows.hpp"

namespace kar {
namespace {

using dataplane::DeflectionTechnique;
using topo::ProtectionLevel;
using topo::Scenario;
using transport::BulkTransferFlow;
using transport::FlowDispatcher;
using transport::TcpParams;

/// Runs a compressed Fig.4-style experiment on the 15-node network:
/// bulk TCP AS1 -> AS3, SW7-SW13 fails during [t_fail, t_repair).
struct Fig4Run {
  double before_mbps = 0;
  double during_mbps = 0;
  double after_mbps = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t drops = 0;
};

Fig4Run run_fig4(DeflectionTechnique technique, ProtectionLevel level,
                 const std::string& fail_a = "SW7",
                 const std::string& fail_b = "SW13") {
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = technique;
  config.seed = 1234;
  sim::Network net(s.topology, controller, config);
  FlowDispatcher dispatcher(net);
  const auto forward = controller.encode_scenario(s.route, level);
  // ACKs return over the backup chain SW29-SW31-SW19-SW11-SW10, disjoint
  // from all three studied failure links, so the measurement isolates
  // forward-path deflection effects (the ReverseProtection test covers
  // ACK-side failures explicitly).
  topo::ScenarioRoute reverse_route;
  reverse_route.src_edge = s.route.dst_edge;
  reverse_route.dst_edge = s.route.src_edge;
  reverse_route.core_path = {"SW29", "SW31", "SW19", "SW11", "SW10"};
  const auto reverse =
      controller.encode_scenario(reverse_route, ProtectionLevel::kUnprotected);
  TcpParams params;
  params.receiver_window_segments = 256;
  BulkTransferFlow flow(net, dispatcher, forward, reverse, 1, params, 0.25);

  constexpr double kFail = 2.0;
  constexpr double kRepair = 4.0;
  constexpr double kEnd = 6.0;
  flow.start_at(0.0);
  net.fail_link_at(kFail, fail_a, fail_b);
  net.repair_link_at(kRepair, fail_a, fail_b);
  flow.stop_at(kEnd);
  net.events().run_until(kEnd + 1.0);

  Fig4Run result;
  result.before_mbps = flow.receiver().goodput().mbps_between(1.0, kFail);
  result.during_mbps = flow.receiver().goodput().mbps_between(kFail + 0.25, kRepair);
  result.after_mbps = flow.receiver().goodput().mbps_between(kRepair + 0.5, kEnd);
  result.out_of_order = flow.receiver().stats().out_of_order_segments;
  result.fast_retransmits = flow.sender().stats().fast_retransmits;
  result.drops = net.counters().total_drops();
  return result;
}

TEST(Fig4Style, NoDeflectionStallsDuringFailure) {
  const Fig4Run r = run_fig4(DeflectionTechnique::kNone, ProtectionLevel::kPartial);
  EXPECT_GT(r.before_mbps, 100.0);       // healthy: near nominal 200
  EXPECT_LT(r.during_mbps, 5.0);         // traffic stops
  EXPECT_GT(r.after_mbps, 50.0);         // recovers after repair
  EXPECT_GT(r.drops, 0u);
}

TEST(Fig4Style, NipKeepsTrafficFlowingThroughFailure) {
  const Fig4Run r =
      run_fig4(DeflectionTechnique::kNotInputPort, ProtectionLevel::kPartial);
  EXPECT_GT(r.before_mbps, 100.0);
  // Paper: NIP holds roughly 75% of nominal during the failure; we assert
  // the qualitative bound (well above half of the healthy rate).
  EXPECT_GT(r.during_mbps, r.before_mbps * 0.4);
  EXPECT_GT(r.after_mbps, 100.0);
}

TEST(Fig4Style, TechniqueOrderingNipBeatsHotPotato) {
  const Fig4Run nip =
      run_fig4(DeflectionTechnique::kNotInputPort, ProtectionLevel::kPartial);
  const Fig4Run hp =
      run_fig4(DeflectionTechnique::kHotPotato, ProtectionLevel::kPartial);
  const Fig4Run none =
      run_fig4(DeflectionTechnique::kNone, ProtectionLevel::kPartial);
  // The paper's ordering in Fig. 4: NIP > HP > no deflection (during failure).
  EXPECT_GT(nip.during_mbps, hp.during_mbps);
  EXPECT_GT(hp.during_mbps, none.during_mbps);
}

TEST(Fig4Style, DeflectionCausesReordering) {
  // With the SW7-SW13 failure and partial protection, NIP drives packets
  // over the longer SW19-SW31 branch while in-flight packets complete on
  // the short path: reordering and spurious retransmits must show up.
  const Fig4Run r =
      run_fig4(DeflectionTechnique::kNotInputPort, ProtectionLevel::kPartial);
  EXPECT_GT(r.out_of_order, 0u);
  EXPECT_GT(r.fast_retransmits, 0u);
}

TEST(Fig5Style, FullProtectionBeatsPartialForSw10Failure) {
  // Paper Fig. 5: failure at SW10-SW7 is where partial protection loses
  // 2/3 of deflected packets to unprotected wandering; full protection
  // drives all three branches.
  const Fig4Run partial = run_fig4(DeflectionTechnique::kNotInputPort,
                                   ProtectionLevel::kPartial, "SW10", "SW7");
  const Fig4Run full = run_fig4(DeflectionTechnique::kNotInputPort,
                                ProtectionLevel::kFull, "SW10", "SW7");
  EXPECT_GT(full.during_mbps, partial.during_mbps * 1.2);
}

TEST(Fig5Style, PartialMatchesFullWhenCoverageSuffices) {
  // For SW13-SW29 failures the partial set already encloses the alternative
  // path (paper §3.1): partial and full should be close.
  const Fig4Run partial = run_fig4(DeflectionTechnique::kNotInputPort,
                                   ProtectionLevel::kPartial, "SW13", "SW29");
  const Fig4Run full = run_fig4(DeflectionTechnique::kNotInputPort,
                                ProtectionLevel::kFull, "SW13", "SW29");
  EXPECT_GT(partial.during_mbps, 10.0);
  EXPECT_NEAR(partial.during_mbps / full.during_mbps, 1.0, 0.35);
}

TEST(Fig8Style, ProtectionLoopDegradesButDelivers) {
  Scenario s = topo::make_fig8_redundant();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  sim::Network net(s.topology, controller, config);
  FlowDispatcher dispatcher(net);
  const auto forward = controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  // ACKs ride the redundant SW113-SW109-SW73 path (a different route ID may
  // freely use the parallel branch), so the failure hits only the data path.
  topo::ScenarioRoute reverse_route;
  reverse_route.src_edge = s.route.dst_edge;
  reverse_route.dst_edge = s.route.src_edge;
  reverse_route.core_path = {"SW113", "SW109", "SW73", "SW41", "SW13", "SW7"};
  const auto reverse =
      controller.encode_scenario(reverse_route, ProtectionLevel::kUnprotected);
  TcpParams params;
  params.receiver_window_segments = 256;
  BulkTransferFlow flow(net, dispatcher, forward, reverse, 1, params, 0.25);
  flow.start_at(0.0);
  net.fail_link_at(2.0, "SW73", "SW107");
  flow.stop_at(5.0);
  net.events().run_until(6.0);
  const double before = flow.receiver().goodput().mbps_between(1.0, 2.0);
  const double during = flow.receiver().goodput().mbps_between(2.5, 5.0);
  EXPECT_GT(before, 100.0);
  // Liveness: the protection loop keeps delivering (the paper reports a
  // drop to 54.8% of nominal; our plain NewReno-without-SACK substrate is
  // far more reorder-sensitive, so we assert survival + degradation).
  EXPECT_GT(during, 2.0);
  EXPECT_LT(during, before * 0.85);
}

TEST(HotPotatoEndToEnd, WrongEdgeReencodeRescuesWalkers) {
  // HP random walks frequently surface at AS2; the re-encode service must
  // get them to AS3 and the network must count those re-encodes.
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = DeflectionTechnique::kHotPotato;
  config.seed = 77;
  sim::Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  net.fail_link_at(0.0, "SW7", "SW13");
  net.events().run_until(0.001);
  std::uint64_t delivered = 0;
  net.set_delivery_handler(route.dst_edge,
                           [&](const dataplane::Packet&) { ++delivered; });
  // Pace injections (1 ms apart) so the uplink queue is never the limit.
  for (int i = 0; i < 200; ++i) {
    net.events().schedule_at(0.001 * (i + 1), [&net, &route, i] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
      net.edge_at(route.src_edge).stamp(p, route, 100);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();
  EXPECT_EQ(delivered, 200u);  // hitless: nothing lost, only detoured
  EXPECT_GT(net.counters().reencodes, 0u);
  EXPECT_GT(net.counters().deflections, 0u);
}

TEST(ReverseProtection, AckPathFailureIsAlsoSurvivable) {
  // Fail a link that only the ACK path protection covers: data flows
  // forward on the unprotected short path while ACKs detour.
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  sim::Network net(s.topology, controller, config);
  FlowDispatcher dispatcher(net);
  const auto forward =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  topo::ScenarioRoute reverse_route;
  reverse_route.src_edge = s.route.dst_edge;
  reverse_route.dst_edge = s.route.src_edge;
  reverse_route.core_path.assign(s.route.core_path.rbegin(),
                                 s.route.core_path.rend());
  // Reverse protection: mirror tree toward SW10.
  reverse_route.partial_protection = {
      {"SW31", "SW19"}, {"SW19", "SW11"}, {"SW11", "SW10"}};
  const auto reverse =
      controller.encode_scenario(reverse_route, ProtectionLevel::kPartial);
  BulkTransferFlow flow(net, dispatcher, forward, reverse, 1);
  flow.start_at(0.0);
  net.fail_link_at(1.5, "SW7", "SW13");
  flow.stop_at(4.0);
  net.events().run_until(5.0);
  // Both directions cross SW7-SW13; both survive via their protections.
  EXPECT_GT(flow.receiver().goodput().mbps_between(2.0, 4.0), 20.0);
}

}  // namespace
}  // namespace kar

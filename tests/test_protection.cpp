#include "routing/protection.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "routing/controller.hpp"
#include "routing/paths.hpp"
#include "rns/crt.hpp"
#include "topology/builders.hpp"

namespace kar::routing {
namespace {

using topo::NodeId;
using topo::Scenario;

std::vector<NodeId> resolve_core(const Scenario& s) {
  std::vector<NodeId> core;
  for (const auto& name : s.route.core_path) core.push_back(s.topology.at(name));
  return core;
}

TEST(ProtectionPlanner, CoversEveryReachableOffPathSwitchWhenUnbounded) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  const auto plan = plan_driven_deflections(s.topology, core,
                                            s.topology.at(s.route.dst_edge));
  // 15 switches, 4 on the path: all 11 others reach AS3, so all planned.
  EXPECT_EQ(plan.size(), 11u);
  std::unordered_set<NodeId> on_path(core.begin(), core.end());
  for (const auto& [node, next] : plan) {
    EXPECT_FALSE(on_path.contains(node));
    EXPECT_TRUE(s.topology.port_to(node, next).has_value());
  }
}

TEST(ProtectionPlanner, AssignmentsPointDownhill) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  const NodeId dst = s.topology.at(s.route.dst_edge);
  const auto plan = plan_driven_deflections(s.topology, core, dst);
  const auto dist = distances_to(s.topology, dst);
  for (const auto& [node, next] : plan) {
    EXPECT_DOUBLE_EQ(dist[next] + 1.0, dist[node])
        << s.topology.name(node) << " -> " << s.topology.name(next);
  }
}

TEST(ProtectionPlanner, DrivenPathsAreLoopFree) {
  // Following planned assignments from any protected switch must reach the
  // destination without revisiting a node (driven deflections are loop-free
  // by construction — the paper's safety condition).
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  const NodeId dst = s.topology.at(s.route.dst_edge);
  const auto plan = plan_driven_deflections(s.topology, core, dst);
  std::unordered_map<NodeId, NodeId> next_hop;
  for (const auto& [node, next] : plan) next_hop[node] = next;
  // Primary path switches point at their successors.
  for (std::size_t i = 0; i < core.size(); ++i) {
    next_hop[core[i]] = (i + 1 < core.size()) ? core[i + 1] : dst;
  }
  for (const auto& [start, first] : next_hop) {
    (void)first;
    std::unordered_set<NodeId> visited;
    NodeId cur = start;
    while (cur != dst) {
      EXPECT_TRUE(visited.insert(cur).second)
          << "loop through " << s.topology.name(cur);
      const auto it = next_hop.find(cur);
      ASSERT_NE(it, next_hop.end()) << s.topology.name(cur);
      cur = it->second;
    }
  }
}

TEST(ProtectionPlanner, RespectsBitBudget) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  const NodeId dst = s.topology.at(s.route.dst_edge);
  PlannerOptions options;
  options.max_route_id_bits = 28;  // the paper's partial-protection budget
  const auto plan = plan_driven_deflections(s.topology, core, dst, options);
  std::vector<std::uint64_t> ids;
  for (const NodeId n : core) ids.push_back(s.topology.switch_id(n));
  for (const auto& [node, next] : plan) {
    (void)next;
    ids.push_back(s.topology.switch_id(node));
  }
  EXPECT_LE(rns::route_id_bit_length(ids), 28u);
  EXPECT_FALSE(plan.empty());
  // The budget must actually bind: unbounded planning needs more bits.
  const auto unbounded = plan_driven_deflections(s.topology, core, dst);
  EXPECT_GT(unbounded.size(), plan.size());
}

TEST(ProtectionPlanner, RespectsSwitchCountBudget) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  PlannerOptions options;
  options.max_switches = 7;  // 4 primary + 3 protection
  const auto plan = plan_driven_deflections(
      s.topology, core, s.topology.at(s.route.dst_edge), options);
  EXPECT_EQ(plan.size(), 3u);
}

TEST(ProtectionPlanner, DistanceFilterKeepsOnlyAdjacentCandidates) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  PlannerOptions options;
  options.max_distance_from_path = 1;
  const auto plan = plan_driven_deflections(
      s.topology, core, s.topology.at(s.route.dst_edge), options);
  for (const auto& [node, next] : plan) {
    (void)next;
    bool adjacent_to_path = false;
    for (const NodeId p : core) {
      if (s.topology.port_to(node, p).has_value()) {
        adjacent_to_path = true;
        break;
      }
    }
    EXPECT_TRUE(adjacent_to_path) << s.topology.name(node);
  }
  EXPECT_FALSE(plan.empty());
}

TEST(ProtectionPlanner, PlannedRouteEncodes) {
  // End-to-end: planner output must be encodable by the controller.
  const Scenario s = topo::make_rnp28();
  const auto core = resolve_core(s);
  const NodeId dst = s.topology.at(s.route.dst_edge);
  PlannerOptions options;
  options.max_route_id_bits = 64;
  const auto plan = plan_driven_deflections(s.topology, core, dst, options);
  const Controller controller(s.topology);
  const EncodedRoute route =
      controller.encode_path(s.topology.at(s.route.src_edge), core, dst, plan);
  EXPECT_LE(route.bit_length, 64u);
  EXPECT_GT(route.assignments.size(), core.size());
}

TEST(ProtectionPlanner, PrioritizesPathAdjacentSwitches) {
  const Scenario s = topo::make_experimental15();
  const auto core = resolve_core(s);
  PlannerOptions options;
  options.max_switches = core.size() + 2;  // room for just two
  const auto plan = plan_driven_deflections(
      s.topology, core, s.topology.at(s.route.dst_edge), options);
  ASSERT_EQ(plan.size(), 2u);
  // Both picks must be directly adjacent to the primary path.
  for (const auto& [node, next] : plan) {
    (void)next;
    bool adjacent = false;
    for (const NodeId p : core) {
      adjacent = adjacent || s.topology.port_to(node, p).has_value();
    }
    EXPECT_TRUE(adjacent) << s.topology.name(node);
  }
}

}  // namespace
}  // namespace kar::routing

// Fault-injection campaign engine: schedule generators, the runtime
// invariant checker (including the mutation self-test that proves a broken
// invariant is detected and reported with its seed and a shrunk schedule),
// and end-to-end smoke campaigns.
#include "faultgen/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "faultgen/invariants.hpp"
#include "faultgen/schedule.hpp"
#include "routing/controller.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar::faultgen {
namespace {

using dataplane::DeflectionTechnique;
using sim::TraceEvent;

// ---------------------------------------------------------------------------
// Schedule generators.
// ---------------------------------------------------------------------------

TEST(Schedule, GeneratorsAreDeterministicInTheSeed) {
  const topo::Scenario s = topo::make_experimental15();
  for (const auto kind :
       {ScheduleKind::kRandomUpDown, ScheduleKind::kSrlgGroups,
        ScheduleKind::kFlapping, ScheduleKind::kKFailureSweep}) {
    ScheduleConfig config;
    config.kind = kind;
    common::Rng a(42);
    common::Rng b(42);
    common::Rng c(43);
    const auto first = generate_schedule(s.topology, config, a);
    const auto second = generate_schedule(s.topology, config, b);
    const auto other = generate_schedule(s.topology, config, c);
    EXPECT_EQ(first.events, second.events) << to_string(kind);
    EXPECT_NE(first.events, other.events) << to_string(kind);
  }
}

TEST(Schedule, EventsSortedWithinHorizonAndSkipEdgeLinks) {
  const topo::Scenario s = topo::make_experimental15();
  auto rng = testsupport::make_rng(7, "Schedule.EventsSorted");
  for (const auto kind :
       {ScheduleKind::kRandomUpDown, ScheduleKind::kSrlgGroups,
        ScheduleKind::kFlapping, ScheduleKind::kKFailureSweep}) {
    ScheduleConfig config;
    config.kind = kind;
    const auto schedule = generate_schedule(s.topology, config, rng);
    ASSERT_FALSE(schedule.empty()) << to_string(kind);
    double last = 0.0;
    for (const LinkEvent& event : schedule.events) {
      EXPECT_GE(event.time, last);
      EXPECT_LT(event.time, config.horizon_s);
      last = event.time;
      const topo::Link& link = s.topology.link(event.link);
      EXPECT_EQ(s.topology.kind(link.a.node), topo::NodeKind::kCoreSwitch);
      EXPECT_EQ(s.topology.kind(link.b.node), topo::NodeKind::kCoreSwitch);
    }
  }
}

TEST(Schedule, SrlgGroupsFailTogether) {
  const topo::Scenario s = topo::make_rnp28();
  ScheduleConfig config;
  config.kind = ScheduleKind::kSrlgGroups;
  config.group_count = 3;
  config.group_size = 3;
  auto rng = testsupport::make_rng(11, "Schedule.Srlg");
  const auto schedule = generate_schedule(s.topology, config, rng);
  // Group members share their fail timestamp: count links per fail time.
  std::map<double, std::size_t> fails_at;
  for (const LinkEvent& event : schedule.events) {
    if (event.fail) ++fails_at[event.time];
  }
  ASSERT_EQ(fails_at.size(), config.group_count);
  for (const auto& [time, count] : fails_at) {
    EXPECT_EQ(count, config.group_size) << "at t=" << time;
  }
}

TEST(Schedule, FlappingAlternatesPerLink) {
  const topo::Scenario s = topo::make_fig1_network();
  ScheduleConfig config;
  config.kind = ScheduleKind::kFlapping;
  config.flapping_links = 1;
  config.flap_half_period_s = 0.05;
  config.horizon_s = 0.5;
  auto rng = testsupport::make_rng(3, "Schedule.Flap");
  const auto schedule = generate_schedule(s.topology, config, rng);
  ASSERT_GE(schedule.size(), 8u);
  bool expect_fail = true;
  for (const LinkEvent& event : schedule.events) {
    EXPECT_EQ(event.link, schedule.events.front().link);
    EXPECT_EQ(event.fail, expect_fail);
    expect_fail = !expect_fail;
  }
}

TEST(Schedule, SweepFailsKDistinctLinksWithoutRepair) {
  const topo::Scenario s = topo::make_experimental15();
  ScheduleConfig config;
  config.kind = ScheduleKind::kKFailureSweep;
  config.k_failures = 4;
  auto rng = testsupport::make_rng(5, "Schedule.Sweep");
  const auto schedule = generate_schedule(s.topology, config, rng);
  ASSERT_EQ(schedule.size(), 4u);
  std::set<topo::LinkId> links;
  for (const LinkEvent& event : schedule.events) {
    EXPECT_TRUE(event.fail);
    links.insert(event.link);
  }
  EXPECT_EQ(links.size(), 4u);
}

TEST(Schedule, DescribeUsesNodeNames) {
  const topo::Scenario s = topo::make_fig1_network();
  FailureSchedule schedule;
  schedule.events.push_back(
      {0.25, *s.topology.link_between(s.topology.at("SW7"), s.topology.at("SW11")),
       true});
  EXPECT_EQ(schedule.describe(s.topology), "t=0.25 fail SW7-SW11\n");
}

// ---------------------------------------------------------------------------
// Invariant checker on crafted event streams.
// ---------------------------------------------------------------------------

struct CheckerFixture : public ::testing::Test {
  CheckerFixture()
      : scenario(topo::make_fig1_network()),
        controller(scenario.topology),
        net(scenario.topology, controller, {}) {}

  InvariantChecker make_checker(InvariantConfig config = {}) {
    return InvariantChecker(net, config);
  }

  static TraceEvent event(TraceEvent::Kind kind, double time,
                          std::uint64_t packet_id, topo::NodeId node) {
    return TraceEvent{kind, time, packet_id, node, 0, false,
                      dataplane::DropReason::kNoViablePort, 0, nullptr};
  }

  topo::Scenario scenario;
  routing::Controller controller;
  sim::Network net;
};

TEST_F(CheckerFixture, CleanLifecyclePasses) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  auto hop = event(TraceEvent::Kind::kHop, 0.1, 1, scenario.topology.at("SW4"));
  hop.out_port = 0;  // SW4 port 0 -> SW7: the residue of route 44 (44 mod 4)
  hop.in_port = 1;
  dataplane::Packet packet;
  packet.kar.route_id = rns::BigUint(44);
  hop.packet = &packet;
  checker.observe(hop);
  checker.observe(event(TraceEvent::Kind::kDeliver, 0.2, 1, scenario.topology.at("D")));
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.in_flight(), 0u);
}

TEST_F(CheckerFixture, NipReturnToInputPortIsFlagged) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  auto hop = event(TraceEvent::Kind::kHop, 0.1, 1, scenario.topology.at("SW4"));
  hop.out_port = 1;
  hop.in_port = 1;  // forwarded straight back: forbidden under NIP
  hop.deflected = true;
  checker.observe(hop);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations().front().kind,
            Violation::Kind::kNipReturnedInputPort);
}

TEST_F(CheckerFixture, ResidueMismatchIsFlagged) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  dataplane::Packet packet;
  packet.kar.route_id = rns::BigUint(44);  // 44 mod 4 == 0, not port 1
  auto hop = event(TraceEvent::Kind::kHop, 0.1, 1, scenario.topology.at("SW4"));
  hop.out_port = 1;
  hop.in_port = 0;
  hop.deflected = false;  // claims to follow the residue
  hop.packet = &packet;
  checker.observe(hop);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations().front().kind, Violation::Kind::kResidueMismatch);
}

TEST_F(CheckerFixture, ForwardOnDetectedDownPortIsFlagged) {
  scenario.topology.fail_link("SW7", "SW11");
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  auto hop = event(TraceEvent::Kind::kHop, 0.1, 1, scenario.topology.at("SW7"));
  hop.out_port = 2;  // SW7 port 2 -> SW11, which is detected-down
  hop.in_port = 0;
  hop.deflected = true;
  checker.observe(hop);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations().front().kind, Violation::Kind::kForwardOnDownPort);
}

TEST_F(CheckerFixture, TimeRunningBackwardsIsFlagged) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.5, 1, scenario.topology.at("S")));
  checker.observe(event(TraceEvent::Kind::kDeliver, 0.4, 1, scenario.topology.at("D")));
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations().front().kind, Violation::Kind::kTimeNonMonotonic);
}

TEST_F(CheckerFixture, DoubleTerminalIsFlagged) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  checker.observe(event(TraceEvent::Kind::kDeliver, 0.1, 1, scenario.topology.at("D")));
  checker.observe(event(TraceEvent::Kind::kDeliver, 0.2, 1, scenario.topology.at("D")));
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations().front().kind, Violation::Kind::kLifecycle);
}

TEST_F(CheckerFixture, VanishedPacketFailsConservation) {
  auto checker = make_checker();
  checker.observe(event(TraceEvent::Kind::kInject, 0.0, 1, scenario.topology.at("S")));
  checker.finish(/*queue_drained=*/true);
  ASSERT_FALSE(checker.ok());
  const bool found = std::any_of(
      checker.violations().begin(), checker.violations().end(),
      [](const Violation& v) { return v.kind == Violation::Kind::kConservation; });
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end: live simulation through the checker.
// ---------------------------------------------------------------------------

TEST(Campaign, LiveRunUnderFailuresSatisfiesAllInvariants) {
  CampaignConfig config;
  config.topology = "fig1";
  config.technique = DeflectionTechnique::kNotInputPort;
  config.runs = 1;
  config.packets_per_run = 30;
  config.seed = testsupport::seed_or(99);
  const CampaignEngine engine(config);
  const RunResult run = engine.run_one(engine.run_seed_at(0));
  EXPECT_TRUE(run.violations.empty());
  EXPECT_TRUE(run.queue_drained);
  EXPECT_EQ(run.counters.injected,
            run.counters.delivered + run.counters.total_drops());
}

TEST(Campaign, AllScheduleKindsRunCleanOnFig2) {
  for (const auto kind :
       {ScheduleKind::kRandomUpDown, ScheduleKind::kSrlgGroups,
        ScheduleKind::kFlapping, ScheduleKind::kKFailureSweep}) {
    CampaignConfig config;
    config.topology = "fig2";
    config.schedule.kind = kind;
    config.runs = 5;
    config.packets_per_run = 10;
    config.seed = testsupport::seed_or(17);
    CampaignEngine engine(config);
    const CampaignResult result = engine.run();
    EXPECT_TRUE(result.ok()) << to_string(kind);
    EXPECT_EQ(result.runs, 5u);
    EXPECT_EQ(result.totals.injected, 50u);
  }
}

TEST(Campaign, RunsAreReproducibleFromTheRunSeed) {
  CampaignConfig config;
  config.topology = "fig2";
  config.technique = DeflectionTechnique::kHotPotato;
  config.runs = 1;
  config.packets_per_run = 25;
  config.seed = testsupport::seed_or(5);
  const CampaignEngine engine(config);
  const std::uint64_t seed = engine.run_seed_at(0);
  const RunResult a = engine.run_one(seed);
  const RunResult b = engine.run_one(seed);
  EXPECT_EQ(a.schedule.events, b.schedule.events);
  EXPECT_EQ(a.counters.delivered, b.counters.delivered);
  EXPECT_EQ(a.counters.hops, b.counters.hops);
  EXPECT_EQ(a.delivered_hops, b.delivered_hops);
}

// The acceptance mutation check: deliberately tighten the hop budget below
// what the NIP recovery path needs. The checker must detect it, the report
// must carry the run seed, and greedy shrinking must reduce the schedule
// to a still-violating core that replays.
TEST(Campaign, MutatedInvariantIsDetectedWithSeedAndShrunkSchedule) {
  CampaignConfig config;
  config.topology = "fig1";
  config.technique = DeflectionTechnique::kNotInputPort;
  config.protection = topo::ProtectionLevel::kPartial;
  // Recovery via SW5 takes 4 hops; the primary path only 3. A budget of 3
  // is the planted bug: it only trips when a failure forces deflection.
  config.hop_budget_override = 3;
  config.schedule.kind = ScheduleKind::kRandomUpDown;
  config.schedule.per_link_failure_probability = 0.8;
  config.runs = 30;
  config.packets_per_run = 20;
  config.seed = testsupport::seed_or(1234);
  CampaignEngine engine(config);
  const CampaignResult result = engine.run();

  ASSERT_FALSE(result.ok()) << "planted hop-budget bug was not detected";
  const ViolationReport& report = result.reports.front();
  EXPECT_EQ(report.first.kind, Violation::Kind::kHopBudgetExceeded);
  EXPECT_NE(report.run_seed, 0u);
  EXPECT_FALSE(report.shrunk.empty());
  EXPECT_LE(report.shrunk.size(), report.original.size());
  EXPECT_NE(report.shrunk_description.find("fail"), std::string::npos);

  // The shrunk schedule must still reproduce the violation from the seed...
  const RunResult replay = engine.run_one(report.run_seed, &report.shrunk);
  EXPECT_FALSE(replay.violations.empty());
  // ...and be 1-minimal: removing any remaining event loses it.
  for (std::size_t i = 0; i < report.shrunk.size(); ++i) {
    FailureSchedule smaller;
    for (std::size_t j = 0; j < report.shrunk.size(); ++j) {
      if (j != i) smaller.events.push_back(report.shrunk.events[j]);
    }
    const RunResult gone = engine.run_one(report.run_seed, &smaller);
    EXPECT_TRUE(gone.violations.empty())
        << "shrunk schedule is not minimal: event " << i << " is removable";
  }
}

TEST(Campaign, UnknownTopologyThrows) {
  EXPECT_THROW(make_campaign_scenario("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace kar::faultgen

// The determinism contract of the parallel campaign runner: a campaign's
// aggregates are bit-identical whether its runs execute serially
// (CampaignEngine::run or --jobs=1) or on a work-stealing pool, JSONL
// records land one per run in run-index order, and a run that throws is
// isolated instead of killing the campaign.
#include "runner/campaign_runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "support/testsupport.hpp"

namespace kar::runner {
namespace {

faultgen::CampaignConfig small_campaign(std::size_t runs, std::uint64_t seed) {
  faultgen::CampaignConfig config;
  config.topology = "fig1";
  config.technique = dataplane::DeflectionTechnique::kNotInputPort;
  config.schedule.kind = faultgen::ScheduleKind::kRandomUpDown;
  config.runs = runs;
  config.packets_per_run = 10;
  config.seed = seed;
  return config;
}

TEST(CampaignRunner, RunSeedsComeFromDeriveSeed) {
  const faultgen::CampaignEngine engine(small_campaign(4, 77));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.run_seed_at(i), common::derive_seed(77, i));
  }
}

// The acceptance-criterion test: byte-identical aggregates for a
// 64-scenario campaign at -j1 vs -j8 (and vs the engine's own serial
// path). The canonical rendering is hexfloat — equal strings iff equal
// doubles, bit for bit.
TEST(CampaignRunner, AggregatesAreBitIdenticalAcrossJobCounts) {
  const faultgen::CampaignEngine engine(
      small_campaign(64, testsupport::seed_or(4242)));
  const std::string reference = canonical_aggregates(engine.run());
  ASSERT_FALSE(reference.empty());

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    CampaignJobOptions options;
    options.runner.jobs = jobs;
    CampaignJobStats stats;
    const faultgen::CampaignResult result =
        run_campaign(engine, options, &stats);
    EXPECT_EQ(canonical_aggregates(result), reference) << "jobs=" << jobs;
    EXPECT_EQ(stats.jobs, jobs);
    EXPECT_EQ(stats.errored, 0u);
    EXPECT_EQ(stats.timed_out, 0u);
    EXPECT_EQ(stats.per_run_wall_s.size(), 64u);
  }
}

TEST(CampaignRunner, DifferentSeedsProduceDifferentCanonicalAggregates) {
  const faultgen::CampaignEngine a(small_campaign(16, 1));
  const faultgen::CampaignEngine b(small_campaign(16, 2));
  EXPECT_NE(canonical_aggregates(a.run()), canonical_aggregates(b.run()));
}

TEST(CampaignRunner, WritesOneJsonlRecordPerRunInIndexOrder) {
  const faultgen::CampaignEngine engine(small_campaign(8, 99));
  std::ostringstream sink;
  JsonlWriter jsonl(sink);
  CampaignJobOptions options;
  options.runner.jobs = 4;
  options.jsonl = &jsonl;
  const faultgen::CampaignResult result = run_campaign(engine, options);
  EXPECT_EQ(result.runs, 8u);
  ASSERT_EQ(jsonl.lines_written(), 8u);

  const auto lines = common::split(sink.str(), '\n', false);
  ASSERT_EQ(lines.size(), 8u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    unsigned long long run_index = 0;
    unsigned long long seed = 0;
    ASSERT_EQ(std::sscanf(lines[i].c_str(), "{\"run\":%llu,\"seed\":%llu,",
                          &run_index, &seed),
              2)
        << lines[i];
    EXPECT_EQ(run_index, i) << "records out of order";
    EXPECT_EQ(seed, engine.run_seed_at(i));
    EXPECT_NE(lines[i].find("\"topology\":\"fig1\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"verdict\":\"ok\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"injected\":10"), std::string::npos);
  }
}

// The observability extension of the determinism contract: with metrics
// collection on, the per-run snapshots embedded in the JSONL records and
// the campaign-level fold are byte-identical whether the runs execute
// serially or on an 8-worker pool. Only wall_ms (real time) may differ.
TEST(CampaignRunner, MetricsFoldAndJsonlAreBitIdenticalAcrossJobCounts) {
  faultgen::CampaignConfig config =
      small_campaign(24, testsupport::seed_or(505));
  config.collect_metrics = true;
  const faultgen::CampaignEngine engine(config);

  const std::string reference = canonical_aggregates(engine.run());
  ASSERT_NE(reference.find("metrics="), std::string::npos)
      << "collect_metrics did not reach the canonical aggregates";
  ASSERT_NE(reference.find("kar_packets_injected_total"), std::string::npos);

  const auto scrub_wall_ms = [](const std::string& text) {
    // wall_ms is real elapsed time — the only field allowed to differ.
    static const std::regex wall("\"wall_ms\":[^,}]*");
    return std::regex_replace(text, wall, "\"wall_ms\":0");
  };

  std::string jsonl_reference;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    std::ostringstream sink;
    JsonlWriter jsonl(sink);
    CampaignJobOptions options;
    options.runner.jobs = jobs;
    options.jsonl = &jsonl;
    const faultgen::CampaignResult result = run_campaign(engine, options);
    EXPECT_EQ(canonical_aggregates(result), reference) << "jobs=" << jobs;

    ASSERT_EQ(jsonl.lines_written(), 24u);
    const auto lines = common::split(sink.str(), '\n', false);
    for (const std::string& line : lines) {
      EXPECT_NE(line.find("\"metrics\":{"), std::string::npos)
          << "record without embedded metrics snapshot: " << line;
      EXPECT_NE(line.find("technique=\\\"nip\\\""), std::string::npos) << line;
    }
    const std::string scrubbed = scrub_wall_ms(sink.str());
    if (jobs == 1) {
      jsonl_reference = scrubbed;
    } else {
      EXPECT_EQ(scrubbed, jsonl_reference)
          << "JSONL records (metrics included) differ between job counts";
    }
  }
}

// Campaigns that do not opt in pay nothing: no metrics key anywhere.
TEST(CampaignRunner, MetricsAreAbsentUnlessRequested) {
  const faultgen::CampaignEngine engine(small_campaign(4, 7));
  std::ostringstream sink;
  JsonlWriter jsonl(sink);
  CampaignJobOptions options;
  options.jsonl = &jsonl;
  const faultgen::CampaignResult result = run_campaign(engine, options);
  EXPECT_TRUE(result.metrics.empty());
  EXPECT_EQ(canonical_aggregates(result).find("metrics="), std::string::npos);
  EXPECT_EQ(sink.str().find("\"metrics\""), std::string::npos);
}

TEST(CampaignRunner, IsolatesRunsThatThrow) {
  // An unknown topology makes every run_one throw (the engine constructor
  // itself does not resolve the topology): the campaign must survive with
  // every run reported as errored rather than crash or hang.
  faultgen::CampaignConfig config = small_campaign(6, 5);
  config.topology = "no-such-topology";
  const faultgen::CampaignEngine engine(config);
  std::ostringstream sink;
  JsonlWriter jsonl(sink);
  CampaignJobOptions options;
  options.runner.jobs = 2;
  options.jsonl = &jsonl;
  CampaignJobStats stats;
  const faultgen::CampaignResult result = run_campaign(engine, options, &stats);
  EXPECT_EQ(result.runs, 0u);  // nothing aggregated
  EXPECT_EQ(stats.errored, 6u);
  EXPECT_EQ(jsonl.lines_written(), 6u);
  const auto lines = common::split(sink.str(), '\n', false);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"verdict\":\"error\""), std::string::npos) << line;
    EXPECT_NE(line.find("no-such-topology"), std::string::npos) << line;
  }
}

TEST(CampaignRunner, ParallelRunStillDetectsPlantedViolations) {
  // The mutation self-test from test_faultgen, through the parallel path:
  // a hop budget below the NIP recovery path must still be caught, with
  // the violating run's seed preserved in the report and the JSONL verdict.
  faultgen::CampaignConfig config = small_campaign(30, 1234);
  config.hop_budget_override = 3;
  config.schedule.per_link_failure_probability = 0.8;
  config.packets_per_run = 20;
  const faultgen::CampaignEngine engine(config);

  const faultgen::CampaignResult serial = engine.run();
  ASSERT_FALSE(serial.ok()) << "planted hop-budget bug was not detected";

  std::ostringstream sink;
  JsonlWriter jsonl(sink);
  CampaignJobOptions options;
  options.runner.jobs = 4;
  options.jsonl = &jsonl;
  const faultgen::CampaignResult parallel = run_campaign(engine, options);
  EXPECT_EQ(canonical_aggregates(parallel), canonical_aggregates(serial));
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.reports.front().run_seed, serial.reports.front().run_seed);
  EXPECT_NE(sink.str().find("\"verdict\":\"violation\""), std::string::npos);
  EXPECT_NE(sink.str().find("\"first_violation\":"), std::string::npos);
}

}  // namespace
}  // namespace kar::runner

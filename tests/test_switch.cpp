#include "dataplane/switch.hpp"

#include <gtest/gtest.h>

#include <map>

#include "routing/controller.hpp"
#include "topology/builders.hpp"

namespace kar::dataplane {
namespace {

using common::Rng;
using topo::Scenario;

struct Fig1Fixture : public ::testing::Test {
  Fig1Fixture()
      : scenario(topo::make_fig1_network()), controller(scenario.topology) {}

  Packet make_packet(std::uint64_t route_id) {
    Packet p;
    p.kar.route_id = rns::BigUint(route_id);
    p.dst_edge = scenario.topology.at("D");
    p.src_edge = scenario.topology.at("S");
    return p;
  }

  Scenario scenario;
  routing::Controller controller;
  Rng rng{7};
};

TEST_F(Fig1Fixture, ModuloForwardingFollowsPaperSteps) {
  // R = 44: SW4 -> port 0, SW7 -> port 2, SW11 -> port 0.
  const topo::Topology& t = scenario.topology;
  const Packet p = make_packet(44);
  for (const auto& [name, id, expected] :
       {std::tuple{"SW4", 4u, 0u}, {"SW7", 7u, 2u}, {"SW11", 11u, 0u}}) {
    const KarSwitch sw(t, t.at(name), DeflectionTechnique::kNone);
    EXPECT_EQ(sw.switch_id(), id);
    const auto decision = sw.forward(p, std::nullopt, rng);
    EXPECT_EQ(decision.action, ForwardDecision::Action::kForward) << name;
    EXPECT_EQ(decision.out_port, expected) << name;
    EXPECT_FALSE(decision.deflected);
  }
}

TEST_F(Fig1Fixture, ConstructionRejectsEdgeNodes) {
  EXPECT_THROW(KarSwitch(scenario.topology, scenario.topology.at("S"),
                         DeflectionTechnique::kNone),
               std::logic_error);
}

TEST_F(Fig1Fixture, NoDeflectionDropsOnFailedResiduePort) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNone);
  const auto decision = sw.forward(make_packet(44), 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kDrop);
  EXPECT_EQ(decision.drop_reason, DropReason::kNoViablePort);
}

TEST_F(Fig1Fixture, AvpDeflectsUniformlyOverAvailablePorts) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kAnyValidPort);
  // Paper: "SW7 chooses between port 0 (SW4) or port 1 (SW5)".
  std::map<topo::PortIndex, int> counts;
  const Packet p = make_packet(660);
  for (int i = 0; i < 4000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    ASSERT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  ASSERT_EQ(counts.size(), 2u);      // ports 0 and 1 only (2 is down)
  EXPECT_GT(counts[0], 1800);        // ~50/50 split, generous tolerance
  EXPECT_GT(counts[1], 1800);
}

TEST_F(Fig1Fixture, NipNeverReturnsToInputPort) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNotInputPort);
  const Packet p = make_packet(660);
  for (int i = 0; i < 1000; ++i) {
    const auto decision = sw.forward(p, /*in_port=*/0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_EQ(decision.out_port, 1u);  // only SW5 remains
  }
}

TEST_F(Fig1Fixture, NipRejectsResidueEqualToInputPort) {
  // Craft a route ID whose residue at SW7 is the input port: residue 0 with
  // input port 0 must be rejected even though port 0 is healthy
  // (Algorithm 1: "or output = in_port").
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNotInputPort);
  Packet p = make_packet(0);  // 0 mod 7 = 0
  std::map<topo::PortIndex, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_NE(decision.out_port, 0u);
    EXPECT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  EXPECT_EQ(counts.size(), 2u);  // ports 1 and 2
}

TEST_F(Fig1Fixture, AvpAcceptsResidueEqualToInputPort) {
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kAnyValidPort);
  const Packet p = make_packet(0);
  const auto decision = sw.forward(p, 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_EQ(decision.out_port, 0u);  // AVP may bounce straight back
  EXPECT_FALSE(decision.deflected);
}

TEST_F(Fig1Fixture, HotPotatoMarksAndRandomWalks) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kHotPotato);
  Packet p = make_packet(44);
  const auto first = sw.forward(p, 0, rng);
  ASSERT_EQ(first.action, ForwardDecision::Action::kForward);
  EXPECT_TRUE(first.deflected);
  EXPECT_TRUE(first.marked_hot_potato);
  // Once marked, the residue is ignored — even on a healthy switch whose
  // residue port is up.
  p.kar.deflected = true;
  t.repair_all();
  std::map<topo::PortIndex, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  EXPECT_EQ(counts.size(), 3u);  // uniform over all three ports
}

TEST_F(Fig1Fixture, UnmarkedHotPotatoFollowsResidue) {
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kHotPotato);
  const auto decision = sw.forward(make_packet(44), 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_EQ(decision.out_port, 2u);
  EXPECT_FALSE(decision.deflected);
}

TEST_F(Fig1Fixture, NipDropsWhenOnlyInputPortRemains) {
  // Isolate SW4 so its only healthy port is the input port.
  topo::Topology& t = scenario.topology;
  t.fail_link("SW4", "SW7");
  const KarSwitch sw(t, t.at("SW4"), DeflectionTechnique::kNotInputPort);
  // Input = port 1 (to S); the only other port (0, to SW7) is down.
  const auto decision = sw.forward(make_packet(44), 1, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kDrop);
  EXPECT_EQ(decision.drop_reason, DropReason::kNoViablePort);
}

TEST_F(Fig1Fixture, ResidueLargerThanPortCountDeflects) {
  // At SW11 (3 ports), residue 44 mod 11 = 0 is valid, but a route ID of
  // 7 gives 7 mod 11 = 7: not a port; AVP must deflect.
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW11"), DeflectionTechnique::kAnyValidPort);
  const auto decision = sw.forward(make_packet(7), 2, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_TRUE(decision.deflected);
}

TEST(DeflectionTechnique, StringRoundTrip) {
  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort, DeflectionTechnique::kNotInputPort}) {
    EXPECT_EQ(technique_from_string(to_string(technique)), technique);
  }
  EXPECT_THROW(technique_from_string("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace kar::dataplane

#include "dataplane/switch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "routing/controller.hpp"
#include "topology/builders.hpp"

namespace kar::dataplane {
namespace {

using common::Rng;
using topo::Scenario;

struct Fig1Fixture : public ::testing::Test {
  Fig1Fixture()
      : scenario(topo::make_fig1_network()), controller(scenario.topology) {}

  Packet make_packet(std::uint64_t route_id) {
    Packet p;
    p.kar.route_id = rns::BigUint(route_id);
    p.dst_edge = scenario.topology.at("D");
    p.src_edge = scenario.topology.at("S");
    return p;
  }

  Scenario scenario;
  routing::Controller controller;
  Rng rng{7};
};

TEST_F(Fig1Fixture, ModuloForwardingFollowsPaperSteps) {
  // R = 44: SW4 -> port 0, SW7 -> port 2, SW11 -> port 0.
  const topo::Topology& t = scenario.topology;
  const Packet p = make_packet(44);
  for (const auto& [name, id, expected] :
       {std::tuple{"SW4", 4u, 0u}, {"SW7", 7u, 2u}, {"SW11", 11u, 0u}}) {
    const KarSwitch sw(t, t.at(name), DeflectionTechnique::kNone);
    EXPECT_EQ(sw.switch_id(), id);
    const auto decision = sw.forward(p, std::nullopt, rng);
    EXPECT_EQ(decision.action, ForwardDecision::Action::kForward) << name;
    EXPECT_EQ(decision.out_port, expected) << name;
    EXPECT_FALSE(decision.deflected);
  }
}

TEST_F(Fig1Fixture, ConstructionRejectsEdgeNodes) {
  EXPECT_THROW(KarSwitch(scenario.topology, scenario.topology.at("S"),
                         DeflectionTechnique::kNone),
               std::logic_error);
}

TEST_F(Fig1Fixture, NoDeflectionDropsOnFailedResiduePort) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNone);
  const auto decision = sw.forward(make_packet(44), 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kDrop);
  EXPECT_EQ(decision.drop_reason, DropReason::kNoViablePort);
}

TEST_F(Fig1Fixture, AvpDeflectsUniformlyOverAvailablePorts) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kAnyValidPort);
  // Paper: "SW7 chooses between port 0 (SW4) or port 1 (SW5)".
  std::map<topo::PortIndex, int> counts;
  const Packet p = make_packet(660);
  for (int i = 0; i < 4000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    ASSERT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  ASSERT_EQ(counts.size(), 2u);      // ports 0 and 1 only (2 is down)
  EXPECT_GT(counts[0], 1800);        // ~50/50 split, generous tolerance
  EXPECT_GT(counts[1], 1800);
}

TEST_F(Fig1Fixture, NipNeverReturnsToInputPort) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNotInputPort);
  const Packet p = make_packet(660);
  for (int i = 0; i < 1000; ++i) {
    const auto decision = sw.forward(p, /*in_port=*/0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_EQ(decision.out_port, 1u);  // only SW5 remains
  }
}

TEST_F(Fig1Fixture, NipRejectsResidueEqualToInputPort) {
  // Craft a route ID whose residue at SW7 is the input port: residue 0 with
  // input port 0 must be rejected even though port 0 is healthy
  // (Algorithm 1: "or output = in_port").
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kNotInputPort);
  Packet p = make_packet(0);  // 0 mod 7 = 0
  std::map<topo::PortIndex, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_NE(decision.out_port, 0u);
    EXPECT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  EXPECT_EQ(counts.size(), 2u);  // ports 1 and 2
}

TEST_F(Fig1Fixture, AvpAcceptsResidueEqualToInputPort) {
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kAnyValidPort);
  const Packet p = make_packet(0);
  const auto decision = sw.forward(p, 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_EQ(decision.out_port, 0u);  // AVP may bounce straight back
  EXPECT_FALSE(decision.deflected);
}

TEST_F(Fig1Fixture, HotPotatoMarksAndRandomWalks) {
  topo::Topology& t = scenario.topology;
  t.fail_link("SW7", "SW11");
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kHotPotato);
  Packet p = make_packet(44);
  const auto first = sw.forward(p, 0, rng);
  ASSERT_EQ(first.action, ForwardDecision::Action::kForward);
  EXPECT_TRUE(first.deflected);
  EXPECT_TRUE(first.marked_hot_potato);
  // Once marked, the residue is ignored — even on a healthy switch whose
  // residue port is up.
  p.kar.deflected = true;
  t.repair_all();
  std::map<topo::PortIndex, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const auto decision = sw.forward(p, 0, rng);
    ASSERT_EQ(decision.action, ForwardDecision::Action::kForward);
    EXPECT_TRUE(decision.deflected);
    ++counts[decision.out_port];
  }
  EXPECT_EQ(counts.size(), 3u);  // uniform over all three ports
}

TEST_F(Fig1Fixture, UnmarkedHotPotatoFollowsResidue) {
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW7"), DeflectionTechnique::kHotPotato);
  const auto decision = sw.forward(make_packet(44), 0, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_EQ(decision.out_port, 2u);
  EXPECT_FALSE(decision.deflected);
}

TEST_F(Fig1Fixture, NipDropsWhenOnlyInputPortRemains) {
  // Isolate SW4 so its only healthy port is the input port.
  topo::Topology& t = scenario.topology;
  t.fail_link("SW4", "SW7");
  const KarSwitch sw(t, t.at("SW4"), DeflectionTechnique::kNotInputPort);
  // Input = port 1 (to S); the only other port (0, to SW7) is down.
  const auto decision = sw.forward(make_packet(44), 1, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kDrop);
  EXPECT_EQ(decision.drop_reason, DropReason::kNoViablePort);
}

TEST_F(Fig1Fixture, ResidueLargerThanPortCountDeflects) {
  // At SW11 (3 ports), residue 44 mod 11 = 0 is valid, but a route ID of
  // 7 gives 7 mod 11 = 7: not a port; AVP must deflect.
  const topo::Topology& t = scenario.topology;
  const KarSwitch sw(t, t.at("SW11"), DeflectionTechnique::kAnyValidPort);
  const auto decision = sw.forward(make_packet(7), 2, rng);
  EXPECT_EQ(decision.action, ForwardDecision::Action::kForward);
  EXPECT_TRUE(decision.deflected);
}

TEST(DeflectionTechnique, StringRoundTrip) {
  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort, DeflectionTechnique::kNotInputPort}) {
    EXPECT_EQ(technique_from_string(to_string(technique)), technique);
  }
  EXPECT_THROW(technique_from_string("bogus"), std::invalid_argument);
}

TEST(DeflectionTechnique, FromStringIsCaseInsensitive) {
  // Regression: "NIP" from a config file or CLI used to be rejected.
  EXPECT_EQ(technique_from_string("NIP"), DeflectionTechnique::kNotInputPort);
  EXPECT_EQ(technique_from_string("Nip"), DeflectionTechnique::kNotInputPort);
  EXPECT_EQ(technique_from_string("AVP"), DeflectionTechnique::kAnyValidPort);
  EXPECT_EQ(technique_from_string("Hp"), DeflectionTechnique::kHotPotato);
  EXPECT_EQ(technique_from_string("NONE"), DeflectionTechnique::kNone);
}

TEST(DeflectionTechnique, UnknownNameErrorListsTheOptions) {
  try {
    (void)technique_from_string("bogus");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("none|hp|avp|nip"), std::string::npos) << what;
  }
}

TEST_F(Fig1Fixture, FastResiduePathMatchesNaiveDecisionForDecision) {
  // The default kFast switch and an explicit kNaive switch must make
  // bit-identical decisions from identical RNG streams.
  const topo::Topology& t = scenario.topology;
  const KarSwitch fast(t, t.at("SW7"), DeflectionTechnique::kNotInputPort,
                       ResiduePath::kFast);
  const KarSwitch naive(t, t.at("SW7"), DeflectionTechnique::kNotInputPort,
                        ResiduePath::kNaive);
  EXPECT_EQ(fast.residue_path(), ResiduePath::kFast);
  EXPECT_EQ(naive.residue_path(), ResiduePath::kNaive);
  Rng rng_fast{99};
  Rng rng_naive{99};
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t r : {0u, 1u, 7u, 44u, 660u, 123456u}) {
      const Packet p = make_packet(r);
      const auto a = fast.forward(p, 0, rng_fast);
      const auto b = naive.forward(p, 0, rng_naive);
      EXPECT_EQ(a.action, b.action) << r;
      EXPECT_EQ(a.out_port, b.out_port) << r;
      EXPECT_EQ(a.deflected, b.deflected) << r;
    }
  }
  // Width gating: <= 64-bit routes reduce directly and never consult the
  // memo (the narrow-route fast-path regression fix).
  EXPECT_EQ(fast.residue_cache().stats().hits, 0u);
  EXPECT_EQ(fast.residue_cache().stats().misses, 0u);

  // Wide routes do go through the memo; adding a multiple of the switch ID
  // (7 << 200) widens the route without changing any residue, so decisions
  // still match naive bit for bit — and the second pass is answered from
  // the memo.
  for (int pass = 0; pass < 2; ++pass) {  // second pass hits the memo
    for (std::uint64_t r : {0u, 1u, 7u, 44u, 660u, 123456u}) {
      Packet p = make_packet(r);
      p.kar.route_id += rns::BigUint(7) << 200;
      const auto a = fast.forward(p, 0, rng_fast);
      const auto b = naive.forward(p, 0, rng_naive);
      EXPECT_EQ(a.action, b.action) << r;
      EXPECT_EQ(a.out_port, b.out_port) << r;
      EXPECT_EQ(a.deflected, b.deflected) << r;
    }
  }
  EXPECT_GT(fast.residue_cache().stats().hits, 0u);
  EXPECT_EQ(naive.residue_cache().stats().hits, 0u);
  EXPECT_EQ(naive.residue_cache().stats().misses, 0u);
}

TEST(ResidueCache, CountsHitsMissesAndServesCorrectResidues) {
  ResidueCache cache;
  const rns::PreparedMod mod(44);
  const rns::BigUint a(100);      // 100 mod 44 = 12
  const rns::BigUint b(1ULL << 40);
  EXPECT_EQ(cache.lookup(a, mod), 12u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.lookup(a, mod), 12u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.lookup(b, mod), (1ULL << 40) % 44);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.lookup(b, mod), (1ULL << 40) % 44);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.clear();
  EXPECT_EQ(cache.lookup(a, mod), 12u);  // still correct after clear
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ResidueCache, CapacityOneEvictsButNeverAliases) {
  // With a single slot every distinct route ID evicts the previous one;
  // the full-key compare means the answers stay exact regardless.
  ResidueCache cache(1);
  const rns::PreparedMod mod(7);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t value : {5u, 12u, 33u, 5u}) {
      EXPECT_EQ(cache.lookup(rns::BigUint(value), mod), value % 7)
          << "round " << round << " value " << value;
    }
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 12u);
}

TEST(ResidueCache, DigestCollisionsAreDetectedByFullKeyCompare) {
  // Force collisions structurally: capacity 1 maps every digest to slot 0,
  // so any two distinct keys collide. Wide multi-limb keys must still
  // never alias.
  ResidueCache cache(1);
  const rns::PreparedMod mod(26389);  // paper Table 1 unprotected width
  const rns::BigUint wide_a = (rns::BigUint(1) << 200) + rns::BigUint(17);
  const rns::BigUint wide_b = (rns::BigUint(1) << 200) + rns::BigUint(18);
  const auto expect_a = wide_a.mod_u64(26389);
  const auto expect_b = wide_b.mod_u64(26389);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.lookup(wide_a, mod), expect_a);
    EXPECT_EQ(cache.lookup(wide_b, mod), expect_b);
  }
}

}  // namespace
}  // namespace kar::dataplane

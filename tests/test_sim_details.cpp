// Fine-grained simulator semantics: serialization/queueing timing,
// per-direction link independence, wrong-edge bounce through the full
// stack, and counter bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "routing/controller.hpp"
#include "sim/network.hpp"
#include "topology/builders.hpp"

namespace kar::sim {
namespace {

using dataplane::Packet;
using topo::ProtectionLevel;
using topo::Scenario;

Packet make_probe(Network& net, const routing::EncodedRoute& r,
                  std::size_t wire_bytes) {
  Packet p;
  p.transport = dataplane::Datagram{0};
  net.edge_at(r.src_edge).stamp(
      p, r, wire_bytes - dataplane::kBaseHeaderBytes - r.route_id_bytes());
  return p;
}

TEST(SimTiming, BackToBackPacketsSerializeOnTheLink) {
  // Two equal packets injected at t=0 on a line: the second is delayed by
  // exactly one serialization time per shared link.
  Scenario s = topo::make_line(
      1, topo::LinkParams{.rate_bps = 1e6, .delay_s = 1e-3, .queue_packets = 10});
  const routing::Controller controller(s.topology);
  NetworkConfig config;
  config.switch_latency_s = 0.0;
  Network net(s.topology, controller, config);
  const auto route = *controller.route_between(s.topology.at("SRC"),
                                               s.topology.at("DST"));
  std::vector<double> arrivals;
  net.set_delivery_handler(route.dst_edge,
                           [&](const Packet&) { arrivals.push_back(net.now()); });
  constexpr std::size_t kWire = 1000;  // 8 ms serialization at 1 Mb/s
  net.inject(route.src_edge, make_probe(net, route, kWire));
  net.inject(route.src_edge, make_probe(net, route, kWire));
  net.events().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  const double tx = kWire * 8.0 / 1e6;
  // First packet: 2 links, each tx + prop (store and forward).
  EXPECT_NEAR(arrivals[0], 2 * (tx + 1e-3), 1e-12);
  // Second packet queues behind the first on every link but pipelines:
  // it finishes exactly one tx later.
  EXPECT_NEAR(arrivals[1] - arrivals[0], tx, 1e-12);
}

TEST(SimTiming, DirectionsDoNotContend) {
  // Saturate SRC->DST; a single DST->SRC probe must see an idle link.
  Scenario s = topo::make_line(
      1, topo::LinkParams{.rate_bps = 1e6, .delay_s = 1e-3, .queue_packets = 50});
  const routing::Controller controller(s.topology);
  NetworkConfig config;
  config.switch_latency_s = 0.0;
  Network net(s.topology, controller, config);
  const auto fwd = *controller.route_between(s.topology.at("SRC"),
                                             s.topology.at("DST"));
  const auto rev = *controller.route_between(s.topology.at("DST"),
                                             s.topology.at("SRC"));
  for (int i = 0; i < 20; ++i) net.inject(fwd.src_edge, make_probe(net, fwd, 1000));
  double reverse_arrival = -1;
  net.set_delivery_handler(rev.dst_edge,
                           [&](const Packet&) { reverse_arrival = net.now(); });
  net.inject(rev.src_edge, make_probe(net, rev, 1000));
  net.events().run_all();
  const double tx = 1000 * 8.0 / 1e6;
  EXPECT_NEAR(reverse_arrival, 2 * (tx + 1e-3), 1e-12);  // as if alone
}

TEST(SimTiming, SwitchLatencyAddsPerHop) {
  Scenario s = topo::make_line(3);
  const routing::Controller controller(s.topology);
  NetworkConfig with_latency;
  with_latency.switch_latency_s = 1e-3;
  NetworkConfig without;
  without.switch_latency_s = 0.0;
  double t_with = 0;
  double t_without = 0;
  for (auto* cfg : {&with_latency, &without}) {
    Scenario fresh = topo::make_line(3);
    const routing::Controller ctrl(fresh.topology);
    Network net(fresh.topology, ctrl, *cfg);
    const auto route = *ctrl.route_between(fresh.topology.at("SRC"),
                                           fresh.topology.at("DST"));
    double arrival = 0;
    net.set_delivery_handler(route.dst_edge,
                             [&](const Packet&) { arrival = net.now(); });
    net.inject(route.src_edge, make_probe(net, route, 500));
    net.events().run_all();
    (cfg == &with_latency ? t_with : t_without) = arrival;
  }
  EXPECT_NEAR(t_with - t_without, 3e-3, 1e-12);  // 3 switches x 1 ms
}

TEST(SimBounce, BouncePolicyKeepsPacketCirculatingUntilTtl) {
  // Wrong-edge bounce-back with an impossible destination: the packet
  // bounces between S and the core until the hop budget reaps it.
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  NetworkConfig config;
  config.wrong_edge_policy = dataplane::WrongEdgePolicy::kBounceBack;
  config.technique = dataplane::DeflectionTechnique::kAnyValidPort;
  config.max_hops = 64;
  Network net(s.topology, controller, config);
  // Residue at SW4 points back to S; AVP follows it forever under bounce.
  Packet p;
  p.transport = dataplane::Datagram{0};
  p.kar.route_id = rns::BigUint(1);  // 1 mod 4 = 1 -> port to S
  p.src_edge = s.topology.at("S");
  p.dst_edge = s.topology.at("D");
  p.size_bytes = 100;
  net.inject(s.topology.at("S"), std::move(p));
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().drop_ttl, 1u);
  EXPECT_GT(net.counters().bounces, 0u);
  EXPECT_EQ(net.counters().reencodes, 0u);
}

TEST(SimCounters, InjectedEqualsDeliveredPlusDrops) {
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kHotPotato;
  config.seed = 5;
  Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  net.fail_link_at(0.0, "SW7", "SW13");
  net.events().run_until(0.001);
  for (int i = 0; i < 100; ++i) {
    net.events().schedule_at(0.002 * (i + 1), [&net, &route, i] {
      Packet p;
      p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
      net.edge_at(route.src_edge).stamp(p, route, 100);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();
  EXPECT_EQ(net.counters().injected, 100u);
  EXPECT_EQ(net.counters().delivered + net.counters().total_drops(), 100u);
}

TEST(EncodedRouteAccessors, BytesAndVectors) {
  const Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route = controller.encode_scenario(s.route, ProtectionLevel::kFull);
  EXPECT_EQ(route.route_id_bytes(), (route.bit_length + 7) / 8);
  EXPECT_EQ(route.switch_ids().size(), route.assignments.size());
  EXPECT_EQ(route.ports().size(), route.assignments.size());
  EXPECT_EQ(route.switch_ids()[0], 10u);  // SW10 first (ingress order)
}

TEST(PathMetrics, InverseRatePrefersFatLinks) {
  topo::Topology t;
  const auto a = t.add_edge_node("A");
  const auto b = t.add_edge_node("B");
  const auto s1 = t.add_switch("SW5", 5);
  const auto s2 = t.add_switch("SW7", 7);
  const auto s3 = t.add_switch("SW11", 11);
  topo::LinkParams thin;
  thin.rate_bps = 10e6;
  topo::LinkParams fat;
  fat.rate_bps = 10e9;
  t.add_link(a, s1, fat);
  t.add_link(s1, b, thin);  // direct but thin
  t.add_link(s1, s2, fat);
  t.add_link(s2, s3, fat);
  t.add_link(s3, b, fat);
  routing::PathOptions options;
  options.metric = routing::PathMetric::kInverseRate;
  const auto path = routing::shortest_path(t, a, b, options);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes.size(), 5u);  // takes the fat detour
}

}  // namespace
}  // namespace kar::sim

// Golden-trace regression: a fully deterministic 6-node single-failure NIP
// run whose CSV trace is committed under tests/golden/. Any change to event
// ordering, timing, deflection decisions or the CSV format shows up as a
// diff against the golden file.
//
// The run is deterministic by construction, not by RNG luck: on Fig. 1 with
// partial protection (R = 660) and SW7-SW11 failed at t=0, SW7 must deflect
// and NIP excludes the input port (0, back to SW4), leaving port 1 (SW5) as
// the only choice — so the path SW4→SW7→SW5→SW11→D never depends on a
// random draw.
//
// Regenerate after an intentional behavior change with:
//   KAR_UPDATE_GOLDEN=1 ./build/tests/test_golden_trace
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "routing/controller.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

const char* golden_path() {
  return KAR_TESTS_SOURCE_DIR "/golden/fig1_nip_single_failure.csv";
}

/// Runs the pinned scenario and returns its CSV trace.
std::string run_pinned_scenario() {
  topo::Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);

  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNotInputPort;
  // Fixed literal seed: the run is RNG-independent (see file comment), but
  // pinning it keeps the trace stable even if that ever changes.
  config.seed = 6001;
  sim::Network net(s.topology, controller, config);

  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);

  std::ostringstream csv;
  sim::TraceCsvWriter writer(csv);
  net.set_trace_hook(writer.hook(net));

  net.fail_link_at(0.0, "SW7", "SW11");
  for (int i = 0; i < 3; ++i) {
    net.events().schedule_at(1e-3 * (i + 1), [&net, &route, i] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      p.packet_id = static_cast<std::uint64_t>(i + 1);
      net.edge_at(route.src_edge).stamp(p, route, 200 + 100 * i);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();
  return csv.str();
}

TEST(GoldenTrace, Fig1NipSingleFailureMatchesCommittedTrace) {
  const std::string actual = run_pinned_scenario();

  if (std::getenv("KAR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden file regenerated; review the diff";
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — regenerate with KAR_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "trace diverged from the committed golden run; if the change is "
         "intentional, regenerate with KAR_UPDATE_GOLDEN=1 and commit";
}

TEST(GoldenTrace, PinnedRunIsBitwiseRepeatable) {
  EXPECT_EQ(run_pinned_scenario(), run_pinned_scenario());
}

TEST(GoldenTrace, GoldenFileParsesAndShowsTheDeflection) {
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path();
  const auto records = sim::parse_trace_csv(in);
  ASSERT_FALSE(records.empty());

  // All three packets deflect at SW7 (toward SW5) and get delivered.
  std::size_t deflections = 0;
  std::size_t deliveries = 0;
  for (const auto& record : records) {
    if (record.kind == sim::TraceEvent::Kind::kHop && record.deflected) {
      EXPECT_EQ(record.node, "SW7");
      EXPECT_EQ(record.out_port, 1u);  // SW7 port 1 -> SW5
      ++deflections;
    }
    if (record.kind == sim::TraceEvent::Kind::kDeliver) ++deliveries;
  }
  EXPECT_EQ(deflections, 3u);
  EXPECT_EQ(deliveries, 3u);
}

}  // namespace
}  // namespace kar

#include "core/fabric.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace kar::core {
namespace {

using topo::ProtectionLevel;

TEST(Fabric, BuildsFromScenarioAndEncodesPaperRoutes) {
  Fabric fabric(topo::make_fig1_network());
  const auto unprotected =
      fabric.scenario_route_at(ProtectionLevel::kUnprotected);
  EXPECT_EQ(unprotected.route_id.to_u64(), 44u);
  const auto partial = fabric.scenario_route_at(ProtectionLevel::kPartial);
  EXPECT_EQ(partial.route_id.to_u64(), 660u);
}

TEST(Fabric, BuildsFromBareTopologyWithoutScenario) {
  topo::Scenario s = topo::make_line(3);
  Fabric fabric(std::move(s.topology));
  EXPECT_FALSE(fabric.scenario_route().has_value());
  EXPECT_THROW(fabric.scenario_route_at(ProtectionLevel::kPartial),
               std::logic_error);
  const auto route = fabric.route("SRC", "DST");
  EXPECT_EQ(route.primary_count, 3u);
}

TEST(Fabric, RouteRejectsUnknownOrDisconnectedEndpoints) {
  Fabric fabric(topo::make_fig1_network());
  EXPECT_THROW(fabric.route("S", "NOPE"), std::out_of_range);
  // S -> S is not a route.
  EXPECT_THROW(fabric.route("S", "S"), std::invalid_argument);
}

TEST(Fabric, BudgetedRouteRespectsBitCeiling) {
  Fabric fabric(topo::make_experimental15());
  const auto tight = fabric.route_with_budget("AS1", "AS3", 28);
  EXPECT_LE(tight.bit_length, 28u);
  EXPECT_GT(tight.assignments.size(), tight.primary_count);  // some protection
  const auto roomy = fabric.route_with_budget("AS1", "AS3", 128);
  EXPECT_GT(roomy.assignments.size(), tight.assignments.size());
}

TEST(Fabric, EndToEndFlowThroughFacade) {
  Fabric::Options options;
  options.network.technique = dataplane::DeflectionTechnique::kNotInputPort;
  Fabric fabric(topo::make_experimental15(), options);
  auto flow = fabric.bulk_flow(fabric.scenario_route_at(ProtectionLevel::kPartial),
                               /*flow_id=*/1);
  flow->start_at(0.0);
  fabric.fail_link_at(1.0, "SW7", "SW13");
  fabric.repair_link_at(2.0, "SW7", "SW13");
  flow->stop_at(3.0);
  fabric.run_until(4.0);
  EXPECT_GT(flow->receiver().stats().delivered_segments, 1000u);
  EXPECT_GT(fabric.network().counters().deflections, 0u);
  EXPECT_DOUBLE_EQ(fabric.now(), 4.0);
}

TEST(Fabric, ProbeStreamThroughFacade) {
  Fabric fabric(topo::make_fig1_network());
  auto probe = fabric.probe_stream(
      fabric.scenario_route_at(ProtectionLevel::kPartial), 7, 0.01);
  std::uint64_t received = 0;
  probe->set_receive_handler(
      [&](std::uint64_t, const dataplane::Packet&) { ++received; });
  probe->start_at(0.0);
  probe->stop_at(1.0);
  fabric.run_until(2.0);
  EXPECT_EQ(probe->sent(), 100u);
  EXPECT_EQ(received, 100u);
}

TEST(Fabric, BulkFlowAutoComputesReverseRoute) {
  Fabric fabric(topo::make_rnp28());
  auto flow = fabric.bulk_flow(
      fabric.scenario_route_at(ProtectionLevel::kPartial), 1);
  flow->start_at(0.0);
  flow->stop_at(1.0);
  fabric.run_until(2.0);
  EXPECT_GT(flow->receiver().stats().delivered_segments, 100u);
}

}  // namespace
}  // namespace kar::core

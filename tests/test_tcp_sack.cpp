// SACK + adaptive-reordering coverage: receiver block generation (RFC 2018
// shape), sender scoreboard loss detection, reordering-metric adaptation
// (Linux tcp_reordering-style), and the end-to-end effect under
// deflection-induced reordering.
#include <gtest/gtest.h>

#include "routing/controller.hpp"
#include "sim/network.hpp"
#include "topology/builders.hpp"
#include "transport/flows.hpp"
#include "transport/tcp.hpp"

namespace kar::transport {
namespace {

using dataplane::SackBlock;
using dataplane::TcpSegment;
using topo::ProtectionLevel;
using topo::Scenario;

TcpSegment ack_with(std::uint64_t ack, std::vector<SackBlock> sack = {}) {
  TcpSegment segment;
  segment.ack = ack;
  segment.has_data = false;
  segment.sack = std::move(sack);
  return segment;
}

struct SackFixture : public ::testing::Test {
  SackFixture()
      : scenario(topo::make_line(3)),
        controller(scenario.topology),
        net(scenario.topology, controller, {}),
        forward(*controller.route_between(scenario.topology.at("SRC"),
                                          scenario.topology.at("DST"))),
        reverse(*controller.route_between(scenario.topology.at("DST"),
                                          scenario.topology.at("SRC"))) {}

  TcpSender make_sender(TcpParams params) {
    return TcpSender(net, forward, /*flow_id=*/1, params);
  }

  Scenario scenario;
  routing::Controller controller;
  sim::Network net;
  routing::EncodedRoute forward;
  routing::EncodedRoute reverse;
};

TEST_F(SackFixture, ScoreboardOccupancyTriggersFastRetransmit) {
  TcpParams params;
  params.dupack_threshold = 3;
  TcpSender sender = make_sender(params);
  sender.start();  // sends the initial window synchronously
  const auto sent_initially = sender.stats().segments_sent;
  ASSERT_GE(sent_initially, 10u);

  sender.on_ack(ack_with(0, {{1, 2}}));
  sender.on_ack(ack_with(0, {{1, 3}}));
  EXPECT_FALSE(sender.in_fast_recovery());
  sender.on_ack(ack_with(0, {{1, 4}}));  // third SACKed segment above the hole
  EXPECT_TRUE(sender.in_fast_recovery());
  EXPECT_EQ(sender.stats().fast_retransmits, 1u);
  // Pipe-based recovery resends the hole (segment 0) and the presumed-lost
  // tail up to the window estimate.
  EXPECT_GE(sender.stats().retransmits, 1u);
}

TEST_F(SackFixture, DuplicateSackBlocksCarryNoNewInformation) {
  TcpParams params;
  params.dupack_threshold = 3;
  TcpSender sender = make_sender(params);
  sender.start();
  // The same block three times: only one scoreboard entry, no retransmit.
  for (int i = 0; i < 3; ++i) sender.on_ack(ack_with(0, {{1, 2}}));
  EXPECT_FALSE(sender.in_fast_recovery());
  EXPECT_EQ(sender.stats().sacked_segments, 1u);
  EXPECT_EQ(sender.stats().dup_acks_received, 3u);
}

TEST_F(SackFixture, LateSackedSegmentRaisesReorderingThreshold) {
  TcpParams params;
  params.dupack_threshold = 5;
  TcpSender sender = make_sender(params);
  sender.start();
  EXPECT_EQ(sender.dupack_threshold(), 5u);
  // Segments 5..8 SACKed first, then segment 1 shows up late (never
  // retransmitted): displacement 8 -> threshold raised above the base.
  sender.on_ack(ack_with(0, {{5, 9}}));
  EXPECT_EQ(sender.dupack_threshold(), 5u);  // no reordering evidence yet
  sender.on_ack(ack_with(0, {{1, 2}}));
  EXPECT_GT(sender.dupack_threshold(), 5u);
  EXPECT_GT(sender.stats().reorder_events, 0u);
  EXPECT_GE(sender.stats().max_reorder_distance, 7u);
}

TEST_F(SackFixture, CumulativeAdvanceOverHoleDetectsReordering) {
  TcpParams params;
  params.dupack_threshold = 64;  // keep fast retransmit out of the way
  TcpSender sender = make_sender(params);
  sender.start();
  sender.on_ack(ack_with(0, {{5, 9}}));
  // Segments 0..2 arrive late through the network (cumulative advance, not
  // retransmission): reordering must be detected for each.
  sender.on_ack(ack_with(3));
  EXPECT_GT(sender.stats().reorder_events, 0u);
  EXPECT_FALSE(sender.in_fast_recovery());
}

TEST_F(SackFixture, AdaptationIsCapped) {
  TcpParams params;
  params.dupack_threshold = 3;
  params.max_reordering = 10;
  params.receiver_window_segments = 600;
  params.initial_cwnd_segments = 600;  // put 600 segments in flight at once
  TcpSender sender = make_sender(params);
  sender.start();
  // Two SACKed segments keep fast retransmit quiet (threshold 3); the
  // late arrival of segment 1 is then pure reordering evidence.
  sender.on_ack(ack_with(0, {{500, 502}}));
  sender.on_ack(ack_with(0, {{1, 2}}));  // displacement ~501
  EXPECT_LE(sender.dupack_threshold(), 10u);
  EXPECT_GE(sender.stats().max_reorder_distance, 500u);
}

TEST_F(SackFixture, AdaptationCanBeDisabled) {
  TcpParams params;
  // High threshold keeps fast retransmit out of the way so segment 1's
  // late arrival is observed as reordering rather than repaired first.
  params.dupack_threshold = 64;
  params.adaptive_reordering = false;
  TcpSender sender = make_sender(params);
  sender.start();
  sender.on_ack(ack_with(0, {{5, 9}}));
  sender.on_ack(ack_with(0, {{1, 2}}));
  EXPECT_EQ(sender.dupack_threshold(), 64u);  // unchanged: adaptation off
  EXPECT_GT(sender.stats().reorder_events, 0u);  // still observed, not acted on
}

TEST_F(SackFixture, PartialAckSkipsSackedHole) {
  TcpParams params;
  params.dupack_threshold = 3;
  TcpSender sender = make_sender(params);
  sender.start();
  // Enter recovery on segment 0.
  sender.on_ack(ack_with(0, {{1, 2}}));
  sender.on_ack(ack_with(0, {{1, 3}}));
  sender.on_ack(ack_with(0, {{1, 4}}));
  ASSERT_TRUE(sender.in_fast_recovery());
  const auto retransmits_before = sender.stats().retransmits;
  // Partial ACK to 4 with segment 4 already SACKed: no blind retransmit of
  // a segment the receiver holds.
  sender.on_ack(ack_with(4, {{4, 5}}));
  if (sender.in_fast_recovery()) {
    EXPECT_EQ(sender.stats().retransmits, retransmits_before);
  }
}

TEST_F(SackFixture, ReceiverBuildsRfc2018Blocks) {
  TcpParams params;
  TcpReceiver receiver(net, reverse, /*flow_id=*/2, params);
  const auto data = [](std::uint64_t seq) {
    TcpSegment segment;
    segment.seq = seq;
    segment.has_data = true;
    segment.payload_bytes = 100;
    return segment;
  };
  receiver.on_data(data(0));  // in order
  EXPECT_TRUE(receiver.sack_blocks(0).empty());
  receiver.on_data(data(5));
  receiver.on_data(data(6));
  receiver.on_data(data(3));
  receiver.on_data(data(9));
  // Buffer: {3}, {5,6}, {9}; latest arrival 9 -> its block first.
  const auto blocks = receiver.sack_blocks(9);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (SackBlock{9, 10}));
  // Remaining blocks highest-first.
  EXPECT_EQ(blocks[1], (SackBlock{5, 7}));
  EXPECT_EQ(blocks[2], (SackBlock{3, 4}));
}

TEST_F(SackFixture, ReceiverCapsAtThreeBlocks) {
  TcpParams params;
  TcpReceiver receiver(net, reverse, 2, params);
  TcpSegment segment;
  segment.has_data = true;
  segment.payload_bytes = 100;
  for (const std::uint64_t seq : {2ULL, 4ULL, 6ULL, 8ULL, 10ULL}) {
    segment.seq = seq;
    receiver.on_data(segment);
  }
  const auto blocks = receiver.sack_blocks(2);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (SackBlock{2, 3}));  // latest arrival's block first
}

TEST_F(SackFixture, ReceiverSackDisabled) {
  TcpParams params;
  params.enable_sack = false;
  TcpReceiver receiver(net, reverse, 2, params);
  TcpSegment segment;
  segment.seq = 7;
  segment.has_data = true;
  segment.payload_bytes = 100;
  receiver.on_data(segment);
  EXPECT_TRUE(receiver.sack_blocks(7).empty());
}

TEST(SackEndToEnd, SackOutperformsPlainRenoUnderPersistentReordering) {
  // Fig. 1 network, AVP deflection, failed primary link: persistent
  // two-path reordering. The SACK + adaptive stack must sustain clearly
  // more goodput than plain NewReno, with fewer spurious fast retransmits
  // per delivered segment.
  const auto run = [](bool sack) {
    Scenario s = topo::make_fig1_network(topo::LinkParams{
        .rate_bps = 1e9, .delay_s = 1e-3, .queue_packets = 200});
    routing::Controller ctrl(s.topology);
    sim::NetworkConfig config;
    config.technique = dataplane::DeflectionTechnique::kAnyValidPort;
    sim::Network net(s.topology, ctrl, config);
    FlowDispatcher dispatcher(net);
    const auto fwd = ctrl.encode_scenario(s.route, ProtectionLevel::kPartial);
    const auto rev = *ctrl.route_between(s.topology.at("D"), s.topology.at("S"));
    TcpParams params;
    params.enable_sack = sack;
    params.receiver_window_segments = 128;
    BulkTransferFlow flow(net, dispatcher, fwd, rev, 1, params);
    flow.start_at(0.0);
    net.fail_link_at(0.0, "SW7", "SW11");
    flow.stop_at(8.0);
    net.events().run_until(9.0);
    return std::pair{flow.goodput_mbps(1.0, 8.0),
                     flow.sender().stats().fast_retransmits};
  };
  const auto [sack_mbps, sack_frs] = run(true);
  const auto [reno_mbps, reno_frs] = run(false);
  EXPECT_GT(sack_mbps, reno_mbps * 1.5);
  EXPECT_LT(sack_frs, reno_frs);
}

TEST(SackEndToEnd, CleanPathBehavesIdenticallyWithAndWithoutSack) {
  // On an in-order path SACK must be invisible: no blocks, no adaptation.
  Scenario s = topo::make_line(3);
  routing::Controller ctrl(s.topology);
  sim::Network net(s.topology, ctrl, {});
  FlowDispatcher dispatcher(net);
  const auto fwd = *ctrl.route_between(s.topology.at("SRC"), s.topology.at("DST"));
  const auto rev = *ctrl.route_between(s.topology.at("DST"), s.topology.at("SRC"));
  TcpParams params;
  params.receiver_window_segments = 64;
  BulkTransferFlow flow(net, dispatcher, fwd, rev, 1, params);
  flow.start_at(0.0);
  flow.stop_at(3.0);
  net.events().run_until(4.0);
  EXPECT_EQ(flow.sender().stats().sacked_segments, 0u);
  EXPECT_EQ(flow.sender().stats().reorder_events, 0u);
  EXPECT_EQ(flow.sender().dupack_threshold(), params.dupack_threshold);
}

}  // namespace
}  // namespace kar::transport

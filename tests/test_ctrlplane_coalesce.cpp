// Cross-epoch link coalescing (ctrlplane/coalesce.hpp): unit semantics of
// the LinkCoalescer window, and the flap-storm differential that makes
// the bounded-staleness claim concrete — replaying a storm through
// coalescing windows must land on the exact table (and forwarding
// behavior) of per-event serial application, in far fewer epochs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ctrlplane/coalesce.hpp"
#include "ctrlplane/engine.hpp"
#include "ctrlplane/route_store.hpp"
#include "faultgen/schedule.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using ctrlplane::EngineConfig;
using ctrlplane::LinkChange;
using ctrlplane::LinkCoalescer;
using ctrlplane::ReconvergenceEngine;
using ctrlplane::RouteKey;
using ctrlplane::RouteStore;

TEST(LinkCoalescer, EvenFlapNetsToNothing) {
  LinkCoalescer c;
  EXPECT_TRUE(c.empty());
  c.note(3, /*up=*/false, /*present=*/true);   // down...
  c.note(3, /*up=*/true, /*present=*/false);   // ...and back up
  EXPECT_EQ(c.pending(), 1u);
  const auto net = c.drain();
  EXPECT_TRUE(net.empty());
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.stats().noted, 2u);
  EXPECT_EQ(c.stats().emitted, 0u);
  EXPECT_EQ(c.stats().absorbed, 2u);
  EXPECT_EQ(c.stats().drains, 1u);
}

TEST(LinkCoalescer, OddFlapEmitsExactlyOne) {
  LinkCoalescer c;
  c.note(7, false, true);
  c.note(7, true, false);
  c.note(7, false, true);  // down, up, down — odd, net down
  const auto net = c.drain();
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].link, 7u);
  EXPECT_FALSE(net[0].up);
  EXPECT_EQ(c.stats().noted, 3u);
  EXPECT_EQ(c.stats().emitted, 1u);
  EXPECT_EQ(c.stats().absorbed, 2u);
}

TEST(LinkCoalescer, AlreadyInStateTransitionIsAbsorbed) {
  // A "down" for a link that is already down is raw churn with no net
  // change — it must count as absorbed, not emitted (the daemon's
  // kar_daemon_coalesced_events_total counts exactly these plus flaps).
  LinkCoalescer c;
  c.note(5, /*up=*/false, /*present=*/false);
  const auto net = c.drain();
  EXPECT_TRUE(net.empty());
  EXPECT_EQ(c.stats().noted, 1u);
  EXPECT_EQ(c.stats().absorbed, 1u);
}

TEST(LinkCoalescer, EmitsInFirstNoteOrder) {
  LinkCoalescer c;
  c.note(9, false, true);
  c.note(2, false, true);
  c.note(9, true, false);
  c.note(2, false, false);  // repeat notes must not reorder the emission
  c.note(9, false, true);
  c.note(4, false, true);
  const auto net = c.drain();
  ASSERT_EQ(net.size(), 3u);
  EXPECT_EQ(net[0].link, 9u);
  EXPECT_EQ(net[1].link, 2u);
  EXPECT_EQ(net[2].link, 4u);
}

TEST(LinkCoalescer, FinalStateAnswersHeldTransitions) {
  LinkCoalescer c;
  EXPECT_TRUE(c.final_state(11, /*fallback=*/true));
  EXPECT_FALSE(c.final_state(11, /*fallback=*/false));
  c.note(11, false, true);
  EXPECT_FALSE(c.final_state(11, /*fallback=*/true));  // held down wins
  c.note(11, true, false);
  EXPECT_TRUE(c.final_state(11, /*fallback=*/false));
  (void)c.drain();
  EXPECT_TRUE(c.final_state(11, /*fallback=*/true));  // window reset
}

TEST(LinkCoalescer, BaselineIsFirstNoteStateAcrossWindows) {
  LinkCoalescer c;
  c.note(1, false, true);
  auto net = c.drain();
  ASSERT_EQ(net.size(), 1u);
  EXPECT_FALSE(net[0].up);
  // Next window: the link is now really down; an up-down pair nets away.
  c.note(1, true, false);
  c.note(1, false, true /* stale `present` must be ignored: not first */);
  net = c.drain();
  EXPECT_TRUE(net.empty());
  EXPECT_EQ(c.stats().noted, 3u);
  EXPECT_EQ(c.stats().emitted, 1u);
  EXPECT_EQ(c.stats().absorbed, 2u);
  EXPECT_EQ(c.stats().drains, 2u);
}

TEST(LinkCoalescer, EmptyDrainDoesNotCountAsWindow) {
  LinkCoalescer c;
  EXPECT_TRUE(c.drain().empty());
  EXPECT_EQ(c.stats().drains, 0u);
}

TEST(LinkCoalescer, AccountingInvariantHoldsUnderRandomChurn) {
  LinkCoalescer c;
  common::Rng rng = testsupport::make_rng(0xc0a1e5ce, "CoalescerInvariant");
  std::vector<bool> real(16, true);
  for (int window = 0; window < 200; ++window) {
    const std::size_t notes = 1 + rng.below(8);
    for (std::size_t i = 0; i < notes; ++i) {
      const auto link = static_cast<topo::LinkId>(rng.below(real.size()));
      const bool up = rng.below(2) == 0;
      c.note(link, up, real[link]);
    }
    for (const LinkChange& change : c.drain()) real[change.link] = change.up;
    ASSERT_EQ(c.stats().noted, c.stats().emitted + c.stats().absorbed);
  }
  EXPECT_GT(c.stats().absorbed, 0u);
}

// ---------------------------------------------------------------------------
// Flap-storm differential: serial per-event application vs the coalescing
// window, as the daemon flusher and churn_convergence drive it.

topo::Scenario make_scenario(const std::string& name) {
  return name == "fig2" ? topo::make_experimental15() : topo::make_rnp28();
}

struct StormRun {
  RouteStore store;
  std::size_t epochs = 0;
  explicit StormRun(const topo::Topology& t) : store(t) {}
};

// Replays `schedule` into a fresh engine; window_s == 0 applies one epoch
// per event timestamp, window_s > 0 batches through a LinkCoalescer.
void run_storm(topo::Scenario& s, const faultgen::FailureSchedule& schedule,
               std::uint64_t seed, double window_s, bool plan_protection,
               StormRun& run) {
  topo::Topology& t = s.topology;
  const auto edges = t.nodes_of_kind(topo::NodeKind::kEdgeNode);
  EngineConfig config;
  config.plan_protection = plan_protection;
  ReconvergenceEngine engine(t, run.store, config);
  common::Rng route_rng(common::derive_seed(seed, 0x90f7e5));
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t si = route_rng.below(edges.size());
    std::size_t di = route_rng.below(edges.size() - 1);
    if (di >= si) ++di;
    (void)engine.add_route(edges[si], edges[di]);
  }

  const auto apply = [&](const std::vector<LinkChange>& events) {
    (void)engine.apply(events);
    ++run.epochs;
  };
  if (window_s <= 0.0) {
    std::size_t i = 0;
    while (i < schedule.events.size()) {
      std::size_t j = i;
      std::vector<LinkChange> events;
      while (j < schedule.events.size() &&
             schedule.events[j].time == schedule.events[i].time) {
        const faultgen::LinkEvent& e = schedule.events[j];
        t.set_link_up(e.link, !e.fail);
        events.push_back(LinkChange{e.link, !e.fail});
        ++j;
      }
      apply(events);
      i = j;
    }
  } else {
    LinkCoalescer coalescer;
    double window_start = 0.0;
    const auto drain = [&] {
      const auto events = coalescer.drain();
      for (const LinkChange& e : events) t.set_link_up(e.link, e.up);
      if (!events.empty()) apply(events);
    };
    for (const faultgen::LinkEvent& e : schedule.events) {
      if (!coalescer.empty() && e.time >= window_start + window_s) drain();
      if (coalescer.empty()) window_start = e.time;
      coalescer.note(e.link, !e.fail, t.link_up(e.link));
    }
    drain();
  }
}

class CoalesceStorm : public ::testing::TestWithParam<const char*> {};

TEST_P(CoalesceStorm, WindowedReplayMatchesSerialTables) {
  const std::string topology = GetParam();
  const double horizon_s = 1.0;
  const double window_s = 0.1;
  for (std::uint64_t sequence = 0; sequence < 8; ++sequence) {
    faultgen::ScheduleConfig schedule_config;
    schedule_config.horizon_s = horizon_s;
    schedule_config.kind = faultgen::ScheduleKind::kFlapping;
    schedule_config.flapping_links = 3;
    schedule_config.flap_half_period_s = 0.01;  // 10 transitions per window
    common::Rng schedule_rng(common::derive_seed(0xf1a9, sequence));
    topo::Scenario schedule_scenario = make_scenario(topology);
    (void)topo::attach_host_edges(schedule_scenario.topology);
    const faultgen::FailureSchedule schedule = faultgen::generate_schedule(
        schedule_scenario.topology, schedule_config, schedule_rng);
    if (schedule.empty()) continue;

    // Distinct Scenario objects (link IDs are deterministic per builder):
    // the serial replay mutates link state per event, the windowed one
    // only at drains.
    topo::Scenario serial_scenario = make_scenario(topology);
    (void)topo::attach_host_edges(serial_scenario.topology);
    topo::Scenario windowed_scenario = make_scenario(topology);
    (void)topo::attach_host_edges(windowed_scenario.topology);
    const bool plan_protection = (sequence % 2 == 0);
    StormRun serial(serial_scenario.topology);
    StormRun windowed(windowed_scenario.topology);
    run_storm(serial_scenario, schedule, sequence, 0.0, plan_protection,
              serial);
    run_storm(windowed_scenario, schedule, sequence, window_s,
              plan_protection, windowed);

    const std::string tag = topology + " storm " + std::to_string(sequence);
    // Strict epoch bound: one epoch per expired window plus the final
    // drain — NOT one per raw transition. With a 0.01 s half-period and a
    // 0.1 s window the serial replay pays an order of magnitude more.
    const auto max_windows =
        static_cast<std::size_t>(std::ceil(horizon_s / window_s)) + 1;
    ASSERT_LE(windowed.epochs, max_windows) << tag;
    ASSERT_LT(windowed.epochs, serial.epochs) << tag;

    // Final link states agree...
    const topo::Topology& ts = serial_scenario.topology;
    const topo::Topology& tw = windowed_scenario.topology;
    for (topo::LinkId link = 0; link < ts.link_count(); ++link) {
      ASSERT_EQ(ts.link_up(link), tw.link_up(link)) << tag << " link " << link;
    }
    // ...and so do the tables, down to the forwarding traces.
    ASSERT_EQ(serial.store.size(), windowed.store.size()) << tag;
    for (RouteKey key = 0; key < serial.store.size(); ++key) {
      const auto& a = serial.store.get(key);
      const auto& b = windowed.store.get(key);
      ASSERT_EQ(a.live, b.live) << tag << ", route " << key;
      if (!a.live) continue;
      ASSERT_EQ(a.core_path, b.core_path) << tag << ", route " << key;
      ASSERT_EQ(a.route.route_id, b.route.route_id) << tag << ", route " << key;
      ASSERT_EQ(ctrlplane::forwarding_trace(ts, a.route),
                ctrlplane::forwarding_trace(tw, b.route))
          << tag << ", route " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, CoalesceStorm,
                         ::testing::Values("fig2", "rnp28"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace kar

// Unit tests for the incremental control plane (src/ctrlplane/): the route
// store's inverted indexes, the dynamic SPT against its full-Dijkstra
// oracle, the reconvergence engine (incremental vs full-recompute), the
// versioned route-table install on sim::Network, and the rewired
// ReactiveController. The heavyweight cross-topology equivalence proof
// lives in tests/test_ctrlplane_differential.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctrlplane/engine.hpp"
#include "ctrlplane/engine_mode.hpp"
#include "ctrlplane/route_store.hpp"
#include "ctrlplane/spt.hpp"
#include "obs/metrics.hpp"
#include "routing/paths.hpp"
#include "sim/network.hpp"
#include "sim/reactive_controller.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using ctrlplane::DynamicSpt;
using ctrlplane::EngineConfig;
using ctrlplane::EngineMode;
using ctrlplane::LinkChange;
using ctrlplane::NodeMask;
using ctrlplane::ReconvergenceEngine;
using ctrlplane::RouteKey;
using ctrlplane::RouteStore;
using topo::Scenario;

// -- EngineMode ---------------------------------------------------------------

TEST(EngineMode, ParsesAndPrints) {
  EXPECT_EQ(ctrlplane::engine_mode_from_string("incremental"),
            EngineMode::kIncremental);
  EXPECT_EQ(ctrlplane::engine_mode_from_string("INC"), EngineMode::kIncremental);
  EXPECT_EQ(ctrlplane::engine_mode_from_string("full"),
            EngineMode::kFullRecompute);
  EXPECT_EQ(ctrlplane::engine_mode_from_string("Full-Recompute"),
            EngineMode::kFullRecompute);
  EXPECT_THROW((void)ctrlplane::engine_mode_from_string("bogus"),
               std::invalid_argument);
  EXPECT_EQ(std::string(to_string(EngineMode::kIncremental)), "incremental");
  EXPECT_EQ(std::string(to_string(EngineMode::kFullRecompute)), "full");
}

// -- NodeMask -----------------------------------------------------------------

TEST(NodeMaskTest, SetTestIntersectsClear) {
  NodeMask a(130);
  NodeMask b(130);
  EXPECT_FALSE(a.test(0));
  a.set(0);
  a.set(63);
  a.set(64);
  a.set(129);
  EXPECT_TRUE(a.test(0));
  EXPECT_TRUE(a.test(63));
  EXPECT_TRUE(a.test(64));
  EXPECT_TRUE(a.test(129));
  EXPECT_FALSE(a.test(1));
  EXPECT_FALSE(a.intersects(b));
  b.set(64);
  EXPECT_TRUE(a.intersects(b));
  a.clear();
  EXPECT_FALSE(a.test(64));
  EXPECT_FALSE(a.intersects(b));
}

// -- RouteStore ---------------------------------------------------------------

TEST(RouteStoreTest, AddValidatesEndpointsAndAssignsDenseKeys) {
  Scenario s = topo::make_fig1_network();
  const topo::Topology& t = s.topology;
  RouteStore store(t);
  EXPECT_THROW((void)store.add(t.at("SW4"), t.at("D")), std::invalid_argument);
  EXPECT_THROW((void)store.add(t.at("S"), t.at("SW7")), std::invalid_argument);
  EXPECT_EQ(store.add(t.at("S"), t.at("D")), 0u);
  EXPECT_EQ(store.add(t.at("D"), t.at("S")), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.get(0).live);  // registered dead until the engine runs
  EXPECT_EQ(store.destinations(),
            (std::vector<topo::NodeId>{t.at("D"), t.at("S")}));
}

TEST(RouteStoreTest, IndexesFollowReencodeWithdrawAndRevive) {
  Scenario s = topo::make_fig1_network();
  topo::Topology& t = s.topology;
  RouteStore store(t);
  ReconvergenceEngine engine(t, store);
  const RouteKey key = engine.add_route(t.at("S"), t.at("D"));

  const auto& initial = store.get(key);
  ASSERT_TRUE(initial.live);
  EXPECT_EQ(initial.core_path,
            (std::vector<topo::NodeId>{t.at("SW4"), t.at("SW7"), t.at("SW11")}));

  const auto link_dependents = [&](const char* a, const char* b) {
    std::vector<RouteKey> out;
    store.collect_link_dependents(*t.link_between(t.at(a), t.at(b)), out);
    return out;
  };
  const auto node_dependents = [&](const char* name) {
    std::vector<RouteKey> out;
    store.collect_node_dependents(t.at(name), out);
    return out;
  };

  EXPECT_EQ(link_dependents("SW7", "SW11"), (std::vector<RouteKey>{key}));
  EXPECT_EQ(link_dependents("S", "SW4"), (std::vector<RouteKey>{key}));
  EXPECT_EQ(node_dependents("SW4"), (std::vector<RouteKey>{key}));
  EXPECT_EQ(node_dependents("S"), (std::vector<RouteKey>{key}));

  // Re-encode around a failed primary link: the stale link posting filters.
  const topo::LinkId primary = *t.link_between(t.at("SW7"), t.at("SW11"));
  t.set_link_up(primary, false);
  const auto epoch1 = engine.apply({{primary, false}});
  EXPECT_EQ(epoch1.updated, (std::vector<RouteKey>{key}));
  ASSERT_TRUE(store.get(key).live);
  EXPECT_EQ(store.get(key).core_path,
            (std::vector<topo::NodeId>{t.at("SW4"), t.at("SW7"), t.at("SW5"),
                                       t.at("SW11")}));
  EXPECT_TRUE(link_dependents("SW7", "SW11").empty());
  EXPECT_EQ(link_dependents("SW5", "SW11"), (std::vector<RouteKey>{key}));

  // Withdraw: D's only uplink dies; the dead route keeps only its revive
  // trigger (the source edge's distance).
  const topo::LinkId uplink = *t.link_between(t.at("SW11"), t.at("D"));
  t.set_link_up(uplink, false);
  const auto epoch2 = engine.apply({{uplink, false}});
  EXPECT_EQ(epoch2.stats.withdrawn, 1u);
  EXPECT_FALSE(store.get(key).live);
  EXPECT_TRUE(node_dependents("SW4").empty());
  EXPECT_EQ(node_dependents("S"), (std::vector<RouteKey>{key}));
  EXPECT_TRUE(link_dependents("S", "SW4").empty());

  // Revive on repair.
  t.set_link_up(uplink, true);
  const auto epoch3 = engine.apply({{uplink, true}});
  EXPECT_EQ(epoch3.stats.reencoded, 1u);
  ASSERT_TRUE(store.get(key).live);
  EXPECT_EQ(store.get(key).core_path,
            (std::vector<topo::NodeId>{t.at("SW4"), t.at("SW7"), t.at("SW5"),
                                       t.at("SW11")}));
}

// -- DynamicSpt ---------------------------------------------------------------

void expect_matches_oracle(const topo::Topology& t, const DynamicSpt& spt,
                           int step) {
  routing::PathOptions options;
  options.ignore_failures = false;
  const std::vector<double> oracle =
      routing::distances_to(t, spt.destination(), options);
  ASSERT_EQ(oracle.size(), spt.distances().size());
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    ASSERT_EQ(spt.distances()[v], oracle[v])
        << "step " << step << ", node " << t.name(static_cast<topo::NodeId>(v))
        << " to " << t.name(spt.destination());
  }
}

void churn_against_oracle(topo::Topology& t, topo::NodeId dst,
                          std::size_t threshold, int steps, common::Rng& rng) {
  DynamicSpt spt(t, dst, routing::PathMetric::kHopCount, threshold);
  expect_matches_oracle(t, spt, -1);
  std::vector<topo::NodeId> changed;
  for (int step = 0; step < steps; ++step) {
    const auto link = static_cast<topo::LinkId>(rng.below(t.link_count()));
    const bool up = !t.link(link).up;
    t.set_link_up(link, up);
    const std::vector<double> before = spt.distances();
    changed.clear();
    spt.apply_link_event(link, up, changed);
    // The reported change set is exactly the moved distances.
    const std::set<topo::NodeId> reported(changed.begin(), changed.end());
    ASSERT_EQ(reported.size(), changed.size()) << "duplicate changed nodes";
    for (std::size_t v = 0; v < before.size(); ++v) {
      const bool moved = before[v] != spt.distances()[v];
      ASSERT_EQ(moved, reported.count(static_cast<topo::NodeId>(v)) == 1)
          << "step " << step << ", node "
          << t.name(static_cast<topo::NodeId>(v));
    }
    expect_matches_oracle(t, spt, step);
  }
}

TEST(DynamicSptTest, MatchesFullDijkstraUnderRandomChurn) {
  common::Rng rng = testsupport::make_rng(0x5b71c0de, "DynamicSptChurn");
  // A tiny threshold forces the fallback path, a huge one forbids it; both
  // must track the oracle exactly.
  for (const std::size_t threshold : {std::size_t{1}, std::size_t{100000}}) {
    Scenario s = topo::make_random_connected(14, 8, 97);
    churn_against_oracle(s.topology, s.topology.at(s.route.dst_edge),
                         threshold, 250, rng);
  }
}

TEST(DynamicSptTest, MatchesOracleOnRnp28WithHostEdges) {
  common::Rng rng = testsupport::make_rng(0x28a717, "DynamicSptRnp28");
  Scenario s = topo::make_rnp28();
  topo::Topology& t = s.topology;
  const std::vector<topo::NodeId> hosts = topo::attach_host_edges(t);
  ASSERT_FALSE(hosts.empty());
  churn_against_oracle(t, hosts.front(), /*threshold=*/7, 150, rng);
  churn_against_oracle(t, t.at(s.route.dst_edge), /*threshold=*/100000, 150,
                       rng);
}

TEST(DynamicSptTest, CanonicalPathIsShortestUsableAndDeterministic) {
  Scenario s = topo::make_experimental15();
  topo::Topology& t = s.topology;
  const topo::NodeId src = t.at("AS1");
  const topo::NodeId dst = t.at("AS3");
  DynamicSpt spt(t, dst, routing::PathMetric::kHopCount, 1000);

  const auto check = [&](const DynamicSpt& tree) -> std::vector<topo::NodeId> {
    const auto path = tree.canonical_path(src);
    EXPECT_TRUE(path.has_value());
    if (!path.has_value()) return {};
    EXPECT_EQ(path->front(), src);
    EXPECT_EQ(path->back(), dst);
    // Hop-count distance == link count along the extracted path, and every
    // hop is an up link.
    EXPECT_EQ(static_cast<double>(path->size() - 1), tree.distance(src));
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      const auto link = t.link_between((*path)[i], (*path)[i + 1]);
      EXPECT_TRUE(link.has_value());
      if (link.has_value()) EXPECT_TRUE(t.link_up(*link));
    }
    return *path;
  };

  const auto before = check(spt);
  // Fail a primary-path link; the incremental tree and a freshly built one
  // must extract the identical canonical path (pure function of distances).
  const topo::LinkId link = *t.link_between(t.at("SW7"), t.at("SW13"));
  t.set_link_up(link, false);
  std::vector<topo::NodeId> changed;
  spt.apply_link_event(link, false, changed);
  const auto after = check(spt);
  EXPECT_NE(before, after);
  DynamicSpt fresh(t, dst, routing::PathMetric::kHopCount, 1000);
  EXPECT_EQ(after, *fresh.canonical_path(src));
  EXPECT_EQ(spt.canonical_next_hop(t.at("SW10")),
            fresh.canonical_next_hop(t.at("SW10")));
}

// -- ReconvergenceEngine ------------------------------------------------------

LinkChange flip(topo::Topology& t, const char* a, const char* b, bool up) {
  const topo::LinkId link = *t.link_between(t.at(a), t.at(b));
  t.set_link_up(link, up);
  return LinkChange{link, up};
}

void expect_same_tables(const topo::Topology& t, const RouteStore& a,
                        const RouteStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (RouteKey key = 0; key < a.size(); ++key) {
    const auto& ra = a.get(key);
    const auto& rb = b.get(key);
    ASSERT_EQ(ra.live, rb.live) << "route " << key;
    if (!ra.live) continue;
    EXPECT_EQ(ra.core_path, rb.core_path) << "route " << key;
    EXPECT_EQ(ra.route.route_id, rb.route.route_id) << "route " << key;
    EXPECT_EQ(ctrlplane::forwarding_trace(t, ra.route),
              ctrlplane::forwarding_trace(t, rb.route))
        << "route " << key;
  }
}

TEST(ReconvergenceEngineTest, IncrementalMatchesFullRecomputeOnFig2) {
  Scenario s = topo::make_experimental15();
  topo::Topology& t = s.topology;
  RouteStore inc_store(t);
  RouteStore full_store(t);
  EngineConfig inc_config;
  EngineConfig full_config;
  full_config.mode = EngineMode::kFullRecompute;
  ReconvergenceEngine inc(t, inc_store, inc_config);
  ReconvergenceEngine full(t, full_store, full_config);
  const auto edges = t.nodes_of_kind(topo::NodeKind::kEdgeNode);
  ASSERT_GE(edges.size(), 3u);
  for (const topo::NodeId src : edges) {
    for (const topo::NodeId dst : edges) {
      if (src == dst) continue;
      EXPECT_EQ(inc.add_route(src, dst), full.add_route(src, dst));
    }
  }
  expect_same_tables(t, inc_store, full_store);

  // Each epoch's flips happen right before the applies, so the topology
  // reflects exactly the events handed to the engines.
  const auto run_epoch = [&](const std::vector<LinkChange>& events) {
    const auto ri = inc.apply(events);
    const auto rf = full.apply(events);
    EXPECT_EQ(ri.version, rf.version);
    // Both modes report exactly the actually-changed keys.
    EXPECT_EQ(ri.updated, rf.updated);
    expect_same_tables(t, inc_store, full_store);
  };
  run_epoch({flip(t, "SW7", "SW13", false)});
  run_epoch({flip(t, "SW13", "SW29", false)});
  run_epoch({flip(t, "SW7", "SW13", true)});
  // Two changes in one epoch.
  run_epoch({flip(t, "SW10", "SW7", false), flip(t, "SW10", "SW11", false)});
  run_epoch({flip(t, "SW10", "SW7", true), flip(t, "SW13", "SW29", true)});
  // The candidate superset never exceeds the full engine's whole-table
  // scan. (On a 15-node net where every route crosses the core the two can
  // be equal; the scaling win is bench/churn_convergence's claim.)
  EXPECT_LE(inc.totals().candidates, full.totals().candidates);
}

TEST(ReconvergenceEngineTest, MetricsFamiliesAndFallbackCounter) {
  Scenario s = topo::make_line(5);
  topo::Topology& t = s.topology;
  RouteStore store(t);
  EngineConfig config;
  config.spt_fallback_threshold = 1;  // any delete with >1 affected falls back
  ReconvergenceEngine engine(t, store, config);
  obs::MetricsRegistry registry(true);
  engine.attach_metrics(registry, {{"topology", "line"}});
  engine.add_route(t.at(s.route.src_edge), t.at(s.route.dst_edge));

  // Cutting the middle of a line strands the source side: withdrawal, and
  // an affected subtree of 3 nodes > threshold 1 -> fallback rebuild.
  const std::string& mid_a = s.route.core_path[1];
  const std::string& mid_b = s.route.core_path[2];
  const auto result = engine.apply({flip(t, mid_a.c_str(), mid_b.c_str(), false)});
  EXPECT_EQ(result.stats.withdrawn, 1u);
  EXPECT_EQ(result.stats.spt_fallbacks, 1u);

  const auto snap = registry.snapshot();
  for (const char* family :
       {"kar_ctrlplane_events_total", "kar_ctrlplane_epochs_total",
        "kar_ctrlplane_reencodes_total", "kar_ctrlplane_withdrawals_total",
        "kar_ctrlplane_spt_fallbacks_total", "kar_ctrlplane_routes",
        "kar_ctrlplane_reconvergence_seconds", "kar_ctrlplane_affected_routes",
        "kar_ctrlplane_updated_routes"}) {
    EXPECT_EQ(snap.families.count(family), 1u) << family;
  }
  const auto counter = [&](const char* family) {
    const auto& fam = snap.families.at(family);
    EXPECT_EQ(fam.series.size(), 1u) << family;
    return fam.series.begin()->second.count;
  };
  EXPECT_EQ(counter("kar_ctrlplane_events_total"), 1u);
  EXPECT_EQ(counter("kar_ctrlplane_epochs_total"), 1u);
  EXPECT_EQ(counter("kar_ctrlplane_withdrawals_total"), 1u);
  EXPECT_EQ(counter("kar_ctrlplane_spt_fallbacks_total"), 1u);
  EXPECT_EQ(counter("kar_ctrlplane_reconvergence_seconds"), 1u);  // 1 epoch
  EXPECT_EQ(snap.families.at("kar_ctrlplane_routes").series.begin()->second.value,
            1.0);
}

TEST(ForwardingTrace, WalksFig1Residues) {
  Scenario s = topo::make_fig1_network();
  const topo::Topology& t = s.topology;
  const routing::Controller controller(t);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kUnprotected);
  const auto trace = ctrlplane::forwarding_trace(t, route);
  // R = 44: S uplink, then 44 mod 4 = 0, 44 mod 7 = 2, 44 mod 11 = 0.
  const std::vector<ctrlplane::TraceHop> expected = {
      {t.at("S"), 0}, {t.at("SW4"), 0}, {t.at("SW7"), 2}, {t.at("SW11"), 0}};
  EXPECT_EQ(trace, expected);
}

// -- sim::Network route table -------------------------------------------------

TEST(NetworkRouteTable, VersionedBatchedInstall) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::Network net(s.topology, controller, {});
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kUnprotected);
  EXPECT_EQ(net.route_table_version(), 0u);
  EXPECT_EQ(net.installed_route(0), nullptr);

  net.install_routes(1, {{0, &route}});
  EXPECT_EQ(net.route_table_version(), 1u);
  ASSERT_NE(net.installed_route(0), nullptr);
  EXPECT_EQ(net.installed_route(0)->route_id.to_u64(), 44u);

  // Equal version: staged initial loads are allowed.
  net.install_routes(1, {{1, &route}});
  EXPECT_EQ(net.installed_route_count(), 2u);

  // Withdrawal via nullptr.
  net.install_routes(2, {{0, nullptr}});
  EXPECT_EQ(net.installed_route(0), nullptr);
  EXPECT_EQ(net.installed_route_count(), 1u);

  // A stale epoch must be rejected.
  EXPECT_THROW(net.install_routes(1, {}), std::invalid_argument);
  EXPECT_EQ(net.route_table_version(), 2u);
}

// -- ReactiveController on the incremental engine -----------------------------

// Two independent islands: flows A->B (with a detour X3) and C->D (a bare
// line) share nothing, so an event on one island must not touch the other.
topo::Topology make_two_islands() {
  topo::Topology t;
  const auto a = t.add_edge_node("A");
  const auto b = t.add_edge_node("B");
  const auto c = t.add_edge_node("C");
  const auto d = t.add_edge_node("D");
  const auto x1 = t.add_switch("X1", 3);
  const auto x2 = t.add_switch("X2", 5);
  const auto x3 = t.add_switch("X3", 7);
  const auto y1 = t.add_switch("Y1", 11);
  const auto y2 = t.add_switch("Y2", 13);
  t.add_link(a, x1);
  t.add_link(x1, x2);
  t.add_link(x1, x3);
  t.add_link(x3, x2);
  t.add_link(x2, b);
  t.add_link(c, y1);
  t.add_link(y1, y2);
  t.add_link(y2, d);
  return t;
}

TEST(ReactiveControllerIncremental, OnlyAffectedFlowsReact) {
  topo::Topology t = make_two_islands();
  const routing::Controller controller(t);
  sim::Network net(t, controller, {});  // default engine: incremental
  sim::ReactiveController reactive(net, /*reaction_delay_s=*/0.010);
  EXPECT_EQ(reactive.engine_mode(), EngineMode::kIncremental);

  int ab_updates = 0;
  int cd_updates = 0;
  rns::BigUint ab_last;
  reactive.watch_flow(t.at("A"), t.at("B"),
                      [&](const routing::EncodedRoute& fresh) {
                        ++ab_updates;
                        ab_last = fresh.route_id;
                      });
  reactive.watch_flow(t.at("C"), t.at("D"),
                      [&](const routing::EncodedRoute&) { ++cd_updates; });
  // watch_flow installs the initial table (flow index == route key).
  EXPECT_EQ(net.installed_route_count(), 2u);
  ASSERT_NE(net.installed_route(0), nullptr);
  const rns::BigUint initial = net.installed_route(0)->route_id;

  // X1-X2 dies: only A->B reroutes (via X3); C->D is untouched.
  net.fail_link_at(1.0, "X1", "X2");
  net.events().run_until(2.0);
  EXPECT_EQ(reactive.reactions(), 1u);
  EXPECT_EQ(reactive.route_recomputes(), 1u);
  EXPECT_EQ(ab_updates, 1);
  EXPECT_EQ(cd_updates, 0);
  EXPECT_NE(ab_last, initial);
  EXPECT_EQ(net.route_table_version(), 1u);
  ASSERT_NE(net.installed_route(0), nullptr);
  EXPECT_EQ(net.installed_route(0)->route_id, ab_last);

  // X1-X3 dies too: A->B has no path left — withdrawn from the table, no
  // update callback (there is nothing to push).
  net.fail_link_at(2.5, "X1", "X3");
  net.events().run_until(3.5);
  EXPECT_EQ(reactive.reactions(), 2u);
  EXPECT_EQ(reactive.route_recomputes(), 2u);
  EXPECT_EQ(ab_updates, 1);
  EXPECT_EQ(cd_updates, 0);
  EXPECT_EQ(net.installed_route(0), nullptr);
  ASSERT_NE(net.installed_route(1), nullptr);
  EXPECT_EQ(net.route_table_version(), 2u);
}

TEST(ReactiveControllerFullRecompute, EveryFlowRecomputesEveryReaction) {
  topo::Topology t = make_two_islands();
  const routing::Controller controller(t);
  sim::NetworkConfig config;
  config.route_engine = EngineMode::kFullRecompute;
  sim::Network net(t, controller, config);
  sim::ReactiveController reactive(net, 0.010);
  EXPECT_EQ(reactive.engine_mode(), EngineMode::kFullRecompute);

  int ab_updates = 0;
  int cd_updates = 0;
  reactive.watch_flow(t.at("A"), t.at("B"),
                      [&](const routing::EncodedRoute&) { ++ab_updates; });
  reactive.watch_flow(t.at("C"), t.at("D"),
                      [&](const routing::EncodedRoute&) { ++cd_updates; });

  net.fail_link_at(1.0, "X1", "X2");
  net.events().run_until(2.0);
  // Legacy semantics: every watched flow recomputed and re-pushed, the
  // network's versioned route table untouched.
  EXPECT_EQ(reactive.reactions(), 1u);
  EXPECT_EQ(reactive.route_recomputes(), 2u);
  EXPECT_EQ(ab_updates, 1);
  EXPECT_EQ(cd_updates, 1);
  EXPECT_EQ(net.route_table_version(), 0u);
  EXPECT_EQ(net.installed_route_count(), 0u);
}

}  // namespace
}  // namespace kar

// The observability layer (src/obs/): registry semantics, histogram bucket
// boundaries, deterministic snapshot folding, exporter golden files
// (Prometheus text + Chrome trace_event JSON), the bounded trace ring, span
// timers, the event-loop kind profile, and — the acceptance criterion — the
// NetworkObserver's per-switch deflection counters reconciling exactly with
// the committed golden packet trace.
//
// Regenerate the exporter goldens after an intentional format change with:
//   KAR_UPDATE_GOLDEN=1 ./build/tests/test_obs
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "obs/export.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "routing/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "topology/builders.hpp"

namespace kar::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(MetricsRegistry, CounterHandlesForSameSeriesShareOneCell) {
  MetricsRegistry registry(true);
  Counter a = registry.counter("kar_test_total", "help", {{"k", "v"}});
  Counter b = registry.counter("kar_test_total", "other help ignored",
                               {{"k", "v"}});
  a.inc();
  b.inc(4);
  const MetricsSnapshot snap = registry.snapshot();
  const auto& family = snap.families.at("kar_test_total");
  EXPECT_EQ(family.help, "help");  // first registration wins
  EXPECT_EQ(family.series.at(canonical_labels({{"k", "v"}})).count, 5u);
  EXPECT_EQ(family.series.size(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry(true);
  registry.counter("kar_test_total", "help", {{"switch", "SW7"}}).inc(2);
  registry.counter("kar_test_total", "help", {{"switch", "SW10"}}).inc(3);
  const MetricsSnapshot snap = registry.snapshot();
  const auto& family = snap.families.at("kar_test_total");
  EXPECT_EQ(family.series.at("switch=\"SW7\"").count, 2u);
  EXPECT_EQ(family.series.at("switch=\"SW10\"").count, 3u);
}

TEST(MetricsRegistry, CanonicalLabelsSortKeysAndEscapeValues) {
  EXPECT_EQ(canonical_labels({{"b", "2"}, {"a", "1"}}), "a=\"1\",b=\"2\"");
  EXPECT_EQ(canonical_labels({{"k", "a\"b\\c\nd"}}), "k=\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(canonical_labels({}), "");
}

TEST(MetricsRegistry, DisabledRegistryHandsOutInertHandles) {
  MetricsRegistry registry(false);
  Counter counter = registry.counter("kar_test_total", "help");
  Gauge gauge = registry.gauge("kar_test_gauge", "help");
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  counter.inc();
  gauge.set(3.0);
  histogram.observe(1.5);
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.inc();
  gauge.add(1.0);
  histogram.observe(0.5);  // must not crash
  EXPECT_FALSE(counter.enabled());
}

TEST(MetricsRegistry, DisableFamilySilencesOnlyThatFamily) {
  MetricsRegistry registry(true);
  registry.disable_family("kar_noisy_total");
  Counter noisy = registry.counter("kar_noisy_total", "help");
  Counter kept = registry.counter("kar_kept_total", "help");
  noisy.inc(100);
  kept.inc(1);
  EXPECT_FALSE(noisy.enabled());
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.count("kar_noisy_total"), 0u);
  EXPECT_EQ(snap.families.at("kar_kept_total").series.at("").count, 1u);
}

TEST(MetricsRegistry, FamilyTypeConflictThrows) {
  MetricsRegistry registry(true);
  (void)registry.counter("kar_test_total", "help");
  EXPECT_THROW((void)registry.gauge("kar_test_total", "help"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("kar_test_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, GaugeSetAddMax) {
  MetricsRegistry registry(true);
  Gauge gauge = registry.gauge("kar_depth", "help");
  gauge.set(2.5);
  gauge.add(1.0);
  gauge.max(1.0);  // below current value: no effect
  gauge.max(7.25);
  EXPECT_DOUBLE_EQ(registry.snapshot().families.at("kar_depth").series.at("").value,
                   7.25);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry(true);
  Counter counter = registry.counter("kar_test_total", "help");
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {0.5});
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram]() mutable {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        histogram.observe(0.25);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.at("kar_test_total").series.at("").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const auto& hist = snap.families.at("kar_test_seconds").series.at("");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(hist.value, 0.25 * kThreads * kIncrements);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries (Prometheus semantics: inclusive upper
// bounds, +Inf bucket last).

TEST(Histogram, UpperBoundsAreInclusive) {
  MetricsRegistry registry(true);
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  histogram.observe(-5.0);  // below everything: first bucket
  histogram.observe(1.0);   // exactly on a bound: that bucket (inclusive)
  histogram.observe(std::nextafter(1.0, 2.0));  // just above: next bucket
  histogram.observe(2.0);
  histogram.observe(std::nextafter(2.0, 3.0));  // above every bound: +Inf
  const MetricsSnapshot snap = registry.snapshot();
  const auto& series = snap.families.at("kar_test_seconds").series.at("");
  ASSERT_EQ(series.buckets.size(), 3u);  // bounds + the +Inf bucket
  EXPECT_EQ(series.buckets[0], 2u);
  EXPECT_EQ(series.buckets[1], 2u);
  EXPECT_EQ(series.buckets[2], 1u);
  EXPECT_EQ(series.count, 5u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  MetricsRegistry registry(true);
  EXPECT_THROW(
      (void)registry.histogram("kar_test_seconds", "help", {2.0, 1.0}),
      std::invalid_argument);
}

TEST(Histogram, PrometheusBucketsAreCumulativeWithInf) {
  MetricsRegistry registry(true);
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(9.0);
  const std::string text = registry.snapshot().prometheus_text();
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_sum 11\n"), std::string::npos) << text;
  EXPECT_NE(text.find("kar_test_seconds_count 3\n"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Snapshot folding.

MetricsSnapshot snapshot_with(std::uint64_t count, double gauge_peak,
                              double observation) {
  MetricsRegistry registry(true);
  registry.counter("kar_c_total", "counter help").inc(count);
  registry.gauge("kar_g", "gauge help").set(gauge_peak);
  registry.histogram("kar_h_seconds", "histogram help", {1.0})
      .observe(observation);
  return registry.snapshot();
}

TEST(MetricsSnapshot, MergeAddsCountersFoldsHistogramsMaxesGauges) {
  MetricsSnapshot merged;
  merged.merge(snapshot_with(2, 5.0, 0.5));
  merged.merge(snapshot_with(3, 1.0, 4.0));
  EXPECT_EQ(merged.families.at("kar_c_total").series.at("").count, 5u);
  EXPECT_DOUBLE_EQ(merged.families.at("kar_g").series.at("").value, 5.0);
  const auto& hist = merged.families.at("kar_h_seconds").series.at("");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_DOUBLE_EQ(hist.value, 4.5);
  ASSERT_EQ(hist.buckets.size(), 2u);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
}

TEST(MetricsSnapshot, MergeOrderProducesByteStableText) {
  // The determinism contract: folding value-equal snapshots in the same
  // order always renders to the same bytes (both exposition formats).
  MetricsSnapshot a;
  a.merge(snapshot_with(2, 5.0, 0.5));
  a.merge(snapshot_with(3, 1.0, 4.0));
  MetricsSnapshot b;
  b.merge(snapshot_with(2, 5.0, 0.5));
  b.merge(snapshot_with(3, 1.0, 4.0));
  EXPECT_EQ(a.prometheus_text(), b.prometheus_text());
  EXPECT_EQ(a.json(), b.json());
}

TEST(MetricsSnapshot, JsonIsOneLineWithHistogramObjects) {
  const MetricsSnapshot snap = snapshot_with(7, 2.5, 0.5);
  const std::string json = snap.json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"kar_c_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kar_g\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kar_h_seconds\":{\"buckets\":[1,0],\"sum\":0.5,"
                      "\"count\":1}"),
            std::string::npos)
      << json;
  EXPECT_EQ(MetricsSnapshot{}.json(), "{}");
}

// ---------------------------------------------------------------------------
// Exporter goldens. Fixed synthetic data, committed renderings.

void compare_with_golden(const char* path, const std::string& actual) {
  if (std::getenv("KAR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated; review the diff";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with KAR_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "exporter output diverged from the committed golden; if the change "
         "is intentional, regenerate with KAR_UPDATE_GOLDEN=1 and commit";
}

TEST(Exporters, PrometheusTextMatchesGolden) {
  MetricsRegistry registry(true);
  const Labels run_labels = {{"technique", "nip"}, {"topology", "fig2"}};
  registry.counter("kar_packets_delivered_total", "Packets delivered",
                   run_labels)
      .inc(42);
  registry
      .counter("kar_deflections_total", "Deflections taken",
               {{"switch", "SW7"}})
      .inc(3);
  registry
      .counter("kar_deflections_total", "Deflections taken",
               {{"switch", "SW10"}})
      .inc(1);
  registry.gauge("kar_queue_depth_peak", "Peak queue depth").set(17.5);
  Histogram latency = registry.histogram(
      "kar_delivery_latency_seconds", "End-to-end delivery latency",
      {0.001, 0.01, 0.1}, run_labels);
  latency.observe(0.0005);
  latency.observe(0.001);  // boundary: lands in le="0.001"
  latency.observe(0.05);
  latency.observe(2.0);  // +Inf
  compare_with_golden(KAR_TESTS_SOURCE_DIR "/golden/obs_metrics.prom",
                      registry.snapshot().prometheus_text());
}

std::vector<ChromeTraceProcess> chrome_fixture() {
  TraceRecord deflect;
  deflect.cat = TraceCategory::kDeflection;
  deflect.name = "deflect";
  deflect.node = "SW7";
  deflect.ts_s = 1.2e-3;
  deflect.tid = 0;
  deflect.id = 7;
  deflect.args = {{"out_port", "1"}, {"residue", "3"}};

  TraceRecord span;
  span.cat = TraceCategory::kPhase;
  span.name = "event-loop";
  span.ts_s = 0.0;
  span.dur_s = 0.25;
  span.tid = 0;

  TraceRecord cwnd;
  cwnd.cat = TraceCategory::kTcp;
  cwnd.name = "tcp cwnd flow 1";
  cwnd.ts_s = 2.0;
  cwnd.counter = true;
  cwnd.tid = 1;
  cwnd.id = 1;
  cwnd.args = {{"cwnd", "12"}, {"ssthresh", "64"}};

  TraceRecord link;
  link.cat = TraceCategory::kLink;
  link.name = "link-down";
  link.node = "SW7";
  link.ts_s = 1e-3;
  link.tid = 1;
  link.id = 4;
  link.args = {{"peer", "SW11"}};

  return {{"nip/updown", {deflect, span}}, {"avp/updown", {cwnd, link}}};
}

TEST(Exporters, ChromeTraceMatchesGolden) {
  std::ostringstream out;
  write_chrome_trace(out, chrome_fixture());
  compare_with_golden(KAR_TESTS_SOURCE_DIR "/golden/obs_trace.json",
                      out.str());
}

TEST(Exporters, ChromeTraceCarriesTheSchemaFields) {
  std::ostringstream out;
  write_chrome_trace(out, chrome_fixture());
  const std::string json = out.str();
  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Phase letters: instant, complete span, counter, metadata.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // Timestamps are microseconds; the span carries dur.
  EXPECT_NE(json.find("\"ts\":1200"), std::string::npos);       // 1.2 ms
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);    // 0.25 s
  // 2 s counter sample: shortest-round-trip doubles render as 2e+06 us.
  EXPECT_NE(json.find("\"ts\":2e+06"), std::string::npos);
  // Process/thread attribution: one pid per process, named via metadata.
  EXPECT_NE(json.find("\"process_name\",\"ph\":\"M\",\"pid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"process_name\",\"ph\":\"M\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"nip/updown\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"run 1\"}"), std::string::npos);
  // Instants carry thread scope; counters must not.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":1200,\"pid\":1,\"tid\":0,"
                      "\"s\":\"t\""),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"ph\":\"C\",\"ts\":2e+06,\"pid\":2,\"tid\":1,"
                      "\"s\":\"t\""),
            std::string::npos)
      << json;
  // Spans don't carry the instant-scope field either.
  EXPECT_EQ(json.find("\"dur\":250000,\"pid\":1,\"tid\":0,\"s\":\"t\""),
            std::string::npos)
      << json;
}

TEST(Exporters, TraceRecordJsonlRendersFieldsAndArgs) {
  const auto processes = chrome_fixture();
  const TraceRecord& deflect = processes[0].records[0];
  const std::string json = trace_record_json(deflect);
  EXPECT_NE(json.find("\"cat\":\"deflection\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"deflect\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"SW7\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"out_port\":\"1\""), std::string::npos);
  std::ostringstream out;
  write_trace_jsonl(out, processes[0].records);
  EXPECT_EQ(out.str(), trace_record_json(processes[0].records[0]) + "\n" +
                           trace_record_json(processes[0].records[1]) + "\n");
}

// ---------------------------------------------------------------------------
// The bounded trace ring.

TEST(TraceRecorder, KeepsTheMostRecentRecordsAndCountsDrops) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    TraceRecord record;
    record.name = "r" + std::to_string(i);
    record.ts_s = i;
    recorder.record(std::move(record));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {  // oldest retained first
    EXPECT_EQ(records[i].name, "r" + std::to_string(6 + i));
  }
}

TEST(TraceRecorder, UnderfilledRingSnapshotsInOrder) {
  TraceRecorder recorder(8);
  for (int i = 0; i < 3; ++i) {
    TraceRecord record;
    record.name = "r" + std::to_string(i);
    recorder.record(std::move(record));
  }
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().name, "r0");
  EXPECT_EQ(records.back().name, "r2");
}

// ---------------------------------------------------------------------------
// Span timers and phase profiles.

TEST(SpanTimer, AccumulatesIntoSinkOnceAndRecordsAPhaseSpan) {
  double sink = 0.0;
  TraceRecorder recorder(8);
  {
    SpanTimer timer(&sink, &recorder, "setup");
    timer.stop();
    const double after_stop = sink;
    timer.stop();  // idempotent
    EXPECT_EQ(sink, after_stop);
  }  // destructor must not double-add
  EXPECT_GE(sink, 0.0);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cat, TraceCategory::kPhase);
  EXPECT_EQ(records[0].name, "setup");
  EXPECT_GE(records[0].dur_s, 0.0);
}

TEST(SpanTimer, NullSinkIsInert) {
  SpanTimer timer(nullptr);  // must not crash on stop/destroy
  timer.stop();
}

TEST(PhaseProfile, MergesByAddition) {
  PhaseProfile a;
  a.add(Phase::kSetup, 1.0);
  a.add(Phase::kEventLoop, 2.0);
  a.runs = 1;
  PhaseProfile b;
  b.add(Phase::kEventLoop, 3.0);
  b.add(Phase::kTeardown, 0.5);
  b.runs = 1;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.wall_s[0], 1.0);
  EXPECT_DOUBLE_EQ(a.wall_s[1], 5.0);
  EXPECT_DOUBLE_EQ(a.wall_s[2], 0.5);
  EXPECT_DOUBLE_EQ(a.total_s(), 6.5);
  EXPECT_EQ(a.runs, 2u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(PhaseProfile{}.empty());
}

// ---------------------------------------------------------------------------
// Event-loop kind accounting (sim::EventLoopProfile, fed by the queue).

TEST(EventLoopProfile, QueueAccountsFiredEventsByKind) {
  sim::EventQueue queue;
  sim::EventLoopProfile profile;
  queue.set_profile(&profile);
  int fired = 0;
  queue.schedule_at(1.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.schedule_at(2.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.schedule_at(3.0, sim::EventKind::kTransportTimer, [&] { ++fired; });
  queue.schedule_in(4.0, sim::EventKind::kLinkState, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });  // untagged -> kGeneric
  queue.run_all();
  EXPECT_EQ(fired, 5);
  using sim::EventKind;
  const auto count = [&profile](EventKind kind) {
    return profile.kinds[static_cast<std::size_t>(kind)].count;
  };
  EXPECT_EQ(count(EventKind::kLinkArrival), 2u);
  EXPECT_EQ(count(EventKind::kTransportTimer), 1u);
  EXPECT_EQ(count(EventKind::kLinkState), 1u);
  EXPECT_EQ(count(EventKind::kGeneric), 1u);
  EXPECT_EQ(profile.total_events(), 5u);
  EXPECT_GE(profile.total_wall_s(), 0.0);

  // Detached again: further events are not accounted.
  queue.set_profile(nullptr);
  queue.schedule_in(1.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.run_all();
  EXPECT_EQ(count(EventKind::kLinkArrival), 2u);
}

// ---------------------------------------------------------------------------
// The acceptance criterion: NetworkObserver counters reconcile exactly with
// the committed golden packet trace of the pinned Fig. 1 scenario
// (tests/test_golden_trace.cpp runs the same scenario).

TEST(NetworkObserver, DeflectionCountersReconcileWithGoldenTrace) {
  // Run the pinned scenario with the observer attached.
  topo::Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNotInputPort;
  config.seed = 6001;
  sim::Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);

  MetricsRegistry registry(true);
  TraceRecorder recorder(1024);
  NetworkObserverOptions options;
  options.metrics = &registry;
  options.trace = &recorder;
  NetworkObserver observer(net, options);
  observer.install();

  net.fail_link_at(0.0, "SW7", "SW11");
  for (int i = 0; i < 3; ++i) {
    net.events().schedule_at(1e-3 * (i + 1), [&net, &route, i] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      p.packet_id = static_cast<std::uint64_t>(i + 1);
      net.edge_at(route.src_edge).stamp(p, route, 200 + 100 * i);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();

  // Tally the committed golden trace per switch.
  std::ifstream in(KAR_TESTS_SOURCE_DIR "/golden/fig1_nip_single_failure.csv",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace";
  const auto rows = sim::parse_trace_csv(in);
  std::map<std::string, std::uint64_t> golden_deflections;
  std::uint64_t golden_injected = 0;
  std::uint64_t golden_delivered = 0;
  for (const auto& row : rows) {
    if (row.kind == sim::TraceEvent::Kind::kHop && row.deflected) {
      ++golden_deflections[row.node];
    }
    if (row.kind == sim::TraceEvent::Kind::kInject) ++golden_injected;
    if (row.kind == sim::TraceEvent::Kind::kDeliver) ++golden_delivered;
  }
  ASSERT_FALSE(golden_deflections.empty());

  // The observer's counters must match the golden tally exactly.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.at("kar_packets_injected_total").series.at("").count,
            golden_injected);
  EXPECT_EQ(snap.families.at("kar_packets_delivered_total").series.at("").count,
            golden_delivered);
  const auto& deflections = snap.families.at("kar_deflections_total").series;
  std::uint64_t observed_total = 0;
  for (const auto& [labels, series] : deflections) {
    observed_total += series.count;
  }
  std::uint64_t golden_total = 0;
  for (const auto& [node, count] : golden_deflections) {
    golden_total += count;
    EXPECT_EQ(deflections.at(canonical_labels({{"switch", node}})).count, count)
        << "switch " << node;
  }
  EXPECT_EQ(observed_total, golden_total);

  // And every golden deflection row has a matching trace record with the
  // same out-port, carrying the KAR residue argument.
  std::size_t deflect_records = 0;
  for (const auto& record : recorder.snapshot()) {
    if (record.cat != TraceCategory::kDeflection) continue;
    ++deflect_records;
    EXPECT_EQ(record.node, "SW7");
    bool has_residue = false;
    for (const auto& [key, value] : record.args) {
      if (key == "out_port") {
        EXPECT_EQ(value, "1");
      }
      if (key == "residue") has_residue = true;
    }
    EXPECT_TRUE(has_residue);
  }
  EXPECT_EQ(deflect_records, golden_total);

  // Histograms: every delivered packet contributes one latency observation.
  const auto& latency =
      snap.families.at("kar_delivery_latency_seconds").series.at("");
  EXPECT_EQ(latency.count, golden_delivered);
}

// ---------------------------------------------------------------------------
// Daemon metric families (src/daemon/): Prometheus exposition-format
// conformance for the kar_daemon_* scrape, plus a committed golden of the
// rendering with synthetic deterministic values.

struct ParsedFamily {
  std::string help;
  std::string type;
  std::vector<std::string> samples;  ///< Raw sample lines, in order.
};

/// Splits the label body of a sample line (the text between `{` and `}`)
/// into `key="value"` pairs, honouring `\"` and `\\` escapes inside values.
std::vector<std::pair<std::string, std::string>> split_labels(
    const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  while (i < body.size()) {
    const std::size_t eq = body.find('=', i);
    EXPECT_NE(eq, std::string::npos) << "label without '=': " << body;
    if (eq == std::string::npos) return out;
    std::string key = body.substr(i, eq - i);
    EXPECT_EQ(body[eq + 1], '"') << "unquoted label value: " << body;
    std::string value;
    std::size_t j = eq + 2;
    while (j < body.size() && body[j] != '"') {
      if (body[j] == '\\') {
        EXPECT_LT(j + 1, body.size()) << "dangling escape: " << body;
        // Only \\, \" and \n are legal escapes in the exposition format.
        const char escaped = body[j + 1];
        EXPECT_TRUE(escaped == '\\' || escaped == '"' || escaped == 'n')
            << "illegal escape \\" << escaped << " in: " << body;
        value += body[j + 1];
        j += 2;
      } else {
        EXPECT_NE(body[j], '\n') << "raw newline in label value: " << body;
        value += body[j++];
      }
    }
    EXPECT_LT(j, body.size()) << "unterminated label value: " << body;
    out.emplace_back(std::move(key), std::move(value));
    i = j + 1;
    if (i < body.size()) {
      EXPECT_EQ(body[i], ',') << "label separator missing: " << body;
      ++i;
    }
  }
  return out;
}

/// Parses exposition text into families while enforcing the structural
/// rules: each family is introduced by exactly one `# HELP` line followed
/// immediately by its `# TYPE` line, every sample belongs to the family
/// introduced most recently (histogram samples may append _bucket/_sum/
/// _count), and every label string is canonical (keys sorted, values
/// quoted and escaped).
std::map<std::string, ParsedFamily> parse_exposition(const std::string& text) {
  std::map<std::string, ParsedFamily> families;
  std::string current;
  std::istringstream in(text);
  std::string line;
  bool expect_type = false;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition text";
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      EXPECT_FALSE(expect_type) << "HELP not followed by TYPE: " << line;
      const std::size_t space = line.find(' ', 7);
      EXPECT_NE(space, std::string::npos) << line;
      if (space == std::string::npos) continue;
      current = line.substr(7, space - 7);
      EXPECT_EQ(families.count(current), 0u)
          << "family introduced twice: " << current;
      families[current].help = line.substr(space + 1);
      expect_type = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(expect_type) << "TYPE without preceding HELP: " << line;
      expect_type = false;
      EXPECT_EQ(line.rfind("# TYPE " + current + ' ', 0), 0u)
          << "TYPE names a different family than HELP: " << line;
      const std::string type = line.substr(8 + current.size());
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      families[current].type = type;
      continue;
    }
    // Sample line. Must belong to the current family.
    EXPECT_FALSE(expect_type) << "sample before TYPE: " << line;
    EXPECT_FALSE(current.empty()) << "sample before any HELP: " << line;
    if (current.empty()) continue;
    const std::size_t name_end = line.find_first_of("{ ");
    EXPECT_NE(name_end, std::string::npos) << line;
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(0, name_end);
    if (families.at(current).type == "histogram") {
      EXPECT_TRUE(name == current + "_bucket" || name == current + "_sum" ||
                  name == current + "_count")
          << "sample " << name << " outside family " << current;
    } else {
      EXPECT_EQ(name, current) << "sample outside family " << current;
    }
    if (line[name_end] == '{') {
      const std::size_t close = line.rfind('}');
      EXPECT_NE(close, std::string::npos) << line;
      if (close == std::string::npos) continue;
      const auto labels =
          split_labels(line.substr(name_end + 1, close - name_end - 1));
      for (std::size_t i = 1; i < labels.size(); ++i) {
        EXPECT_LT(labels[i - 1].first, labels[i].first)
            << "label keys not strictly sorted: " << line;
      }
    }
    families.at(current).samples.push_back(line);
  }
  EXPECT_FALSE(expect_type) << "text ends between HELP and TYPE";
  return families;
}

/// The numeric value of a sample line (the token after the name or the
/// closing brace).
double sample_value(const std::string& line) {
  const std::size_t close = line.rfind('}');
  const std::size_t space =
      line.find(' ', close == std::string::npos ? 0 : close);
  return std::stod(line.substr(space + 1));
}

/// Histogram invariants per series: le strictly ascending and ending at
/// +Inf, cumulative bucket counts non-decreasing, and _count equal to the
/// +Inf bucket.
void expect_conformant_histogram(const std::string& name,
                                 const ParsedFamily& family) {
  ASSERT_EQ(family.type, "histogram") << name;
  // Series key (labels minus le) -> bucket (le, cumulative) in file order.
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::map<std::string, double> sums;
  std::map<std::string, double> counts;
  for (const std::string& line : family.samples) {
    const std::size_t name_end = line.find_first_of("{ ");
    const std::string sample_name = line.substr(0, name_end);
    std::string series;
    double le = 0.0;
    bool has_le = false;
    if (line[name_end] == '{') {
      const std::size_t close = line.rfind('}');
      for (const auto& [key, value] :
           split_labels(line.substr(name_end + 1, close - name_end - 1))) {
        if (key == "le") {
          has_le = true;
          le = value == "+Inf" ? std::numeric_limits<double>::infinity()
                               : std::stod(value);
        } else {
          series += key + '=' + value + ';';
        }
      }
    }
    if (sample_name == name + "_bucket") {
      ASSERT_TRUE(has_le) << "bucket without le: " << line;
      buckets[series].emplace_back(le, sample_value(line));
    } else if (sample_name == name + "_sum") {
      sums[series] = sample_value(line);
    } else {
      counts[series] = sample_value(line);
    }
  }
  ASSERT_FALSE(buckets.empty()) << name << " has no bucket samples";
  for (const auto& [series, rows] : buckets) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LT(rows[i - 1].first, rows[i].first)
          << name << "{" << series << "}: le not ascending";
      EXPECT_LE(rows[i - 1].second, rows[i].second)
          << name << "{" << series << "}: buckets not cumulative";
    }
    EXPECT_TRUE(std::isinf(rows.back().first))
        << name << "{" << series << "}: last bucket is not +Inf";
    ASSERT_EQ(counts.count(series), 1u) << name << " missing _count";
    ASSERT_EQ(sums.count(series), 1u) << name << " missing _sum";
    EXPECT_EQ(counts.at(series), rows.back().second)
        << name << "{" << series << "}: _count != +Inf bucket";
  }
}

/// Every kar_daemon_* family the daemon registers, with its expected type
/// (src/daemon/daemon.cpp register_metrics()).
const std::map<std::string, std::string>& daemon_family_types() {
  static const std::map<std::string, std::string> kTypes = {
      {"kar_daemon_requests_total", "counter"},
      {"kar_daemon_request_errors_total", "counter"},
      {"kar_daemon_epochs_total", "counter"},
      {"kar_daemon_coalesced_events_total", "counter"},
      {"kar_daemon_snapshots_total", "counter"},
      {"kar_daemon_compactions_total", "counter"},
      {"kar_daemon_compacted_entries_total", "counter"},
      {"kar_daemon_routes", "gauge"},
      {"kar_daemon_live_routes", "gauge"},
      {"kar_daemon_queue_depth", "gauge"},
      {"kar_daemon_held_links", "gauge"},
      {"kar_daemon_snapshot_bytes", "gauge"},
      {"kar_daemon_request_seconds", "histogram"},
      {"kar_daemon_epoch_seconds", "histogram"},
      {"kar_daemon_epoch_ops", "histogram"},
  };
  return kTypes;
}

TEST(DaemonMetrics, LiveScrapeIsConformant) {
  daemon::KardConfig config;
  config.topology = "fig1";
  config.flush_interval_s = 0.001;
  config.snapshot_on_shutdown = false;
  daemon::Kard kard(config);
  kard.start();
  // Exercise every family: successful mutations, errors, an epoch with a
  // link event, and a query.
  EXPECT_NE(kard.execute_line("install S D").find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(kard.execute_line("install S NOPE").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(kard.execute_line("link-down SW4 SW7").find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(kard.execute_line("query 0").find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(kard.execute_line("definitely-not-a-verb").find("\"ok\":false"),
            std::string::npos);
  const std::string text = kard.prometheus_text();
  kard.stop();

  const auto families = parse_exposition(text);
  for (const auto& [name, type] : daemon_family_types()) {
    ASSERT_EQ(families.count(name), 1u) << "missing family " << name;
    EXPECT_EQ(families.at(name).type, type) << name;
    EXPECT_FALSE(families.at(name).help.empty()) << name;
    if (type == "histogram") {
      expect_conformant_histogram(name, families.at(name));
    }
  }
  // The per-verb request counter carries the verbs we exercised, and the
  // error counter saw both structured failures.
  const auto& requests = families.at("kar_daemon_requests_total");
  auto has_sample = [&](const std::string& needle) {
    for (const std::string& line : requests.samples) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_sample("verb=\"install\""));
  EXPECT_TRUE(has_sample("verb=\"link-down\""));
  EXPECT_TRUE(has_sample("verb=\"query\""));
  EXPECT_GE(
      sample_value(families.at("kar_daemon_request_errors_total").samples.at(0)),
      2.0);
  // The install + link-down epochs moved the gauges and epoch histograms.
  EXPECT_GE(sample_value(families.at("kar_daemon_routes").samples.at(0)), 1.0);
  EXPECT_GE(sample_value(families.at("kar_daemon_epochs_total").samples.at(0)),
            2.0);
  // The ctrlplane engine exports through the same registry (one scrape
  // covers the whole daemon).
  EXPECT_EQ(families.count("kar_ctrlplane_epochs_total"), 1u);
}

TEST(DaemonMetrics, HttpScrapeResponseWrapsThePrometheusText) {
  MetricsRegistry registry(true);
  registry.counter("kar_daemon_epochs_total", "Epochs.").inc(3);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string response = http_scrape_response(snap);
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  const std::string head = response.substr(0, split);
  const std::string body = response.substr(split + 4);
  EXPECT_EQ(body, snap.prometheus_text());
  EXPECT_NE(head.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << head;
  EXPECT_NE(head.find("Content-Length: " + std::to_string(body.size())),
            std::string::npos)
      << head;
}

TEST(Exporters, DaemonPrometheusTextMatchesGolden) {
  // Mirrors the daemon's register_metrics() families with fixed synthetic
  // values so the kar_daemon_* rendering (HELP/TYPE lines, bucket layout,
  // label escaping) is pinned by a committed golden. The escaping sample
  // uses a hostile verb value on purpose.
  MetricsRegistry registry(true);
  registry
      .counter("kar_daemon_requests_total", "Requests accepted, by verb.",
               {{"verb", "install"}})
      .inc(5);
  registry
      .counter("kar_daemon_requests_total", "Requests accepted, by verb.",
               {{"verb", "query"}})
      .inc(9);
  registry
      .counter("kar_daemon_requests_total", "Requests accepted, by verb.",
               {{"verb", "quo\"te\\back\nline"}})
      .inc(1);
  registry
      .counter("kar_daemon_request_errors_total",
               "Requests answered with a structured error.")
      .inc(2);
  registry
      .counter("kar_daemon_epochs_total",
               "Batched mutation epochs applied to the engine.")
      .inc(3);
  registry
      .counter("kar_daemon_coalesced_events_total",
               "Link-state requests absorbed by coalescing (flaps and "
               "already-in-state transitions that cost no reconvergence).")
      .inc(4);
  registry.counter("kar_daemon_snapshots_total", "Snapshots written.").inc(1);
  registry
      .counter("kar_daemon_compactions_total",
               "Posting-list compaction sweeps.")
      .inc(2);
  registry
      .counter("kar_daemon_compacted_entries_total",
               "Stale posting entries dropped by compaction sweeps.")
      .inc(37);
  registry.gauge("kar_daemon_routes", "Route slots in the store (dense keys).")
      .set(6);
  registry
      .gauge("kar_daemon_live_routes", "Routes currently live (usable path).")
      .set(5);
  registry
      .gauge("kar_daemon_queue_depth", "Mutations waiting for the next epoch.")
      .set(0);
  registry
      .gauge("kar_daemon_held_links",
             "Link requests held open in the coalescing window.")
      .set(2);
  registry
      .gauge("kar_daemon_snapshot_bytes", "Size of the most recent snapshot.")
      .set(1234);
  Histogram request_seconds = registry.histogram(
      "kar_daemon_request_seconds",
      "Request latency from admission to response (batched verbs include "
      "their wait for the epoch flush).",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  request_seconds.observe(5e-7);
  request_seconds.observe(1e-6);  // boundary: lands in le="1e-06"
  request_seconds.observe(3e-4);
  request_seconds.observe(0.5);
  request_seconds.observe(2.0);  // +Inf
  Histogram epoch_seconds = registry.histogram(
      "kar_daemon_epoch_seconds", "Engine wall time per batched epoch.",
      {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
  epoch_seconds.observe(5e-4);
  epoch_seconds.observe(0.02);
  Histogram epoch_ops = registry.histogram(
      "kar_daemon_epoch_ops", "Mutation requests coalesced into one epoch.",
      {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0});
  epoch_ops.observe(1.0);
  epoch_ops.observe(3.0);
  epoch_ops.observe(100.0);
  epoch_ops.observe(5000.0);

  const std::string text = registry.snapshot().prometheus_text();
  // The golden itself must be a conformant exposition.
  const auto families = parse_exposition(text);
  for (const auto& [name, type] : daemon_family_types()) {
    ASSERT_EQ(families.count(name), 1u) << name;
    EXPECT_EQ(families.at(name).type, type) << name;
    if (type == "histogram") {
      expect_conformant_histogram(name, families.at(name));
    }
  }
  compare_with_golden(KAR_TESTS_SOURCE_DIR "/golden/obs_daemon_metrics.prom",
                      text);
}

}  // namespace
}  // namespace kar::obs

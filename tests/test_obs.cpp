// The observability layer (src/obs/): registry semantics, histogram bucket
// boundaries, deterministic snapshot folding, exporter golden files
// (Prometheus text + Chrome trace_event JSON), the bounded trace ring, span
// timers, the event-loop kind profile, and — the acceptance criterion — the
// NetworkObserver's per-switch deflection counters reconciling exactly with
// the committed golden packet trace.
//
// Regenerate the exporter goldens after an intentional format change with:
//   KAR_UPDATE_GOLDEN=1 ./build/tests/test_obs
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "routing/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "topology/builders.hpp"

namespace kar::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(MetricsRegistry, CounterHandlesForSameSeriesShareOneCell) {
  MetricsRegistry registry(true);
  Counter a = registry.counter("kar_test_total", "help", {{"k", "v"}});
  Counter b = registry.counter("kar_test_total", "other help ignored",
                               {{"k", "v"}});
  a.inc();
  b.inc(4);
  const MetricsSnapshot snap = registry.snapshot();
  const auto& family = snap.families.at("kar_test_total");
  EXPECT_EQ(family.help, "help");  // first registration wins
  EXPECT_EQ(family.series.at(canonical_labels({{"k", "v"}})).count, 5u);
  EXPECT_EQ(family.series.size(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry(true);
  registry.counter("kar_test_total", "help", {{"switch", "SW7"}}).inc(2);
  registry.counter("kar_test_total", "help", {{"switch", "SW10"}}).inc(3);
  const MetricsSnapshot snap = registry.snapshot();
  const auto& family = snap.families.at("kar_test_total");
  EXPECT_EQ(family.series.at("switch=\"SW7\"").count, 2u);
  EXPECT_EQ(family.series.at("switch=\"SW10\"").count, 3u);
}

TEST(MetricsRegistry, CanonicalLabelsSortKeysAndEscapeValues) {
  EXPECT_EQ(canonical_labels({{"b", "2"}, {"a", "1"}}), "a=\"1\",b=\"2\"");
  EXPECT_EQ(canonical_labels({{"k", "a\"b\\c\nd"}}), "k=\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(canonical_labels({}), "");
}

TEST(MetricsRegistry, DisabledRegistryHandsOutInertHandles) {
  MetricsRegistry registry(false);
  Counter counter = registry.counter("kar_test_total", "help");
  Gauge gauge = registry.gauge("kar_test_gauge", "help");
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  counter.inc();
  gauge.set(3.0);
  histogram.observe(1.5);
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.inc();
  gauge.add(1.0);
  histogram.observe(0.5);  // must not crash
  EXPECT_FALSE(counter.enabled());
}

TEST(MetricsRegistry, DisableFamilySilencesOnlyThatFamily) {
  MetricsRegistry registry(true);
  registry.disable_family("kar_noisy_total");
  Counter noisy = registry.counter("kar_noisy_total", "help");
  Counter kept = registry.counter("kar_kept_total", "help");
  noisy.inc(100);
  kept.inc(1);
  EXPECT_FALSE(noisy.enabled());
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.count("kar_noisy_total"), 0u);
  EXPECT_EQ(snap.families.at("kar_kept_total").series.at("").count, 1u);
}

TEST(MetricsRegistry, FamilyTypeConflictThrows) {
  MetricsRegistry registry(true);
  (void)registry.counter("kar_test_total", "help");
  EXPECT_THROW((void)registry.gauge("kar_test_total", "help"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("kar_test_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, GaugeSetAddMax) {
  MetricsRegistry registry(true);
  Gauge gauge = registry.gauge("kar_depth", "help");
  gauge.set(2.5);
  gauge.add(1.0);
  gauge.max(1.0);  // below current value: no effect
  gauge.max(7.25);
  EXPECT_DOUBLE_EQ(registry.snapshot().families.at("kar_depth").series.at("").value,
                   7.25);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry(true);
  Counter counter = registry.counter("kar_test_total", "help");
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {0.5});
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram]() mutable {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        histogram.observe(0.25);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.at("kar_test_total").series.at("").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const auto& hist = snap.families.at("kar_test_seconds").series.at("");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(hist.value, 0.25 * kThreads * kIncrements);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries (Prometheus semantics: inclusive upper
// bounds, +Inf bucket last).

TEST(Histogram, UpperBoundsAreInclusive) {
  MetricsRegistry registry(true);
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  histogram.observe(-5.0);  // below everything: first bucket
  histogram.observe(1.0);   // exactly on a bound: that bucket (inclusive)
  histogram.observe(std::nextafter(1.0, 2.0));  // just above: next bucket
  histogram.observe(2.0);
  histogram.observe(std::nextafter(2.0, 3.0));  // above every bound: +Inf
  const MetricsSnapshot snap = registry.snapshot();
  const auto& series = snap.families.at("kar_test_seconds").series.at("");
  ASSERT_EQ(series.buckets.size(), 3u);  // bounds + the +Inf bucket
  EXPECT_EQ(series.buckets[0], 2u);
  EXPECT_EQ(series.buckets[1], 2u);
  EXPECT_EQ(series.buckets[2], 1u);
  EXPECT_EQ(series.count, 5u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  MetricsRegistry registry(true);
  EXPECT_THROW(
      (void)registry.histogram("kar_test_seconds", "help", {2.0, 1.0}),
      std::invalid_argument);
}

TEST(Histogram, PrometheusBucketsAreCumulativeWithInf) {
  MetricsRegistry registry(true);
  Histogram histogram =
      registry.histogram("kar_test_seconds", "help", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(9.0);
  const std::string text = registry.snapshot().prometheus_text();
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kar_test_seconds_sum 11\n"), std::string::npos) << text;
  EXPECT_NE(text.find("kar_test_seconds_count 3\n"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Snapshot folding.

MetricsSnapshot snapshot_with(std::uint64_t count, double gauge_peak,
                              double observation) {
  MetricsRegistry registry(true);
  registry.counter("kar_c_total", "counter help").inc(count);
  registry.gauge("kar_g", "gauge help").set(gauge_peak);
  registry.histogram("kar_h_seconds", "histogram help", {1.0})
      .observe(observation);
  return registry.snapshot();
}

TEST(MetricsSnapshot, MergeAddsCountersFoldsHistogramsMaxesGauges) {
  MetricsSnapshot merged;
  merged.merge(snapshot_with(2, 5.0, 0.5));
  merged.merge(snapshot_with(3, 1.0, 4.0));
  EXPECT_EQ(merged.families.at("kar_c_total").series.at("").count, 5u);
  EXPECT_DOUBLE_EQ(merged.families.at("kar_g").series.at("").value, 5.0);
  const auto& hist = merged.families.at("kar_h_seconds").series.at("");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_DOUBLE_EQ(hist.value, 4.5);
  ASSERT_EQ(hist.buckets.size(), 2u);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
}

TEST(MetricsSnapshot, MergeOrderProducesByteStableText) {
  // The determinism contract: folding value-equal snapshots in the same
  // order always renders to the same bytes (both exposition formats).
  MetricsSnapshot a;
  a.merge(snapshot_with(2, 5.0, 0.5));
  a.merge(snapshot_with(3, 1.0, 4.0));
  MetricsSnapshot b;
  b.merge(snapshot_with(2, 5.0, 0.5));
  b.merge(snapshot_with(3, 1.0, 4.0));
  EXPECT_EQ(a.prometheus_text(), b.prometheus_text());
  EXPECT_EQ(a.json(), b.json());
}

TEST(MetricsSnapshot, JsonIsOneLineWithHistogramObjects) {
  const MetricsSnapshot snap = snapshot_with(7, 2.5, 0.5);
  const std::string json = snap.json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"kar_c_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kar_g\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kar_h_seconds\":{\"buckets\":[1,0],\"sum\":0.5,"
                      "\"count\":1}"),
            std::string::npos)
      << json;
  EXPECT_EQ(MetricsSnapshot{}.json(), "{}");
}

// ---------------------------------------------------------------------------
// Exporter goldens. Fixed synthetic data, committed renderings.

void compare_with_golden(const char* path, const std::string& actual) {
  if (std::getenv("KAR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated; review the diff";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with KAR_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "exporter output diverged from the committed golden; if the change "
         "is intentional, regenerate with KAR_UPDATE_GOLDEN=1 and commit";
}

TEST(Exporters, PrometheusTextMatchesGolden) {
  MetricsRegistry registry(true);
  const Labels run_labels = {{"technique", "nip"}, {"topology", "fig2"}};
  registry.counter("kar_packets_delivered_total", "Packets delivered",
                   run_labels)
      .inc(42);
  registry
      .counter("kar_deflections_total", "Deflections taken",
               {{"switch", "SW7"}})
      .inc(3);
  registry
      .counter("kar_deflections_total", "Deflections taken",
               {{"switch", "SW10"}})
      .inc(1);
  registry.gauge("kar_queue_depth_peak", "Peak queue depth").set(17.5);
  Histogram latency = registry.histogram(
      "kar_delivery_latency_seconds", "End-to-end delivery latency",
      {0.001, 0.01, 0.1}, run_labels);
  latency.observe(0.0005);
  latency.observe(0.001);  // boundary: lands in le="0.001"
  latency.observe(0.05);
  latency.observe(2.0);  // +Inf
  compare_with_golden(KAR_TESTS_SOURCE_DIR "/golden/obs_metrics.prom",
                      registry.snapshot().prometheus_text());
}

std::vector<ChromeTraceProcess> chrome_fixture() {
  TraceRecord deflect;
  deflect.cat = TraceCategory::kDeflection;
  deflect.name = "deflect";
  deflect.node = "SW7";
  deflect.ts_s = 1.2e-3;
  deflect.tid = 0;
  deflect.id = 7;
  deflect.args = {{"out_port", "1"}, {"residue", "3"}};

  TraceRecord span;
  span.cat = TraceCategory::kPhase;
  span.name = "event-loop";
  span.ts_s = 0.0;
  span.dur_s = 0.25;
  span.tid = 0;

  TraceRecord cwnd;
  cwnd.cat = TraceCategory::kTcp;
  cwnd.name = "tcp cwnd flow 1";
  cwnd.ts_s = 2.0;
  cwnd.counter = true;
  cwnd.tid = 1;
  cwnd.id = 1;
  cwnd.args = {{"cwnd", "12"}, {"ssthresh", "64"}};

  TraceRecord link;
  link.cat = TraceCategory::kLink;
  link.name = "link-down";
  link.node = "SW7";
  link.ts_s = 1e-3;
  link.tid = 1;
  link.id = 4;
  link.args = {{"peer", "SW11"}};

  return {{"nip/updown", {deflect, span}}, {"avp/updown", {cwnd, link}}};
}

TEST(Exporters, ChromeTraceMatchesGolden) {
  std::ostringstream out;
  write_chrome_trace(out, chrome_fixture());
  compare_with_golden(KAR_TESTS_SOURCE_DIR "/golden/obs_trace.json",
                      out.str());
}

TEST(Exporters, ChromeTraceCarriesTheSchemaFields) {
  std::ostringstream out;
  write_chrome_trace(out, chrome_fixture());
  const std::string json = out.str();
  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Phase letters: instant, complete span, counter, metadata.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // Timestamps are microseconds; the span carries dur.
  EXPECT_NE(json.find("\"ts\":1200"), std::string::npos);       // 1.2 ms
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);    // 0.25 s
  // 2 s counter sample: shortest-round-trip doubles render as 2e+06 us.
  EXPECT_NE(json.find("\"ts\":2e+06"), std::string::npos);
  // Process/thread attribution: one pid per process, named via metadata.
  EXPECT_NE(json.find("\"process_name\",\"ph\":\"M\",\"pid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"process_name\",\"ph\":\"M\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"nip/updown\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"run 1\"}"), std::string::npos);
  // Instants carry thread scope; counters must not.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":1200,\"pid\":1,\"tid\":0,"
                      "\"s\":\"t\""),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"ph\":\"C\",\"ts\":2e+06,\"pid\":2,\"tid\":1,"
                      "\"s\":\"t\""),
            std::string::npos)
      << json;
  // Spans don't carry the instant-scope field either.
  EXPECT_EQ(json.find("\"dur\":250000,\"pid\":1,\"tid\":0,\"s\":\"t\""),
            std::string::npos)
      << json;
}

TEST(Exporters, TraceRecordJsonlRendersFieldsAndArgs) {
  const auto processes = chrome_fixture();
  const TraceRecord& deflect = processes[0].records[0];
  const std::string json = trace_record_json(deflect);
  EXPECT_NE(json.find("\"cat\":\"deflection\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"deflect\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"SW7\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"out_port\":\"1\""), std::string::npos);
  std::ostringstream out;
  write_trace_jsonl(out, processes[0].records);
  EXPECT_EQ(out.str(), trace_record_json(processes[0].records[0]) + "\n" +
                           trace_record_json(processes[0].records[1]) + "\n");
}

// ---------------------------------------------------------------------------
// The bounded trace ring.

TEST(TraceRecorder, KeepsTheMostRecentRecordsAndCountsDrops) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    TraceRecord record;
    record.name = "r" + std::to_string(i);
    record.ts_s = i;
    recorder.record(std::move(record));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {  // oldest retained first
    EXPECT_EQ(records[i].name, "r" + std::to_string(6 + i));
  }
}

TEST(TraceRecorder, UnderfilledRingSnapshotsInOrder) {
  TraceRecorder recorder(8);
  for (int i = 0; i < 3; ++i) {
    TraceRecord record;
    record.name = "r" + std::to_string(i);
    recorder.record(std::move(record));
  }
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().name, "r0");
  EXPECT_EQ(records.back().name, "r2");
}

// ---------------------------------------------------------------------------
// Span timers and phase profiles.

TEST(SpanTimer, AccumulatesIntoSinkOnceAndRecordsAPhaseSpan) {
  double sink = 0.0;
  TraceRecorder recorder(8);
  {
    SpanTimer timer(&sink, &recorder, "setup");
    timer.stop();
    const double after_stop = sink;
    timer.stop();  // idempotent
    EXPECT_EQ(sink, after_stop);
  }  // destructor must not double-add
  EXPECT_GE(sink, 0.0);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cat, TraceCategory::kPhase);
  EXPECT_EQ(records[0].name, "setup");
  EXPECT_GE(records[0].dur_s, 0.0);
}

TEST(SpanTimer, NullSinkIsInert) {
  SpanTimer timer(nullptr);  // must not crash on stop/destroy
  timer.stop();
}

TEST(PhaseProfile, MergesByAddition) {
  PhaseProfile a;
  a.add(Phase::kSetup, 1.0);
  a.add(Phase::kEventLoop, 2.0);
  a.runs = 1;
  PhaseProfile b;
  b.add(Phase::kEventLoop, 3.0);
  b.add(Phase::kTeardown, 0.5);
  b.runs = 1;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.wall_s[0], 1.0);
  EXPECT_DOUBLE_EQ(a.wall_s[1], 5.0);
  EXPECT_DOUBLE_EQ(a.wall_s[2], 0.5);
  EXPECT_DOUBLE_EQ(a.total_s(), 6.5);
  EXPECT_EQ(a.runs, 2u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(PhaseProfile{}.empty());
}

// ---------------------------------------------------------------------------
// Event-loop kind accounting (sim::EventLoopProfile, fed by the queue).

TEST(EventLoopProfile, QueueAccountsFiredEventsByKind) {
  sim::EventQueue queue;
  sim::EventLoopProfile profile;
  queue.set_profile(&profile);
  int fired = 0;
  queue.schedule_at(1.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.schedule_at(2.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.schedule_at(3.0, sim::EventKind::kTransportTimer, [&] { ++fired; });
  queue.schedule_in(4.0, sim::EventKind::kLinkState, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });  // untagged -> kGeneric
  queue.run_all();
  EXPECT_EQ(fired, 5);
  using sim::EventKind;
  const auto count = [&profile](EventKind kind) {
    return profile.kinds[static_cast<std::size_t>(kind)].count;
  };
  EXPECT_EQ(count(EventKind::kLinkArrival), 2u);
  EXPECT_EQ(count(EventKind::kTransportTimer), 1u);
  EXPECT_EQ(count(EventKind::kLinkState), 1u);
  EXPECT_EQ(count(EventKind::kGeneric), 1u);
  EXPECT_EQ(profile.total_events(), 5u);
  EXPECT_GE(profile.total_wall_s(), 0.0);

  // Detached again: further events are not accounted.
  queue.set_profile(nullptr);
  queue.schedule_in(1.0, sim::EventKind::kLinkArrival, [&] { ++fired; });
  queue.run_all();
  EXPECT_EQ(count(EventKind::kLinkArrival), 2u);
}

// ---------------------------------------------------------------------------
// The acceptance criterion: NetworkObserver counters reconcile exactly with
// the committed golden packet trace of the pinned Fig. 1 scenario
// (tests/test_golden_trace.cpp runs the same scenario).

TEST(NetworkObserver, DeflectionCountersReconcileWithGoldenTrace) {
  // Run the pinned scenario with the observer attached.
  topo::Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNotInputPort;
  config.seed = 6001;
  sim::Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);

  MetricsRegistry registry(true);
  TraceRecorder recorder(1024);
  NetworkObserverOptions options;
  options.metrics = &registry;
  options.trace = &recorder;
  NetworkObserver observer(net, options);
  observer.install();

  net.fail_link_at(0.0, "SW7", "SW11");
  for (int i = 0; i < 3; ++i) {
    net.events().schedule_at(1e-3 * (i + 1), [&net, &route, i] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      p.packet_id = static_cast<std::uint64_t>(i + 1);
      net.edge_at(route.src_edge).stamp(p, route, 200 + 100 * i);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();

  // Tally the committed golden trace per switch.
  std::ifstream in(KAR_TESTS_SOURCE_DIR "/golden/fig1_nip_single_failure.csv",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace";
  const auto rows = sim::parse_trace_csv(in);
  std::map<std::string, std::uint64_t> golden_deflections;
  std::uint64_t golden_injected = 0;
  std::uint64_t golden_delivered = 0;
  for (const auto& row : rows) {
    if (row.kind == sim::TraceEvent::Kind::kHop && row.deflected) {
      ++golden_deflections[row.node];
    }
    if (row.kind == sim::TraceEvent::Kind::kInject) ++golden_injected;
    if (row.kind == sim::TraceEvent::Kind::kDeliver) ++golden_delivered;
  }
  ASSERT_FALSE(golden_deflections.empty());

  // The observer's counters must match the golden tally exactly.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.families.at("kar_packets_injected_total").series.at("").count,
            golden_injected);
  EXPECT_EQ(snap.families.at("kar_packets_delivered_total").series.at("").count,
            golden_delivered);
  const auto& deflections = snap.families.at("kar_deflections_total").series;
  std::uint64_t observed_total = 0;
  for (const auto& [labels, series] : deflections) {
    observed_total += series.count;
  }
  std::uint64_t golden_total = 0;
  for (const auto& [node, count] : golden_deflections) {
    golden_total += count;
    EXPECT_EQ(deflections.at(canonical_labels({{"switch", node}})).count, count)
        << "switch " << node;
  }
  EXPECT_EQ(observed_total, golden_total);

  // And every golden deflection row has a matching trace record with the
  // same out-port, carrying the KAR residue argument.
  std::size_t deflect_records = 0;
  for (const auto& record : recorder.snapshot()) {
    if (record.cat != TraceCategory::kDeflection) continue;
    ++deflect_records;
    EXPECT_EQ(record.node, "SW7");
    bool has_residue = false;
    for (const auto& [key, value] : record.args) {
      if (key == "out_port") {
        EXPECT_EQ(value, "1");
      }
      if (key == "residue") has_residue = true;
    }
    EXPECT_TRUE(has_residue);
  }
  EXPECT_EQ(deflect_records, golden_total);

  // Histograms: every delivered packet contributes one latency observation.
  const auto& latency =
      snap.families.at("kar_delivery_latency_seconds").series.at("");
  EXPECT_EQ(latency.count, golden_delivered);
}

}  // namespace
}  // namespace kar::obs

#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topology/builders.hpp"
#include "transport/udp.hpp"

namespace kar::sim {
namespace {

using dataplane::DeflectionTechnique;
using dataplane::Packet;
using topo::ProtectionLevel;
using topo::Scenario;

struct NetFixture : public ::testing::Test {
  NetFixture() : scenario(topo::make_fig1_network()), controller(scenario.topology) {}

  Network make_network(NetworkConfig config = {}) {
    return Network(scenario.topology, controller, config);
  }

  routing::EncodedRoute route(ProtectionLevel level) {
    return controller.encode_scenario(scenario.route, level);
  }

  Packet probe(const routing::EncodedRoute& r, Network& net, std::size_t bytes = 100) {
    Packet p;
    p.transport = dataplane::Datagram{0};
    net.edge_at(r.src_edge).stamp(p, r, bytes);
    return p;
  }

  Scenario scenario;
  routing::Controller controller;
};

TEST_F(NetFixture, DeliversAlongEncodedRoute) {
  Network net = make_network();
  const auto r = route(ProtectionLevel::kUnprotected);
  std::vector<std::uint64_t> delivered_hops;
  net.set_delivery_handler(r.dst_edge, [&](const Packet& p) {
    delivered_hops.push_back(p.hop_count);
  });
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  ASSERT_EQ(delivered_hops.size(), 1u);
  EXPECT_EQ(delivered_hops[0], 3u);  // SW4, SW7, SW11
  EXPECT_EQ(net.counters().delivered, 1u);
  EXPECT_EQ(net.counters().deflections, 0u);
  EXPECT_EQ(net.counters().total_drops(), 0u);
}

TEST_F(NetFixture, DeliveryLatencyMatchesStoreAndForwardModel) {
  NetworkConfig config;
  config.switch_latency_s = 0.0;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kUnprotected);
  double delivered_at = -1;
  net.set_delivery_handler(r.dst_edge,
                           [&](const Packet&) { delivered_at = net.now(); });
  Packet p = probe(r, net, 1000 - dataplane::kBaseHeaderBytes - 2);
  const double tx = 1000.0 * 8 / 200e6;     // per-hop serialization (1000 B)
  const double expected = 4 * (tx + 0.5e-3);  // 4 links, default 0.5 ms delay
  net.inject(r.src_edge, std::move(p));
  net.events().run_all();
  EXPECT_NEAR(delivered_at, expected, 1e-9);
}

TEST_F(NetFixture, NoDeflectionDropsDuringFailure) {
  NetworkConfig config;
  config.technique = DeflectionTechnique::kNone;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kUnprotected);
  net.fail_link_at(0.0, "SW7", "SW11");
  net.events().run_until(0.001);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().drop_no_viable_port, 1u);
}

TEST_F(NetFixture, NipDeflectionRecoversViaProtectionPath) {
  NetworkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kPartial);  // R = 660 with SW5
  net.fail_link_at(0.0, "SW7", "SW11");
  net.events().run_until(0.001);
  std::uint64_t hops = 0;
  net.set_delivery_handler(r.dst_edge,
                           [&](const Packet& p) { hops = p.hop_count; });
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 1u);
  // SW4 -> SW7 -> (deflect, but NIP excludes SW4) -> SW5 -> SW11: 4 hops.
  EXPECT_EQ(hops, 4u);
  EXPECT_EQ(net.counters().deflections, 1u);
}

TEST_F(NetFixture, InFlightPacketsDieWhenLinkFails) {
  NetworkConfig config;
  config.technique = DeflectionTechnique::kNone;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kUnprotected);
  // Inject, then fail SW7-SW11 while the packet is still upstream of it.
  net.inject(r.src_edge, probe(r, net, 1200));
  net.fail_link_at(0.0005, "SW7", "SW11");  // mid-flight (prop delay 0.5ms/hop)
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_GE(net.counters().drop_link_failed + net.counters().drop_no_viable_port,
            1u);
}

TEST_F(NetFixture, RepairRestoresDelivery) {
  Network net = make_network();
  const auto r = route(ProtectionLevel::kUnprotected);
  net.fail_link_at(0.0, "SW7", "SW11");
  net.repair_link_at(1.0, "SW7", "SW11");
  std::uint64_t delivered = 0;
  net.set_delivery_handler(r.dst_edge, [&](const Packet&) { ++delivered; });
  net.events().run_until(2.0);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(delivered, 1u);
}

TEST_F(NetFixture, QueueOverflowDropsExcessPackets) {
  // Shrink the queue on the S-SW4 uplink and flood it instantaneously.
  Scenario small = topo::make_fig1_network(
      topo::LinkParams{.rate_bps = 1e6, .delay_s = 1e-3, .queue_packets = 5});
  routing::Controller ctrl(small.topology);
  Network net(small.topology, ctrl, {});
  const auto r = ctrl.encode_scenario(small.route, ProtectionLevel::kUnprotected);
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
    net.edge_at(r.src_edge).stamp(p, r, 1000);
    net.inject(r.src_edge, std::move(p));
  }
  net.events().run_all();
  EXPECT_GT(net.counters().drop_queue_overflow, 0u);
  EXPECT_LT(net.counters().delivered, 50u);
  EXPECT_EQ(net.counters().delivered + net.counters().total_drops(), 50u);
}

TEST_F(NetFixture, RedDropsEarlyBeforeQueueOverflow) {
  // Arm aggressive RED on a slow line and flood it: early drops must fire
  // while the drop-tail limit is never reached, every loss must be
  // accounted, and the run must stay seed-deterministic.
  const auto run = [](std::uint64_t seed) {
    Scenario s = topo::make_fig1_network(
        topo::LinkParams{.rate_bps = 1e6, .delay_s = 1e-3, .queue_packets = 100});
    for (topo::LinkId l = 0; l < s.topology.link_count(); ++l) {
      s.topology.link(l).params.red =
          topo::RedParams{.min_th = 2.0, .max_th = 8.0, .max_p = 0.5,
                          .weight = 0.2};
    }
    routing::Controller ctrl(s.topology);
    NetworkConfig config;
    config.seed = seed;
    Network net(s.topology, ctrl, config);
    const auto r = ctrl.encode_scenario(s.route, ProtectionLevel::kUnprotected);
    for (int i = 0; i < 80; ++i) {
      Packet p;
      p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
      net.edge_at(r.src_edge).stamp(p, r, 1000);
      net.inject(r.src_edge, std::move(p));
    }
    net.events().run_all();
    return net.counters();
  };
  const NetworkCounters counters = run(7);
  EXPECT_GT(counters.drop_aqm_early, 0u);
  EXPECT_EQ(counters.drop_queue_overflow, 0u);  // RED kicks in well below 100
  EXPECT_GT(counters.delivered, 0u);
  EXPECT_EQ(counters.delivered + counters.total_drops(), 80u);
  // Identical seed, identical drop pattern.
  EXPECT_EQ(run(7).drop_aqm_early, counters.drop_aqm_early);
}

TEST_F(NetFixture, RedAbsentMeansPureDropTail) {
  // Default links carry no RED config: flooding may overflow the queue,
  // but the AQM counter must stay exactly zero.
  Scenario s = topo::make_fig1_network(
      topo::LinkParams{.rate_bps = 1e6, .delay_s = 1e-3, .queue_packets = 5});
  routing::Controller ctrl(s.topology);
  Network net(s.topology, ctrl, {});
  const auto r = ctrl.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
    net.edge_at(r.src_edge).stamp(p, r, 1000);
    net.inject(r.src_edge, std::move(p));
  }
  net.events().run_all();
  EXPECT_EQ(net.counters().drop_aqm_early, 0u);
  EXPECT_GT(net.counters().drop_queue_overflow, 0u);
}

TEST_F(NetFixture, TtlGuardsInfiniteWalks) {
  NetworkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  config.max_hops = 16;
  config.wrong_edge_policy = dataplane::WrongEdgePolicy::kBounceBack;
  Network net = make_network(config);
  // Sever the destination entirely: SW11's links to D and SW5 and SW7 stay,
  // but fail both SW7-SW11 and SW5-SW11 so nothing reaches D; AVP then
  // ping-pongs forever — the TTL must reap the packet.
  const auto r = route(ProtectionLevel::kPartial);
  net.fail_link_at(0.0, "SW7", "SW11");
  net.fail_link_at(0.0, "SW5", "SW11");
  net.events().run_until(0.001);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().drop_ttl, 1u);
}

TEST_F(NetFixture, DetectionDelayBlackholesUntilItFires) {
  NetworkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  config.failure_detection_delay_s = 0.050;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kPartial);
  std::uint64_t delivered = 0;
  net.set_delivery_handler(r.dst_edge, [&](const Packet&) { ++delivered; });
  net.fail_link_at(1.0, "SW7", "SW11");
  // Probe during the undetected window: blackholed into the dead link.
  net.events().run_until(1.010);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_until(1.049);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.counters().drop_link_failed, 1u);
  // After detection fires, deflection takes over.
  net.events().run_until(1.2);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(delivered, 1u);
  EXPECT_GT(net.counters().deflections, 0u);
}

TEST_F(NetFixture, RepairRacingDetectionIsCancelled) {
  NetworkConfig config;
  config.failure_detection_delay_s = 0.100;
  Network net = make_network(config);
  const auto r = route(ProtectionLevel::kUnprotected);
  net.fail_link_at(1.0, "SW7", "SW11");
  net.repair_link_at(1.020, "SW7", "SW11");  // repaired before detection
  std::uint64_t delivered = 0;
  net.set_delivery_handler(r.dst_edge, [&](const Packet&) { ++delivered; });
  // Well after the (cancelled) detection would have fired: the link must
  // be up and traffic must flow on the primary path.
  net.events().run_until(1.5);
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(net.counters().deflections, 0u);
}

TEST_F(NetFixture, TraceHookSeesFullLifecycle) {
  Network net = make_network();
  const auto r = route(ProtectionLevel::kUnprotected);
  std::vector<TraceEvent::Kind> kinds;
  net.set_trace_hook([&](const TraceEvent& e) { kinds.push_back(e.kind); });
  net.inject(r.src_edge, probe(r, net));
  net.events().run_all();
  ASSERT_EQ(kinds.size(), 5u);  // inject + 3 hops + deliver
  EXPECT_EQ(kinds.front(), TraceEvent::Kind::kInject);
  EXPECT_EQ(kinds.back(), TraceEvent::Kind::kDeliver);
}

TEST_F(NetFixture, WrongEdgeReencodeCountsAndDelivers) {
  // Force a wrong-edge arrival: route to D but with a route ID whose
  // residue at SW4 points back at S. AVP follows the residue even into the
  // input port (NIP would refuse to forward back to S).
  NetworkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  Network net = make_network(config);
  const topo::Topology& t = net.topology();
  Packet p;
  p.transport = dataplane::Datagram{0};
  // Residue at SW4 = 1 (port 1 = S). Any such value works: 1 mod 4.
  p.kar.route_id = rns::BigUint(1);
  p.src_edge = t.at("S");
  p.dst_edge = t.at("D");
  p.size_bytes = 200;
  net.inject(t.at("S"), std::move(p));
  net.events().run_all();
  EXPECT_EQ(net.counters().reencodes, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST_F(NetFixture, InjectRejectsNonEdgeNodes) {
  Network net = make_network();
  Packet p;
  EXPECT_THROW(net.inject(net.topology().at("SW4"), std::move(p)),
               std::invalid_argument);
}

TEST_F(NetFixture, FailLinkAtRejectsNonAdjacent) {
  Network net = make_network();
  EXPECT_THROW(net.fail_link_at(0.0, "SW4", "SW5"), std::invalid_argument);
}

TEST_F(NetFixture, DeterministicAcrossIdenticalSeeds) {
  const auto run = [&](std::uint64_t seed) {
    Scenario fresh = topo::make_fig1_network();
    routing::Controller ctrl(fresh.topology);
    NetworkConfig config;
    config.technique = DeflectionTechnique::kHotPotato;
    config.seed = seed;
    Network net(fresh.topology, ctrl, config);
    const auto r = ctrl.encode_scenario(fresh.route, ProtectionLevel::kUnprotected);
    net.fail_link_at(0.0, "SW7", "SW11");
    net.events().run_until(0.001);
    std::uint64_t total_hops = 0;
    net.set_delivery_handler(r.dst_edge,
                             [&](const Packet& p) { total_hops += p.hop_count; });
    for (int i = 0; i < 20; ++i) {
      Packet p;
      p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
      net.edge_at(r.src_edge).stamp(p, r, 100);
      net.inject(r.src_edge, std::move(p));
    }
    net.events().run_all();
    return total_hops;
  };
  EXPECT_EQ(run(99), run(99));
  // Not a hard guarantee, but astronomically likely with random walks:
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace kar::sim

// Strict numeric parsing (common/parse.hpp): whole-string consumption,
// overflow rejection, and locale independence. The last one is the bug
// class that motivated the module — std::stod/stoull honour the global
// locale and accept trailing garbage, so "3abc" parsed as 3 and a
// comma-decimal locale silently corrupted machine formats.
#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <string>

namespace kar::common {
namespace {

/// Installs a global locale whose numpunct uses ',' as the decimal point
/// and '.' as the thousands separator (the classic de_DE shape) for the
/// lifetime of the test, restoring the previous global on destruction.
/// Built on top of the classic locale so it needs no OS locale data.
class ScopedCommaLocale {
 public:
  ScopedCommaLocale()
      : previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaNumpunct))) {}
  ~ScopedCommaLocale() { std::locale::global(previous_); }
  ScopedCommaLocale(const ScopedCommaLocale&) = delete;
  ScopedCommaLocale& operator=(const ScopedCommaLocale&) = delete;

 private:
  struct CommaNumpunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  std::locale previous_;
};

TEST(ParseU64, AcceptsCanonicalDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("44"), 44u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseU64, RejectsTrailingGarbage) {
  // The std::stoull behaviour this replaced: "3abc" parsed as 3.
  EXPECT_FALSE(parse_u64("3abc"));
  EXPECT_FALSE(parse_u64("3 "));
  EXPECT_FALSE(parse_u64(" 3"));
  EXPECT_FALSE(parse_u64("3.0"));
}

TEST(ParseU64, RejectsSignsEmptyAndOverflow) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64
}

TEST(ParseI64, AcceptsNegativesRejectsPlusAndJunk) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_FALSE(parse_i64("+42"));
  EXPECT_FALSE(parse_i64("42x"));
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("9223372036854775808"));  // INT64_MAX + 1
}

TEST(ParseDouble, AcceptsFixedAndScientific) {
  EXPECT_EQ(parse_double("3.5"), 3.5);
  EXPECT_EQ(parse_double("-0.25"), -0.25);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_EQ(parse_double("2.5e-4"), 2.5e-4);
  EXPECT_EQ(parse_double("7"), 7.0);
}

TEST(ParseDouble, RejectsTrailingGarbageAndCommas) {
  EXPECT_FALSE(parse_double("1.5abc"));
  EXPECT_FALSE(parse_double("1e3junk"));
  EXPECT_FALSE(parse_double("3,5"));
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("+1.5"));
}

TEST(ParseDouble, IgnoresCommaDecimalGlobalLocale) {
  // Under the locale-sensitive std::stod this replaced, a comma-decimal
  // global locale made "3.5" stop at the '.' (yielding 3 plus trailing
  // garbage) — the exact corruption mode for golden traces.
  ScopedCommaLocale comma_locale;
  EXPECT_EQ(parse_double("3.5"), 3.5);
  EXPECT_EQ(parse_double("2.5e-4"), 2.5e-4);
  EXPECT_FALSE(parse_double("3,5"));
  EXPECT_EQ(parse_u64("1000000"), 1000000u);
  EXPECT_FALSE(parse_u64("1.000.000"));
}

}  // namespace
}  // namespace kar::common

#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace kar::topo {
namespace {

Topology make_triangle() {
  Topology t;
  t.add_switch("A", 5);
  t.add_switch("B", 7);
  t.add_switch("C", 11);
  t.add_link(t.at("A"), t.at("B"));
  t.add_link(t.at("B"), t.at("C"));
  t.add_link(t.at("C"), t.at("A"));
  return t;
}

TEST(Topology, AddAndLookup) {
  Topology t;
  const NodeId sw = t.add_switch("SW7", 7);
  const NodeId edge = t.add_edge_node("AS1");
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.kind(sw), NodeKind::kCoreSwitch);
  EXPECT_EQ(t.kind(edge), NodeKind::kEdgeNode);
  EXPECT_EQ(t.switch_id(sw), 7u);
  EXPECT_EQ(t.name(edge), "AS1");
  EXPECT_EQ(t.find("SW7"), sw);
  EXPECT_EQ(t.find_switch(7), sw);
  EXPECT_FALSE(t.find("nope").has_value());
  EXPECT_FALSE(t.find_switch(13).has_value());
}

TEST(Topology, AtThrowsOnMissingName) {
  Topology t;
  EXPECT_THROW(t.at("ghost"), std::out_of_range);
}

TEST(Topology, RejectsDuplicateNamesAndIds) {
  Topology t;
  t.add_switch("SW7", 7);
  EXPECT_THROW(t.add_switch("SW7", 11), std::invalid_argument);
  EXPECT_THROW(t.add_switch("other", 7), std::invalid_argument);
  EXPECT_THROW(t.add_edge_node("SW7"), std::invalid_argument);
}

TEST(Topology, RejectsInvalidSwitchIds) {
  Topology t;
  EXPECT_THROW(t.add_switch("bad0", 0), std::invalid_argument);
  EXPECT_THROW(t.add_switch("bad1", 1), std::invalid_argument);
}

TEST(Topology, SwitchIdOnEdgeNodeThrows) {
  Topology t;
  const NodeId e = t.add_edge_node("E");
  EXPECT_THROW(t.switch_id(e), std::logic_error);
}

TEST(Topology, PortIndicesFollowLinkCreationOrder) {
  Topology t;
  const NodeId a = t.add_switch("A", 5);
  const NodeId b = t.add_switch("B", 7);
  const NodeId c = t.add_switch("C", 11);
  t.add_link(a, b);  // A port 0, B port 0
  t.add_link(a, c);  // A port 1, C port 0
  EXPECT_EQ(t.port_count(a), 2u);
  EXPECT_EQ(t.neighbor(a, 0), b);
  EXPECT_EQ(t.neighbor(a, 1), c);
  EXPECT_EQ(t.port_to(a, c), 1u);
  EXPECT_EQ(t.port_to(c, a), 0u);
  EXPECT_FALSE(t.port_to(b, c).has_value());
  EXPECT_FALSE(t.neighbor(a, 9).has_value());
}

TEST(Topology, RejectsSelfLoopsAndParallelLinks) {
  Topology t;
  const NodeId a = t.add_switch("A", 5);
  const NodeId b = t.add_switch("B", 7);
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
  t.add_link(a, b);
  EXPECT_THROW(t.add_link(b, a), std::invalid_argument);
}

TEST(Topology, LinkBetweenFindsEitherDirection) {
  Topology t = make_triangle();
  EXPECT_TRUE(t.link_between(t.at("A"), t.at("B")).has_value());
  EXPECT_TRUE(t.link_between(t.at("B"), t.at("A")).has_value());
  EXPECT_EQ(t.link_between(t.at("A"), t.at("B")),
            t.link_between(t.at("B"), t.at("A")));
}

TEST(Topology, FailureStateAffectsAvailability) {
  Topology t = make_triangle();
  const NodeId a = t.at("A");
  EXPECT_EQ(t.available_ports(a).size(), 2u);
  const LinkId failed = t.fail_link("A", "B");
  EXPECT_FALSE(t.link_up(failed));
  EXPECT_FALSE(t.port_available(a, 0));
  EXPECT_TRUE(t.port_available(a, 1));
  EXPECT_EQ(t.available_ports(a).size(), 1u);
  t.repair_all();
  EXPECT_TRUE(t.link_up(failed));
  EXPECT_EQ(t.available_ports(a).size(), 2u);
}

TEST(Topology, FailLinkOnNonAdjacentThrows) {
  Topology t;
  t.add_switch("A", 5);
  t.add_switch("B", 7);
  EXPECT_THROW(t.fail_link("A", "B"), std::invalid_argument);
}

TEST(Topology, NeighborsEnumeratesAllPorts) {
  Topology t = make_triangle();
  const auto neighbors = t.neighbors(t.at("B"));
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].first, 0u);
  EXPECT_EQ(neighbors[0].second, t.at("A"));
  EXPECT_EQ(neighbors[1].second, t.at("C"));
}

TEST(Topology, NodesOfKindAndSwitchIds) {
  Topology t = make_triangle();
  t.add_edge_node("E1");
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kCoreSwitch).size(), 3u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kEdgeNode).size(), 1u);
  EXPECT_EQ(t.all_switch_ids(), (std::vector<SwitchId>{5, 7, 11}));
}

TEST(Topology, BadHandlesThrow) {
  Topology t = make_triangle();
  EXPECT_THROW(t.kind(99), std::out_of_range);
  EXPECT_THROW(t.link(99), std::out_of_range);
  EXPECT_THROW(t.add_link(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace kar::topo

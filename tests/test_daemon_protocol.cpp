// Protocol tests for the kard daemon (src/daemon/protocol.hpp):
//   * request-line parsing per verb — arity, key parsing, whitespace
//     tolerance, structured error codes;
//   * frame codec — encode/decode round trip under arbitrary chunking,
//     zero/oversized length prefixes are fatal, buffer compaction;
//   * batched-verb semantics against a live Kard — duplicate-withdraw
//     bursts stay linear and exact, per-verb/coalesced/held counters are
//     exact, and the cross-epoch coalescing window holds a flap storm to
//     one reconvergence (answering held requests at the drain, including
//     the shutdown drain);
//   * fuzz walls — random bytes and random malformed lines never crash the
//     parser; a live SocketServer answers garbage payloads with structured
//     errors and the connection survives to serve the next valid request.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "support/testsupport.hpp"

namespace kar {
namespace {

using daemon::encode_frame;
using daemon::FrameDecoder;
using daemon::parse_request;
using daemon::ParsedRequest;
using daemon::Verb;

// -- parse_request ------------------------------------------------------------

TEST(Protocol, ParsesEveryVerb) {
  EXPECT_EQ(parse_request("ping").request.verb, Verb::kPing);
  EXPECT_EQ(parse_request("encode A B").request.verb, Verb::kEncode);
  EXPECT_EQ(parse_request("install A B").request.verb, Verb::kInstall);
  EXPECT_EQ(parse_request("withdraw 7").request.verb, Verb::kWithdraw);
  EXPECT_EQ(parse_request("query 7").request.verb, Verb::kQuery);
  EXPECT_EQ(parse_request("link-up A B").request.verb, Verb::kLinkUp);
  EXPECT_EQ(parse_request("link-down A B").request.verb, Verb::kLinkDown);
  EXPECT_EQ(parse_request("snapshot").request.verb, Verb::kSnapshot);
  EXPECT_EQ(parse_request("snapshot /tmp/x").request.verb, Verb::kSnapshot);
  EXPECT_EQ(parse_request("compact").request.verb, Verb::kCompact);
  EXPECT_EQ(parse_request("stats").request.verb, Verb::kStats);
  EXPECT_EQ(parse_request("metrics").request.verb, Verb::kMetrics);
  EXPECT_EQ(parse_request("shutdown").request.verb, Verb::kShutdown);
}

TEST(Protocol, CapturesArguments) {
  const ParsedRequest p = parse_request("install H-SW7 H-SW73");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.a, "H-SW7");
  EXPECT_EQ(p.request.b, "H-SW73");
  const ParsedRequest q = parse_request("query 18446744073709551615");
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.request.key, UINT64_MAX);
  const ParsedRequest s = parse_request("snapshot /tmp/store.snap");
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.request.path, "/tmp/store.snap");
}

TEST(Protocol, ToleratesWhitespaceVariants) {
  EXPECT_TRUE(parse_request("  install   A\tB \r").ok);
  EXPECT_TRUE(parse_request("\tping\r").ok);
  const ParsedRequest p = parse_request("  query  42\r");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.key, 42u);
}

TEST(Protocol, StructuredErrors) {
  EXPECT_EQ(parse_request("").error_code, "empty");
  EXPECT_EQ(parse_request("   \t ").error_code, "empty");
  EXPECT_EQ(parse_request("frobnicate A B").error_code, "unknown-verb");
  EXPECT_EQ(parse_request("install A").error_code, "arity");
  EXPECT_EQ(parse_request("install A B C").error_code, "arity");
  EXPECT_EQ(parse_request("ping extra").error_code, "arity");
  EXPECT_EQ(parse_request("withdraw").error_code, "arity");
  EXPECT_EQ(parse_request("withdraw banana").error_code, "bad-key");
  EXPECT_EQ(parse_request("query -3").error_code, "bad-key");
  EXPECT_EQ(parse_request("query 99999999999999999999999").error_code,
            "bad-key");
  // Verbs are case-sensitive (the protocol is machine-to-machine).
  EXPECT_EQ(parse_request("PING").error_code, "unknown-verb");
}

TEST(Protocol, ErrorResponseShape) {
  EXPECT_EQ(daemon::error_response("code", "msg"),
            R"({"ok":false,"code":"code","error":"msg"})");
  // Quotes and backslashes in the message must be escaped valid-JSON.
  EXPECT_EQ(daemon::error_response("c", "a\"b\\c"),
            R"({"ok":false,"code":"c","error":"a\"b\\c"})");
}

// -- frame codec --------------------------------------------------------------

TEST(Frames, RoundTripUnderArbitraryChunking) {
  auto rng = testsupport::make_rng(7201, "Frames.Chunking");
  std::vector<std::string> payloads = {"ping", "query 7", std::string(1, 'x'),
                                       std::string(60000, 'y')};
  std::string wire;
  for (const auto& p : payloads) wire += encode_frame(p);
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < wire.size()) {
      const std::size_t n =
          std::min(wire.size() - i, 1 + rng.below(4096));
      decoder.feed(std::string_view(wire).substr(i, n));
      i += n;
      std::string payload, error;
      while (decoder.next(payload, error) == FrameDecoder::Status::kFrame) {
        out.push_back(payload);
      }
    }
    EXPECT_EQ(out, payloads);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(Frames, ZeroLengthIsFatal) {
  FrameDecoder decoder;
  decoder.feed(std::string(4, '\0'));
  std::string payload, error;
  EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFatal);
  EXPECT_NE(error.find("framing"), std::string::npos);
  // Fatal is sticky.
  decoder.feed(encode_frame("ping"));
  EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFatal);
}

TEST(Frames, OversizedLengthIsFatal) {
  FrameDecoder decoder;
  const std::uint32_t n = daemon::kMaxFrameBytes + 1;
  std::string prefix;
  prefix.push_back(static_cast<char>((n >> 24) & 0xff));
  prefix.push_back(static_cast<char>((n >> 16) & 0xff));
  prefix.push_back(static_cast<char>((n >> 8) & 0xff));
  prefix.push_back(static_cast<char>(n & 0xff));
  decoder.feed(prefix);
  std::string payload, error;
  EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFatal);
}

TEST(Frames, EncodeRejectsOversizedPayload) {
  EXPECT_THROW((void)encode_frame(std::string(daemon::kMaxFrameBytes + 1, 'z')),
               std::length_error);
  EXPECT_NO_THROW((void)encode_frame(std::string(daemon::kMaxFrameBytes, 'z')));
}

TEST(Frames, PartialPrefixNeedsMore) {
  FrameDecoder decoder;
  const std::string wire = encode_frame("hello");
  std::string payload, error;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(std::string_view(wire).substr(i, 1));
    EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kNeedMore);
  }
  decoder.feed(std::string_view(wire).substr(wire.size() - 1));
  EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "hello");
}

// -- batched-verb semantics & counters ---------------------------------------

/// Value of the first sample line starting with `needle` in the daemon's
/// Prometheus text (-1 when absent). Pass the full series name, labels
/// included, e.g. `kar_daemon_requests_total{verb="withdraw"}`.
double scrape_value(daemon::Kard& kard, const std::string& needle) {
  std::istringstream in(kard.prometheus_text());
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(needle, 0) == 0 && line[0] != '#') {
      return std::stod(line.substr(line.find_last_of(' ') + 1));
    }
  }
  return -1.0;
}

/// Integer field from a JSON response (`"held_links":3` → 3; -1 if absent).
long json_int_field(const std::string& json, const std::string& field) {
  const std::string key = "\"" + field + "\":";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return -1;
  return std::stol(json.substr(at + key.size()));
}

TEST(DaemonBatch, DuplicateWithdrawBurstIsLinearAndExact) {
  daemon::KardConfig config;
  config.topology = "fig1";
  config.flush_interval_s = 0.02;
  config.snapshot_on_shutdown = false;
  daemon::Kard kard(config);
  kard.start();

  // 5000 routes in one group (S -> D): dense keys 0..4999.
  const std::size_t routes = 5000;
  {
    std::vector<std::future<std::string>> installs;
    installs.reserve(routes);
    for (std::size_t i = 0; i < routes; ++i) {
      installs.push_back(kard.submit_line("install S D"));
    }
    for (std::size_t i = 0; i < routes; ++i) {
      const std::string response = installs[i].get();
      ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
      ASSERT_EQ(json_int_field(response, "key"), static_cast<long>(i));
    }
  }

  // The burst: every key once, plus 5000 repeats of key 0 — 10k withdraw
  // requests. The dedup scan used to be O(N²) in the accepted-withdraw
  // count per batch; it must now be a seen-set lookup, and the whole burst
  // must clear in seconds even on a sanitizer build.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<std::string>> burst;
  burst.reserve(2 * routes);
  for (std::size_t i = 0; i < routes; ++i) {
    burst.push_back(kard.submit_line("withdraw " + std::to_string(i)));
  }
  for (std::size_t i = 0; i < routes; ++i) {
    burst.push_back(kard.submit_line("withdraw 0"));
  }
  std::size_t ok = 0;
  std::size_t already = 0;
  for (auto& f : burst) {
    const std::string response = f.get();
    if (response.find("\"ok\":true") != std::string::npos) {
      ++ok;
    } else {
      ASSERT_NE(response.find("\"code\":\"already-withdrawn\""),
                std::string::npos)
          << response;
      ++already;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Exact: each key withdraws exactly once no matter how the burst lands
  // in batches (in-batch dedup via the seen-set, cross-batch via the
  // store's withdrawn flag).
  EXPECT_EQ(ok, routes);
  EXPECT_EQ(already, routes);
  EXPECT_LT(wall_s, 5.0) << "withdraw dedup is no longer linear";

  // Per-verb and error counters saw every request.
  EXPECT_EQ(scrape_value(kard, "kar_daemon_requests_total{verb=\"withdraw\"}"),
            static_cast<double>(2 * routes));
  EXPECT_GE(scrape_value(kard, "kar_daemon_request_errors_total"),
            static_cast<double>(routes));
  kard.stop();
}

TEST(DaemonCoalescing, PerBatchNettingCountsAbsorbedExactly) {
  daemon::KardConfig config;
  config.topology = "fig1";
  // Long flush timer: back-to-back submissions below land in one batch.
  config.flush_interval_s = 0.05;
  config.snapshot_on_shutdown = false;
  daemon::Kard kard(config);
  kard.start();

  // Same-batch flap: down + up nets to nothing — no epoch, both answered
  // with the final (unchanged) state, both counted absorbed.
  auto down = kard.submit_line("link-down SW4 SW7");
  auto up = kard.submit_line("link-up SW4 SW7");
  for (std::string response : {down.get(), up.get()}) {
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    EXPECT_NE(response.find("\"up\":true"), std::string::npos) << response;
    EXPECT_NE(response.find("\"changed\":false"), std::string::npos)
        << response;
  }
  EXPECT_EQ(kard.epochs_applied(), 0u);
  EXPECT_EQ(scrape_value(kard, "kar_daemon_coalesced_events_total"), 2.0);

  // A real transition: one event, one epoch, nothing absorbed.
  const std::string real = kard.execute_line("link-down SW4 SW7");
  EXPECT_NE(real.find("\"up\":false"), std::string::npos) << real;
  EXPECT_NE(real.find("\"changed\":true"), std::string::npos) << real;
  EXPECT_EQ(kard.epochs_applied(), 1u);
  EXPECT_EQ(scrape_value(kard, "kar_daemon_coalesced_events_total"), 2.0);

  // Already-in-state: a down for a link that is already down is absorbed
  // churn — exactly +1, no epoch (the counter used to miss these).
  const std::string redundant = kard.execute_line("link-down SW4 SW7");
  EXPECT_NE(redundant.find("\"up\":false"), std::string::npos) << redundant;
  EXPECT_NE(redundant.find("\"changed\":false"), std::string::npos)
      << redundant;
  EXPECT_EQ(kard.epochs_applied(), 1u);
  EXPECT_EQ(scrape_value(kard, "kar_daemon_coalesced_events_total"), 3.0);

  EXPECT_EQ(scrape_value(kard,
                         "kar_daemon_requests_total{verb=\"link-down\"}"),
            3.0);
  EXPECT_EQ(scrape_value(kard, "kar_daemon_requests_total{verb=\"link-up\"}"),
            1.0);
  kard.stop();
}

TEST(DaemonCoalescing, WindowHoldsFlapStormToOneEpoch) {
  daemon::KardConfig config;
  config.topology = "fig1";
  config.flush_interval_s = 0.001;
  config.coalesce_window_s = 0.25;
  config.snapshot_on_shutdown = false;
  daemon::Kard kard(config);
  kard.start();

  // Five alternating transitions of one link, spread over many batches
  // (the fast flush timer flushes between submissions).
  std::vector<std::future<std::string>> storm;
  for (int i = 0; i < 5; ++i) {
    storm.push_back(kard.submit_line(i % 2 == 0 ? "link-down SW4 SW7"
                                                : "link-up SW4 SW7"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The storm is held open: stats report the held requests, queries still
  // answer immediately (zero-downtime), and no epoch has run yet.
  long held = 0;
  for (int i = 0; i < 100 && held <= 0; ++i) {
    held = json_int_field(kard.execute_line("stats"), "held_links");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(held, 1);
  EXPECT_EQ(kard.epochs_applied(), 0u);

  // All five answer at the drain with the net outcome: link down (odd
  // transition count), marked changed. One reconvergence for the storm.
  for (auto& f : storm) {
    const std::string response = f.get();
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    EXPECT_NE(response.find("\"up\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("\"changed\":true"), std::string::npos)
        << response;
  }
  EXPECT_EQ(kard.epochs_applied(), 1u);
  EXPECT_EQ(scrape_value(kard, "kar_daemon_coalesced_events_total"), 4.0);
  EXPECT_EQ(json_int_field(kard.execute_line("stats"), "held_links"), 0);
  kard.stop();
}

TEST(DaemonCoalescing, StopDrainsTheWindow) {
  daemon::KardConfig config;
  config.topology = "fig1";
  config.flush_interval_s = 0.001;
  config.coalesce_window_s = 30.0;  // would outlive the test by far
  config.snapshot_on_shutdown = false;
  daemon::Kard kard(config);
  kard.start();

  auto held = kard.submit_line("link-down SW4 SW7");
  // stop() must close the window: the held promise resolves with the net
  // transition applied, never abandoned.
  kard.stop();
  const std::string response = held.get();
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"up\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"changed\":true"), std::string::npos) << response;
  EXPECT_EQ(kard.epochs_applied(), 1u);
}

// -- fuzz walls ---------------------------------------------------------------

TEST(ProtocolFuzz, RandomLinesNeverCrashTheParser) {
  auto rng = testsupport::make_rng(7202, "ProtocolFuzz.Parser");
  for (int trial = 0; trial < 5000; ++trial) {
    std::string line;
    const std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.below(256)));
    }
    const ParsedRequest p = parse_request(line);
    if (!p.ok) {
      EXPECT_FALSE(p.error_code.empty());
      // The structured error must render as a response line.
      EXPECT_FALSE(daemon::error_response(p.error_code, p.error).empty());
    }
  }
}

TEST(ProtocolFuzz, RandomBytesNeverCrashTheDecoder) {
  auto rng = testsupport::make_rng(7203, "ProtocolFuzz.Decoder");
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder;
    std::string payload, error;
    bool fatal = false;
    for (int chunk = 0; chunk < 16 && !fatal; ++chunk) {
      std::string data;
      const std::size_t len = rng.below(512);
      for (std::size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<char>(rng.below(256)));
      }
      decoder.feed(data);
      for (;;) {
        const auto status = decoder.next(payload, error);
        if (status == FrameDecoder::Status::kFrame) continue;
        if (status == FrameDecoder::Status::kFatal) fatal = true;
        break;
      }
    }
  }
}

// One tiny daemon shared by the socket wall (fig1 keeps it instant).
daemon::KardConfig tiny_config() {
  daemon::KardConfig config;
  config.topology = "fig1";
  config.metrics = false;
  config.flush_interval_s = 0.001;
  return config;
}

/// Blocking client for the framed protocol.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(std::string_view data) {
    ASSERT_EQ(::write(fd_, data.data(), data.size()),
              static_cast<ssize_t>(data.size()));
  }

  /// Reads one response frame (empty string on EOF/closed connection).
  std::string read_frame() {
    std::string payload, error;
    char chunk[4096];
    for (;;) {
      const auto status = decoder_.next(payload, error);
      if (status == FrameDecoder::Status::kFrame) return payload;
      if (status == FrameDecoder::Status::kFatal) return "";
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      decoder_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
  }

  std::string request(std::string_view line) {
    send_raw(encode_frame(line));
    return read_frame();
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(SocketFuzz, MalformedPayloadsGetErrorsAndConnectionSurvives) {
  auto rng = testsupport::make_rng(7204, "SocketFuzz.Payloads");
  daemon::Kard kard(tiny_config());
  kard.start();
  {
    daemon::SocketServer server(kard, 0, 2);
    Client client(server.port());
    for (int trial = 0; trial < 100; ++trial) {
      std::string line;
      const std::size_t len = 1 + rng.below(32);
      for (std::size_t i = 0; i < len; ++i) {
        // Printable-ish garbage (framing stays valid; payloads malformed).
        line.push_back(static_cast<char>(' ' + rng.below(95)));
      }
      const std::string response = client.request(line);
      ASSERT_FALSE(response.empty()) << "connection died on: " << line;
      EXPECT_EQ(response.find("{\"ok\":"), 0u) << response;
    }
    // The same connection still serves a well-formed request.
    const std::string pong = client.request("ping");
    EXPECT_NE(pong.find("\"pong\":true"), std::string::npos) << pong;
    server.stop();
  }
  kard.stop();
}

TEST(SocketFuzz, FatalFramingClosesWithStructuredError) {
  daemon::Kard kard(tiny_config());
  kard.start();
  {
    daemon::SocketServer server(kard, 0, 2);
    Client client(server.port());
    // Valid request first — the frame path works.
    EXPECT_NE(client.request("ping").find("\"pong\""), std::string::npos);
    // Zero length prefix: fatal. Expect one final error frame, then EOF.
    client.send_raw(std::string(4, '\0'));
    const std::string error = client.read_frame();
    EXPECT_NE(error.find("\"code\":\"framing\""), std::string::npos) << error;
    EXPECT_EQ(client.read_frame(), "");
    // A fresh connection is unaffected.
    Client again(server.port());
    EXPECT_NE(again.request("ping").find("\"pong\""), std::string::npos);
    server.stop();
  }
  kard.stop();
}

}  // namespace
}  // namespace kar

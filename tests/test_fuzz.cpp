// Randomized cross-checks: BigUint arithmetic against native 128-bit
// references, topology-serialization round trips on random graphs, and
// Yen's k-shortest-paths structural invariants on the RNP backbone.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "support/testsupport.hpp"
#include "routing/paths.hpp"
#include "rns/biguint.hpp"
#include "topology/builders.hpp"
#include "topology/io.hpp"

namespace kar {
namespace {

using rns::BigUint;

unsigned __int128 to_u128(const BigUint& value) {
  unsigned __int128 out = 0;
  const auto& limbs = value.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    out = (out << 32) | limbs[i];
  }
  return out;
}

class BigUintFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUintFuzz, ArithmeticMatches128BitReference) {
  auto rng = testsupport::make_rng(GetParam(), "BigUintFuzz.Arithmetic");
  for (int iter = 0; iter < 300; ++iter) {
    // Operands sized so that products stay within 128 bits.
    const std::uint64_t a64 = rng() >> static_cast<int>(rng.below(60));
    const std::uint64_t b64 = rng() >> static_cast<int>(rng.below(60));
    const auto a = static_cast<unsigned __int128>(a64);
    const auto b = static_cast<unsigned __int128>(b64);
    const BigUint big_a(a64);
    const BigUint big_b(b64);

    EXPECT_EQ(to_u128(big_a + big_b), a + b);
    EXPECT_EQ(to_u128(big_a * big_b), a * b);
    if (a64 >= b64) {
      EXPECT_EQ(to_u128(big_a - big_b), a - b);
    }
    if (b64 != 0) {
      const auto [quotient, remainder] = big_a.divmod(big_b);
      EXPECT_EQ(to_u128(quotient), a / b);
      EXPECT_EQ(to_u128(remainder), a % b);
      EXPECT_EQ(big_a.mod_u64(b64), static_cast<std::uint64_t>(a % b));
    }
    const auto shift = rng.below(63);
    EXPECT_EQ(to_u128(big_a << shift), a << shift);
    EXPECT_EQ(to_u128(big_a >> shift), a >> shift);
  }
}

TEST_P(BigUintFuzz, MultiLimbDivModReconstructs) {
  auto rng = testsupport::make_rng(GetParam() ^ 0xFACEULL, "BigUintFuzz.DivMod");
  for (int iter = 0; iter < 40; ++iter) {
    // Build ~160-bit dividend and ~80-bit divisor from random pieces.
    BigUint n = (BigUint(rng()) << 96) + (BigUint(rng()) << 48) + BigUint(rng());
    BigUint d = (BigUint(rng() | 1) << 16) + BigUint(rng());
    const auto [quotient, remainder] = n.divmod(d);
    EXPECT_EQ(quotient * d + remainder, n);
    EXPECT_LT(remainder, d);
    // String round trip on the same values.
    EXPECT_EQ(BigUint::from_string(n.to_string()), n);
    EXPECT_EQ(BigUint::from_string("0x" + n.to_hex()), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUintFuzz, ::testing::Range<std::uint64_t>(1, 9));

class TopologyIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyIoFuzz, RandomTopologiesRoundTripThroughText) {
  const topo::Scenario s = topo::make_random_connected(
      8 + GetParam() % 10, 4 + GetParam() % 7, GetParam());
  const std::string text = topo::serialize_topology(s.topology);
  const topo::Topology parsed = topo::parse_topology_string(text);
  ASSERT_EQ(parsed.node_count(), s.topology.node_count());
  ASSERT_EQ(parsed.link_count(), s.topology.link_count());
  for (topo::NodeId n = 0; n < s.topology.node_count(); ++n) {
    EXPECT_EQ(parsed.kind(n), s.topology.kind(n));
    EXPECT_EQ(parsed.name(n), s.topology.name(n));
    EXPECT_EQ(parsed.port_count(n), s.topology.port_count(n));
    for (topo::PortIndex p = 0; p < s.topology.port_count(n); ++p) {
      EXPECT_EQ(parsed.neighbor(n, p), s.topology.neighbor(n, p));
    }
  }
  // Serialization is deterministic (stable output for tooling).
  EXPECT_EQ(topo::serialize_topology(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyIoFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(KspStructural, RnpPathsAreSimpleDistinctAndOrdered) {
  const topo::Scenario s = topo::make_rnp28();
  const auto paths = routing::k_shortest_paths(
      s.topology, s.topology.at("AS1"), s.topology.at("AS-SP"), 12);
  ASSERT_GE(paths.size(), 6u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Endpoints correct.
    EXPECT_EQ(paths[i].nodes.front(), s.topology.at("AS1"));
    EXPECT_EQ(paths[i].nodes.back(), s.topology.at("AS-SP"));
    // Consecutive nodes adjacent; intermediate nodes are core switches.
    for (std::size_t j = 0; j + 1 < paths[i].nodes.size(); ++j) {
      EXPECT_TRUE(s.topology
                      .link_between(paths[i].nodes[j], paths[i].nodes[j + 1])
                      .has_value());
      if (j > 0) {
        EXPECT_EQ(s.topology.kind(paths[i].nodes[j]),
                  topo::NodeKind::kCoreSwitch);
      }
    }
    // Loopless.
    auto sorted = paths[i].nodes;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    // Ordered by cost, pairwise distinct.
    if (i > 0) {
      EXPECT_GE(paths[i].cost, paths[i - 1].cost);
    }
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes, paths[j].nodes);
    }
    // Cost equals hop count under the default metric.
    EXPECT_DOUBLE_EQ(paths[i].cost,
                     static_cast<double>(paths[i].nodes.size() - 1));
  }
}

}  // namespace
}  // namespace kar

#include "sim/trace_csv.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <sstream>
#include <string>
#include <utility>

#include "routing/controller.hpp"
#include "topology/builders.hpp"

namespace kar::sim {
namespace {

using topo::ProtectionLevel;
using topo::Scenario;

TEST(TraceCsv, WriterEmitsHeaderAndRows) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  Network net(s.topology, controller, {});
  std::ostringstream out;
  TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));

  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  dataplane::Packet packet;
  packet.transport = dataplane::Datagram{0};
  net.edge_at(route.src_edge).stamp(packet, route, 100);
  net.inject(route.src_edge, std::move(packet));
  net.events().run_all();

  EXPECT_EQ(writer.rows_written(), 5u);  // inject + 3 hops + deliver
  const std::string text = out.str();
  EXPECT_NE(text.find(TraceCsvWriter::kHeader), std::string::npos);
  EXPECT_NE(text.find("inject"), std::string::npos);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("SW7"), std::string::npos);
}

TEST(TraceCsv, RoundTripsThroughParser) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  Network net(s.topology, controller, {});
  std::ostringstream out;
  TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));
  s.topology.fail_link("SW7", "SW11");  // force a deflection + a drop case

  NetworkConfig config;  // default NIP handles it; just run a packet
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  dataplane::Packet packet;
  packet.transport = dataplane::Datagram{1};
  net.edge_at(route.src_edge).stamp(packet, route, 100);
  net.inject(route.src_edge, std::move(packet));
  net.events().run_all();

  std::istringstream in(out.str());
  const auto records = parse_trace_csv(in);
  ASSERT_EQ(records.size(), writer.rows_written());
  EXPECT_EQ(records.front().kind, TraceEvent::Kind::kInject);
  EXPECT_EQ(records.back().kind, TraceEvent::Kind::kDeliver);
  // The deflected hop at SW7 survives the round trip.
  bool saw_deflection = false;
  for (const auto& record : records) {
    if (record.kind == TraceEvent::Kind::kHop && record.deflected &&
        record.node == "SW7") {
      saw_deflection = true;
    }
    EXPECT_GE(record.time, 0.0);
  }
  EXPECT_TRUE(saw_deflection);
}

TEST(TraceCsv, DropRowsCarryTheReason) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNone;
  Network net(s.topology, controller, config);
  std::ostringstream out;
  TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));
  s.topology.fail_link("SW7", "SW11");
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  dataplane::Packet packet;
  packet.transport = dataplane::Datagram{2};
  net.edge_at(route.src_edge).stamp(packet, route, 100);
  net.inject(route.src_edge, std::move(packet));
  net.events().run_all();

  std::istringstream in(out.str());
  const auto records = parse_trace_csv(in);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().kind, TraceEvent::Kind::kDrop);
  EXPECT_EQ(records.back().drop_reason, "no-viable-port");
}

TEST(TraceCsv, FieldsWithCommasAndQuotesRoundTrip) {
  // The regression behind common::csv_escape: a drop reason (or node name)
  // containing the separator or quotes must not corrupt the row structure.
  TraceRecord record;
  record.kind = TraceEvent::Kind::kDrop;
  record.time = 1.5;
  record.packet_id = 9;
  record.node = "SW7,\"the bad one\"";
  record.out_port = 2;
  record.deflected = true;
  record.drop_reason = "queue full, \"ingress\" side";

  std::ostringstream out;
  TraceCsvWriter writer(out);
  writer.write(record);
  EXPECT_EQ(writer.rows_written(), 1u);
  // The row must still be exactly one line with the quoted fields intact.
  const std::string text = out.str();
  EXPECT_NE(text.find("\"SW7,\"\"the bad one\"\"\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"queue full, \"\"ingress\"\" side\""),
            std::string::npos)
      << text;

  std::istringstream in(text);
  const auto parsed = parse_trace_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.front(), record);
}

TEST(TraceCsv, PlainFieldsStayUnquoted) {
  // Golden traces predate the quoting fix; ordinary rows must keep their
  // historical byte representation (no spurious quotes).
  TraceRecord record;
  record.kind = TraceEvent::Kind::kHop;
  record.time = 0.25;
  record.packet_id = 3;
  record.node = "SW7";
  record.out_port = 1;
  record.deflected = true;
  record.drop_reason = "";
  std::ostringstream out;
  TraceCsvWriter writer(out);
  writer.write(record);
  EXPECT_EQ(out.str(), std::string(TraceCsvWriter::kHeader) +
                           "\nhop,0.25,3,SW7,1,1,\n");
}

TEST(TraceCsv, ParserRejectsBrokenQuoting) {
  std::istringstream in(std::string(TraceCsvWriter::kHeader) +
                        "\ndrop,0.5,1,SW1,0,0,\"unterminated\n");
  EXPECT_THROW(parse_trace_csv(in), std::invalid_argument);
}

TEST(TraceCsv, ParserRejectsMalformedInput) {
  {
    std::istringstream in("kind,time_s\n");  // wrong header treated as row
    EXPECT_THROW(parse_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in(std::string(TraceCsvWriter::kHeader) +
                          "\nwarp,0.0,1,SW1,0,0,\n");
    EXPECT_THROW(parse_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in(std::string(TraceCsvWriter::kHeader) +
                          "\nhop,zero,1,SW1,0,0,\n");
    EXPECT_THROW(parse_trace_csv(in), std::invalid_argument);
  }
}

TEST(TraceCsv, EmptyInputParsesToNothing) {
  std::istringstream in("");
  EXPECT_TRUE(parse_trace_csv(in).empty());
  std::istringstream header_only(std::string(TraceCsvWriter::kHeader) + "\n");
  EXPECT_TRUE(parse_trace_csv(header_only).empty());
}

TEST(TraceCsv, NumericFieldsRejectTrailingGarbage) {
  // Regression: the std::stod/stoull parsing this replaced silently
  // truncated "1.5abc" -> 1.5 and "7x" -> 7 instead of failing the row.
  const auto row = [](const std::string& time, const std::string& packet_id,
                      const std::string& out_port) {
    return std::string(TraceCsvWriter::kHeader) + "\nhop," + time + "," +
           packet_id + ",SW1," + out_port + ",0,\n";
  };
  for (const auto& [text, field] :
       {std::pair<std::string, const char*>{row("1.5abc", "1", "0"), "time"},
        {row("1.5", "7x", "0"), "packet_id"},
        {row("1.5", "1", "0junk"), "out_port"},
        {row("1.5", "1", "5000000000"), "out_port"}}) {  // > PortIndex max
    std::istringstream in(text);
    try {
      (void)parse_trace_csv(in);
      FAIL() << "row must be rejected: " << text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(field), std::string::npos)
          << "message was: " << error.what();
      EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
          << "message was: " << error.what();
    }
  }
}

TEST(TraceCsv, RoundTripsUnderCommaDecimalLocale) {
  // Writer and parser are a machine-format pair: a comma-decimal global
  // locale (plus an imbued sink) must change neither the bytes written nor
  // the values read back. Before the classic-locale imbue in the writer and
  // the from_chars parser, this corrupted the time field both ways.
  struct CommaNumpunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  struct ScopedGlobalLocale {
    explicit ScopedGlobalLocale(const std::locale& locale)
        : previous(std::locale::global(locale)) {}
    ~ScopedGlobalLocale() { std::locale::global(previous); }
    std::locale previous;
  };
  const std::locale comma(std::locale::classic(), new CommaNumpunct);
  const ScopedGlobalLocale guard(comma);

  std::ostringstream out;
  out.imbue(comma);  // the writer must override even an explicit imbue
  TraceCsvWriter writer(out);
  TraceRecord record;
  record.kind = TraceEvent::Kind::kHop;
  record.time = 1234.5678;
  record.packet_id = 100000;
  record.node = "SW7";
  record.out_port = 2;
  record.deflected = true;
  writer.write(record);

  const std::string text = out.str();
  EXPECT_NE(text.find("1234.5678"), std::string::npos) << text;
  EXPECT_EQ(text.find("1234,5678"), std::string::npos) << text;
  EXPECT_NE(text.find("100000"), std::string::npos) << text;

  std::istringstream in(text);
  const auto records = parse_trace_csv(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].time, 1234.5678);
  EXPECT_EQ(records[0].packet_id, 100000u);
  EXPECT_EQ(records[0].out_port, 2u);
  EXPECT_TRUE(records[0].deflected);
}

}  // namespace
}  // namespace kar::sim

#include "dataplane/edge.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace kar::dataplane {
namespace {

using topo::ProtectionLevel;
using topo::Scenario;

struct EdgeFixture : public ::testing::Test {
  EdgeFixture()
      : scenario(topo::make_experimental15()),
        controller(scenario.topology),
        route(controller.encode_scenario(scenario.route,
                                         ProtectionLevel::kPartial)) {}

  Scenario scenario;
  routing::Controller controller;
  routing::EncodedRoute route;
};

TEST_F(EdgeFixture, ConstructionRejectsSwitches) {
  EXPECT_THROW(EdgeNode(scenario.topology, scenario.topology.at("SW10"),
                        controller),
               std::invalid_argument);
}

TEST_F(EdgeFixture, StampSetsHeaderAndSize) {
  const EdgeNode ingress(scenario.topology, scenario.topology.at("AS1"),
                         controller);
  Packet packet;
  ingress.stamp(packet, route, /*payload_bytes=*/1460);
  EXPECT_EQ(packet.kar.route_id, route.route_id);
  EXPECT_FALSE(packet.kar.deflected);
  EXPECT_EQ(packet.src_edge, scenario.topology.at("AS1"));
  EXPECT_EQ(packet.dst_edge, scenario.topology.at("AS3"));
  // 54 base + 4 route-id bytes (28 bits) + payload.
  EXPECT_EQ(packet.size_bytes, kBaseHeaderBytes + 4 + 1460);
}

TEST_F(EdgeFixture, StampRejectsForeignRoute) {
  const EdgeNode wrong(scenario.topology, scenario.topology.at("AS2"),
                       controller);
  Packet packet;
  EXPECT_THROW(wrong.stamp(packet, route, 100), std::invalid_argument);
}

TEST_F(EdgeFixture, DeliveryStripsKarHeader) {
  const EdgeNode egress(scenario.topology, scenario.topology.at("AS3"),
                        controller);
  Packet packet;
  packet.kar.route_id = route.route_id;
  packet.kar.deflected = true;
  packet.dst_edge = scenario.topology.at("AS3");
  EXPECT_EQ(egress.receive(packet), EdgeNode::Verdict::kDeliver);
  EXPECT_TRUE(packet.kar.route_id.is_zero());
  EXPECT_FALSE(packet.kar.deflected);
}

TEST_F(EdgeFixture, WrongEdgeReencodeRefreshesRouteId) {
  const EdgeNode bystander(scenario.topology, scenario.topology.at("AS2"),
                           controller, WrongEdgePolicy::kReencode);
  Packet packet;
  packet.kar.route_id = route.route_id;
  packet.kar.deflected = true;  // HP marking must be cleared on re-encode
  packet.dst_edge = scenario.topology.at("AS3");
  EXPECT_EQ(bystander.receive(packet), EdgeNode::Verdict::kReinject);
  EXPECT_NE(packet.kar.route_id, route.route_id);
  EXPECT_FALSE(packet.kar.deflected);
  EXPECT_EQ(packet.reencode_count, 1u);
  // The fresh route must drive AS2's uplink switch (SW43) toward AS3.
  const std::uint64_t residue = packet.kar.route_id.mod_u64(43);
  EXPECT_EQ(scenario.topology.neighbor(scenario.topology.at("SW43"),
                                       static_cast<topo::PortIndex>(residue)),
            scenario.topology.at("SW29"));
}

TEST_F(EdgeFixture, WrongEdgeBouncePolicyKeepsHeader) {
  const EdgeNode bystander(scenario.topology, scenario.topology.at("AS2"),
                           controller, WrongEdgePolicy::kBounceBack);
  Packet packet;
  packet.kar.route_id = route.route_id;
  packet.kar.deflected = true;
  packet.dst_edge = scenario.topology.at("AS3");
  EXPECT_EQ(bystander.receive(packet), EdgeNode::Verdict::kReinject);
  EXPECT_EQ(packet.kar.route_id, route.route_id);  // untouched
  EXPECT_TRUE(packet.kar.deflected);               // marking preserved
  EXPECT_EQ(packet.reencode_count, 0u);
}

TEST(EdgeNodeIsolated, ReencodeWithNoRouteDrops) {
  // An edge with no path to the destination must report kDrop.
  topo::Topology t;
  const auto stranded = t.add_edge_node("LONE");
  const auto dst = t.add_edge_node("DST");
  t.add_switch("SW5", 5);
  t.add_link(t.at("SW5"), dst);
  const routing::Controller controller(t);
  const EdgeNode edge(t, stranded, controller, WrongEdgePolicy::kReencode);
  Packet packet;
  packet.dst_edge = dst;
  EXPECT_EQ(edge.receive(packet), EdgeNode::Verdict::kDrop);
}

}  // namespace
}  // namespace kar::dataplane

// Zero-allocation regression test for the batched data plane (ISSUE 6).
//
// The whole point of PacketBatch + BumpArena is that the warmed
// steady-state forward loop — clear, push, forward_batch, read decisions —
// touches the heap exactly zero times. This test replaces the global
// operator new/delete with counting versions (routed through malloc/free)
// and asserts the count stays at zero across thousands of batch sweeps,
// for every deflection technique, with narrow routes, pre-memoized wide
// routes and dead ports forcing deflection draws in the mix.
//
// Registered under the `bench` ctest label next to the throughput smokes:
// an allocation sneaking into the hot loop is a performance regression
// before it is anything else.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/arena.hpp"
#include "dataplane/batch.hpp"
#include "dataplane/switch.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace {
// Counting is thread-local and off by default, so gtest internals and
// other threads never perturb the measurement window.
thread_local bool g_counting = false;
thread_local std::uint64_t g_allocations = 0;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace kar::dataplane {
namespace {

TEST(ZeroAlloc, CountingHookActuallyCounts) {
  // Guard the guard: if the replacement operators were not linked in, the
  // main assertion below would pass vacuously.
  g_allocations = 0;
  g_counting = true;
  auto* p = new std::uint64_t[8];
  g_counting = false;
  delete[] p;
  EXPECT_GE(g_allocations, 1u);
}

TEST(ZeroAlloc, WarmedBatchedForwardLoopDoesNotTouchTheHeap) {
  topo::Scenario s = topo::make_fig1_network();
  const topo::NodeId sw7 = s.topology.at("SW7");
  // A dead port makes residues miss so deflection draws run in the loop.
  const auto dead = s.topology.link_at(sw7, 1);
  ASSERT_NE(dead, topo::kInvalidLink);
  s.topology.set_link_up(dead, false);

  // Workload: mostly narrow route IDs (width-gated direct reduction) plus
  // wide ones that go through the ResidueCache memo, one HP random-walk
  // packet, one no-input-port packet.
  constexpr std::size_t kBatch = 32;
  auto rng = testsupport::make_rng(20260809, "ZeroAlloc");
  std::vector<Packet> packets(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    packets[i].kar.route_id = rns::BigUint(rng.below(5000));
    if (i % 8 == 3) {
      packets[i].kar.route_id += rns::BigUint(7) << (128 + 64 * (i % 4));
    }
  }
  packets[5].kar.deflected = true;

  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort,
        DeflectionTechnique::kNotInputPort}) {
    const KarSwitch sw(s.topology, sw7, technique, ResiduePath::kFast);
    BumpArena arena(1 << 16);
    PacketBatch batch(arena, kBatch);

    auto sweep = [&](common::Rng& draw) {
      batch.clear();
      for (std::size_t i = 0; i < kBatch; ++i) {
        batch.push(&packets[i],
                   i % 16 == 9 ? kNoInPort
                               : static_cast<topo::PortIndex>(i % 3));
      }
      sw.forward_batch(batch, draw);
      std::uint64_t folded = 0;
      for (std::size_t i = 0; i < kBatch; ++i) {
        folded += static_cast<std::uint64_t>(batch.decisions()[i].out_port);
      }
      return folded + batch.stats().forwarded;
    };

    // Warm-up: sizes the port scratch, memoizes every wide route.
    common::Rng warm_rng(1);
    volatile std::uint64_t sink = sweep(warm_rng);

    common::Rng loop_rng(2);
    g_allocations = 0;
    g_counting = true;
    for (int iteration = 0; iteration < 2000; ++iteration) {
      sink = sink + sweep(loop_rng);
    }
    g_counting = false;
    EXPECT_EQ(g_allocations, 0u)
        << to_string(technique) << " allocated in the warmed forward loop";
  }
}

}  // namespace
}  // namespace kar::dataplane

// Snapshot/restore tests (src/daemon/snapshot.hpp):
//   * serialize → restore → re-serialize is byte-identical on fig1, fig2
//     and rnp28 with real churned stores (live, dead, withdrawn routes and
//     failed links in play);
//   * a restored store answers identically to the original (encodings,
//     versions, group structure) and keeps converging identically through
//     further churn;
//   * every malformation is rejected with a SnapshotError: truncation at
//     any prefix length, checksum corruption at any byte, bad magic, bad
//     format version, a topology-fingerprint mismatch, and trailing bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ctrlplane/engine.hpp"
#include "ctrlplane/route_store.hpp"
#include "daemon/snapshot.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using ctrlplane::EngineConfig;
using ctrlplane::LinkChange;
using ctrlplane::ReconvergenceEngine;
using ctrlplane::RouteKey;
using ctrlplane::RouteStore;
using daemon::restore_store;
using daemon::serialize_store;
using daemon::SnapshotError;
using daemon::SnapshotInfo;

topo::Scenario scenario_for(const std::string& name) {
  topo::Scenario s;
  if (name == "fig1") {
    s = topo::make_fig1_network();
  } else if (name == "fig2") {
    s = topo::make_experimental15();
  } else {
    s = topo::make_rnp28();
  }
  (void)topo::attach_host_edges(s.topology);
  return s;
}

/// Builds a store with `routes` random routes, churns a few epochs (leaving
/// some links down so dead routes exist), withdraws a couple of keys.
struct Fixture {
  topo::Scenario scenario;
  RouteStore store;
  ReconvergenceEngine engine;

  explicit Fixture(const std::string& topology, std::size_t routes,
                   common::Rng& rng)
      : scenario(scenario_for(topology)),
        store(scenario.topology),
        engine(scenario.topology, store) {
    const auto edges =
        scenario.topology.nodes_of_kind(topo::NodeKind::kEdgeNode);
    std::vector<std::pair<topo::NodeId, topo::NodeId>> installs;
    for (std::size_t i = 0; i < routes; ++i) {
      const std::size_t si = rng.below(edges.size());
      std::size_t di = rng.below(edges.size() - 1);
      if (di >= si) ++di;
      installs.emplace_back(edges[si], edges[di]);
    }
    (void)engine.apply({}, installs, {});
    // Fail ~1/4 of the links (left down: snapshots must capture link state
    // and dead routes), then withdraw two routes.
    std::vector<LinkChange> events;
    for (topo::LinkId link = 0;
         link < static_cast<topo::LinkId>(scenario.topology.link_count());
         ++link) {
      if (rng.below(4) == 0) {
        scenario.topology.set_link_up(link, false);
        events.push_back({link, false});
      }
    }
    std::vector<RouteKey> withdraws;
    if (routes >= 2) withdraws = {0, routes / 2};
    (void)engine.apply(events, {}, withdraws);
  }

  [[nodiscard]] std::string bytes() const {
    return serialize_store(scenario.topology, store, engine.version());
  }
};

void expect_stores_equal(const RouteStore& a, const RouteStore& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.live_count(), b.live_count());
  EXPECT_EQ(a.withdrawn_count(), b.withdrawn_count());
  for (RouteKey key = 0; key < a.size(); ++key) {
    const auto& ra = a.get(key);
    const auto& rb = b.get(key);
    EXPECT_EQ(ra.src, rb.src);
    EXPECT_EQ(ra.dst, rb.dst);
    EXPECT_EQ(ra.rep, rb.rep) << "group structure differs at key " << key;
    EXPECT_EQ(ra.live, rb.live);
    EXPECT_EQ(ra.withdrawn, rb.withdrawn);
    EXPECT_EQ(ra.version, rb.version);
    if (ra.live && rb.live) {
      EXPECT_EQ(ra.core_path, rb.core_path);
      EXPECT_TRUE(ra.route.route_id == rb.route.route_id)
          << "route_id differs at key " << key;
      EXPECT_EQ(ra.route.bit_length, rb.route.bit_length);
      EXPECT_EQ(ra.route.primary_count, rb.route.primary_count);
      EXPECT_EQ(ra.route.assignments.size(), rb.route.assignments.size());
    }
  }
}

TEST(Snapshot, RoundTripIsByteIdenticalAcrossTopologies) {
  auto rng = testsupport::make_rng(7101, "Snapshot.RoundTrip");
  for (const std::string topology : {"fig1", "fig2", "rnp28"}) {
    Fixture fx(topology, 40, rng);
    const std::string bytes = fx.bytes();

    topo::Scenario fresh = scenario_for(topology);
    RouteStore restored(fresh.topology);
    const SnapshotInfo info =
        restore_store(bytes, fresh.topology, restored);
    EXPECT_EQ(info.engine_version, fx.engine.version());
    EXPECT_EQ(info.routes, fx.store.size());
    EXPECT_EQ(info.live, fx.store.live_count());
    EXPECT_EQ(info.withdrawn, fx.store.withdrawn_count());
    expect_stores_equal(fx.store, restored);

    // Link states round-trip.
    for (topo::LinkId link = 0;
         link < static_cast<topo::LinkId>(fresh.topology.link_count());
         ++link) {
      EXPECT_EQ(fresh.topology.link_up(link),
                fx.scenario.topology.link_up(link));
    }

    // The witness the e2e smoke relies on: re-serializing the restored
    // store reproduces the file byte for byte.
    EXPECT_EQ(serialize_store(fresh.topology, restored, info.engine_version),
              bytes)
        << topology << ": restore is not serialize^-1";
  }
}

TEST(Snapshot, RestoredEngineConvergesIdentically) {
  auto rng = testsupport::make_rng(7102, "Snapshot.RestoredEngine");
  Fixture fx("rnp28", 60, rng);
  const std::string bytes = fx.bytes();

  topo::Scenario fresh = scenario_for("rnp28");
  RouteStore restored(fresh.topology);
  const SnapshotInfo info = restore_store(bytes, fresh.topology, restored);
  ReconvergenceEngine engine(fresh.topology, restored);
  engine.restore_version(info.engine_version);
  engine.warm_spts();
  EXPECT_EQ(engine.version(), fx.engine.version());

  // Drive both engines through the same post-restore churn: repair every
  // failed link, then fail one more. Tables must stay identical.
  std::vector<LinkChange> repair;
  for (topo::LinkId link = 0;
       link < static_cast<topo::LinkId>(fresh.topology.link_count()); ++link) {
    if (!fresh.topology.link_up(link)) {
      fresh.topology.set_link_up(link, true);
      fx.scenario.topology.set_link_up(link, true);
      repair.push_back({link, true});
    }
  }
  const auto r1 = fx.engine.apply(repair);
  const auto r2 = engine.apply(repair);
  EXPECT_EQ(r1.version, r2.version);
  EXPECT_EQ(r1.updated, r2.updated);
  expect_stores_equal(fx.store, restored);
}

TEST(Snapshot, RejectsTruncationAtEveryBoundary) {
  auto rng = testsupport::make_rng(7103, "Snapshot.Truncation");
  Fixture fx("fig2", 12, rng);
  const std::string bytes = fx.bytes();
  // Every strict prefix must fail (checksum or truncation — never succeed,
  // never crash). Step keeps the loop fast while still crossing every
  // section boundary.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 37)) {
    topo::Scenario fresh = scenario_for("fig2");
    RouteStore restored(fresh.topology);
    EXPECT_THROW(
        (void)restore_store(std::string_view(bytes).substr(0, len),
                            fresh.topology, restored),
        SnapshotError)
        << "prefix of " << len << " bytes was accepted";
  }
}

TEST(Snapshot, RejectsBitCorruptionAnywhere) {
  auto rng = testsupport::make_rng(7104, "Snapshot.Corruption");
  Fixture fx("fig1", 6, rng);
  const std::string bytes = fx.bytes();
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = bytes;
    const std::size_t at = rng.below(corrupt.size());
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.below(8)));
    topo::Scenario fresh = scenario_for("fig1");
    RouteStore restored(fresh.topology);
    EXPECT_THROW((void)restore_store(corrupt, fresh.topology, restored),
                 SnapshotError)
        << "bit flip at byte " << at << " was accepted";
  }
}

TEST(Snapshot, RejectsTrailingGarbage) {
  auto rng = testsupport::make_rng(7105, "Snapshot.Trailing");
  Fixture fx("fig1", 4, rng);
  std::string bytes = fx.bytes();
  bytes += '\0';
  topo::Scenario fresh = scenario_for("fig1");
  RouteStore restored(fresh.topology);
  EXPECT_THROW((void)restore_store(bytes, fresh.topology, restored),
               SnapshotError);
}

TEST(Snapshot, RejectsWrongTopologyFingerprint) {
  auto rng = testsupport::make_rng(7106, "Snapshot.Fingerprint");
  Fixture fx("fig2", 8, rng);
  const std::string bytes = fx.bytes();
  topo::Scenario other = scenario_for("rnp28");
  RouteStore restored(other.topology);
  EXPECT_THROW((void)restore_store(bytes, other.topology, restored),
               SnapshotError);
}

TEST(Snapshot, RejectsNonEmptyTargetStore) {
  auto rng = testsupport::make_rng(7107, "Snapshot.NonEmpty");
  Fixture fx("fig1", 4, rng);
  const std::string bytes = fx.bytes();
  topo::Scenario fresh = scenario_for("fig1");
  RouteStore occupied(fresh.topology);
  const auto edges = fresh.topology.nodes_of_kind(topo::NodeKind::kEdgeNode);
  (void)occupied.add(edges[0], edges[1]);
  EXPECT_THROW((void)restore_store(bytes, fresh.topology, occupied),
               std::invalid_argument);
}

TEST(Snapshot, FingerprintIgnoresLinkStates) {
  topo::Scenario a = scenario_for("rnp28");
  topo::Scenario b = scenario_for("rnp28");
  b.topology.set_link_up(0, false);
  EXPECT_EQ(daemon::topology_fingerprint(a.topology),
            daemon::topology_fingerprint(b.topology));
  topo::Scenario c = scenario_for("fig2");
  EXPECT_NE(daemon::topology_fingerprint(a.topology),
            daemon::topology_fingerprint(c.topology));
}

TEST(Snapshot, FileRoundTripAndAtomicReplace) {
  auto rng = testsupport::make_rng(7108, "Snapshot.File");
  Fixture fx("fig2", 10, rng);
  const std::string bytes = fx.bytes();
  const std::string path =
      ::testing::TempDir() + "kar_test_snapshot.snap";
  daemon::write_snapshot_file(path, bytes);
  EXPECT_EQ(daemon::read_snapshot_file(path), bytes);
  // Overwrite with different content: the rename must fully replace.
  const std::string bytes2 = bytes;
  daemon::write_snapshot_file(path, bytes2);
  EXPECT_EQ(daemon::read_snapshot_file(path), bytes2);
  EXPECT_THROW((void)daemon::read_snapshot_file(path + ".does-not-exist"),
               std::runtime_error);
}

}  // namespace
}  // namespace kar

// Tests for the heavy-traffic workload engine: deterministic sampling
// (exponential inter-arrivals, bounded Pareto), plan compilation in both
// bottleneck and mesh modes, and a small end-to-end run where concurrent
// finite TCP flows share the Internet2 bottleneck under RED.
#include <gtest/gtest.h>

#include <stdexcept>

#include "topogen/topogen.hpp"
#include "traffic/workload.hpp"

namespace kar {
namespace {

using namespace kar::traffic;

TEST(TrafficSampling, BoundedParetoStaysInRangeAndIsDeterministic) {
  common::Rng a(42), b(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = bounded_pareto(a, 1.2, 8, 4096);
    EXPECT_GE(x, 8u);
    EXPECT_LE(x, 4096u);
    EXPECT_EQ(x, bounded_pareto(b, 1.2, 8, 4096));
  }
  // Heavy tail: the empirical mean must sit well above the lower cutoff.
  common::Rng c(7);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(bounded_pareto(c, 1.2, 8, 4096));
  EXPECT_GT(sum / 5000.0, 16.0);
  EXPECT_THROW((void)bounded_pareto(c, 0.0, 8, 4096), std::invalid_argument);
  EXPECT_THROW((void)bounded_pareto(c, 1.2, 9, 8), std::invalid_argument);
}

TEST(TrafficSampling, ExponentialInterarrivalMatchesRate) {
  common::Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = exponential_interarrival(rng, 50.0);
    ASSERT_GE(d, 0.0);
    sum += d;
  }
  // Mean inter-arrival should approximate 1/rate = 20 ms.
  EXPECT_NEAR(sum / 20000.0, 0.02, 0.002);
}

TEST(TrafficCompile, BottleneckModeFunnelsEveryFlowThroughTheBottleneck) {
  WorkloadSpec spec;
  spec.flows = 64;
  spec.seed = 9;
  spec.host_fan = 4;
  const Workload workload(topogen::make_internet2({.red = true}), spec);
  ASSERT_EQ(workload.plan().size(), 64u);
  for (const FlowPlan& flow : workload.plan()) {
    ASSERT_EQ(flow.core_path.size(), 2u);
    EXPECT_EQ(flow.core_path[0], "CHI");
    EXPECT_EQ(flow.core_path[1], "IPL");
    EXPECT_EQ(flow.src_edge.substr(0, 5), "H-src");
    EXPECT_EQ(flow.dst_edge.substr(0, 5), "H-dst");
  }
  // Deterministic recompile.
  const Workload again(topogen::make_internet2({.red = true}), spec);
  for (std::size_t i = 0; i < workload.plan().size(); ++i) {
    EXPECT_EQ(workload.plan()[i].start_s, again.plan()[i].start_s);
    EXPECT_EQ(workload.plan()[i].size_segments, again.plan()[i].size_segments);
  }
}

TEST(TrafficCompile, MeshModeRoutesRandomPairsOverCorePaths) {
  WorkloadSpec spec;
  spec.flows = 32;
  spec.seed = 3;
  const Workload workload(topogen::make_waxman({.switches = 60, .seed = 2}), spec);
  for (const FlowPlan& flow : workload.plan()) {
    EXPECT_NE(flow.src_edge, flow.dst_edge);
    EXPECT_FALSE(flow.core_path.empty());
  }
}

TEST(TrafficRun, ConcurrentFlowsShareTheBottleneckUnderRed) {
  WorkloadSpec spec;
  spec.flows = 48;
  spec.arrivals = ArrivalProcess::kUniform;
  spec.arrival_rate_per_s = 48.0;  // all started within the first second
  spec.sizes = SizeDistribution::kFixed;
  spec.fixed_segments = 150;
  spec.horizon_s = 20.0;
  spec.seed = 5;
  spec.host_fan = 4;
  const Workload workload(topogen::make_internet2({.red = true}), spec);
  const WorkloadResult result = workload.run();

  EXPECT_EQ(result.flows, 48u);
  // The bottleneck is 100 Mb/s; 48 x 150 segments finish comfortably
  // inside 20 s, so every finite flow must complete and quiesce.
  EXPECT_EQ(result.completed, 48u);
  EXPECT_EQ(result.segments_delivered, 48u * 150u);
  EXPECT_GT(result.peak_concurrent, 8u);  // genuinely concurrent, not serial
  EXPECT_GT(result.mean_goodput_mbps, 0.0);
  // RED on a congested 100 Mb/s queue must fire early drops.
  EXPECT_GT(result.counters.drop_aqm_early, 0u);

  // Bit-identical re-run.
  const WorkloadResult rerun = workload.run();
  EXPECT_EQ(rerun.segments_delivered, result.segments_delivered);
  EXPECT_EQ(rerun.retransmits, result.retransmits);
  EXPECT_EQ(rerun.counters.drop_aqm_early, result.counters.drop_aqm_early);
  EXPECT_EQ(rerun.peak_concurrent, result.peak_concurrent);
  EXPECT_DOUBLE_EQ(rerun.mean_goodput_mbps, result.mean_goodput_mbps);
}

TEST(TrafficRun, RejectsDegenerateSpecs) {
  WorkloadSpec spec;
  spec.flows = 0;
  EXPECT_THROW((void)Workload(topogen::make_internet2({}), spec),
               std::invalid_argument);
  WorkloadSpec no_fan;
  no_fan.host_fan = 0;
  EXPECT_THROW((void)Workload(topogen::make_internet2({}), no_fan),
               std::invalid_argument);
}

}  // namespace
}  // namespace kar

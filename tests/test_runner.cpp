// The parallel experiment runner: seed derivation, the work-stealing
// thread pool (task execution, future-based exception propagation, the
// steal path, nested submission), run_indexed (in-index-order delivery,
// crash isolation, cooperative timeout cancellation) and the JSONL writer
// (escaping, deterministic number formatting, torn-write safety under
// concurrent writers).
#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runner/fork_join.hpp"
#include "runner/jsonl.hpp"
#include "runner/thread_pool.hpp"
#include "support/testsupport.hpp"

namespace kar::runner {
namespace {

// ---------------------------------------------------------------------------
// common::derive_seed — the factored SplitMix64 seed stream.
// ---------------------------------------------------------------------------

TEST(DeriveSeed, MatchesSplitMix64Reference) {
  // One SplitMix64 step over master + gamma * (index + 1), spelled out.
  const std::uint64_t master = 42;
  for (std::uint64_t index = 0; index < 16; ++index) {
    std::uint64_t z = master + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    EXPECT_EQ(common::derive_seed(master, index), z) << index;
  }
}

TEST(DeriveSeed, IsStableAcrossReleases) {
  // Frozen values: changing them silently would re-seed every recorded
  // campaign. (Replays and JSONL archives reference these seeds.)
  EXPECT_EQ(common::derive_seed(1, 0), 10451216379200822465ULL);
  EXPECT_EQ(common::derive_seed(0x9e3779b97f4a7c15ULL, 7),
            common::derive_seed(0x9e3779b97f4a7c15ULL, 7));
  EXPECT_NE(common::derive_seed(1, 0), common::derive_seed(1, 1));
  EXPECT_NE(common::derive_seed(1, 0), common::derive_seed(2, 0));
}

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&count] { ++count; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto square = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("kar"); });
  EXPECT_EQ(square.get(), 42);
  EXPECT_EQ(text.get(), "kar");
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("planted failure"); });
  auto healthy = pool.submit([] { return 7; });
  EXPECT_EQ(healthy.get(), 7);  // a throwing task must not poison others
  try {
    failing.get();
    FAIL() << "expected the planted exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "planted failure");
  }
}

TEST(ThreadPool, StealsWorkFromABlockedWorker) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  // Occupy one worker indefinitely...
  auto blocker = pool.submit_to(0, [released] { released.wait(); });
  // ...then pile work onto worker 0's deque specifically. With worker 0
  // busy (whichever worker picked the blocker up), the other worker must
  // steal these for them to complete while the blocker is still held.
  std::vector<std::future<void>> futures;
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit_to(0, [&done] { ++done; }));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  }
  EXPECT_EQ(done.load(), 50);
  release.set_value();
  blocker.get();
}

TEST(ThreadPool, SupportsNestedSubmission) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ForkJoin, RunsEveryShardExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  fork_join(pool, hits.size(),
            [&](std::size_t shard) { hits[shard].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ForkJoin, RunsShardZeroOnTheCaller) {
  // The caller is the +1 worker: shard 0 must execute inline so a
  // `shards`-wide fork needs only shards - 1 pool threads.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id shard0;
  fork_join(pool, 2, [&](std::size_t shard) {
    if (shard == 0) shard0 = std::this_thread::get_id();
  });
  EXPECT_EQ(shard0, caller);
}

TEST(ForkJoin, SingleShardNeverTouchesThePool) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  fork_join(pool, 1, [&](std::size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

TEST(ForkJoin, LowestShardExceptionWinsAndAllShardsJoin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(4);
  try {
    fork_join(pool, hits.size(), [&](std::size_t shard) {
      hits[shard].fetch_add(1);
      if (shard == 2) throw std::runtime_error("shard 2");
      if (shard == 1) throw std::runtime_error("shard 1");
    });
    FAIL() << "fork_join swallowed the shard exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 1");  // deterministic: lowest index wins
  }
  // The barrier held: every shard ran to its throw before the rethrow.
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ForkJoin, ZeroShardsIsANoOp) {
  ThreadPool pool(1);
  bool ran = false;
  fork_join(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

// ---------------------------------------------------------------------------
// run_indexed.
// ---------------------------------------------------------------------------

TEST(RunIndexed, DeliversOutcomesInIndexOrderUnderParallelism) {
  RunnerConfig config;
  config.jobs = 4;
  std::vector<std::size_t> delivered;
  auto rng = testsupport::make_rng(7, "RunIndexed.Order");
  std::vector<int> delays;
  for (int i = 0; i < 64; ++i) {
    delays.push_back(static_cast<int>(rng.below(3)));
  }
  const RunnerReport report = run_indexed<std::size_t>(
      64, config,
      [&delays](std::size_t index, const CancelToken&) {
        // Scramble completion order.
        std::this_thread::sleep_for(std::chrono::milliseconds(delays[index]));
        return index * 10;
      },
      [&delivered](std::size_t index, IndexedOutcome<std::size_t>&& outcome) {
        ASSERT_TRUE(outcome.status.ok);
        ASSERT_EQ(*outcome.value, index * 10);
        delivered.push_back(index);
      });
  ASSERT_EQ(delivered.size(), 64u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i) << "out-of-order delivery";
  }
  EXPECT_EQ(report.completed, 64u);
  EXPECT_EQ(report.errored, 0u);
  EXPECT_EQ(report.jobs, 4u);
  EXPECT_EQ(report.run_wall_s.size(), 64u);
}

TEST(RunIndexed, SerialAndParallelFoldIdentically) {
  const auto fold = [](std::size_t jobs) {
    RunnerConfig config;
    config.jobs = jobs;
    double sum = 0.0;  // order-sensitive floating-point fold
    run_indexed<double>(
        200, config,
        [](std::size_t index, const CancelToken&) {
          return 1.0 / static_cast<double>(index + 1);
        },
        [&sum](std::size_t, IndexedOutcome<double>&& outcome) {
          sum += *outcome.value;
        });
    return sum;
  };
  const double serial = fold(1);
  EXPECT_EQ(serial, fold(2));  // bitwise: the fold order is identical
  EXPECT_EQ(serial, fold(8));
}

TEST(RunIndexed, IsolatesThrowingRuns) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    RunnerConfig config;
    config.jobs = jobs;
    std::size_t ok_runs = 0;
    std::size_t failed_runs = 0;
    const RunnerReport report = run_indexed<int>(
        20, config,
        [](std::size_t index, const CancelToken&) {
          if (index % 5 == 3) {
            throw std::runtime_error("bad scenario " + std::to_string(index));
          }
          return static_cast<int>(index);
        },
        [&](std::size_t index, IndexedOutcome<int>&& outcome) {
          if (outcome.status.ok) {
            ++ok_runs;
          } else {
            ++failed_runs;
            EXPECT_FALSE(outcome.value.has_value());
            EXPECT_EQ(outcome.status.error,
                      "bad scenario " + std::to_string(index));
          }
        });
    EXPECT_EQ(ok_runs, 16u) << "jobs=" << jobs;
    EXPECT_EQ(failed_runs, 4u) << "jobs=" << jobs;
    EXPECT_EQ(report.errored, 4u) << "jobs=" << jobs;
  }
}

TEST(RunIndexed, WatchdogCancelsOverdueRuns) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
    RunnerConfig config;
    config.jobs = jobs;
    config.run_timeout_s = 0.05;
    const RunnerReport report = run_indexed<int>(
        1, config,
        [](std::size_t, const CancelToken& token) {
          // A "pathological scenario": loops until cancelled.
          while (!token.cancelled()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return 1;
        },
        [](std::size_t, IndexedOutcome<int>&& outcome) {
          EXPECT_TRUE(outcome.status.ok);
          EXPECT_TRUE(outcome.status.timed_out);
        });
    EXPECT_EQ(report.timed_out, 1u) << "jobs=" << jobs;
  }
}

TEST(RunIndexed, HandlesZeroRuns) {
  RunnerConfig config;
  config.jobs = 4;
  bool consumed = false;
  const RunnerReport report = run_indexed<int>(
      0, config, [](std::size_t, const CancelToken&) { return 0; },
      [&consumed](std::size_t, IndexedOutcome<int>&&) { consumed = true; });
  EXPECT_FALSE(consumed);
  EXPECT_EQ(report.completed, 0u);
}

// ---------------------------------------------------------------------------
// JSONL.
// ---------------------------------------------------------------------------

TEST(Jsonl, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab\r"), "line\\nbreak\\ttab\\r");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 untouched
}

TEST(Jsonl, FormatsDoublesDeterministically) {
  EXPECT_EQ(json_double(1.0), "1");
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(1.0 / 3.0), json_double(1.0 / 3.0));
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(Jsonl, BuildsObjectsInInsertionOrder) {
  JsonObject object;
  object.field("name", "kar").field("runs", std::uint64_t{3})
      .field("rate", 0.25).field("ok", true)
      .raw("nested", "{\"a\":1}");
  EXPECT_EQ(object.str(),
            "{\"name\":\"kar\",\"runs\":3,\"rate\":0.25,\"ok\":true,"
            "\"nested\":{\"a\":1}}");
}

TEST(Jsonl, WriterAppendsCompleteLines) {
  std::ostringstream out;
  JsonlWriter writer(out);
  writer.write(JsonObject().field("a", std::uint64_t{1}));
  writer.write("{\"b\":2}");
  EXPECT_EQ(out.str(), "{\"a\":1}\n{\"b\":2}\n");
  EXPECT_EQ(writer.lines_written(), 2u);
}

TEST(Jsonl, ConcurrentWritersNeverTearLines) {
  std::ostringstream out;
  JsonlWriter writer(out);
  constexpr int kThreads = 8;
  constexpr int kRecords = 200;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&writer, t] {
        for (int r = 0; r < kRecords; ++r) {
          JsonObject record;
          record.field("writer", static_cast<std::int64_t>(t))
              .field("record", static_cast<std::int64_t>(r))
              .field("payload", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
          writer.write(record);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  // Every line must be a complete, well-formed record; the set of
  // (writer, record) pairs must be exactly kThreads x kRecords.
  std::istringstream in(out.str());
  std::string line;
  std::set<std::pair<int, int>> seen;
  while (std::getline(in, line)) {
    ASSERT_TRUE(line.starts_with("{\"writer\":")) << line;
    ASSERT_TRUE(line.ends_with("\"payload\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}"))
        << "torn line: " << line;
    int writer_id = -1;
    int record_id = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"writer\":%d,\"record\":%d,",
                          &writer_id, &record_id),
              2)
        << line;
    EXPECT_TRUE(seen.emplace(writer_id, record_id).second)
        << "duplicate line: " << line;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kRecords));
  EXPECT_EQ(writer.lines_written(),
            static_cast<std::size_t>(kThreads * kRecords));
}

}  // namespace
}  // namespace kar::runner

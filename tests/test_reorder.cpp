#include "analysis/reorder.hpp"

#include <gtest/gtest.h>

namespace kar::analysis {
namespace {

TEST(Reorder, EmptySequence) {
  const auto m = compute_reorder({});
  EXPECT_EQ(m.arrivals, 0u);
  EXPECT_EQ(m.reordered, 0u);
  EXPECT_DOUBLE_EQ(m.reorder_fraction, 0.0);
}

TEST(Reorder, InOrderSequenceHasNoReordering) {
  const auto m = compute_reorder({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(m.arrivals, 6u);
  EXPECT_EQ(m.reordered, 0u);
  EXPECT_EQ(m.max_displacement, 0u);
}

TEST(Reorder, SingleLatePacket) {
  // 3 arrives before 2: packet 2 is displaced by 1.
  const auto m = compute_reorder({0, 1, 3, 2, 4});
  EXPECT_EQ(m.reordered, 1u);
  EXPECT_EQ(m.max_displacement, 1u);
  EXPECT_DOUBLE_EQ(m.mean_displacement, 1.0);
  EXPECT_DOUBLE_EQ(m.reorder_fraction, 0.2);
}

TEST(Reorder, DeepDisplacement) {
  // 0 arrives after 9: displacement 9.
  const auto m = compute_reorder({1, 2, 3, 4, 5, 6, 7, 8, 9, 0});
  EXPECT_EQ(m.reordered, 1u);
  EXPECT_EQ(m.max_displacement, 9u);
}

TEST(Reorder, MultipleReorderingsAverage) {
  // 5 first, then 0..4 all late with displacements 5,4,3,2,1.
  const auto m = compute_reorder({5, 0, 1, 2, 3, 4});
  EXPECT_EQ(m.reordered, 5u);
  EXPECT_EQ(m.max_displacement, 5u);
  EXPECT_DOUBLE_EQ(m.mean_displacement, 3.0);
}

TEST(Reorder, DuplicateOfMaxIsCountedAsLate) {
  // A retransmitted duplicate of an already-seen sequence arrives below
  // max_seen and therefore counts as a late arrival.
  const auto m = compute_reorder({0, 1, 2, 1});
  EXPECT_EQ(m.reordered, 1u);
  EXPECT_EQ(m.max_displacement, 1u);
}

TEST(Reorder, SingleElement) {
  const auto m = compute_reorder({42});
  EXPECT_EQ(m.arrivals, 1u);
  EXPECT_EQ(m.reordered, 0u);
}

}  // namespace
}  // namespace kar::analysis

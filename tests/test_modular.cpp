#include "rns/modular.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "rns/biguint.hpp"
#include "rns/prepared_mod.hpp"

namespace kar::rns {
namespace {

TEST(ExtendedGcd, ProducesBezoutIdentity) {
  for (const auto& [a, b] : {std::pair<std::uint64_t, std::uint64_t>{240, 46},
                            {17, 5}, {1, 1}, {12, 0}, {0, 9}, {77, 4}}) {
    const auto [g, x, y] = extended_gcd(a, b);
    EXPECT_EQ(g, std::gcd(a, b));
    EXPECT_EQ(static_cast<std::int64_t>(a) * x + static_cast<std::int64_t>(b) * y,
              static_cast<std::int64_t>(g))
        << "a=" << a << " b=" << b;
  }
}

TEST(ModInverse, MatchesPaperExamples) {
  // Paper §2.2 worked example: L1 = <77^-1>_4 = 1, L2 = <44^-1>_7 = 4,
  // L3 = <28^-1>_11 = 2.
  EXPECT_EQ(mod_inverse(77, 4), 1u);
  EXPECT_EQ(mod_inverse(44, 7), 4u);
  EXPECT_EQ(mod_inverse(28, 11), 2u);
  // Protected example: L1 = <385^-1>_4 = 1, L2 = <220^-1>_7 = 5,
  // L3 = <140^-1>_11 = 7, L4 = <308^-1>_5 = 2.
  EXPECT_EQ(mod_inverse(385, 4), 1u);
  EXPECT_EQ(mod_inverse(220, 7), 5u);
  EXPECT_EQ(mod_inverse(140, 11), 7u);
  EXPECT_EQ(mod_inverse(308, 5), 2u);
}

TEST(ModInverse, InverseProperty) {
  for (std::uint64_t m : {5ULL, 7ULL, 11ULL, 97ULL, 101ULL}) {
    for (std::uint64_t a = 1; a < m; ++a) {
      const auto inv = mod_inverse(a, m);
      ASSERT_TRUE(inv.has_value()) << a << " mod " << m;
      EXPECT_EQ(mul_mod(a, *inv, m), 1u);
      EXPECT_LT(*inv, m);
    }
  }
}

TEST(ModInverse, NonCoprimeHasNoInverse) {
  EXPECT_FALSE(mod_inverse(6, 4).has_value());
  EXPECT_FALSE(mod_inverse(10, 5).has_value());
  EXPECT_FALSE(mod_inverse(0, 7).has_value());
}

TEST(ModInverse, ModulusOneIsZeroByConvention) {
  EXPECT_EQ(mod_inverse(42, 1), 0u);
}

TEST(ModInverse, ZeroModulusThrows) {
  EXPECT_THROW(mod_inverse(3, 0), std::domain_error);
}

TEST(MulMod, NoOverflowOnLargeOperands) {
  const std::uint64_t big = 0xFFFFFFFFFFFFFFF0ULL;
  const std::uint64_t m = 0xFFFFFFFFFFFFFFFBULL;
  // (m-11)*(m-11) mod m computed via 128-bit; sanity: result < m.
  EXPECT_LT(mul_mod(big, big, m), m);
  EXPECT_EQ(mul_mod(1ULL << 63, 2, 0xFFFFFFFFFFFFFFFFULL), 1u);
}

TEST(Coprime, PaperSwitchIdSets) {
  // {4, 5, 7, 11}: 4 is composite but coprime with the rest (paper §2).
  const std::vector<std::uint64_t> fig1 = {4, 5, 7, 11};
  EXPECT_TRUE(pairwise_coprime(fig1));
  // {10, 7, 13, 29} primary route of the 15-node network.
  const std::vector<std::uint64_t> net15 = {10, 7, 13, 29};
  EXPECT_TRUE(pairwise_coprime(net15));
}

TEST(Coprime, DetectsViolationWithWitness) {
  const std::vector<std::uint64_t> bad = {4, 7, 10};  // gcd(4, 10) = 2
  const auto violation = find_coprime_violation(bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->first_index, 0u);
  EXPECT_EQ(violation->second_index, 2u);
  EXPECT_EQ(violation->common_factor, 2u);
}

TEST(Coprime, EmptyAndSingletonArePairwiseCoprime) {
  EXPECT_TRUE(pairwise_coprime({}));
  const std::vector<std::uint64_t> one = {12};
  EXPECT_TRUE(pairwise_coprime(one));
}

TEST(IsPrime, KnownValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(113));
  EXPECT_FALSE(is_prime_u64(117));  // 9 * 13
  EXPECT_TRUE(is_prime_u64(2147483647ULL));          // 2^31 - 1
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest 64-bit prime
  EXPECT_FALSE(is_prime_u64(18446744073709551555ULL));
}

TEST(NextCoprimeIds, ProducesPairwiseCoprimeSet) {
  const auto ids = next_coprime_ids(10, 3, {});
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_TRUE(pairwise_coprime(ids));
  for (const auto id : ids) EXPECT_GE(id, 3u);
}

TEST(NextCoprimeIds, RespectsExistingIds) {
  const std::vector<std::uint64_t> existing = {6, 35};
  const auto ids = next_coprime_ids(5, 2, existing);
  for (const auto id : ids) {
    for (const auto e : existing) {
      EXPECT_EQ(std::gcd(id, e), 1u) << id << " vs " << e;
    }
  }
}

TEST(NextCoprimeIds, GreedyPicksSmallest) {
  const auto ids = next_coprime_ids(4, 2, {});
  // 2, 3, 5, 7: 4 conflicts with 2, 6 with 2 and 3.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 5, 7}));
}

TEST(CoprimePool, ScalesToAThousandIdsInBoundedTime) {
  // The pre-pool implementation rescanned every taken id per candidate
  // (O(candidates x taken) gcds); the factor-set pool is near-linear. A
  // thousand ids at a realistic port-count floor must be instant — budget
  // 2 s wall to leave sanitizer headroom while still catching quadratic
  // regressions (which take minutes).
  const auto t0 = std::chrono::steady_clock::now();
  const auto ids = next_coprime_ids(1000, 8, {});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_TRUE(pairwise_coprime(ids));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
}

TEST(CoprimePool, MatchesLegacyGreedySequence) {
  // The pool must reproduce the old greedy smallest-first scan exactly:
  // goldens across the repo (builders, campaign traces) pin these values.
  CoprimePool pool;
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 8; ++i) got.push_back(pool.take(2));
  EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 3, 5, 7, 11, 13, 17, 19}));

  CoprimePool blocked;
  blocked.block(6);   // consumes primes 2 and 3
  blocked.block(35);  // consumes 5 and 7
  EXPECT_EQ(blocked.take(2), 11u);
  EXPECT_EQ(blocked.take(2), 13u);
}

TEST(CoprimePool, ExhaustionIsAStructuredError) {
  // A candidate ceiling one above the minimum leaves a single admissible
  // value; the next take() must throw IdPoolExhausted (not spin or wrap)
  // and the exception must carry the diagnostic fields.
  CoprimePool pool(/*max_candidate=*/13);
  EXPECT_EQ(pool.take(11), 11u);
  EXPECT_EQ(pool.take(11), 12u);  // 12 = 2^2*3, coprime with 11
  EXPECT_EQ(pool.take(11), 13u);
  try {
    (void)pool.take(11, false, 4);
    FAIL() << "expected IdPoolExhausted";
  } catch (const IdPoolExhausted& e) {
    EXPECT_EQ(e.requested(), 4u);
    EXPECT_EQ(e.assigned(), 3u);
    EXPECT_EQ(e.minimum(), 11u);
    EXPECT_EQ(e.max_candidate(), 13u);
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
  }
  // IdPoolExhausted derives std::overflow_error so legacy catch sites
  // that guarded the old arithmetic still fire.
  CoprimePool again(13);
  (void)again.take(11);
  (void)again.take(11);
  (void)again.take(11);
  EXPECT_THROW((void)again.take(11), std::overflow_error);
}

TEST(CoprimePool, BlockZeroPoisonsThePool) {
  // Id 0 divides nothing meaningfully — an existing set containing 0 can
  // never be extended coprimely. The pool reports exhaustion immediately
  // rather than scanning 2^32 candidates.
  CoprimePool pool;
  pool.block(0);
  EXPECT_THROW((void)pool.take(2), IdPoolExhausted);
  const std::vector<std::uint64_t> with_zero = {0};
  EXPECT_THROW((void)next_coprime_ids(1, 2, with_zero), IdPoolExhausted);
}

TEST(PreparedMod, RejectsZeroDivisor) {
  EXPECT_THROW(PreparedMod{0}, std::domain_error);
}

TEST(PreparedMod, EdgeDivisorsMatchModU64) {
  // Divisors straddling the Barrett fast-path boundary (d < 2^32) plus the
  // degenerate d=1 case; values straddling limb boundaries.
  const BigUint wide =
      (BigUint(0xFFFFFFFFFFFFFFFFULL) << 80) + BigUint(0x123456789ABCDEFULL);
  for (const std::uint64_t d :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{0xFFFFFFFFULL},
        std::uint64_t{1} << 32, (std::uint64_t{1} << 32) + 1,
        std::uint64_t{0xFFFFFFFFFFFFFFFFULL}, std::uint64_t{97},
        std::uint64_t{26389}}) {
    const PreparedMod prepared(d);
    EXPECT_EQ(prepared.divisor(), d);
    for (const BigUint& v :
         {BigUint(0), BigUint(1), BigUint(d - 1), BigUint(d),
          BigUint(d) + BigUint(1), wide}) {
      EXPECT_EQ(prepared.reduce(v), v.mod_u64(d)) << v << " mod " << d;
    }
  }
}

TEST(PreparedMod, ReduceU64MatchesHardwareRemainder) {
  for (const std::uint64_t d : {std::uint64_t{3}, std::uint64_t{44},
                                std::uint64_t{0xFFFFFFFFULL},
                                (std::uint64_t{1} << 40) + 9}) {
    const PreparedMod prepared(d);
    for (const std::uint64_t x :
         {std::uint64_t{0}, d - 1, d, d + 1, std::uint64_t{1} << 63,
          std::uint64_t{0xFFFFFFFFFFFFFFFFULL}}) {
      EXPECT_EQ(prepared.reduce_u64(x), x % d) << x << " mod " << d;
    }
  }
}

}  // namespace
}  // namespace kar::rns

// ReactiveController: the paper's "traditional approach" baseline — the
// controller reroutes flows after a notification delay.
#include <gtest/gtest.h>

#include "sim/reactive_controller.hpp"
#include "topology/builders.hpp"
#include "transport/flows.hpp"
#include "transport/udp.hpp"

namespace kar {
namespace {

using topo::ProtectionLevel;
using topo::Scenario;

TEST(ReactiveController, ReroutesAroundFailureAfterDelay) {
  // Fig. 1 net, no deflection: probes die after the failure until the
  // reactive controller pushes the SW5 detour route.
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNone;
  sim::Network net(s.topology, controller, config);
  transport::FlowDispatcher dispatcher(net);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  transport::CbrProbe probe(net, dispatcher, route, /*flow_id=*/1,
                            /*interval_s=*/0.001, /*payload_bytes=*/100);
  sim::ReactiveController reactive(net, /*reaction_delay_s=*/0.050);
  reactive.watch_flow(s.topology.at("S"), s.topology.at("D"),
                      [&probe](const routing::EncodedRoute& fresh) {
                        probe.set_route(fresh);
                      });
  probe.start_at(0.0);
  net.fail_link_at(1.0, "SW7", "SW11");
  probe.stop_at(2.0);
  net.events().run_until(3.0);
  EXPECT_EQ(reactive.reactions(), 1u);
  // Lost packets are confined to the ~50 ms reaction window (plus the one
  // on the wire): 2000 sent, ~50 lost.
  const auto lost = probe.sent() - probe.received();
  EXPECT_GE(lost, 45u);
  EXPECT_LE(lost, 60u);
}

TEST(ReactiveController, RevertsAfterRepair) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNone;
  sim::Network net(s.topology, controller, config);
  transport::FlowDispatcher dispatcher(net);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  transport::CbrProbe probe(net, dispatcher, route, 1, 0.001, 100);
  sim::ReactiveController reactive(net, 0.020);
  std::vector<rns::BigUint> pushed;
  reactive.watch_flow(s.topology.at("S"), s.topology.at("D"),
                      [&](const routing::EncodedRoute& fresh) {
                        pushed.push_back(fresh.route_id);
                        probe.set_route(fresh);
                      });
  probe.start_at(0.0);
  net.fail_link_at(0.5, "SW7", "SW11");
  net.repair_link_at(1.0, "SW7", "SW11");
  probe.stop_at(1.5);
  net.events().run_until(2.0);
  ASSERT_EQ(pushed.size(), 2u);       // one per link event
  EXPECT_EQ(reactive.reactions(), 2u);
  // After repair the controller pushes the short route again (R = 44).
  EXPECT_EQ(pushed.back().to_u64(), 44u);
  EXPECT_NE(pushed.front(), pushed.back());
}

TEST(ReactiveController, CoalescesSimultaneousEvents) {
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  sim::Network net(s.topology, controller, {});
  sim::ReactiveController reactive(net, 0.010);
  int updates = 0;
  reactive.watch_flow(s.topology.at("AS1"), s.topology.at("AS3"),
                      [&](const routing::EncodedRoute&) { ++updates; });
  // Two failures in the same instant -> one batched reaction.
  net.fail_link_at(1.0, "SW7", "SW13");
  net.fail_link_at(1.0, "SW13", "SW29");
  net.events().run_until(2.0);
  EXPECT_EQ(reactive.reactions(), 1u);
  EXPECT_EQ(updates, 1);
}

TEST(ReactiveController, TcpFlowSurvivesViaRouteUpdate) {
  // Line topology (no deflection alternative at all): only the reactive
  // controller path can save the flow — here on fig1 there IS an alternate
  // route, so the update keeps TCP alive with a bounded gap.
  Scenario s = topo::make_fig1_network(topo::LinkParams{
      .rate_bps = 1e9, .delay_s = 1e-3, .queue_packets = 200});
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.technique = dataplane::DeflectionTechnique::kNone;
  sim::Network net(s.topology, controller, config);
  transport::FlowDispatcher dispatcher(net);
  const auto fwd = controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  const auto rev = *controller.route_between(s.topology.at("D"), s.topology.at("S"));
  transport::TcpParams params;
  params.receiver_window_segments = 64;
  transport::BulkTransferFlow flow(net, dispatcher, fwd, rev, 1, params);
  sim::ReactiveController reactive(net, 0.050);
  // Both directions cross SW7-SW11; the controller must reroute both.
  reactive.watch_flow(s.topology.at("S"), s.topology.at("D"),
                      [&flow](const routing::EncodedRoute& fresh) {
                        flow.set_forward_route(fresh);
                      });
  reactive.watch_flow(s.topology.at("D"), s.topology.at("S"),
                      [&flow](const routing::EncodedRoute& fresh) {
                        flow.set_reverse_route(fresh);
                      });
  flow.start_at(0.0);
  net.fail_link_at(2.0, "SW7", "SW11");
  flow.stop_at(6.0);
  net.events().run_until(7.0);
  // The flow recovered well before the end (route swap + RTO retransmit).
  EXPECT_GT(flow.receiver().goodput().mbps_between(4.0, 6.0), 50.0);
}

TEST(BulkTransferFlow, RouteSwapValidatesEndpoints) {
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  sim::Network net(s.topology, controller, {});
  transport::FlowDispatcher dispatcher(net);
  const auto fwd = controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  const auto rev = *controller.route_between(s.topology.at("AS3"), s.topology.at("AS1"));
  transport::BulkTransferFlow flow(net, dispatcher, fwd, rev, 1);
  // A route with different endpoints must be rejected.
  const auto wrong = *controller.route_between(s.topology.at("AS2"), s.topology.at("AS3"));
  EXPECT_THROW(flow.set_forward_route(wrong), std::invalid_argument);
  EXPECT_THROW(flow.set_reverse_route(wrong), std::invalid_argument);
  // Same endpoints are accepted.
  flow.set_forward_route(
      controller.encode_scenario(s.route, ProtectionLevel::kFull));
}

}  // namespace
}  // namespace kar

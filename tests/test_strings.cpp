#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace kar::common {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(split("a,,c", ',', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(split("", ',').empty());
  EXPECT_EQ(split("", ',', true), (std::vector<std::string>{""}));
  EXPECT_EQ(split("one two  three", ' '),
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  // The separator is configurable; only the active one forces quoting.
  EXPECT_EQ(csv_escape("a;b", ';'), "\"a;b\"");
  EXPECT_EQ(csv_escape("a,b", ';'), "a,b");
}

TEST(SplitCsvRow, HonoursRfc4180Quoting) {
  EXPECT_EQ(split_csv_row("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_row("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split_csv_row(""), (std::vector<std::string>{""}));
  EXPECT_EQ(split_csv_row("a,\"b,c\",d"),
            (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_EQ(split_csv_row("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(split_csv_row("trailing,"),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(SplitCsvRow, RejectsMalformedQuoting) {
  EXPECT_THROW((void)split_csv_row("a,\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)split_csv_row("a,b\"c"), std::invalid_argument);
}

TEST(SplitCsvRow, InvertsEscapedJoins) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quotes\"", ""};
  std::string row;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) row += ',';
    row += csv_escape(fields[i]);
  }
  EXPECT_EQ(split_csv_row(row), fields);
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(Join, Concatenates) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(150.0, 1), "150.0");
  EXPECT_EQ(fmt_double(0.5, 0), "0");  // rounds to even
}

TEST(Padding, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      12345"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RejectsBadShapes) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace kar::common

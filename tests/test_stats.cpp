#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace kar::stats {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Summary, SingleSampleHasNoSpread) {
  const Summary s = summarize({7.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

TEST(Summary, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, ConfidenceIntervalUsesStudentT) {
  // n=2, dof=1: t = 12.706.
  const Summary s = summarize({0.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(s.ci95_half_width, 12.706 * std::sqrt(2.0) / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(s.ci_low(), 1.0 - 12.706 * 1.0, 1e-9);
}

TEST(Summary, PaperStyleThirtyRuns) {
  // 30 runs like the paper's iperf methodology: dof=29 -> t = 2.045.
  std::vector<double> samples;
  for (int i = 0; i < 30; ++i) samples.push_back(100.0 + (i % 3));
  const Summary s = summarize(samples);
  EXPECT_EQ(s.n, 30u);
  const double expected_hw = 2.045 * s.stddev / std::sqrt(30.0);
  EXPECT_NEAR(s.ci95_half_width, expected_hw, 1e-12);
}

TEST(TQuantile, TableValues) {
  EXPECT_DOUBLE_EQ(t_quantile_975(1), 12.706);
  EXPECT_DOUBLE_EQ(t_quantile_975(29), 2.045);
  EXPECT_DOUBLE_EQ(t_quantile_975(30), 2.042);
  EXPECT_DOUBLE_EQ(t_quantile_975(1000), 1.96);
  EXPECT_DOUBLE_EQ(t_quantile_975(0), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> data = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(data, 10), 1.4);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(BinnedSeries, AccumulatesIntoCorrectBins) {
  BinnedSeries series(1.0);
  series.add(0.5, 100);
  series.add(0.9, 50);
  series.add(1.0, 10);  // exactly on the boundary -> bin 1
  series.add(3.2, 8);
  EXPECT_EQ(series.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(series.bin_sum(0), 150.0);
  EXPECT_DOUBLE_EQ(series.bin_sum(1), 10.0);
  EXPECT_DOUBLE_EQ(series.bin_sum(2), 0.0);
  EXPECT_DOUBLE_EQ(series.bin_sum(3), 8.0);
  EXPECT_DOUBLE_EQ(series.bin_sum(99), 0.0);  // out of range reads as 0
}

TEST(BinnedSeries, RatesAndMbpsConversion) {
  BinnedSeries series(2.0);  // 2-second bins
  series.add(0.0, 1e6);      // 1 MB in bin 0
  EXPECT_DOUBLE_EQ(series.bin_rate(0), 0.5e6);       // bytes/s
  EXPECT_DOUBLE_EQ(series.bin_mbps(0), 4.0);         // 0.5 MB/s = 4 Mb/s
  EXPECT_DOUBLE_EQ(series.bin_start(3), 6.0);
}

TEST(BinnedSeries, SumAndMeanBetween) {
  BinnedSeries series(1.0);
  for (int t = 0; t < 10; ++t) series.add(t + 0.5, 1000);
  EXPECT_DOUBLE_EQ(series.sum_between(0.0, 5.0), 5000.0);
  EXPECT_DOUBLE_EQ(series.sum_between(5.0, 10.0), 5000.0);
  EXPECT_DOUBLE_EQ(series.mbps_between(0.0, 10.0), 10000.0 * 8 / 1e6 / 10.0);
  EXPECT_DOUBLE_EQ(series.sum_between(5.0, 5.0), 0.0);
}

TEST(BinnedSeries, RejectsBadArguments) {
  EXPECT_THROW(BinnedSeries(0.0), std::invalid_argument);
  EXPECT_THROW(BinnedSeries(-1.0), std::invalid_argument);
  BinnedSeries series(1.0);
  EXPECT_THROW(series.add(-0.1, 5), std::invalid_argument);
}

}  // namespace
}  // namespace kar::stats

#include "routing/controller.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "topology/builders.hpp"

namespace kar::routing {
namespace {

using topo::ProtectionLevel;
using topo::Scenario;

TEST(Controller, EncodesPaperFig1UnprotectedRoute) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const EncodedRoute route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  // Paper §2.2: R = 44 over basis {4, 7, 11} with ports {0, 2, 0}.
  EXPECT_EQ(route.route_id.to_u64(), 44u);
  EXPECT_EQ(route.switch_ids(), (std::vector<std::uint64_t>{4, 7, 11}));
  EXPECT_EQ(route.ports(), (std::vector<std::uint64_t>{0, 2, 0}));
  EXPECT_EQ(route.primary_count, 3u);
}

TEST(Controller, EncodesPaperFig1ProtectedRoute) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const EncodedRoute route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  // Paper §2.2: R = 660 once SW5 -> SW11 is grafted in.
  EXPECT_EQ(route.route_id.to_u64(), 660u);
  EXPECT_EQ(route.switch_ids(), (std::vector<std::uint64_t>{4, 7, 11, 5}));
  EXPECT_EQ(route.ports(), (std::vector<std::uint64_t>{0, 2, 0, 0}));
  EXPECT_EQ(route.primary_count, 3u);
  EXPECT_EQ(route.assignments.size(), 4u);
}

TEST(Controller, RouteIdBytesMatchBitLength) {
  const Scenario s = topo::make_experimental15();
  const Controller controller(s.topology);
  const auto unprotected =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  const auto partial =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  const auto full = controller.encode_scenario(s.route, ProtectionLevel::kFull);
  EXPECT_EQ(unprotected.bit_length, 15u);
  EXPECT_EQ(partial.bit_length, 28u);
  EXPECT_EQ(full.bit_length, 43u);
  EXPECT_EQ(unprotected.route_id_bytes(), 2u);
  EXPECT_EQ(partial.route_id_bytes(), 4u);
  EXPECT_EQ(full.route_id_bytes(), 6u);
}

TEST(Controller, ResiduesDriveThePrimaryPath) {
  // Every switch on the primary path must, by modulo, forward to its
  // successor — for all protection levels.
  const Scenario s = topo::make_experimental15();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  for (const auto level : {ProtectionLevel::kUnprotected,
                           ProtectionLevel::kPartial, ProtectionLevel::kFull}) {
    const EncodedRoute route = controller.encode_scenario(s.route, level);
    for (std::size_t i = 0; i < s.route.core_path.size(); ++i) {
      const topo::NodeId node = t.at(s.route.core_path[i]);
      const std::uint64_t residue = route.route_id.mod_u64(t.switch_id(node));
      const topo::NodeId expected_next =
          (i + 1 < s.route.core_path.size()) ? t.at(s.route.core_path[i + 1])
                                             : t.at(s.route.dst_edge);
      EXPECT_EQ(t.neighbor(node, static_cast<topo::PortIndex>(residue)),
                expected_next)
          << s.route.core_path[i] << " at level " << static_cast<int>(level);
    }
  }
}

TEST(Controller, ProtectionResiduesDriveTowardDestination) {
  const Scenario s = topo::make_experimental15();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const EncodedRoute route =
      controller.encode_scenario(s.route, ProtectionLevel::kFull);
  for (const auto& assignment : s.route.protection_at(ProtectionLevel::kFull)) {
    const topo::NodeId node = t.at(assignment.switch_name);
    const std::uint64_t residue = route.route_id.mod_u64(t.switch_id(node));
    EXPECT_EQ(t.neighbor(node, static_cast<topo::PortIndex>(residue)),
              t.at(assignment.next_hop_name))
        << assignment.switch_name;
  }
}

TEST(Controller, RejectsDisconnectedPath) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  // SW4 -> SW5 are not adjacent.
  EXPECT_THROW(controller.encode_path(t.at("S"), {t.at("SW4"), t.at("SW5")},
                                      t.at("D")),
               std::invalid_argument);
}

TEST(Controller, RejectsWrongSourceAttachment) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  // S attaches to SW4, not SW7.
  EXPECT_THROW(
      controller.encode_path(t.at("S"), {t.at("SW7"), t.at("SW11")}, t.at("D")),
      std::invalid_argument);
}

TEST(Controller, RejectsConflictingProtectionAssignment) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  // SW7 is on the path (residue toward SW11); assigning it a different
  // next hop must be rejected — one residue per switch.
  EXPECT_THROW(controller.encode_path(t.at("S"),
                                      {t.at("SW4"), t.at("SW7"), t.at("SW11")},
                                      t.at("D"), {{t.at("SW7"), t.at("SW5")}}),
               std::invalid_argument);
}

TEST(Controller, AcceptsRedundantIdenticalAssignment) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const EncodedRoute route = controller.encode_path(
      t.at("S"), {t.at("SW4"), t.at("SW7"), t.at("SW11")}, t.at("D"),
      {{t.at("SW7"), t.at("SW11")}});  // same residue SW7 already holds
  EXPECT_EQ(route.route_id.to_u64(), 44u);
  EXPECT_EQ(route.assignments.size(), 3u);  // deduplicated
}

TEST(Controller, RejectsEdgeEndpointsThatAreNotEdges) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  EXPECT_THROW(
      controller.encode_path(t.at("SW4"), {t.at("SW7")}, t.at("D")),
      std::invalid_argument);
  EXPECT_THROW(controller.encode_path(t.at("S"), {}, t.at("D")),
               std::invalid_argument);
}

TEST(Controller, RouteBetweenUsesShortestPath) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const auto route = controller.route_between(t.at("S"), t.at("D"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->route_id.to_u64(), 44u);
}

TEST(Controller, RouteBetweenDisconnectedIsNullopt) {
  topo::Topology t;
  const auto a = t.add_edge_node("A");
  const auto b = t.add_edge_node("B");
  t.add_switch("SW5", 5);
  t.add_link(a, t.at("SW5"));
  const Controller controller(t);
  EXPECT_FALSE(controller.route_between(a, b).has_value());
}

TEST(Controller, ReencodeFromWrongEdgeReachesDestination) {
  const Scenario s = topo::make_experimental15();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const EncodedRoute original =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  // Pretend the packet surfaced at AS2 (attached to SW43).
  const auto fresh = controller.reencode_from(t.at("AS2"), original);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->src_edge, t.at("AS2"));
  EXPECT_EQ(fresh->dst_edge, t.at("AS3"));
  // First hop from AS2 is SW43; its residue must point along a shortest
  // path to AS3 (SW43 -> SW29).
  const std::uint64_t residue = fresh->route_id.mod_u64(43);
  EXPECT_EQ(t.neighbor(t.at("SW43"), static_cast<topo::PortIndex>(residue)),
            t.at("SW29"));
}

TEST(Controller, ReencodeKeepsCompatibleProtection) {
  const Scenario s = topo::make_experimental15();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const EncodedRoute original =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  const auto fresh = controller.reencode_from(t.at("AS2"), original);
  ASSERT_TRUE(fresh.has_value());
  // The partial-protection switches {11, 19, 31} are not on the AS2->AS3
  // shortest path (SW43-SW29), so their assignments must be preserved.
  EXPECT_GT(fresh->assignments.size(), fresh->primary_count);
}

// --- Validation error context (one test per encode_path failure class) ----
// The messages must carry enough context to debug a bad route without a
// debugger: the offending node name, its switch ID and the port index.

template <typename Fn>
std::string invalid_argument_message(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ControllerErrors, EmptyCorePathNamesEndpoints) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message(
      [&] { (void)controller.encode_path(t.at("S"), {}, t.at("D")); });
  EXPECT_TRUE(contains(msg, "empty core path")) << msg;
  EXPECT_TRUE(contains(msg, "S")) << msg;
  EXPECT_TRUE(contains(msg, "D")) << msg;
}

TEST(ControllerErrors, NonEdgeEndpointNamesNodeAndSwitchId) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("SW4"), {t.at("SW7")}, t.at("D"));
  });
  EXPECT_TRUE(contains(msg, "source")) << msg;
  EXPECT_TRUE(contains(msg, "SW4")) << msg;
  EXPECT_TRUE(contains(msg, "id 4")) << msg;
  const std::string dst_msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("S"), {t.at("SW4")}, t.at("SW11"));
  });
  EXPECT_TRUE(contains(dst_msg, "destination")) << dst_msg;
  EXPECT_TRUE(contains(dst_msg, "SW11")) << dst_msg;
  EXPECT_TRUE(contains(dst_msg, "id 11")) << dst_msg;
}

TEST(ControllerErrors, DetachedSourceNamesBothNodes) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("S"), {t.at("SW7"), t.at("SW11")},
                                 t.at("D"));
  });
  EXPECT_TRUE(contains(msg, "S")) << msg;
  EXPECT_TRUE(contains(msg, "SW7")) << msg;
  EXPECT_TRUE(contains(msg, "not attached")) << msg;
}

TEST(ControllerErrors, NonAdjacentHopNamesBothSwitches) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("S"), {t.at("SW4"), t.at("SW5")},
                                 t.at("D"));
  });
  EXPECT_TRUE(contains(msg, "SW4")) << msg;
  EXPECT_TRUE(contains(msg, "SW5")) << msg;
  EXPECT_TRUE(contains(msg, "not adjacent")) << msg;
}

TEST(ControllerErrors, OversizedPortNamesSwitchPortAndId) {
  // A switch with ID 3 and four ports: the egress port toward the
  // destination gets index 3, which no residue mod 3 can express.
  topo::Topology t;
  const auto src = t.add_edge_node("SRC");
  const auto dst = t.add_edge_node("DST");
  const auto tiny = t.add_switch("TINY", 3);
  const auto n1 = t.add_switch("N1", 5);
  const auto n2 = t.add_switch("N2", 7);
  t.add_link(tiny, n1);   // port 0
  t.add_link(tiny, n2);   // port 1
  t.add_link(tiny, src);  // port 2
  t.add_link(tiny, dst);  // port 3
  const Controller controller(t);
  const std::string msg = invalid_argument_message(
      [&] { (void)controller.encode_path(src, {tiny}, dst); });
  EXPECT_TRUE(contains(msg, "TINY")) << msg;
  EXPECT_TRUE(contains(msg, "port 3")) << msg;
  EXPECT_TRUE(contains(msg, "switch id 3")) << msg;
}

TEST(ControllerErrors, EdgeNodeInProtectionNamesNode) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("S"),
                                 {t.at("SW4"), t.at("SW7"), t.at("SW11")},
                                 t.at("D"), {{t.at("S"), t.at("SW4")}});
  });
  EXPECT_TRUE(contains(msg, "S is an edge node")) << msg;
}

TEST(ControllerErrors, ConflictingAssignmentNamesSwitchIdAndBothPorts) {
  const Scenario s = topo::make_fig1_network();
  const Controller controller(s.topology);
  const topo::Topology& t = s.topology;
  const std::string msg = invalid_argument_message([&] {
    (void)controller.encode_path(t.at("S"),
                                 {t.at("SW4"), t.at("SW7"), t.at("SW11")},
                                 t.at("D"), {{t.at("SW7"), t.at("SW5")}});
  });
  EXPECT_TRUE(contains(msg, "conflicting port assignments")) << msg;
  EXPECT_TRUE(contains(msg, "SW7")) << msg;
  EXPECT_TRUE(contains(msg, "switch id 7")) << msg;
  EXPECT_TRUE(contains(msg, "port")) << msg;
}

}  // namespace
}  // namespace kar::routing

// Differential proof that the incremental reconvergence engine and the
// full-recompute oracle maintain bit-identical route tables.
//
// 200 seeded churn sequences across fig1, fig2 (the 15-node experimental
// network) and rnp28, with host edges attached so every topology offers
// many distinct edge pairs. Each sequence runs one incremental and one
// full-recompute engine over the SAME topology object through the same
// epochs (schedule events grouped by timestamp) and asserts, after every
// epoch: identical liveness, route IDs, port assignments, primary core
// paths, updated-key lists and pure-modulo forwarding traces.
//
// Schedule families rotate through fail/repair churn (kRandomUpDown),
// correlated cuts (kSrlgGroups), flapping and permanent k-failure sweeps;
// half the sequences plan driven-deflection protection, half encode bare
// primary paths.
//
// A second suite pins the sharded reconvergence path: the same sequences
// run through incremental engines at shard widths 1, 4 and
// hardware_concurrency, and every epoch must be *bit-identical* across
// widths — version stamps and updated-key lists included, not just final
// tables — because sharding is specified as a pure throughput knob
// (docs/ctrlplane.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ctrlplane/engine.hpp"
#include "ctrlplane/route_store.hpp"
#include "faultgen/schedule.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using ctrlplane::EngineConfig;
using ctrlplane::EngineMode;
using ctrlplane::LinkChange;
using ctrlplane::ReconvergenceEngine;
using ctrlplane::RouteKey;
using ctrlplane::RouteStore;
using faultgen::FailureSchedule;
using faultgen::ScheduleConfig;
using faultgen::ScheduleKind;
using topo::Scenario;

Scenario make_scenario(const std::string& name) {
  if (name == "fig1") return topo::make_fig1_network();
  if (name == "fig2") return topo::make_experimental15();
  return topo::make_rnp28();
}

ScheduleConfig schedule_for(std::uint64_t sequence) {
  ScheduleConfig config;
  config.horizon_s = 1.0;
  switch (sequence % 4) {
    case 0:
      config.kind = ScheduleKind::kRandomUpDown;
      config.per_link_failure_probability = 0.35;
      config.mean_downtime_s = 0.3;
      break;
    case 1:
      config.kind = ScheduleKind::kSrlgGroups;
      config.group_count = 2;
      config.group_size = 2;
      config.mean_downtime_s = 0.25;
      break;
    case 2:
      config.kind = ScheduleKind::kFlapping;
      config.flapping_links = 2;
      config.flap_half_period_s = 0.1;
      break;
    default:
      config.kind = ScheduleKind::kKFailureSweep;
      config.k_failures = 3;
      break;
  }
  return config;
}

void expect_identical_tables(const topo::Topology& t, const RouteStore& inc,
                             const RouteStore& full, const std::string& where) {
  ASSERT_EQ(inc.size(), full.size());
  for (RouteKey key = 0; key < inc.size(); ++key) {
    const auto& a = inc.get(key);
    const auto& b = full.get(key);
    ASSERT_EQ(a.live, b.live) << where << ", route " << key << " ("
                              << t.name(a.src) << " -> " << t.name(a.dst) << ")";
    if (!a.live) continue;
    ASSERT_EQ(a.core_path, b.core_path) << where << ", route " << key;
    ASSERT_EQ(a.route.route_id, b.route.route_id)
        << where << ", route " << key << " (" << t.name(a.src) << " -> "
        << t.name(a.dst) << ")";
    ASSERT_EQ(a.route.assignments.size(), b.route.assignments.size())
        << where << ", route " << key;
    for (std::size_t i = 0; i < a.route.assignments.size(); ++i) {
      ASSERT_EQ(a.route.assignments[i].node, b.route.assignments[i].node)
          << where << ", route " << key << ", assignment " << i;
      ASSERT_EQ(a.route.assignments[i].port, b.route.assignments[i].port)
          << where << ", route " << key << ", assignment " << i;
    }
    ASSERT_EQ(ctrlplane::forwarding_trace(t, a.route),
              ctrlplane::forwarding_trace(t, b.route))
        << where << ", route " << key;
  }
}

void run_sequence(const std::string& topology, std::uint64_t sequence,
                  common::Rng& rng) {
  Scenario s = make_scenario(topology);
  topo::Topology& t = s.topology;
  (void)topo::attach_host_edges(t);
  const auto edges = t.nodes_of_kind(topo::NodeKind::kEdgeNode);
  ASSERT_GE(edges.size(), 2u);

  RouteStore inc_store(t);
  RouteStore full_store(t);
  EngineConfig inc_config;
  EngineConfig full_config;
  full_config.mode = EngineMode::kFullRecompute;
  // Half the sequences exercise the memoised protection planner, half the
  // bare-primary encoding path.
  inc_config.plan_protection = full_config.plan_protection =
      (sequence % 2 == 0);
  ReconvergenceEngine inc(t, inc_store, inc_config);
  ReconvergenceEngine full(t, full_store, full_config);

  const std::size_t route_count = 25;
  for (std::size_t i = 0; i < route_count; ++i) {
    const std::size_t si = rng.below(edges.size());
    std::size_t di = rng.below(edges.size() - 1);
    if (di >= si) ++di;  // uniform over the other edges
    ASSERT_EQ(inc.add_route(edges[si], edges[di]),
              full.add_route(edges[si], edges[di]));
  }
  const std::string tag = topology + " seq " + std::to_string(sequence);
  expect_identical_tables(t, inc_store, full_store, tag + " initial");

  common::Rng schedule_rng(common::derive_seed(0x0d1ffe12ULL, sequence));
  const FailureSchedule schedule =
      faultgen::generate_schedule(t, schedule_for(sequence), schedule_rng);

  // Group the time-sorted events into epochs (equal timestamps coalesce,
  // exactly like the reaction-delay window of sim::ReactiveController).
  std::size_t i = 0;
  std::size_t epoch_index = 0;
  while (i < schedule.events.size()) {
    std::size_t j = i;
    std::vector<LinkChange> events;
    while (j < schedule.events.size() &&
           schedule.events[j].time == schedule.events[i].time) {
      const faultgen::LinkEvent& e = schedule.events[j];
      t.set_link_up(e.link, !e.fail);
      events.push_back(LinkChange{e.link, !e.fail});
      ++j;
    }
    const auto ri = inc.apply(events);
    const auto rf = full.apply(events);
    const std::string where = tag + " epoch " + std::to_string(epoch_index);
    ASSERT_EQ(ri.version, rf.version) << where;
    ASSERT_EQ(ri.updated, rf.updated) << where;
    expect_identical_tables(t, inc_store, full_store, where);
    i = j;
    ++epoch_index;
  }
}

// Serial vs sharded incremental engines over identical epochs. Stricter
// than expect_identical_tables: a shard width must not even perturb the
// per-route version stamps.
void run_sharded_sequence(const std::string& topology, std::uint64_t sequence,
                          common::Rng& rng) {
  const std::vector<std::size_t> widths = {
      1, 4, std::max<std::size_t>(1, std::thread::hardware_concurrency())};
  Scenario s = make_scenario(topology);
  topo::Topology& t = s.topology;
  (void)topo::attach_host_edges(t);
  const auto edges = t.nodes_of_kind(topo::NodeKind::kEdgeNode);

  std::vector<std::unique_ptr<RouteStore>> stores;
  std::vector<std::unique_ptr<ReconvergenceEngine>> engines;
  for (const std::size_t shards : widths) {
    EngineConfig config;
    config.shards = shards;
    config.plan_protection = (sequence % 2 == 0);
    stores.push_back(std::make_unique<RouteStore>(t));
    engines.push_back(
        std::make_unique<ReconvergenceEngine>(t, *stores.back(), config));
  }

  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t si = rng.below(edges.size());
    std::size_t di = rng.below(edges.size() - 1);
    if (di >= si) ++di;
    const RouteKey key = engines[0]->add_route(edges[si], edges[di]);
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(engines[e]->add_route(edges[si], edges[di]), key);
    }
  }

  const std::string tag =
      topology + " sharded seq " + std::to_string(sequence);
  common::Rng schedule_rng(common::derive_seed(0x54a6dedULL, sequence));
  const FailureSchedule schedule =
      faultgen::generate_schedule(t, schedule_for(sequence), schedule_rng);

  std::size_t i = 0;
  std::size_t epoch_index = 0;
  while (i < schedule.events.size()) {
    std::size_t j = i;
    std::vector<LinkChange> events;
    while (j < schedule.events.size() &&
           schedule.events[j].time == schedule.events[i].time) {
      const faultgen::LinkEvent& e = schedule.events[j];
      t.set_link_up(e.link, !e.fail);
      events.push_back(LinkChange{e.link, !e.fail});
      ++j;
    }
    const auto serial = engines[0]->apply(events);
    for (std::size_t e = 1; e < engines.size(); ++e) {
      const auto sharded = engines[e]->apply(events);
      const std::string where = tag + " epoch " + std::to_string(epoch_index) +
                                " shards " + std::to_string(widths[e]);
      ASSERT_EQ(serial.version, sharded.version) << where;
      ASSERT_EQ(serial.updated, sharded.updated) << where;
      ASSERT_EQ(serial.stats.candidates, sharded.stats.candidates) << where;
      ASSERT_EQ(serial.stats.reencoded, sharded.stats.reencoded) << where;
      ASSERT_EQ(serial.stats.withdrawn, sharded.stats.withdrawn) << where;
      expect_identical_tables(t, *stores[0], *stores[e], where);
      for (RouteKey key = 0; key < stores[0]->size(); ++key) {
        ASSERT_EQ(stores[0]->get(key).version, stores[e]->get(key).version)
            << where << ", route " << key << " version stamp";
      }
    }
    i = j;
    ++epoch_index;
  }
}

class CtrlplaneDifferential
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(CtrlplaneDifferential, IncrementalEqualsFullRecompute) {
  const auto [topology, sequences] = GetParam();
  common::Rng rng = testsupport::make_rng(
      0xd1ffULL ^ std::hash<std::string>{}(topology), "CtrlplaneDifferential");
  for (int sequence = 0; sequence < sequences; ++sequence) {
    run_sequence(topology, static_cast<std::uint64_t>(sequence), rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// 70 + 70 + 60 = 200 churn sequences.
INSTANTIATE_TEST_SUITE_P(
    Topologies, CtrlplaneDifferential,
    ::testing::Values(std::pair<const char*, int>{"fig1", 70},
                      std::pair<const char*, int>{"fig2", 70},
                      std::pair<const char*, int>{"rnp28", 60}),
    [](const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
      return std::string(info.param.first);
    });

class CtrlplaneShardedDifferential
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(CtrlplaneShardedDifferential, ShardWidthsBitIdentical) {
  const auto [topology, sequences] = GetParam();
  common::Rng rng = testsupport::make_rng(
      0x54a6dULL ^ std::hash<std::string>{}(topology),
      "CtrlplaneShardedDifferential");
  for (int sequence = 0; sequence < sequences; ++sequence) {
    run_sharded_sequence(topology, static_cast<std::uint64_t>(sequence), rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// 3 engines x 3 shard widths per sequence keeps this pricier than the
// serial suite, so fewer sequences; all four schedule families still
// rotate through on every topology.
INSTANTIATE_TEST_SUITE_P(
    Topologies, CtrlplaneShardedDifferential,
    ::testing::Values(std::pair<const char*, int>{"fig1", 16},
                      std::pair<const char*, int>{"fig2", 16},
                      std::pair<const char*, int>{"rnp28", 12}),
    [](const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
      return std::string(info.param.first);
    });

}  // namespace
}  // namespace kar

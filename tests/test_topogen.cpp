// Property tests for the src/topogen/ generators: seed determinism
// (byte-identical serialization), connectivity and coprime IDs at
// 100-1000 switches, structural invariants per family (fat-tree switch
// counts and layer degrees, BA edge counts, Internet2's designated
// bottleneck), and the gen: spec grammar.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

#include "routing/controller.hpp"
#include "routing/encodings.hpp"
#include "routing/paths.hpp"
#include "topogen/topogen.hpp"
#include "topology/io.hpp"

namespace kar {
namespace {

using topo::NodeId;
using topo::NodeKind;
using topo::Scenario;
using topo::Topology;
using namespace kar::topogen;

/// True when every node can reach every other (links assumed up).
bool connected(const Topology& t) {
  if (t.node_count() == 0) return true;
  std::vector<bool> seen(t.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (std::size_t port = 0; port < t.port_count(cur); ++port) {
      const auto& link = t.link(t.link_at(cur, static_cast<topo::PortIndex>(port)));
      const NodeId other = link.a.node == cur ? link.b.node : link.a.node;
      if (!seen[other]) {
        seen[other] = true;
        ++reached;
        frontier.push(other);
      }
    }
  }
  return reached == t.node_count();
}

void expect_pairwise_coprime(const Topology& t) {
  const std::vector<topo::SwitchId> ids = t.all_switch_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      ASSERT_EQ(std::gcd(ids[i], ids[j]), 1u)
          << ids[i] << " and " << ids[j] << " share a factor";
    }
  }
}

void expect_ids_exceed_ports(const Topology& t) {
  for (const NodeId sw : t.nodes_of_kind(NodeKind::kCoreSwitch)) {
    ASSERT_GT(t.switch_id(sw), static_cast<topo::SwitchId>(t.port_count(sw) - 1))
        << t.name(sw) << " id does not exceed its max port index";
  }
}

// -- fat-tree ----------------------------------------------------------------

TEST(TopogenFatTree, SwitchCountAndLayerDegrees) {
  for (const std::size_t k : {2u, 4u, 8u}) {
    const Scenario s = make_fat_tree({.k = k});
    const auto switches = s.topology.nodes_of_kind(NodeKind::kCoreSwitch);
    EXPECT_EQ(switches.size(), 5 * k * k / 4) << "k=" << k;
    std::size_t edge_layer = 0, agg_layer = 0, core_layer = 0;
    for (const NodeId sw : switches) {
      const std::string& name = s.topology.name(sw);
      const std::size_t ports = s.topology.port_count(sw);
      if (name.find("/edge") != std::string::npos) {
        ++edge_layer;
        // k/2 uplinks; the two route endpoints add one host port each.
        EXPECT_GE(ports, k / 2);
        EXPECT_LE(ports, k / 2 + 1);
      } else if (name.find("/agg") != std::string::npos) {
        ++agg_layer;
        EXPECT_EQ(ports, k);  // k/2 down + k/2 up
      } else {
        ++core_layer;
        EXPECT_EQ(ports, k);  // one port per pod
      }
    }
    EXPECT_EQ(edge_layer, k * k / 2);
    EXPECT_EQ(agg_layer, k * k / 2);
    EXPECT_EQ(core_layer, k * k / 4);
    EXPECT_TRUE(connected(s.topology));
    expect_ids_exceed_ports(s.topology);
  }
}

TEST(TopogenFatTree, DeterministicAndRoutable) {
  const Scenario a = make_fat_tree({.k = 4});
  const Scenario b = make_fat_tree({.k = 4});
  EXPECT_EQ(topo::serialize_topology(a.topology),
            topo::serialize_topology(b.topology));
  ASSERT_FALSE(a.route.core_path.empty());
  // Pod 0 to pod k-1 must climb to the core: edge, agg, core, agg, edge.
  EXPECT_EQ(a.route.core_path.size(), 5u);
  const routing::Controller controller(a.topology);
  EXPECT_NO_THROW((void)controller.encode_scenario(
      a.route, topo::ProtectionLevel::kPartial));
}

TEST(TopogenFatTree, RejectsOddK) {
  EXPECT_THROW((void)make_fat_tree({.k = 3}), std::invalid_argument);
  EXPECT_THROW((void)make_fat_tree({.k = 0}), std::invalid_argument);
}

// -- Internet2 ---------------------------------------------------------------

TEST(TopogenInternet2, BottleneckDesignatedAndOnPrimaryPath) {
  const Scenario s = make_internet2({});
  EXPECT_EQ(s.bottleneck_a, "CHI");
  EXPECT_EQ(s.bottleneck_b, "IPL");
  EXPECT_EQ(s.topology.nodes_of_kind(NodeKind::kCoreSwitch).size(), 11u);
  EXPECT_TRUE(connected(s.topology));

  // The designated bottleneck runs at the configured fraction of trunk rate.
  const NodeId chi = s.topology.at("CHI");
  const NodeId ipl = s.topology.at("IPL");
  bool found = false;
  for (std::size_t port = 0; port < s.topology.port_count(chi); ++port) {
    const auto& link =
        s.topology.link(s.topology.link_at(chi, static_cast<topo::PortIndex>(port)));
    const NodeId other = link.a.node == chi ? link.b.node : link.a.node;
    if (other == ipl) {
      found = true;
      EXPECT_DOUBLE_EQ(link.params.rate_bps, 1e9 * 0.1);
    }
  }
  EXPECT_TRUE(found) << "no CHI-IPL link";

  // The scenario's route crosses the bottleneck.
  const auto& path = s.route.core_path;
  bool crosses = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (path[i] == "CHI" && path[i + 1] == "IPL") crosses = true;
  }
  EXPECT_TRUE(crosses) << "primary path misses the bottleneck";
}

TEST(TopogenInternet2, ScaledPoPsStayConnectedWithRedOnBottleneck) {
  const Scenario s = make_internet2({.scale = 4, .red = true});
  EXPECT_EQ(s.topology.nodes_of_kind(NodeKind::kCoreSwitch).size(), 44u);
  EXPECT_TRUE(connected(s.topology));
  expect_pairwise_coprime(s.topology);
  const NodeId a = s.topology.at(s.bottleneck_a);
  const NodeId b = s.topology.at(s.bottleneck_b);
  bool red_seen = false;
  for (std::size_t port = 0; port < s.topology.port_count(a); ++port) {
    const auto& link =
        s.topology.link(s.topology.link_at(a, static_cast<topo::PortIndex>(port)));
    const NodeId other = link.a.node == a ? link.b.node : link.a.node;
    if (other == b) red_seen = link.params.red.has_value();
  }
  EXPECT_TRUE(red_seen) << "red=1 did not arm RED on the bottleneck";
}

// -- random families ---------------------------------------------------------

TEST(TopogenWaxman, SeedDeterminismAndDivergence) {
  const Scenario a = make_waxman({.switches = 100, .seed = 7});
  const Scenario b = make_waxman({.switches = 100, .seed = 7});
  const Scenario c = make_waxman({.switches = 100, .seed = 8});
  EXPECT_EQ(topo::serialize_topology(a.topology),
            topo::serialize_topology(b.topology));
  EXPECT_NE(topo::serialize_topology(a.topology),
            topo::serialize_topology(c.topology));
}

TEST(TopogenWaxman, ConnectedWithMinDegreeAcrossScales) {
  for (const std::size_t n : {100u, 250u, 1000u}) {
    const Scenario s = make_waxman({.switches = n, .seed = 3});
    const auto switches = s.topology.nodes_of_kind(NodeKind::kCoreSwitch);
    ASSERT_EQ(switches.size(), n);
    EXPECT_TRUE(connected(s.topology)) << "n=" << n;
    for (const NodeId sw : switches) {
      EXPECT_GE(s.topology.port_count(sw), 2u) << s.topology.name(sw);
    }
    expect_ids_exceed_ports(s.topology);
  }
}

TEST(TopogenBarabasiAlbert, EdgeCountInvariant) {
  // C(m+1, 2) clique links + m per arriving node + 2 endpoint host links.
  for (const auto& [n, m] : std::vector<std::pair<std::size_t, std::size_t>>{
           {100, 2}, {250, 3}, {500, 2}}) {
    const Scenario s = make_barabasi_albert({.switches = n, .edges_per_arrival = m});
    EXPECT_EQ(s.topology.link_count(), m * (m + 1) / 2 + (n - m - 1) * m + 2)
        << "n=" << n << " m=" << m;
    EXPECT_TRUE(connected(s.topology));
  }
}

TEST(TopogenBarabasiAlbert, SeedDeterminism) {
  const Scenario a = make_barabasi_albert({.switches = 200, .seed = 5});
  const Scenario b = make_barabasi_albert({.switches = 200, .seed = 5});
  EXPECT_EQ(topo::serialize_topology(a.topology),
            topo::serialize_topology(b.topology));
}

// -- scale: coprime IDs + Eq. 9 encoding at 1000 switches --------------------

TEST(TopogenScale, ThousandSwitchGraphsEncodeUnderEq9) {
  // One large instance per family (fat-tree k=28 is 980 switches).
  const std::vector<Scenario> scenarios = {
      make_fat_tree({.k = 28}),
      make_internet2({.scale = 91}),
      make_waxman({.switches = 1000, .seed = 11}),
      make_barabasi_albert({.switches = 1000, .seed = 11}),
  };
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    const auto switches = s.topology.nodes_of_kind(NodeKind::kCoreSwitch);
    ASSERT_GE(switches.size(), 980u);
    ASSERT_TRUE(connected(s.topology));
    expect_pairwise_coprime(s.topology);
    expect_ids_exceed_ports(s.topology);

    // Eq. 9 encoding: the scenario's own route must encode, and its header
    // bits must equal the sum of log2(id) over the path's switches.
    const routing::Controller controller(s.topology);
    const routing::EncodedRoute route = controller.encode_scenario(
        s.route, topo::ProtectionLevel::kUnprotected);
    std::vector<NodeId> path_nodes;
    double expected_bits = 0.0;
    for (const std::string& name : s.route.core_path) {
      path_nodes.push_back(s.topology.at(name));
      expected_bits +=
          std::log2(static_cast<double>(s.topology.switch_id(path_nodes.back())));
    }
    const routing::HeaderCost cost = routing::primary_header_cost(
        s.topology, path_nodes, routing::HeaderScheme::kKarRns);
    EXPECT_GE(static_cast<double>(cost.bits), expected_bits);
    EXPECT_LE(static_cast<double>(cost.bits), expected_bits + 1.0 +
              static_cast<double>(path_nodes.size()));
    (void)route;
  }
}

// -- spec grammar ------------------------------------------------------------

TEST(TopogenSpec, RoundTripsThroughMakeFromSpec) {
  EXPECT_FALSE(is_gen_spec("fig2"));
  EXPECT_TRUE(is_gen_spec("gen:fat-tree:k=4"));

  const Scenario direct = make_fat_tree({.k = 4});
  const Scenario via_spec = make_from_spec("gen:fat-tree:k=4");
  EXPECT_EQ(topo::serialize_topology(direct.topology),
            topo::serialize_topology(via_spec.topology));

  const Scenario wax = make_from_spec("gen:waxman:n=120,alpha=0.5,beta=0.3,seed=9");
  EXPECT_EQ(wax.topology.nodes_of_kind(NodeKind::kCoreSwitch).size(), 120u);

  const Scenario ba = make_from_spec("gen:ba:n=150,m=3,seed=2");
  EXPECT_EQ(ba.topology.nodes_of_kind(NodeKind::kCoreSwitch).size(), 150u);

  const Scenario i2 = make_from_spec("gen:internet2:scale=2,bneck=0.25");
  EXPECT_EQ(i2.topology.nodes_of_kind(NodeKind::kCoreSwitch).size(), 22u);
}

TEST(TopogenSpec, RejectsMalformedSpecsWithGrammarHelp) {
  for (const char* bad :
       {"gen:", "gen:frob:n=10", "gen:fat-tree:k=nope", "gen:waxman:bogus=1",
        "gen:ba:n", "not-a-spec"}) {
    EXPECT_THROW((void)make_from_spec(bad), std::invalid_argument) << bad;
  }
  try {
    (void)make_from_spec("gen:frob:n=10");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gen:<family>"), std::string::npos)
        << "error should carry the grammar: " << e.what();
  }
}

}  // namespace
}  // namespace kar

// Property tests for the batched data plane (PacketBatch + BumpArena +
// KarSwitch::forward_batch + the simulator's batch admission path).
//
// The batched path is an amortization, never a semantics change. Three
// properties pin that:
//   * element equivalence: forward_batch over any packet mix — narrow and
//     wide routes, HP random-walk packets, dead ports forcing deflection
//     draws — is decision-for-decision AND RNG-draw-for-RNG-draw identical
//     to calling forward() in push order;
//   * the SoA residue sweep agrees with scalar BigUint::mod_u64 over
//     random 64–1024-bit routes, computing each distinct route once;
//   * batch split/merge invariance: a full simulation produces the same
//     byte-exact trace whether arrivals are swept in batches of 1, 7 or
//     32 — or not batched at all.
// Plus the BumpArena unit behaviors the zero-alloc path leans on:
// alignment, O(1) reset/reuse with a stable high-water mark, and
// bad_alloc (never growth) on exhaustion.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/arena.hpp"
#include "dataplane/batch.hpp"
#include "dataplane/switch.hpp"
#include "faultgen/campaign.hpp"
#include "routing/controller.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar::dataplane {
namespace {

using common::Rng;

/// Random BigUint with roughly `bits` significant bits.
rns::BigUint random_biguint(Rng& rng, std::size_t bits) {
  rns::BigUint value;
  for (std::size_t produced = 0; produced < bits; produced += 32) {
    value <<= 32;
    value += rns::BigUint(rng.below(std::uint64_t{1} << 32));
  }
  return value;
}

TEST(ForwardBatch, MatchesSequentialForwardAndRngStream) {
  topo::Scenario s = topo::make_fig1_network();
  // Kill one of SW7's links so residues regularly point at a dead port and
  // every technique's deflection draw actually runs.
  const topo::NodeId sw7 = s.topology.at("SW7");
  const auto dead = s.topology.link_at(sw7, 1);
  ASSERT_NE(dead, topo::kInvalidLink);
  s.topology.set_link_up(dead, false);

  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort,
        DeflectionTechnique::kNotInputPort}) {
    const KarSwitch sw(s.topology, sw7, technique, ResiduePath::kFast);
    auto rng = testsupport::make_rng(20260809, "ForwardBatchMix");
    for (int round = 0; round < 50; ++round) {
      const std::size_t n = 1 + rng.below(32);
      std::vector<Packet> packets(n);
      std::vector<topo::PortIndex> in_ports(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Mix: mostly narrow routes with duplicates, some wide (up to
        // ~512-bit) ones, some HP packets already in random-walk mode,
        // and the occasional "locally originated" no-input-port packet.
        if (rng.chance(0.25)) {
          packets[i].kar.route_id = random_biguint(rng, 65 + rng.below(448));
        } else {
          packets[i].kar.route_id = rns::BigUint(rng.below(2000));
        }
        packets[i].kar.deflected = rng.chance(0.2);
        in_ports[i] = rng.chance(0.1)
                          ? kNoInPort
                          : static_cast<topo::PortIndex>(
                                rng.below(s.topology.port_count(sw7)));
      }

      BumpArena arena(1 << 16);
      PacketBatch batch(arena, n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push(&packets[i], in_ports[i]);
      }

      const std::uint64_t seed = rng();
      Rng rng_batch(seed);
      Rng rng_seq(seed);
      sw.forward_batch(batch, rng_batch);

      BatchStats manual;
      for (std::size_t i = 0; i < n; ++i) {
        const auto in = in_ports[i] == kNoInPort
                            ? std::nullopt
                            : std::optional<topo::PortIndex>(in_ports[i]);
        const ForwardDecision expected =
            sw.forward(packets[i], in, rng_seq);
        const ForwardDecision& got = batch.decisions()[i];
        ASSERT_EQ(got.action, expected.action)
            << to_string(technique) << " round " << round << " packet " << i;
        ASSERT_EQ(got.out_port, expected.out_port)
            << to_string(technique) << " round " << round << " packet " << i;
        ASSERT_EQ(got.deflected, expected.deflected);
        ASSERT_EQ(got.marked_hot_potato, expected.marked_hot_potato);
        ASSERT_EQ(got.drop_reason, expected.drop_reason);
        if (expected.action == ForwardDecision::Action::kForward) {
          ++manual.forwarded;
          if (expected.deflected) ++manual.deflected;
          if (expected.marked_hot_potato) ++manual.marked_hot_potato;
        } else {
          ++manual.dropped;
        }
      }
      // Identical draw count and order: the two generators must now be in
      // the same state, i.e. produce the same next raw word.
      ASSERT_EQ(rng_batch(), rng_seq())
          << to_string(technique) << " round " << round;
      // The folded stats are exactly the per-packet fold.
      EXPECT_EQ(batch.stats().forwarded, manual.forwarded);
      EXPECT_EQ(batch.stats().dropped, manual.dropped);
      EXPECT_EQ(batch.stats().deflected, manual.deflected);
      EXPECT_EQ(batch.stats().marked_hot_potato, manual.marked_hot_potato);
    }
  }
}

TEST(ForwardBatch, SoAResidueSweepMatchesScalarModU64) {
  topo::Scenario s = topo::make_fig1_network();
  const topo::NodeId sw7 = s.topology.at("SW7");
  const KarSwitch sw(s.topology, sw7, DeflectionTechnique::kNone,
                     ResiduePath::kFast);
  auto rng = testsupport::make_rng(20260809, "ResidueSweep");
  BumpArena arena(1 << 18);

  for (int round = 0; round < 40; ++round) {
    arena.reset();
    const std::size_t distinct = 1 + rng.below(12);
    std::vector<rns::BigUint> routes;
    for (std::size_t i = 0; i < distinct; ++i) {
      routes.push_back(random_biguint(rng, 64 + rng.below(961)));
    }
    const std::size_t n = distinct + rng.below(24);
    std::vector<Packet> packets(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Every distinct route appears at least once; the rest are repeats.
      packets[i].kar.route_id =
          routes[i < distinct ? i : rng.below(distinct)];
    }
    PacketBatch batch(arena, n);
    for (std::size_t i = 0; i < n; ++i) batch.push(&packets[i], 0);

    Rng unused(1);
    sw.forward_batch(batch, unused);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch.residues()[i],
                packets[i].kar.route_id.mod_u64(sw.switch_id()))
          << "round " << round << " packet " << i;
    }
    // One reduction per distinct route, not per packet. (Distinct values,
    // not distinct pointers: repeats share a group even when they alias
    // different BigUint objects.)
    std::size_t unique = 0;
    for (std::size_t i = 0; i < distinct; ++i) {
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (routes[j] == routes[i]) { seen = true; break; }
      }
      if (!seen) ++unique;
    }
    EXPECT_EQ(batch.stats().distinct_routes, unique) << "round " << round;
  }
}

/// One seeded fig2 simulation (bursts + mid-run failure/repair) at a given
/// batch size; returns the full trace CSV + counters.
std::string traced_sim(std::size_t batch_size, std::uint64_t seed) {
  topo::Scenario s = faultgen::make_campaign_scenario("fig2");
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);

  sim::NetworkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  config.seed = common::derive_seed(seed, 1);
  config.batch_size = batch_size;
  sim::Network net(s.topology, controller, config);

  std::ostringstream out;
  sim::TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));

  Rng rng(common::derive_seed(seed, 2));
  const auto& core = s.route.core_path;
  const double fail_at = 0.001 + rng.uniform() * 0.004;
  net.fail_link_at(fail_at, core[0], core[1]);
  net.repair_link_at(fail_at + 0.005, core[0], core[1]);

  double time = 0.0;
  for (int b = 0; b < 3; ++b) {
    time += 1e-4 + rng.uniform() * 2e-3;
    const std::size_t bytes = 64 + rng.below(1200);
    const std::size_t count = 2 + rng.below(9);
    net.events().schedule_at(time, [&net, &route, bytes, count] {
      std::vector<Packet> burst(count);
      for (auto& p : burst) {
        p.transport = Datagram{0};
        net.edge_at(route.src_edge).stamp(p, route, bytes);
      }
      net.inject_burst(route.src_edge, std::move(burst));
    });
  }
  net.events().run_all();

  std::ostringstream counters;
  const auto& c = net.counters();
  counters << " injected=" << c.injected << " delivered=" << c.delivered
           << " hops=" << c.hops << " deflections=" << c.deflections
           << " drops=" << c.total_drops();
  return out.str() + counters.str();
}

TEST(BatchSplitMerge, AnyBatchSizeYieldsIdenticalTraces) {
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{77},
                             testsupport::seed_or(20260809)}) {
    const std::string reference = traced_sim(/*batch_size=*/0, seed);
    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
      EXPECT_EQ(traced_sim(batch_size, seed), reference)
          << "batch_size=" << batch_size << " seed=" << seed;
    }
  }
}

TEST(BumpArena, AllocationsAreAlignedAndBumpTheHighWater) {
  BumpArena arena(4096);
  EXPECT_EQ(arena.capacity(), 4096u);
  EXPECT_EQ(arena.used(), 0u);

  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_GT(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), arena.used());

  auto* doubles = arena.alloc_array<double>(16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles) % alignof(double), 0u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(doubles[i], 0.0);  // value-init
}

TEST(BumpArena, ResetRecyclesWithStableHighWater) {
  BumpArena arena(1 << 14);
  std::size_t first_used = 0;
  // The same allocation pattern after reset() must land on the same bytes
  // and never move the high-water mark — the "campaigns do not creep"
  // property the zero-alloc regression test leans on.
  void* first_ptr = nullptr;
  for (int cycle = 0; cycle < 5; ++cycle) {
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    auto* p = arena.alloc_array<std::uint64_t>(100);
    p[0] = 42;
    p[99] = 7;
    auto* q = arena.alloc_array<std::uint32_t>(33);
    q[32] = 9;
    if (cycle == 0) {
      first_used = arena.used();
      first_ptr = p;
    } else {
      EXPECT_EQ(arena.used(), first_used);
      EXPECT_EQ(static_cast<void*>(p), first_ptr);
    }
  }
  EXPECT_EQ(arena.high_water(), first_used);
}

TEST(BumpArena, ExhaustionThrowsBadAllocInsteadOfGrowing) {
  BumpArena arena(256);
  (void)arena.allocate(200, 1);
  EXPECT_THROW((void)arena.allocate(100, 1), std::bad_alloc);
  // The failed allocation must not have corrupted the arena.
  const std::size_t used = arena.used();
  (void)arena.allocate(8, 1);
  EXPECT_GT(arena.used(), used);
}

TEST(PacketBatchCtor, ZeroCapacityThrows) {
  BumpArena arena(4096);
  EXPECT_THROW(PacketBatch(arena, 0), std::invalid_argument);
}

TEST(PacketBatchCtor, ArenaResetThenRebuildIsSafe) {
  BumpArena arena(1 << 16);
  topo::Scenario s = topo::make_fig1_network();
  const topo::NodeId sw7 = s.topology.at("SW7");
  const KarSwitch sw(s.topology, sw7, DeflectionTechnique::kAnyValidPort);
  Packet p;
  p.kar.route_id = rns::BigUint(44);

  for (int cycle = 0; cycle < 3; ++cycle) {
    arena.reset();
    PacketBatch batch(arena, 8);
    EXPECT_TRUE(batch.empty());
    batch.push(&p, 0);
    EXPECT_EQ(batch.size(), 1u);
    Rng rng(9);
    sw.forward_batch(batch, rng);
    EXPECT_EQ(batch.residues()[0], rns::BigUint(44).mod_u64(sw.switch_id()));
    batch.clear();
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(batch.stats().forwarded + batch.stats().dropped, 0u);
  }
}

}  // namespace
}  // namespace kar::dataplane

#include "analysis/markov.hpp"

#include <gtest/gtest.h>

#include "analysis/walks.hpp"
#include "routing/controller.hpp"
#include "topology/builders.hpp"

namespace kar::analysis {
namespace {

using dataplane::DeflectionTechnique;
using topo::ProtectionLevel;
using topo::Scenario;

TEST(Markov, HealthyRouteIsDeterministic) {
  const Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  const auto result = analyze_deflection(s.topology, route,
                                         DeflectionTechnique::kNotInputPort);
  EXPECT_DOUBLE_EQ(result.delivery_probability, 1.0);
  EXPECT_DOUBLE_EQ(result.expected_hops, 3.0);
  EXPECT_DOUBLE_EQ(result.expected_hops_given_delivery, 3.0);
  EXPECT_DOUBLE_EQ(result.drop_probability, 0.0);
}

TEST(Markov, NoDeflectionLosesEverythingDuringFailure) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  s.topology.fail_link("SW7", "SW11");
  const auto result =
      analyze_deflection(s.topology, route, DeflectionTechnique::kNone);
  EXPECT_DOUBLE_EQ(result.delivery_probability, 0.0);
  EXPECT_DOUBLE_EQ(result.drop_probability, 1.0);
  EXPECT_DOUBLE_EQ(result.expected_hops, 2.0);  // SW4, SW7, then dropped
}

TEST(Markov, DrivenDeflectionDeliversDeterministically) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW7", "SW11");
  const auto result = analyze_deflection(s.topology, route,
                                         DeflectionTechnique::kNotInputPort);
  EXPECT_NEAR(result.delivery_probability, 1.0, 1e-9);
  EXPECT_NEAR(result.expected_hops, 4.0, 1e-9);  // SW4,SW7,SW5,SW11
}

TEST(Markov, AvpBouncesInflateExpectedHops) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW7", "SW11");
  const auto avp = analyze_deflection(s.topology, route,
                                      DeflectionTechnique::kAnyValidPort);
  const auto nip = analyze_deflection(s.topology, route,
                                      DeflectionTechnique::kNotInputPort);
  EXPECT_NEAR(avp.delivery_probability, 1.0, 1e-9);
  // AVP flips a coin at SW7 between SW4 (bounce, +2 hops with another coin
  // waiting) and SW5; exact expectation is strictly above NIP's 4.
  EXPECT_GT(avp.expected_hops, nip.expected_hops + 0.5);
}

TEST(Markov, AvpBounceExpectationClosedForm) {
  // Hand-computable chain: with SW7-SW11 down and R=660:
  //   at SW7 (from SW4): uniform over {SW4, SW5}.
  //   via SW4: 44 mod 4 = 0 -> straight back to SW7 (2 extra hops).
  //   via SW5: 660 mod 5 = 0 -> SW11 -> D.
  // E[hops] = 2 (SW4,SW7) + E[tail at SW7], where
  //   E[tail] = 1/2 (1 + 1: SW5,SW11) + 1/2 (2 + E[tail]).
  // => E[tail] = 4, total = 6.
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW7", "SW11");
  const auto avp = analyze_deflection(s.topology, route,
                                      DeflectionTechnique::kAnyValidPort);
  EXPECT_NEAR(avp.expected_hops, 6.0, 1e-9);
}

TEST(Markov, MatchesMonteCarloOnFig1) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW7", "SW11");
  const auto exact = analyze_deflection(s.topology, route,
                                        DeflectionTechnique::kAnyValidPort);
  WalkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  const auto sampled =
      sample_walks(s.topology, controller, route, config, 20000, 7);
  EXPECT_NEAR(sampled.delivery_rate, exact.delivery_probability, 0.01);
  EXPECT_NEAR(sampled.hops.mean, exact.expected_hops_given_delivery, 0.15);
}

TEST(Markov, Fig8ProtectionLoopGeometry) {
  // Paper §3.2 (Fig. 8): failure of SW73-SW107 leaves a coin flip between
  // SW109 (delivers) and SW71 (protection loop back to SW73, 4 hops).
  // Delivery probability is 1; the loop adds a geometric number of rounds.
  Scenario s = topo::make_fig8_redundant();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW73", "SW107");
  const auto result = analyze_deflection(s.topology, route,
                                         DeflectionTechnique::kNotInputPort);
  EXPECT_NEAR(result.delivery_probability, 1.0, 1e-9);
  // Success-only path costs 6 decisions (SW7,13,41,73,109,113); each failed
  // coin flip at SW73 adds the 4-decision loop SW71,17,41,73. Expected
  // retries with p = 1/2 is 1, so E[hops] = 6 + 1 * 4 = 10.
  EXPECT_NEAR(result.expected_hops, 10.0, 1e-9);
}

TEST(Markov, Sw10SplitExactThirds) {
  // Exact version of the paper's 2/3 claim: with partial protection and a
  // SW10-SW7 failure, delivery still happens with probability 1 (walks
  // re-enter the fabric), but expected hops blow up versus full protection.
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto partial =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  const auto full = controller.encode_scenario(s.route, ProtectionLevel::kFull);
  s.topology.fail_link("SW10", "SW7");
  const auto partial_result = analyze_deflection(
      s.topology, partial, DeflectionTechnique::kNotInputPort);
  const auto full_result =
      analyze_deflection(s.topology, full, DeflectionTechnique::kNotInputPort);
  // Full protection drives every branch: strictly fewer expected hops.
  EXPECT_GT(partial_result.expected_hops, full_result.expected_hops);
  EXPECT_NEAR(full_result.delivery_probability, 1.0, 1e-9);
  // Under full protection all three branches are driven:
  // 1/3 * (SW11: 10,11,19,31,29 = 5 hops? SW10,SW11,SW19,SW31,SW29)
  // 1/3 * (SW10,SW17,SW43,SW29) = 4 hops, 1/3 * (SW10,SW37,SW17,SW43,SW29).
  EXPECT_NEAR(full_result.expected_hops, (5.0 + 4.0 + 5.0) / 3.0, 1e-9);
}

TEST(Markov, WrongEdgeMassIsAccounted) {
  // Route the fig1 net with a residue that sends SW4 back to S: the chain
  // must classify that as wrong-edge absorption (S is not the packet's
  // destination; re-encode is outside the chain).
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  routing::EncodedRoute route;
  route.route_id = rns::BigUint(1);  // 1 mod 4 = 1 -> port 1 = S
  route.src_edge = s.topology.at("S");
  route.dst_edge = s.topology.at("D");
  const auto result =
      analyze_deflection(s.topology, route, DeflectionTechnique::kAnyValidPort);
  EXPECT_DOUBLE_EQ(result.wrong_edge_probability, 1.0);
  EXPECT_DOUBLE_EQ(result.delivery_probability, 0.0);
}

TEST(Markov, ProbabilitiesSumToOne) {
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW7", "SW13");
  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kAnyValidPort,
        DeflectionTechnique::kNotInputPort}) {
    const auto result = analyze_deflection(s.topology, route, technique);
    EXPECT_NEAR(result.delivery_probability + result.wrong_edge_probability +
                    result.drop_probability,
                1.0, 1e-9)
        << to_string(technique);
  }
}

}  // namespace
}  // namespace kar::analysis

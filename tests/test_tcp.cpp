#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"
#include "transport/flows.hpp"
#include "transport/udp.hpp"

namespace kar::transport {
namespace {

using dataplane::DeflectionTechnique;
using topo::ProtectionLevel;
using topo::Scenario;

/// A 3-switch line with fast links: convenient TCP playground.
struct TcpFixture : public ::testing::Test {
  TcpFixture()
      : scenario(topo::make_line(3,
                                 topo::LinkParams{.rate_bps = 100e6,
                                                  .delay_s = 1e-3,
                                                  .queue_packets = 200})),
        controller(scenario.topology) {}

  routing::EncodedRoute forward_route() {
    return *controller.route_between(scenario.topology.at("SRC"),
                                     scenario.topology.at("DST"));
  }
  routing::EncodedRoute reverse_route() {
    return *controller.route_between(scenario.topology.at("DST"),
                                     scenario.topology.at("SRC"));
  }

  Scenario scenario;
  routing::Controller controller;
};

TEST_F(TcpFixture, BulkFlowDeliversInOrderAndFillsThePipe) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  TcpParams params;
  // Keep the window below pipe + queue capacity so the clean-line run is
  // genuinely lossless (the loss path is exercised elsewhere).
  params.receiver_window_segments = 128;
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(),
                        /*flow_id=*/1, params);
  flow.start_at(0.0);
  flow.stop_at(5.0);
  net.events().run_until(6.0);
  const auto& rx = flow.receiver().stats();
  EXPECT_GT(rx.delivered_segments, 1000u);
  EXPECT_EQ(rx.out_of_order_segments, 0u);  // clean line: no reordering
  // Goodput approaches the 100 Mb/s bottleneck (minus header overhead).
  const double mbps = flow.goodput_mbps(1.0, 5.0);
  EXPECT_GT(mbps, 80.0);
  EXPECT_LT(mbps, 100.0);
  // No losses on an idle line: no retransmissions either.
  EXPECT_EQ(flow.sender().stats().retransmits, 0u);
  EXPECT_EQ(dispatcher.unclaimed_packets(), 0u);
}

TEST_F(TcpFixture, FiniteFlowCompletesAndQuiesces) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  TcpParams params;
  params.limit_segments = 500;
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(), 1,
                        params);
  flow.start_at(0.0);
  EXPECT_FALSE(flow.sender().complete());
  net.events().run_all();  // must drain: a completed sender cancels its RTO
  EXPECT_TRUE(flow.sender().complete());
  EXPECT_EQ(flow.receiver().stats().delivered_segments, 500u);
  EXPECT_EQ(flow.sender().stats().segments_sent, 500u);  // clean line: no rtx
  EXPECT_TRUE(net.events().empty());
  EXPECT_LT(net.events().now(), 5.0);  // finished, not horizon-bound
}

TEST_F(TcpFixture, FiniteFlowRetransmitsTailLosses) {
  // Fail the line mid-transfer so segments (possibly the very tail of the
  // finite stream) are lost; after repair the flow must still complete
  // exactly once RTO-driven retransmission catches up.
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  TcpParams params;
  params.limit_segments = 300;
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(), 1,
                        params);
  flow.start_at(0.0);
  const auto& path = scenario.route.core_path;
  net.events().schedule_at(0.05, [&] {
    net.fail_link_now(*scenario.topology.link_between(
        scenario.topology.at(path[0]), scenario.topology.at(path[1])));
  });
  net.events().schedule_at(0.6, [&] {
    net.repair_link_now(*scenario.topology.link_between(
        scenario.topology.at(path[0]), scenario.topology.at(path[1])));
  });
  net.events().run_all();
  EXPECT_TRUE(flow.sender().complete());
  EXPECT_EQ(flow.receiver().stats().delivered_segments, 300u);
  EXPECT_GT(flow.sender().stats().retransmits, 0u);
  EXPECT_TRUE(net.events().empty());
}

TEST_F(TcpFixture, SlowStartGrowsCwndExponentially) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  TcpParams params;
  params.initial_cwnd_segments = 2;
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(), 1,
                        params);
  flow.start_at(0.0);
  // After a couple of RTTs (~4ms each) cwnd must have grown well beyond 2.
  net.events().run_until(0.05);
  EXPECT_GT(flow.sender().cwnd_segments(), 8.0);
}

TEST_F(TcpFixture, RtoRecoversFromTotalBlackout) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(), 1);
  flow.start_at(0.0);
  // Black out the middle of the line for 1.5 s; no deflection alternative
  // exists on a line, so the sender must RTO and retransmit after repair.
  const auto& mid = scenario.route.core_path[1];
  const auto& next = scenario.route.core_path[2];
  net.fail_link_at(0.5, mid, next);
  net.repair_link_at(2.0, mid, next);
  flow.stop_at(6.0);
  net.events().run_until(8.0);
  EXPECT_GT(flow.sender().stats().timeouts, 0u);
  EXPECT_GT(flow.sender().stats().retransmits, 0u);
  // Transfer resumed: bytes delivered after the repair.
  const double after = flow.receiver().goodput().mbps_between(3.0, 6.0);
  EXPECT_GT(after, 50.0);
  // Everything delivered exactly once per sequence number (cumulative
  // reassembly): delivered equals next_expected.
  EXPECT_EQ(flow.receiver().stats().delivered_segments,
            flow.receiver().next_expected());
}

TEST_F(TcpFixture, SenderStopsOfferingNewDataAfterStop) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  BulkTransferFlow flow(net, dispatcher, forward_route(), reverse_route(), 1);
  flow.start_at(0.0);
  flow.stop_at(1.0);
  net.events().run_until(1.0);
  const auto& st = flow.sender().stats();
  const auto new_data_at_stop = st.segments_sent - st.retransmits;
  net.events().run_until(3.0);
  // Retransmissions of in-flight data may continue, but no *new* data may
  // be offered after stop (a little slack for sends at exactly t=1.0).
  EXPECT_LE(st.segments_sent - st.retransmits, new_data_at_stop + 1);
}

TEST_F(TcpFixture, ReorderingTriggersSpuriousFastRetransmit) {
  // Reordering scenario: fig1 network with a failed primary link and AVP
  // deflection produces multi-path delivery and hence dup ACKs.
  Scenario fig1 = topo::make_fig1_network(topo::LinkParams{
      .rate_bps = 50e6, .delay_s = 1e-3, .queue_packets = 200});
  routing::Controller ctrl(fig1.topology);
  sim::NetworkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  sim::Network net(fig1.topology, ctrl, config);
  FlowDispatcher dispatcher(net);
  const auto fwd = ctrl.encode_scenario(fig1.route, ProtectionLevel::kPartial);
  const auto rev = *ctrl.route_between(fig1.topology.at("D"), fig1.topology.at("S"));
  BulkTransferFlow flow(net, dispatcher, fwd, rev, 1);
  flow.start_at(0.0);
  net.fail_link_at(1.0, "SW7", "SW11");
  flow.stop_at(4.0);
  net.events().run_until(6.0);
  // AVP at SW7 sprays between SW4 and SW5 -> reordering at the receiver.
  EXPECT_GT(flow.receiver().stats().out_of_order_segments, 0u);
  EXPECT_GT(flow.sender().stats().fast_retransmits, 0u);
  EXPECT_GT(flow.sender().stats().dup_acks_received, 0u);
  // But connectivity held: goodput during the failure window is nonzero.
  EXPECT_GT(flow.receiver().goodput().mbps_between(1.5, 4.0), 1.0);
}

TEST_F(TcpFixture, MirroredRouteValidationRejectsBadPairs) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  EXPECT_THROW(BulkTransferFlow(net, dispatcher, forward_route(),
                                forward_route(), 1),
               std::invalid_argument);
}

TEST_F(TcpFixture, DispatcherRejectsDuplicateEndpoints) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  dispatcher.register_endpoint(scenario.topology.at("DST"), 7,
                               [](const dataplane::Packet&) {});
  EXPECT_THROW(dispatcher.register_endpoint(scenario.topology.at("DST"), 7,
                                            [](const dataplane::Packet&) {}),
               std::invalid_argument);
  EXPECT_THROW(dispatcher.register_endpoint(scenario.topology.at("DST"), 8,
                                            nullptr),
               std::invalid_argument);
}

TEST_F(TcpFixture, TwoConcurrentFlowsShareTheBottleneckFairly) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  BulkTransferFlow flow_a(net, dispatcher, forward_route(), reverse_route(), 1);
  BulkTransferFlow flow_b(net, dispatcher, forward_route(), reverse_route(), 2);
  flow_a.start_at(0.0);
  flow_b.start_at(0.0);
  flow_a.stop_at(8.0);
  flow_b.stop_at(8.0);
  net.events().run_until(10.0);
  const double a = flow_a.goodput_mbps(2.0, 8.0);
  const double b = flow_b.goodput_mbps(2.0, 8.0);
  EXPECT_GT(a + b, 70.0);   // jointly fill the pipe
  EXPECT_LT(a + b, 100.0);  // cannot exceed it
  // Rough fairness between identical Reno flows.
  EXPECT_GT(std::min(a, b) / std::max(a, b), 0.35);
}

TEST_F(TcpFixture, CbrProbeCountsLossDuringOutage) {
  sim::Network net(scenario.topology, controller, {});
  FlowDispatcher dispatcher(net);
  CbrProbe probe(net, dispatcher, forward_route(), /*flow_id=*/9,
                 /*interval_s=*/0.01, /*payload_bytes=*/100);
  probe.start_at(0.0);
  const auto& mid = scenario.route.core_path[1];
  const auto& next = scenario.route.core_path[2];
  net.fail_link_at(1.0, mid, next);
  net.repair_link_at(2.0, mid, next);
  probe.stop_at(3.0);
  net.events().run_until(4.0);
  EXPECT_EQ(probe.sent(), 300u);
  // Roughly one second of probes lost (no deflection path on a line).
  EXPECT_LT(probe.received(), 220u);
  EXPECT_GT(probe.received(), 180u);
}

}  // namespace
}  // namespace kar::transport

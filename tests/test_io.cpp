#include "topology/io.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <string>

#include "topology/builders.hpp"

namespace kar::topo {
namespace {

constexpr const char* kSample = R"(# tiny network
switch SW5 5
switch SW7 7
edge AS1
link SW5 SW7 rate=1e9 delay=0.002 queue=64
link AS1 SW5
down SW5 SW7
)";

TEST(TopologyParser, ParsesSample) {
  const Topology t = parse_topology_string(kSample);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.switch_id(t.at("SW5")), 5u);
  const auto link = t.link_between(t.at("SW5"), t.at("SW7"));
  ASSERT_TRUE(link.has_value());
  EXPECT_DOUBLE_EQ(t.link(*link).params.rate_bps, 1e9);
  EXPECT_DOUBLE_EQ(t.link(*link).params.delay_s, 0.002);
  EXPECT_EQ(t.link(*link).params.queue_packets, 64u);
  EXPECT_FALSE(t.link_up(*link));  // the "down" directive
  // Default link params on the second link.
  const auto uplink = t.link_between(t.at("AS1"), t.at("SW5"));
  ASSERT_TRUE(uplink.has_value());
  EXPECT_TRUE(t.link_up(*uplink));
}

TEST(TopologyParser, CommentsAndBlankLinesIgnored) {
  const Topology t = parse_topology_string("\n# only comments\n\n  \n");
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(TopologyParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_topology_string("switch SW5 5\nbogus directive\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TopologyParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_topology_string("switch OnlyName\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch X notanumber\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_string("link A B\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch A 5\nedge E\nlink A E bad\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_topology_string("switch A 5\nedge E\nlink A E speed=2\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_topology_string("down A B\n"), std::invalid_argument);
}

TEST(TopologyParser, RoundTripsThroughSerialize) {
  const Scenario s = make_experimental15();
  const std::string text = serialize_topology(s.topology);
  const Topology parsed = parse_topology_string(text);
  EXPECT_EQ(parsed.node_count(), s.topology.node_count());
  EXPECT_EQ(parsed.link_count(), s.topology.link_count());
  // Structure: every link of the original exists in the parsed copy with
  // identical endpoints and parameters.
  for (LinkId l = 0; l < s.topology.link_count(); ++l) {
    const Link& orig = s.topology.link(l);
    const auto found = parsed.link_between(
        parsed.at(s.topology.name(orig.a.node)),
        parsed.at(s.topology.name(orig.b.node)));
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(parsed.link(*found).params.rate_bps, orig.params.rate_bps);
  }
}

TEST(TopologyParser, RoundTripPreservesFailedLinks) {
  Scenario s = make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  const Topology parsed = parse_topology_string(serialize_topology(s.topology));
  const auto link = parsed.link_between(parsed.at("SW7"), parsed.at("SW11"));
  ASSERT_TRUE(link.has_value());
  EXPECT_FALSE(parsed.link_up(*link));
}

TEST(TopologyParser, SwitchIdRejectsTrailingGarbage) {
  // Regression: std::stoull parsed "3abc" as switch id 3, silently
  // mangling the topology instead of failing the line.
  try {
    (void)parse_topology_string("switch SW3 3abc\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad switch id: 3abc"),
              std::string::npos)
        << "message was: " << e.what();
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parse_topology_string("switch SW3 -3\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch SW3 3.0\n"), std::invalid_argument);
}

TEST(TopologyParser, RoundTripsUnderCommaDecimalLocale) {
  // serialize_topology/parse_topology are a machine-format pair: the
  // serializer pins the classic locale and the parser uses from_chars, so
  // a comma-decimal global locale changes nothing. Before the fix the
  // serializer emitted "delay=0,002" (unparseable) under such a locale.
  struct CommaNumpunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  struct ScopedGlobalLocale {
    explicit ScopedGlobalLocale(const std::locale& locale)
        : previous(std::locale::global(locale)) {}
    ~ScopedGlobalLocale() { std::locale::global(previous); }
    std::locale previous;
  };
  const ScopedGlobalLocale guard(
      std::locale(std::locale::classic(), new CommaNumpunct));

  const Topology original = parse_topology_string(kSample);
  const std::string text = serialize_topology(original);
  EXPECT_NE(text.find("delay=0.002"), std::string::npos) << text;
  EXPECT_EQ(text.find(','), std::string::npos) << text;

  const Topology parsed = parse_topology_string(text);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  const auto link = parsed.link_between(parsed.at("SW5"), parsed.at("SW7"));
  ASSERT_TRUE(link.has_value());
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.rate_bps, 1e9);
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.delay_s, 0.002);
  EXPECT_EQ(serialize_topology(parsed), text);  // fixed point
}

TEST(TopologyParser, EscapesStructuredAndPathologicalNames) {
  // Generator names like "pod3/agg1" must survive verbatim; names holding
  // whitespace, '#', '%' or control bytes must round-trip via escaping
  // (historically a space in a name silently corrupted the parse).
  Topology t;
  t.add_switch("pod3/agg1", 5);
  t.add_switch("core 0-1", 7);     // embedded space
  t.add_switch("rack#7", 11);      // comment introducer
  t.add_switch("pct%20", 13);      // literal escape introducer
  t.add_switch(std::string("tab\tname"), 17);
  t.add_edge_node("H pod3/agg1");
  t.add_link(t.at("pod3/agg1"), t.at("core 0-1"), {});
  t.add_link(t.at("rack#7"), t.at("pct%20"), {});
  t.add_link(t.at("H pod3/agg1"), t.at("pod3/agg1"), {});

  const std::string text = serialize_topology(t);
  EXPECT_NE(text.find("pod3/agg1"), std::string::npos);  // '/' stays literal
  const Topology parsed = parse_topology_string(text);
  EXPECT_EQ(parsed.node_count(), 6u);
  EXPECT_EQ(parsed.switch_id(parsed.at("core 0-1")), 7u);
  EXPECT_EQ(parsed.switch_id(parsed.at("rack#7")), 11u);
  EXPECT_EQ(parsed.switch_id(parsed.at("pct%20")), 13u);
  EXPECT_EQ(parsed.switch_id(parsed.at("tab\tname")), 17u);
  ASSERT_TRUE(parsed.link_between(parsed.at("H pod3/agg1"),
                                  parsed.at("pod3/agg1")).has_value());
  EXPECT_EQ(serialize_topology(parsed), text);  // fixed point

  EXPECT_THROW(parse_topology_string("switch bad%zz 5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch bad%2 5\n"),
               std::invalid_argument);
}

TEST(TopologyParser, RedParamsRoundTrip) {
  Topology t;
  t.add_switch("SW5", 5);
  t.add_switch("SW7", 7);
  LinkParams params;
  params.red = RedParams{.min_th = 4.0, .max_th = 12.0, .max_p = 0.05,
                         .weight = 0.001};
  t.add_link(t.at("SW5"), t.at("SW7"), params);

  const std::string text = serialize_topology(t);
  EXPECT_NE(text.find("red=4:12:0.05:0.001"), std::string::npos) << text;
  const Topology parsed = parse_topology_string(text);
  const auto link = parsed.link_between(parsed.at("SW5"), parsed.at("SW7"));
  ASSERT_TRUE(link.has_value());
  ASSERT_TRUE(parsed.link(*link).params.red.has_value());
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.red->max_th, 12.0);
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.red->weight, 0.001);
  EXPECT_EQ(serialize_topology(parsed), text);

  EXPECT_THROW(parse_topology_string("switch A 5\nswitch B 7\n"
                                     "link A B red=1:2:3\n"),
               std::invalid_argument);
}

TEST(TopologyParser, ThousandNodeWeightedRoundTripIsExact) {
  // A 1000-switch generated graph with irregular double-valued rates and
  // delays and structured names: serialize -> parse -> serialize must be
  // byte-identical, and every link parameter must survive exactly
  // (shortest-round-trip formatting, not %g truncation).
  Topology t;
  for (std::size_t i = 0; i < 1000; ++i) {
    // Unique (not necessarily coprime) ids: io only cares about structure.
    t.add_switch("pod" + std::to_string(i / 16) + "/sw" + std::to_string(i % 16) +
                     " #" + std::to_string(i),
                 3 + 2 * i);
  }
  for (std::size_t i = 0; i + 1 < 1000; ++i) {
    LinkParams params;
    params.rate_bps = 1e9 / 3.0 + static_cast<double>(i) * 0.123456789;
    params.delay_s = 1e-3 / 7.0 + static_cast<double>(i) * 1e-9;
    params.queue_packets = 50 + i % 200;
    t.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), params);
  }
  const std::string text = serialize_topology(t);
  const Topology parsed = parse_topology_string(text);
  ASSERT_EQ(parsed.node_count(), 1000u);
  ASSERT_EQ(parsed.link_count(), 999u);
  for (LinkId l = 0; l < parsed.link_count(); ++l) {
    ASSERT_DOUBLE_EQ(parsed.link(l).params.rate_bps, t.link(l).params.rate_bps);
    ASSERT_DOUBLE_EQ(parsed.link(l).params.delay_s, t.link(l).params.delay_s);
  }
  EXPECT_EQ(serialize_topology(parsed), text);
}

TEST(Graphviz, MentionsEveryNodeAndFailedLinkStyle) {
  Scenario s = make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  const std::string dot = to_graphviz(s.topology);
  for (const char* name : {"SW4", "SW5", "SW7", "SW11", "S", "D"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("graph kar {"), std::string::npos);
}

}  // namespace
}  // namespace kar::topo

#include "topology/io.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <string>

#include "topology/builders.hpp"

namespace kar::topo {
namespace {

constexpr const char* kSample = R"(# tiny network
switch SW5 5
switch SW7 7
edge AS1
link SW5 SW7 rate=1e9 delay=0.002 queue=64
link AS1 SW5
down SW5 SW7
)";

TEST(TopologyParser, ParsesSample) {
  const Topology t = parse_topology_string(kSample);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.switch_id(t.at("SW5")), 5u);
  const auto link = t.link_between(t.at("SW5"), t.at("SW7"));
  ASSERT_TRUE(link.has_value());
  EXPECT_DOUBLE_EQ(t.link(*link).params.rate_bps, 1e9);
  EXPECT_DOUBLE_EQ(t.link(*link).params.delay_s, 0.002);
  EXPECT_EQ(t.link(*link).params.queue_packets, 64u);
  EXPECT_FALSE(t.link_up(*link));  // the "down" directive
  // Default link params on the second link.
  const auto uplink = t.link_between(t.at("AS1"), t.at("SW5"));
  ASSERT_TRUE(uplink.has_value());
  EXPECT_TRUE(t.link_up(*uplink));
}

TEST(TopologyParser, CommentsAndBlankLinesIgnored) {
  const Topology t = parse_topology_string("\n# only comments\n\n  \n");
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(TopologyParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_topology_string("switch SW5 5\nbogus directive\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TopologyParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_topology_string("switch OnlyName\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch X notanumber\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_string("link A B\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch A 5\nedge E\nlink A E bad\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_topology_string("switch A 5\nedge E\nlink A E speed=2\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_topology_string("down A B\n"), std::invalid_argument);
}

TEST(TopologyParser, RoundTripsThroughSerialize) {
  const Scenario s = make_experimental15();
  const std::string text = serialize_topology(s.topology);
  const Topology parsed = parse_topology_string(text);
  EXPECT_EQ(parsed.node_count(), s.topology.node_count());
  EXPECT_EQ(parsed.link_count(), s.topology.link_count());
  // Structure: every link of the original exists in the parsed copy with
  // identical endpoints and parameters.
  for (LinkId l = 0; l < s.topology.link_count(); ++l) {
    const Link& orig = s.topology.link(l);
    const auto found = parsed.link_between(
        parsed.at(s.topology.name(orig.a.node)),
        parsed.at(s.topology.name(orig.b.node)));
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(parsed.link(*found).params.rate_bps, orig.params.rate_bps);
  }
}

TEST(TopologyParser, RoundTripPreservesFailedLinks) {
  Scenario s = make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  const Topology parsed = parse_topology_string(serialize_topology(s.topology));
  const auto link = parsed.link_between(parsed.at("SW7"), parsed.at("SW11"));
  ASSERT_TRUE(link.has_value());
  EXPECT_FALSE(parsed.link_up(*link));
}

TEST(TopologyParser, SwitchIdRejectsTrailingGarbage) {
  // Regression: std::stoull parsed "3abc" as switch id 3, silently
  // mangling the topology instead of failing the line.
  try {
    (void)parse_topology_string("switch SW3 3abc\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad switch id: 3abc"),
              std::string::npos)
        << "message was: " << e.what();
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parse_topology_string("switch SW3 -3\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_string("switch SW3 3.0\n"), std::invalid_argument);
}

TEST(TopologyParser, RoundTripsUnderCommaDecimalLocale) {
  // serialize_topology/parse_topology are a machine-format pair: the
  // serializer pins the classic locale and the parser uses from_chars, so
  // a comma-decimal global locale changes nothing. Before the fix the
  // serializer emitted "delay=0,002" (unparseable) under such a locale.
  struct CommaNumpunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  struct ScopedGlobalLocale {
    explicit ScopedGlobalLocale(const std::locale& locale)
        : previous(std::locale::global(locale)) {}
    ~ScopedGlobalLocale() { std::locale::global(previous); }
    std::locale previous;
  };
  const ScopedGlobalLocale guard(
      std::locale(std::locale::classic(), new CommaNumpunct));

  const Topology original = parse_topology_string(kSample);
  const std::string text = serialize_topology(original);
  EXPECT_NE(text.find("delay=0.002"), std::string::npos) << text;
  EXPECT_EQ(text.find(','), std::string::npos) << text;

  const Topology parsed = parse_topology_string(text);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  const auto link = parsed.link_between(parsed.at("SW5"), parsed.at("SW7"));
  ASSERT_TRUE(link.has_value());
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.rate_bps, 1e9);
  EXPECT_DOUBLE_EQ(parsed.link(*link).params.delay_s, 0.002);
  EXPECT_EQ(serialize_topology(parsed), text);  // fixed point
}

TEST(Graphviz, MentionsEveryNodeAndFailedLinkStyle) {
  Scenario s = make_fig1_network();
  s.topology.fail_link("SW7", "SW11");
  const std::string dot = to_graphviz(s.topology);
  for (const char* name : {"SW4", "SW5", "SW7", "SW11", "S", "D"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("graph kar {"), std::string::npos);
}

}  // namespace
}  // namespace kar::topo

// Tests for the extension modules: header-encoding comparison,
// forwarding-state model, and latency/jitter accounting.
#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "analysis/state_model.hpp"
#include "routing/controller.hpp"
#include "routing/encodings.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using routing::HeaderScheme;
using topo::ProtectionLevel;
using topo::Scenario;

// -- encodings ---------------------------------------------------------------

TEST(Encodings, KarRnsMatchesEq9) {
  const Scenario s = topo::make_experimental15();
  std::vector<topo::NodeId> core;
  for (const auto& name : s.route.core_path) core.push_back(s.topology.at(name));
  const auto cost =
      routing::primary_header_cost(s.topology, core, HeaderScheme::kKarRns);
  EXPECT_EQ(cost.bits, 15u);  // Table 1 unprotected
  EXPECT_TRUE(cost.supports_protection);
}

TEST(Encodings, PortListCountsPerHopPortFields) {
  // Fig. 1 route SW4 (2 ports), SW7 (3 ports), SW11 (3 ports):
  // 1 + 2 + 2 bits of ports + 2 bits of cursor (path length 3).
  const Scenario s = topo::make_fig1_network();
  std::vector<topo::NodeId> core = {s.topology.at("SW4"), s.topology.at("SW7"),
                                    s.topology.at("SW11")};
  const auto cost =
      routing::primary_header_cost(s.topology, core, HeaderScheme::kPortList);
  EXPECT_EQ(cost.bits, 1u + 2u + 2u + 2u);
  EXPECT_FALSE(cost.supports_protection);
}

TEST(Encodings, NodeListScalesWithSwitchCount) {
  const Scenario s = topo::make_experimental15();  // 15 switches -> 4 bits/hop
  std::vector<topo::NodeId> core;
  for (const auto& name : s.route.core_path) core.push_back(s.topology.at(name));
  const auto cost =
      routing::primary_header_cost(s.topology, core, HeaderScheme::kNodeList);
  EXPECT_EQ(cost.bits, 4u * 4u + 3u);  // 4 hops x 4 bits + 3-bit cursor
}

TEST(Encodings, CompareCoversAllSchemesAndProtectionBits) {
  const Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route = controller.encode_scenario(s.route, ProtectionLevel::kFull);
  const auto costs = routing::compare_header_costs(s.topology, route);
  ASSERT_EQ(costs.size(), 3u);
  // The KAR entry reflects the protected route (43 bits), the list entries
  // only the primary path.
  bool found_kar = false;
  for (const auto& cost : costs) {
    if (cost.scheme == HeaderScheme::kKarRns) {
      EXPECT_EQ(cost.bits, 43u);
      found_kar = true;
    } else {
      EXPECT_LT(cost.bits, 43u);
      EXPECT_FALSE(cost.supports_protection);
    }
  }
  EXPECT_TRUE(found_kar);
}

TEST(Encodings, SchemeNames) {
  EXPECT_EQ(routing::to_string(HeaderScheme::kPortList), "port-list");
  EXPECT_EQ(routing::to_string(HeaderScheme::kNodeList), "node-list");
  EXPECT_EQ(routing::to_string(HeaderScheme::kKarRns), "kar-rns");
}

// -- state model ---------------------------------------------------------------

TEST(StateModel, SingleFlowCountsPathSwitches) {
  const Scenario s = topo::make_experimental15();
  const auto report = analysis::compare_forwarding_state(
      s.topology, {{s.topology.at("AS1"), s.topology.at("AS3")}});
  EXPECT_EQ(report.flows, 1u);
  EXPECT_EQ(report.unroutable_flows, 0u);
  EXPECT_EQ(report.per_flow_total_entries, 4u);  // SW10, SW7, SW13, SW29
  EXPECT_EQ(report.per_flow_max_entries, 1u);
  EXPECT_EQ(report.per_dest_total_entries, 4u);
  EXPECT_EQ(report.kar_total_entries, 0u);
  EXPECT_DOUBLE_EQ(report.kar_mean_header_bits, 15.0);  // Table 1
}

TEST(StateModel, PerFlowGrowsPerDestSaturates) {
  // Many flows to the same destination: per-flow entries grow linearly,
  // per-destination entries stay at one per on-path switch.
  const Scenario s = topo::make_experimental15();
  std::vector<std::pair<topo::NodeId, topo::NodeId>> flows(
      10, {s.topology.at("AS1"), s.topology.at("AS3")});
  const auto report = analysis::compare_forwarding_state(s.topology, flows);
  EXPECT_EQ(report.per_flow_total_entries, 40u);
  EXPECT_EQ(report.per_flow_max_entries, 10u);
  EXPECT_EQ(report.per_dest_total_entries, 4u);  // saturated
  EXPECT_EQ(report.per_dest_max_entries, 1u);
}

TEST(StateModel, UnroutableFlowsAreCounted) {
  topo::Topology t;
  const auto a = t.add_edge_node("A");
  const auto b = t.add_edge_node("B");
  t.add_switch("SW5", 5);
  t.add_link(a, t.at("SW5"));
  const auto report = analysis::compare_forwarding_state(t, {{a, b}});
  EXPECT_EQ(report.unroutable_flows, 1u);
  EXPECT_EQ(report.per_flow_total_entries, 0u);
}

// -- latency -------------------------------------------------------------------

TEST(Latency, ComputesDelayAndJitter) {
  analysis::LatencyRecorder recorder;
  recorder.record(0.0, 0.010);  // 10 ms
  recorder.record(1.0, 1.014);  // 14 ms (+4)
  recorder.record(2.0, 2.012);  // 12 ms (-2)
  const auto stats = recorder.compute();
  EXPECT_EQ(recorder.samples(), 3u);
  EXPECT_NEAR(stats.delay.mean, 0.012, 1e-12);
  EXPECT_NEAR(stats.jitter_mean, (0.004 + 0.002) / 2.0, 1e-12);
  EXPECT_NEAR(stats.jitter_max, 0.004, 1e-12);
  EXPECT_NEAR(stats.p50, 0.012, 1e-12);
}

TEST(Latency, EmptyAndSingleSample) {
  analysis::LatencyRecorder recorder;
  EXPECT_EQ(recorder.compute().delay.n, 0u);
  recorder.record(0.0, 0.005);
  const auto stats = recorder.compute();
  EXPECT_EQ(stats.delay.n, 1u);
  EXPECT_DOUBLE_EQ(stats.jitter_mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99, 0.005);
}

TEST(Latency, RejectsNegativeDelay) {
  analysis::LatencyRecorder recorder;
  EXPECT_THROW(recorder.record(1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace kar

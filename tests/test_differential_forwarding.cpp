// Differential test: KAR residue forwarding vs the OpenFlow fast-failover
// FIB baseline on the 15-node experimental network (paper Fig. 2), no
// failures. Both data planes receive an identical seeded trace of packets;
// with the network healthy they must agree exactly — same delivery set,
// same per-packet hop counts, zero deflections. Any divergence means one
// of the two forwarding implementations deviates from the shortest path.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "routing/controller.hpp"
#include "routing/failover_install.hpp"
#include "sim/network.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

/// One injected packet of the shared trace.
struct TracePacket {
  double time = 0.0;
  std::size_t payload_bytes = 0;
};

/// Delivery observations keyed by packet id.
struct RunObservation {
  std::map<std::uint64_t, std::uint32_t> hops_by_packet;
  sim::NetworkCounters counters;
};

std::vector<TracePacket> make_trace(common::Rng& rng, std::size_t count) {
  std::vector<TracePacket> trace;
  double time = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    time += 1e-4 + rng.uniform() * 1e-3;
    trace.push_back({time, 64 + rng.below(1300)});
  }
  return trace;
}

/// Runs the shared trace through a fresh scenario in the given data-plane
/// mode and reports what got delivered and in how many hops.
RunObservation run_trace(sim::DataPlaneMode mode,
                         const std::vector<TracePacket>& trace) {
  topo::Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kUnprotected);

  routing::FailoverFib fib;
  sim::NetworkConfig config;
  config.mode = mode;
  if (mode == sim::DataPlaneMode::kFailoverFib) {
    fib = routing::install_failover_fibs(s.topology);
    config.failover_fib = &fib;
  }
  sim::Network net(s.topology, controller, config);

  RunObservation observation;
  net.set_delivery_handler(route.dst_edge, [&](const dataplane::Packet& p) {
    observation.hops_by_packet[p.packet_id] = p.hop_count;
  });

  std::uint64_t next_packet_id = 1;
  for (const TracePacket& entry : trace) {
    net.events().schedule_at(entry.time, [&net, &route, &next_packet_id, entry] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      p.packet_id = next_packet_id++;
      net.edge_at(route.src_edge).stamp(p, route, entry.payload_bytes);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();
  observation.counters = net.counters();
  return observation;
}

TEST(DifferentialForwarding, KarMatchesFailoverFibOnHealthyFig2) {
  auto rng = testsupport::make_rng(20260807, "DifferentialTrace");
  const auto trace = make_trace(rng, 120);

  const RunObservation kar = run_trace(sim::DataPlaneMode::kKar, trace);
  const RunObservation fib = run_trace(sim::DataPlaneMode::kFailoverFib, trace);

  // Everything injected must arrive: the network is healthy.
  EXPECT_EQ(kar.counters.injected, trace.size());
  EXPECT_EQ(fib.counters.injected, trace.size());
  EXPECT_EQ(kar.counters.delivered, trace.size());
  EXPECT_EQ(fib.counters.delivered, trace.size());
  EXPECT_EQ(kar.counters.total_drops(), 0u);
  EXPECT_EQ(fib.counters.total_drops(), 0u);

  // Identical delivery sets and identical per-packet hop counts. On Fig. 2
  // AS1 -> AS3 every shortest path is 4 core hops (SW10-SW7-SW13-SW29 or
  // the equal-length SW10-SW17-SW43-SW29), so even if the FIB picked the
  // alternate the hop counts still have to agree.
  ASSERT_EQ(kar.hops_by_packet.size(), trace.size());
  EXPECT_EQ(kar.hops_by_packet, fib.hops_by_packet);
  for (const auto& [packet_id, hops] : kar.hops_by_packet) {
    EXPECT_EQ(hops, 4u) << "packet " << packet_id;
  }

  // No failures: neither plane may deviate from its primary choice.
  EXPECT_EQ(kar.counters.deflections, 0u);
  EXPECT_EQ(fib.counters.deflections, 0u);
  EXPECT_EQ(kar.counters.hops, fib.counters.hops);
}

TEST(DifferentialForwarding, AgreementHoldsAcrossSeeds) {
  for (const std::uint64_t seed : {11ULL, 29ULL, 31ULL}) {
    auto rng = testsupport::make_rng(seed, "DifferentialTraceSweep");
    const auto trace = make_trace(rng, 40);
    const RunObservation kar = run_trace(sim::DataPlaneMode::kKar, trace);
    const RunObservation fib = run_trace(sim::DataPlaneMode::kFailoverFib, trace);
    EXPECT_EQ(kar.hops_by_packet, fib.hops_by_packet) << "seed " << seed;
    EXPECT_EQ(kar.counters.delivered, trace.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace kar

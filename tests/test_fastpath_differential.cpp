// Differential suite for the forwarding residue fast path: a network of
// switches running ResiduePath::kFast (memoized PreparedMod reduction)
// must be observably indistinguishable, bit for bit, from the same
// network running ResiduePath::kNaive (per-hop BigUint::mod_u64 long
// division).
//
// The determinism contract makes this a strong oracle: identical residues
// imply identical branch paths imply identical RNG consumption, so the
// full packet trace CSV — every event, timestamp and port — and all
// counters must match exactly. Any divergence anywhere in a run means the
// fast path computed a different residue at least once.
//
// Coverage: fig1 / fig2 / rnp28 topologies x all four deflection
// techniques x 50 seeds, each run with a mid-route link failure + repair
// so deflection logic actually executes; plus campaign-level aggregate
// identity through the parallel runner at --jobs=1 and --jobs=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/switch.hpp"
#include "faultgen/campaign.hpp"
#include "routing/controller.hpp"
#include "runner/campaign_runner.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "support/testsupport.hpp"
#include "topology/scenario.hpp"

namespace kar {
namespace {

using dataplane::DeflectionTechnique;
using dataplane::ResiduePath;

struct TracedRun {
  std::string trace;  ///< Full CSV trace + counters rendering.
  dataplane::ResidueCache::Stats cache;
};

std::string render_counters(const sim::NetworkCounters& c) {
  std::ostringstream out;
  out << "injected=" << c.injected << " delivered=" << c.delivered
      << " hops=" << c.hops << " deflections=" << c.deflections
      << " reencodes=" << c.reencodes << " bounces=" << c.bounces
      << " drops=" << c.total_drops();
  return out.str();
}

/// One seeded run: 10 packets across a mid-route link failure + repair,
/// full trace captured. Everything (injection times, sizes, failure
/// window) derives from `seed`, so two calls differing only in
/// `residue_path` see byte-identical inputs.
TracedRun run_traced(const std::string& topology_name,
                     DeflectionTechnique technique, ResiduePath residue_path,
                     std::uint64_t seed) {
  topo::Scenario s = faultgen::make_campaign_scenario(topology_name);
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);

  sim::NetworkConfig config;
  config.technique = technique;
  config.residue_path = residue_path;
  config.seed = common::derive_seed(seed, 1);
  sim::Network net(s.topology, controller, config);

  std::ostringstream out;
  sim::TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));

  // Fail a primary-path core link mid-run so residues keep being computed
  // while deflection (and its RNG draws) is active, then repair it.
  common::Rng rng(common::derive_seed(seed, 2));
  const auto& core = s.route.core_path;
  const double fail_at = 0.001 + rng.uniform() * 0.005;
  const double repair_at = fail_at + 0.004 + rng.uniform() * 0.005;
  net.fail_link_at(fail_at, core[0], core[1]);
  net.repair_link_at(repair_at, core[0], core[1]);

  double time = 0.0;
  for (int i = 0; i < 10; ++i) {
    time += 1e-4 + rng.uniform() * 2e-3;
    const std::size_t bytes = 64 + rng.below(1200);
    net.events().schedule_at(time, [&net, &route, bytes] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      net.edge_at(route.src_edge).stamp(p, route, bytes);
      net.inject(route.src_edge, std::move(p));
    });
  }
  net.events().run_all();

  TracedRun result;
  result.trace = out.str() + render_counters(net.counters());
  result.cache = net.residue_cache_stats();
  return result;
}

TEST(FastPathDifferential, TracesBitIdenticalAcrossTopologiesTechniquesSeeds) {
  const std::vector<std::string> topologies = {"fig1", "fig2", "rnp28"};
  const std::vector<DeflectionTechnique> techniques = {
      DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
      DeflectionTechnique::kAnyValidPort, DeflectionTechnique::kNotInputPort};
  const std::uint64_t base = testsupport::seed_or(20260807);

  std::uint64_t fast_hits = 0;
  for (const auto& topology : topologies) {
    for (const auto technique : techniques) {
      // 50 seeds per combination; on mismatch fail fast with the full
      // context instead of flooding the log 600 times.
      for (std::uint64_t i = 0; i < 50; ++i) {
        const std::uint64_t seed = common::derive_seed(base, i);
        const TracedRun fast =
            run_traced(topology, technique, ResiduePath::kFast, seed);
        const TracedRun naive =
            run_traced(topology, technique, ResiduePath::kNaive, seed);
        ASSERT_EQ(fast.trace, naive.trace)
            << topology << " " << dataplane::to_string(technique) << " seed "
            << seed;
        // The naive path must never have touched a cache...
        ASSERT_EQ(naive.cache.hits + naive.cache.misses, 0u);
        fast_hits += fast.cache.hits;
      }
    }
  }
  // ...and the fast path must have actually exercised the memo, or this
  // test compared the naive path against itself.
  EXPECT_GT(fast_hits, 0u);
}

TEST(FastPathDifferential, CampaignAggregatesIdenticalAtAnyJobs) {
  // The campaign engine sweeps failure schedules, shrinking and the
  // invariant checker over both residue paths; canonical_aggregates is the
  // runner's hexfloat rendering — equal strings iff bit-equal doubles.
  faultgen::CampaignConfig config;
  config.topology = "rnp28";
  config.technique = DeflectionTechnique::kNotInputPort;
  config.runs = 30;
  config.packets_per_run = 10;
  config.seed = testsupport::seed_or(303);

  config.residue_path = ResiduePath::kNaive;
  const faultgen::CampaignEngine naive_engine(config);
  const std::string reference =
      runner::canonical_aggregates(naive_engine.run());
  ASSERT_FALSE(reference.empty());

  config.residue_path = ResiduePath::kFast;
  const faultgen::CampaignEngine fast_engine(config);
  EXPECT_EQ(runner::canonical_aggregates(fast_engine.run()), reference);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    runner::CampaignJobOptions options;
    options.runner.jobs = jobs;
    const auto result = runner::run_campaign(fast_engine, options, nullptr);
    EXPECT_EQ(runner::canonical_aggregates(result), reference)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace kar

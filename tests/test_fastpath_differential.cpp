// Differential suite for the forwarding fast paths: a network of switches
// running ResiduePath::kFast (width-gated PreparedMod reduction + memo)
// and a network forwarding in PacketBatches must both be observably
// indistinguishable, bit for bit, from the per-packet ResiduePath::kNaive
// reference (per-hop BigUint::mod_u64 long division).
//
// The determinism contract makes this a strong oracle: identical residues
// imply identical branch paths imply identical RNG consumption, so the
// full packet trace CSV — every event, timestamp and port — and all
// counters must match exactly. Any divergence anywhere in a run means a
// fast path computed a different residue, drew the RNG differently, or
// the batched simulator reordered an observable event.
//
// Coverage: fig1 / fig2 / rnp28 topologies x all four deflection
// techniques x seeds, each run a three-way comparison (per-packet naive,
// per-packet fast, batched fast) with a mid-route link failure + repair
// and burst traffic so batches really carry multiple packets; a widened
// (>64-bit route ID) variant keeps the residue memo in the loop now that
// narrow routes bypass it; a dedicated case lands a failure between
// batch staging and the sweep; plus campaign-level aggregate identity
// through the parallel runner at --jobs=1 and --jobs=4 and at --batch=32.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/switch.hpp"
#include "faultgen/campaign.hpp"
#include "routing/controller.hpp"
#include "runner/campaign_runner.hpp"
#include "sim/network.hpp"
#include "sim/trace_csv.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"
#include "topology/scenario.hpp"

namespace kar {
namespace {

using dataplane::DeflectionTechnique;
using dataplane::ResiduePath;

struct TracedRun {
  std::string trace;  ///< Full CSV trace + counters rendering.
  dataplane::ResidueCache::Stats cache;
  sim::Network::BatchPathStats batch;
};

std::string render_counters(const sim::NetworkCounters& c) {
  std::ostringstream out;
  out << "injected=" << c.injected << " delivered=" << c.delivered
      << " hops=" << c.hops << " deflections=" << c.deflections
      << " reencodes=" << c.reencodes << " bounces=" << c.bounces
      << " drops=" << c.total_drops();
  return out.str();
}

/// Adds (product of every switch ID in the topology) << 384 to a route ID:
/// the residue at every core switch is unchanged, but the ID no longer
/// fits 64 bits, so the kFast path goes through the ResidueCache memo
/// instead of the width-gated direct reduction.
void widen_route(const topo::Topology& topology, routing::EncodedRoute& route) {
  rns::BigUint product(1);
  for (const std::uint64_t sid : topology.all_switch_ids()) {
    product *= rns::BigUint(sid);
  }
  route.route_id += product << 384;
}

/// One seeded run: singles and bursts across a mid-route link failure +
/// repair, full trace captured. Everything (injection times, sizes,
/// failure window) derives from `seed`, so two calls differing only in
/// `residue_path` / `batch_size` / `widen` see byte-identical inputs.
TracedRun run_traced(const std::string& topology_name,
                     DeflectionTechnique technique, ResiduePath residue_path,
                     std::uint64_t seed, std::size_t batch_size = 0,
                     bool widen = false) {
  topo::Scenario s = faultgen::make_campaign_scenario(topology_name);
  const routing::Controller controller(s.topology);
  auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);
  if (widen) widen_route(s.topology, route);

  sim::NetworkConfig config;
  config.technique = technique;
  config.residue_path = residue_path;
  config.seed = common::derive_seed(seed, 1);
  config.batch_size = batch_size;
  sim::Network net(s.topology, controller, config);

  std::ostringstream out;
  sim::TraceCsvWriter writer(out);
  net.set_trace_hook(writer.hook(net));

  // Fail a primary-path core link mid-run so residues keep being computed
  // while deflection (and its RNG draws) is active, then repair it.
  common::Rng rng(common::derive_seed(seed, 2));
  const auto& core = s.route.core_path;
  const double fail_at = 0.001 + rng.uniform() * 0.005;
  const double repair_at = fail_at + 0.004 + rng.uniform() * 0.005;
  net.fail_link_at(fail_at, core[0], core[1]);
  net.repair_link_at(repair_at, core[0], core[1]);

  double time = 0.0;
  for (int i = 0; i < 4; ++i) {
    time += 1e-4 + rng.uniform() * 2e-3;
    const std::size_t bytes = 64 + rng.below(1200);
    net.events().schedule_at(time, [&net, &route, bytes] {
      dataplane::Packet p;
      p.transport = dataplane::Datagram{0};
      net.edge_at(route.src_edge).stamp(p, route, bytes);
      net.inject(route.src_edge, std::move(p));
    });
  }
  // Two bursts: the workload that actually fills PacketBatches (a burst's
  // packets all reach the ingress switch at the train's arrival instant).
  for (int b = 0; b < 2; ++b) {
    time += 1e-4 + rng.uniform() * 2e-3;
    const std::size_t bytes = 64 + rng.below(1200);
    net.events().schedule_at(time, [&net, &route, bytes] {
      std::vector<dataplane::Packet> burst(4);
      for (auto& p : burst) {
        p.transport = dataplane::Datagram{0};
        net.edge_at(route.src_edge).stamp(p, route, bytes);
      }
      net.inject_burst(route.src_edge, std::move(burst));
    });
  }
  net.events().run_all();

  TracedRun result;
  result.trace = out.str() + render_counters(net.counters());
  result.cache = net.residue_cache_stats();
  result.batch = net.batch_stats();
  return result;
}

TEST(FastPathDifferential, TracesBitIdenticalAcrossTopologiesTechniquesSeeds) {
  const std::vector<std::string> topologies = {"fig1", "fig2", "rnp28"};
  const std::vector<DeflectionTechnique> techniques = {
      DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
      DeflectionTechnique::kAnyValidPort, DeflectionTechnique::kNotInputPort};
  const std::uint64_t base = testsupport::seed_or(20260807);

  std::uint64_t wide_fast_hits = 0;
  std::size_t max_batch_occupancy = 0;
  for (const auto& topology : topologies) {
    for (const auto technique : techniques) {
      // Seeds per combination; on mismatch fail fast with the full context
      // instead of flooding the log hundreds of times. Every fourth seed
      // re-runs the comparison with a widened (>64-bit) route ID.
      for (std::uint64_t i = 0; i < 12; ++i) {
        const std::uint64_t seed = common::derive_seed(base, i);
        const bool widen = (i % 4 == 0);
        const TracedRun naive =
            run_traced(topology, technique, ResiduePath::kNaive, seed,
                       /*batch_size=*/0, widen);
        const TracedRun fast =
            run_traced(topology, technique, ResiduePath::kFast, seed,
                       /*batch_size=*/0, widen);
        const TracedRun batched =
            run_traced(topology, technique, ResiduePath::kFast, seed,
                       /*batch_size=*/8, widen);
        ASSERT_EQ(fast.trace, naive.trace)
            << topology << " " << dataplane::to_string(technique) << " seed "
            << seed << " widen=" << widen;
        ASSERT_EQ(batched.trace, naive.trace)
            << topology << " " << dataplane::to_string(technique) << " seed "
            << seed << " widen=" << widen << " (batched vs naive)";
        // The naive path must never have touched a cache...
        ASSERT_EQ(naive.cache.hits + naive.cache.misses, 0u);
        // ...the per-packet paths must never have batched anything...
        ASSERT_EQ(naive.batch.staged + naive.batch.batches, 0u);
        ASSERT_EQ(fast.batch.staged + fast.batch.batches, 0u);
        // ...and the batched run must actually have batched.
        ASSERT_GT(batched.batch.staged, 0u)
            << topology << " " << dataplane::to_string(technique);
        ASSERT_GT(batched.batch.batches, 0u);
        if (widen) wide_fast_hits += fast.cache.hits;
        if (batched.batch.max_occupancy > max_batch_occupancy) {
          max_batch_occupancy = batched.batch.max_occupancy;
        }
      }
    }
  }
  // The widened runs must have exercised the residue memo (narrow routes
  // bypass it by design), or this test compared naive against itself...
  EXPECT_GT(wide_fast_hits, 0u);
  // ...and at least one sweep must have carried a real multi-packet batch.
  EXPECT_GT(max_batch_occupancy, 1u);
}

TEST(FastPathDifferential, FailureLandingMidBatchStaysByteIdentical) {
  // Exact-binary link parameters: every timestamp in this run is an exact
  // double, so the failure below can be scheduled at precisely the burst's
  // arrival instant. rate 2^30 b/s makes any whole-byte serialization time
  // a multiple of 2^-27 s; delay 2^-10 s is 131072 of those units.
  topo::LinkParams params;
  params.rate_bps = 1073741824.0;  // 2^30
  params.delay_s = 0.0009765625;   // 2^-10
  params.queue_packets = 100;

  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort,
        DeflectionTechnique::kNotInputPort}) {
    constexpr std::size_t kBurst = 6;
    std::vector<std::string> traces;
    sim::Network::BatchPathStats batched_stats;
    for (const std::size_t batch_size : {std::size_t{0}, std::size_t{8}}) {
      topo::Scenario s = topo::make_fig1_network(params);
      const routing::Controller controller(s.topology);
      const auto route = controller.encode_scenario(
          s.route, topo::ProtectionLevel::kPartial);
      const auto link = s.topology.link_between(
          s.topology.at(s.route.core_path[0]),
          s.topology.at(s.route.core_path[1]));
      ASSERT_TRUE(link.has_value());

      sim::NetworkConfig config;
      config.technique = technique;
      config.seed = testsupport::seed_or(4242);
      config.batch_size = batch_size;
      sim::Network net(s.topology, controller, config);

      std::ostringstream out;
      sim::TraceCsvWriter writer(out);
      net.set_trace_hook(writer.hook(net));

      // Learn the stamped wire size, then replicate the uplink's timing
      // arithmetic operation for operation: the burst's arrival instant is
      // busy_until (the running tx-time sum) plus the propagation delay.
      auto make_stamped = [&] {
        dataplane::Packet p;
        p.transport = dataplane::Datagram{0};
        net.edge_at(route.src_edge).stamp(p, route, 64);
        return p;
      };
      const double tx_time = static_cast<double>(make_stamped().size_bytes) *
                             8.0 / params.rate_bps;
      double busy_until = 0.0;
      for (std::size_t i = 0; i < kBurst; ++i) busy_until += tx_time;
      const double arrival = busy_until + params.delay_s;

      net.events().schedule_at(0.0, [&] {
        std::vector<dataplane::Packet> burst;
        for (std::size_t i = 0; i < kBurst; ++i) {
          burst.push_back(make_stamped());
        }
        net.inject_burst(route.src_edge, std::move(burst));
      });
      // Scheduling the failure from a mid-run event gives it a sequence
      // number above the burst's arrival events: at `arrival` the whole
      // burst stages first, then the failure fires — landing between batch
      // staging and the sweep, exactly the race the cooperative flush
      // exists for. (In per-packet mode the arrivals simply forward first;
      // the observable order is identical.)
      net.events().schedule_at(arrival / 2, [&, id = *link] {
        net.events().schedule_at(arrival, [&net, id] { net.fail_link_now(id); });
      });
      // Repair well after, then a second burst proves the repaired path.
      net.events().schedule_at(arrival + 0.25, [&, id = *link] {
        net.repair_link_now(id);
        std::vector<dataplane::Packet> burst;
        for (std::size_t i = 0; i < kBurst; ++i) {
          burst.push_back(make_stamped());
        }
        net.inject_burst(route.src_edge, std::move(burst));
      });
      net.events().run_all();

      traces.push_back(out.str() + render_counters(net.counters()));
      if (batch_size > 0) batched_stats = net.batch_stats();
    }
    ASSERT_EQ(traces[0], traces[1])
        << "technique " << dataplane::to_string(technique);
    // The failure really did land on an open batch: the sweep was forced
    // by the link-state change, not by the same-instant flush event, and
    // it carried the whole burst.
    EXPECT_GE(batched_stats.state_flushes, 1u)
        << "technique " << dataplane::to_string(technique);
    EXPECT_EQ(batched_stats.max_occupancy, kBurst);
  }
}

TEST(FastPathDifferential, CampaignAggregatesIdenticalAtAnyJobs) {
  // The campaign engine sweeps failure schedules, shrinking and the
  // invariant checker over both residue paths; canonical_aggregates is the
  // runner's hexfloat rendering — equal strings iff bit-equal doubles.
  faultgen::CampaignConfig config;
  config.topology = "rnp28";
  config.technique = DeflectionTechnique::kNotInputPort;
  config.runs = 30;
  config.packets_per_run = 10;
  config.seed = testsupport::seed_or(303);

  config.residue_path = ResiduePath::kNaive;
  const faultgen::CampaignEngine naive_engine(config);
  const std::string reference =
      runner::canonical_aggregates(naive_engine.run());
  ASSERT_FALSE(reference.empty());

  config.residue_path = ResiduePath::kFast;
  const faultgen::CampaignEngine fast_engine(config);
  EXPECT_EQ(runner::canonical_aggregates(fast_engine.run()), reference);

  // The batched data plane folds into the same aggregates.
  config.batch_size = 32;
  const faultgen::CampaignEngine batched_engine(config);
  EXPECT_EQ(runner::canonical_aggregates(batched_engine.run()), reference);
  config.batch_size = 0;

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    runner::CampaignJobOptions options;
    options.runner.jobs = jobs;
    const auto result = runner::run_campaign(fast_engine, options, nullptr);
    EXPECT_EQ(runner::canonical_aggregates(result), reference)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace kar

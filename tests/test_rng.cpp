#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

namespace kar::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresStream) {
  Rng rng(7);
  std::array<std::uint64_t, 8> first{};
  for (auto& v : first) v = rng();
  rng.reseed(7);
  for (const auto v : first) EXPECT_EQ(rng(), v);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  std::array<int, 5> counts{};
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(5)];
  for (const int c : counts) {
    EXPECT_GT(c, kSamples / 5 - 800);
    EXPECT_LT(c, kSamples / 5 + 800);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  EXPECT_EQ(rng.between(4, 4), 4);
  EXPECT_THROW(rng.between(5, 4), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(Rng(1).chance(0.0));
  EXPECT_TRUE(Rng(1).chance(1.1));
}

TEST(Rng, PickSelectsExistingElements) {
  Rng rng(17);
  const std::vector<int> items = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.shuffle(items);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);  // same multiset
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent2(21);
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace kar::common

#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace kar::common {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = parse({"--runs=30", "--technique=nip", "--rate=200e6"});
  EXPECT_EQ(f.get_int("runs", 0), 30);
  EXPECT_EQ(f.get_string("technique", ""), "nip");
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 200e6);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = parse({"--runs", "10", "--name", "fig4"});
  EXPECT_EQ(f.get_int("runs", 0), 10);
  EXPECT_EQ(f.get_string("name", ""), "fig4");
}

TEST(Flags, BooleanForms) {
  const Flags f = parse({"--verbose", "--no-color", "--flag=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("color", true));
  EXPECT_FALSE(f.get_bool("flag", true));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, BooleanSynonyms) {
  const Flags f = parse({"--a=yes", "--b=0", "--c=on"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x", false), std::invalid_argument);
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"first", "--k=v", "second"});
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"first", "second"}));
  EXPECT_TRUE(f.has("k"));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_int("n", 5), 5);
  EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.get_double("d", 1.5), 1.5);
}

TEST(Flags, MalformedNumbersThrow) {
  const Flags f = parse({"--n=abc", "--d=1.2.3"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("d", 0), std::invalid_argument);
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  const Flags f = parse({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

}  // namespace
}  // namespace kar::common

#include "analysis/walks.hpp"

#include <gtest/gtest.h>

#include "routing/controller.hpp"
#include "topology/builders.hpp"

namespace kar::analysis {
namespace {

using dataplane::DeflectionTechnique;
using topo::ProtectionLevel;
using topo::Scenario;

struct WalkFixture : public ::testing::Test {
  WalkFixture()
      : scenario(topo::make_fig1_network()), controller(scenario.topology) {}

  routing::EncodedRoute route(ProtectionLevel level) {
    return controller.encode_scenario(scenario.route, level);
  }

  Scenario scenario;
  routing::Controller controller;
  common::Rng rng{11};
};

TEST_F(WalkFixture, HealthyRouteWalksExactPath) {
  WalkConfig config;
  config.record_trace = true;
  const auto result =
      walk_packet(scenario.topology, controller, route(ProtectionLevel::kUnprotected),
                  config, rng);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops, 3u);
  EXPECT_EQ(result.deflections, 0u);
  std::vector<std::string> names;
  for (const auto n : result.trace) names.push_back(scenario.topology.name(n));
  EXPECT_EQ(names,
            (std::vector<std::string>{"S", "SW4", "SW7", "SW11", "D"}));
}

TEST_F(WalkFixture, ProtectedRouteSurvivesFailureViaDrivenDeflection) {
  scenario.topology.fail_link("SW7", "SW11");
  WalkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  const auto stats = sample_walks(scenario.topology, controller,
                                  route(ProtectionLevel::kPartial), config,
                                  500, /*seed=*/3);
  EXPECT_EQ(stats.delivered, 500u);
  // NIP at SW7 always picks SW5 (SW4 is the input port): 4 hops for all.
  EXPECT_DOUBLE_EQ(stats.hops.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.hops.stddev, 0.0);
}

TEST_F(WalkFixture, UnprotectedNoDeflectionDropsDuringFailure) {
  scenario.topology.fail_link("SW7", "SW11");
  WalkConfig config;
  config.technique = DeflectionTechnique::kNone;
  const auto stats = sample_walks(scenario.topology, controller,
                                  route(ProtectionLevel::kUnprotected), config,
                                  100, 3);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate, 0.0);
}

TEST_F(WalkFixture, AvpWithoutProtectionSplitsFiftyFifty) {
  // Paper §2.1: without protection, a packet deflected at SW7 that lands
  // on SW5 has a 50% chance of going to SW11 (and 50% back to SW7).
  scenario.topology.fail_link("SW7", "SW11");
  WalkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  const auto stats = sample_walks(scenario.topology, controller,
                                  route(ProtectionLevel::kUnprotected), config,
                                  2000, 17);
  // AVP eventually delivers every packet (random walk on a connected
  // residual graph with re-encode at wrong edges).
  EXPECT_GT(stats.delivery_rate, 0.99);
  // Hop counts vary (sometimes > 4): bouncing happened.
  EXPECT_GT(stats.hops.stddev, 0.1);
  EXPECT_GT(stats.hops.mean, 4.0);
}

TEST_F(WalkFixture, DrivenDeflectionEliminatesTheCoinFlip) {
  // With SW5 in the route ID (R = 660), every deflected packet is driven
  // SW5 -> SW11: constant 4 hops, no revisits.
  scenario.topology.fail_link("SW7", "SW11");
  WalkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  const auto protected_stats = sample_walks(scenario.topology, controller,
                                            route(ProtectionLevel::kPartial),
                                            config, 2000, 17);
  EXPECT_DOUBLE_EQ(protected_stats.hops.mean, 4.0);
  EXPECT_DOUBLE_EQ(protected_stats.hops.max, 4.0);
}

TEST_F(WalkFixture, HotPotatoIsTheWorstTechnique) {
  scenario.topology.fail_link("SW7", "SW11");
  WalkConfig config;
  config.max_hops = 100000;
  config.technique = DeflectionTechnique::kHotPotato;
  const auto hp = sample_walks(scenario.topology, controller,
                               route(ProtectionLevel::kPartial), config, 500, 5);
  config.technique = DeflectionTechnique::kNotInputPort;
  const auto nip = sample_walks(scenario.topology, controller,
                                route(ProtectionLevel::kPartial), config, 500, 5);
  EXPECT_GT(hp.hops.mean, nip.hops.mean);
}

TEST_F(WalkFixture, TtlBoundsWalks) {
  scenario.topology.fail_link("SW7", "SW11");
  scenario.topology.fail_link("SW5", "SW11");
  WalkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  config.wrong_edge_policy = dataplane::WrongEdgePolicy::kBounceBack;
  config.max_hops = 32;
  const auto result = walk_packet(scenario.topology, controller,
                                  route(ProtectionLevel::kPartial), config, rng);
  EXPECT_FALSE(result.delivered);
  EXPECT_LE(result.hops, 33u);
}

TEST(WalkSplits, Sw10FailureSplitsTwoThirdsOneThird) {
  // Paper §3.1: failure at SW10-SW7 with partial protection sends 2/3 of
  // packets to SW17/SW37 (uncovered) and 1/3 to SW11 (covered).
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kPartial);
  s.topology.fail_link("SW10", "SW7");
  WalkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  const auto split = first_hop_split(s.topology, controller, route,
                                     s.topology.at("SW10"), config, 3000, 23);
  EXPECT_EQ(split.walks_through_node, 3000u);
  double to_protected = 0;
  double to_uncovered = 0;
  for (const auto& [node, share] : split.shares) {
    const std::string& name = s.topology.name(node);
    if (name == "SW11") to_protected += share;
    if (name == "SW17" || name == "SW37") to_uncovered += share;
  }
  EXPECT_NEAR(to_protected, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(to_uncovered, 2.0 / 3.0, 0.05);
}

TEST(WalkSplits, DeliveredAnywayViaReencodeCounts) {
  // In the 15-node net with HP, many walks surface at AS2 and get
  // re-encoded; sample_walks must track that.
  Scenario s = topo::make_experimental15();
  const routing::Controller controller(s.topology);
  const auto route =
      controller.encode_scenario(s.route, ProtectionLevel::kUnprotected);
  s.topology.fail_link("SW7", "SW13");
  WalkConfig config;
  config.technique = DeflectionTechnique::kHotPotato;
  config.max_hops = 100000;
  const auto stats =
      sample_walks(s.topology, controller, route, config, 300, 31);
  EXPECT_GT(stats.delivery_rate, 0.99);
  EXPECT_GT(stats.reencoded_walks, 0u);
}

}  // namespace
}  // namespace kar::analysis

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace kar::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(10.0, [&] {
    q.schedule_at(3.0, [&] { fired_at = q.now(); });  // in the past
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(3.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);  // idle-advanced
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, HandlersCanChainEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) q.schedule_in(0.1, tick);
  };
  q.schedule_at(0.0, tick);
  const std::size_t processed = q.run_all();
  EXPECT_EQ(processed, 100u);
  EXPECT_NEAR(q.now(), 9.9, 1e-9);
}

TEST(EventQueue, RunAllRespectsEventBudget) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_in(1.0, forever); };
  q.schedule_at(0.0, forever);
  EXPECT_EQ(q.run_all(50), 50u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, NullHandlerThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace kar::sim

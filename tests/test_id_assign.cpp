#include "routing/id_assign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "rns/crt.hpp"
#include "rns/modular.hpp"
#include "topogen/topogen.hpp"
#include "topology/builders.hpp"

namespace kar::routing {
namespace {

using topo::NodeId;
using topo::NodeKind;
using topo::Scenario;

std::vector<std::uint64_t> id_values(
    const std::unordered_map<NodeId, topo::SwitchId>& ids) {
  std::vector<std::uint64_t> out;
  out.reserve(ids.size());
  for (const auto& [node, id] : ids) {
    (void)node;
    out.push_back(id);
  }
  return out;
}

TEST(IdAssigner, AscendingProducesValidAssignment) {
  const Scenario s = topo::make_experimental15();
  const auto ids = assign_switch_ids(s.topology, IdStrategy::kAscending);
  EXPECT_EQ(ids.size(), 15u);
  EXPECT_TRUE(rns::pairwise_coprime(id_values(ids)));
  for (const auto& [node, id] : ids) {
    EXPECT_GE(id, s.topology.port_count(node)) << s.topology.name(node);
    EXPECT_GE(id, 2u);
  }
}

TEST(IdAssigner, DegreeDescendingGivesSmallIdsToHubs) {
  const Scenario s = topo::make_rnp28();
  const auto ids = assign_switch_ids(s.topology, IdStrategy::kDegreeDescending);
  // SW13 is the highest-degree switch (7 core links); it must receive one
  // of the smallest assigned IDs.
  const NodeId hub = s.topology.at("SW13");
  auto values = id_values(ids);
  std::sort(values.begin(), values.end());
  EXPECT_LE(ids.at(hub), values[2]) << "hub did not get a small id";
}

TEST(IdAssigner, PrimesOnlyStrategyYieldsPrimes) {
  const Scenario s = topo::make_experimental15();
  const auto ids = assign_switch_ids(s.topology, IdStrategy::kPrimesAscending);
  for (const auto& [node, id] : ids) {
    (void)node;
    EXPECT_TRUE(rns::is_prime_u64(id)) << id;
  }
  EXPECT_TRUE(rns::pairwise_coprime(id_values(ids)));
}

TEST(IdAssigner, DegreeAwareReducesRouteBits) {
  // The motivating property: for the RNP route through high-degree hubs,
  // degree-aware assignment must not need more bits than prime-ascending
  // in insertion order.
  const Scenario s = topo::make_rnp28();
  const auto degree_ids =
      assign_switch_ids(s.topology, IdStrategy::kDegreeDescending);
  const auto naive_ids =
      assign_switch_ids(s.topology, IdStrategy::kPrimesAscending);
  const auto bits_for = [&](const auto& ids) {
    std::vector<std::uint64_t> route_ids;
    for (const auto& name : s.route.core_path) {
      route_ids.push_back(ids.at(s.topology.at(name)));
    }
    return rns::route_id_bit_length(route_ids);
  };
  EXPECT_LE(bits_for(degree_ids), bits_for(naive_ids));
}

TEST(IdAssigner, ThousandSwitchTopologyAssignsInBoundedTime) {
  // Regression for the quadratic rescan: every strategy must assign a
  // valid coprime set to a 1000-switch generated graph well inside 2 s
  // (the pre-pool code was O(candidates x taken) gcd scans).
  const Scenario s = topogen::make_barabasi_albert({.switches = 1000, .seed = 4});
  for (const IdStrategy strategy :
       {IdStrategy::kAscending, IdStrategy::kDegreeDescending,
        IdStrategy::kPrimesAscending}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto ids = assign_switch_ids(s.topology, strategy);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(ids.size(), 1000u);
    EXPECT_TRUE(rns::pairwise_coprime(id_values(ids)));
    for (const auto& [node, id] : ids) {
      EXPECT_GE(id, std::max<std::uint64_t>(s.topology.port_count(node), 2));
    }
    EXPECT_LT(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
        2000)
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(RelabelTopology, PreservesStructure) {
  const Scenario s = topo::make_fig1_network();
  const auto ids = assign_switch_ids(s.topology, IdStrategy::kAscending);
  const topo::Topology relabeled = relabel_topology(s.topology, ids);
  EXPECT_EQ(relabeled.node_count(), s.topology.node_count());
  EXPECT_EQ(relabeled.link_count(), s.topology.link_count());
  // Node handles, kinds and port wiring carry over.
  for (NodeId n = 0; n < s.topology.node_count(); ++n) {
    EXPECT_EQ(relabeled.kind(n), s.topology.kind(n));
    EXPECT_EQ(relabeled.port_count(n), s.topology.port_count(n));
    for (topo::PortIndex p = 0; p < s.topology.port_count(n); ++p) {
      EXPECT_EQ(relabeled.neighbor(n, p), s.topology.neighbor(n, p));
    }
  }
  // Edge names survive; switches renamed to SW<id>.
  EXPECT_TRUE(relabeled.find("S").has_value());
  EXPECT_TRUE(relabeled.find("D").has_value());
  for (const auto& [node, id] : ids) {
    EXPECT_EQ(relabeled.switch_id(node), id);
  }
}

TEST(RelabelTopology, MissingIdThrows) {
  const Scenario s = topo::make_fig1_network();
  std::unordered_map<NodeId, topo::SwitchId> incomplete;
  EXPECT_THROW(relabel_topology(s.topology, incomplete), std::invalid_argument);
}

}  // namespace
}  // namespace kar::routing

#include "rns/biguint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

namespace kar::rns {
namespace {

TEST(BigUint, DefaultIsZero) {
  const BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_u64(), 0u);
}

TEST(BigUint, ConstructsFromU64) {
  EXPECT_EQ(BigUint(44).to_u64(), 44u);
  EXPECT_EQ(BigUint(0).to_u64(), 0u);
  const std::uint64_t big = 0xFFFFFFFFFFFFFFFFULL;
  EXPECT_EQ(BigUint(big).to_u64(), big);
}

TEST(BigUint, BitLengthMatchesValues) {
  EXPECT_EQ(BigUint(1).bit_length(), 1u);
  EXPECT_EQ(BigUint(2).bit_length(), 2u);
  EXPECT_EQ(BigUint(3).bit_length(), 2u);
  EXPECT_EQ(BigUint(255).bit_length(), 8u);
  EXPECT_EQ(BigUint(256).bit_length(), 9u);
  EXPECT_EQ(BigUint(26389).bit_length(), 15u);  // paper Table 1 unprotected
  EXPECT_EQ((BigUint(1) << 100).bit_length(), 101u);
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint a(0xFFFFFFFFULL);
  a += BigUint(1);
  EXPECT_EQ(a.to_u64(), 0x100000000ULL);
  BigUint b(0xFFFFFFFFFFFFFFFFULL);
  b += BigUint(1);
  EXPECT_EQ(b.to_string(), "18446744073709551616");
  EXPECT_FALSE(b.fits_u64());
}

TEST(BigUint, SubtractionBorrows) {
  BigUint a(0x100000000ULL);
  a -= BigUint(1);
  EXPECT_EQ(a.to_u64(), 0xFFFFFFFFULL);
  EXPECT_EQ((BigUint(44) - BigUint(44)).to_string(), "0");
}

TEST(BigUint, SubtractionUnderflowThrows) {
  BigUint small(3);
  EXPECT_THROW(small -= BigUint(4), std::underflow_error);
}

TEST(BigUint, MultiplicationSmall) {
  EXPECT_EQ((BigUint(4) * BigUint(7) * BigUint(11)).to_u64(), 308u);
  EXPECT_EQ((BigUint(0) * BigUint(12345)).to_string(), "0");
}

TEST(BigUint, MultiplicationLarge) {
  // 2^64 * 2^64 = 2^128
  const BigUint x = BigUint(1) << 64;
  const BigUint sq = x * x;
  EXPECT_EQ(sq.bit_length(), 129u);
  EXPECT_EQ(sq.to_hex(), "100000000000000000000000000000000");
}

TEST(BigUint, DivModSingleLimbDivisor) {
  const BigUint n(1234567890123456789ULL);
  const auto [q, r] = n.divmod(BigUint(1000));
  EXPECT_EQ(q.to_u64(), 1234567890123456ULL);
  EXPECT_EQ(r.to_u64(), 789u);
}

TEST(BigUint, DivModMultiLimbDivisor) {
  const BigUint n = (BigUint(1) << 130) + BigUint(12345);
  const BigUint d = (BigUint(1) << 65) + BigUint(7);
  const auto [q, r] = n.divmod(d);
  EXPECT_EQ(((q * d) + r).to_hex(), n.to_hex());
  EXPECT_LT(r, d);
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint(5).divmod(BigUint(0)), std::domain_error);
  EXPECT_THROW(BigUint(5).mod_u64(0), std::domain_error);
}

TEST(BigUint, ModU64MatchesPaperExample) {
  // Paper §2: R=44 forwards via ports 0/2/0 at switches 4/7/11.
  const BigUint r(44);
  EXPECT_EQ(r.mod_u64(4), 0u);
  EXPECT_EQ(r.mod_u64(7), 2u);
  EXPECT_EQ(r.mod_u64(11), 0u);
  // R=660 adds SW5 -> port 0.
  const BigUint r2(660);
  EXPECT_EQ(r2.mod_u64(4), 0u);
  EXPECT_EQ(r2.mod_u64(7), 2u);
  EXPECT_EQ(r2.mod_u64(11), 0u);
  EXPECT_EQ(r2.mod_u64(5), 0u);
}

TEST(BigUint, ModU64MultiLimb) {
  const BigUint n = (BigUint(97) << 200) + BigUint(31);
  // Cross-check against divmod.
  EXPECT_EQ(n.mod_u64(101), n.divmod(BigUint(101)).remainder.to_u64());
  EXPECT_EQ(n.mod_u64(2), n.divmod(BigUint(2)).remainder.to_u64());
}

TEST(BigUint, ShiftsRoundTrip) {
  const BigUint x(0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(((x << 77) >> 77), x);
  EXPECT_EQ((x >> 200).to_string(), "0");
  EXPECT_EQ((BigUint(1) << 32).to_u64(), 0x100000000ULL);
}

TEST(BigUint, ComparisonOrdering) {
  EXPECT_LT(BigUint(3), BigUint(4));
  EXPECT_GT(BigUint(1) << 64, BigUint(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(BigUint(42), BigUint(42));
  EXPECT_LE(BigUint(0), BigUint(0));
}

TEST(BigUint, DecimalStringRoundTrip) {
  const char* text = "340282366920938463463374607431768211455";  // 2^128-1
  const BigUint x = BigUint::from_string(text);
  EXPECT_EQ(x.to_string(), text);
  EXPECT_EQ((x + BigUint(1)).bit_length(), 129u);
}

TEST(BigUint, HexStringParses) {
  EXPECT_EQ(BigUint::from_string("0xff").to_u64(), 255u);
  EXPECT_EQ(BigUint::from_string("0xDEADBEEF").to_u64(), 0xDEADBEEFULL);
}

TEST(BigUint, MalformedStringsThrow) {
  EXPECT_THROW(BigUint::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigUint::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW(BigUint::from_string("0xZZ"), std::invalid_argument);
}

TEST(BigUint, HexPrefixWithNoDigitsThrowsDedicatedMessage) {
  // Regression: a bare "0x"/"0X" used to fall through to the decimal loop
  // and report "bad decimal digit" for 'x' — wrong base, wrong diagnosis.
  for (const char* text : {"0x", "0X"}) {
    try {
      (void)BigUint::from_string(text);
      FAIL() << '"' << text << "\" must not parse";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("hex prefix with no digits"),
                std::string::npos)
          << "message was: " << error.what();
    }
  }
}

TEST(BigUint, UppercaseHexPrefixParses) {
  EXPECT_EQ(BigUint::from_string("0Xff").to_u64(), 255u);
}

TEST(BigUint, HexStringRoundTrip) {
  const BigUint x = (BigUint(0xDEADBEEFCAFEBABEULL) << 70) + BigUint(12345);
  EXPECT_EQ(BigUint::from_string("0x" + x.to_hex()), x);
}

TEST(BigUint, DivmodBinaryAgreesOnKnuthEdgeShapes) {
  // Operand shapes that exercise Algorithm D's corner cases: the qhat
  // correction loop (high divisor limb just below 2^32) and the rare
  // add-back step (dividend prefixes equal to the divisor).
  const BigUint top_limb =
      (BigUint(0xFFFFFFFFULL) << 64) + (BigUint(0xFFFFFFFEULL) << 32) +
      BigUint(0x12345678ULL);
  const BigUint d = (BigUint(0x80000000ULL) << 32) + BigUint(1);
  for (const BigUint& n :
       {top_limb, top_limb * d, top_limb * d + BigUint(1),
        (BigUint(1) << 192) - BigUint(1), d, d - BigUint(1)}) {
    const auto fast = n.divmod(d);
    const auto reference = n.divmod_binary(d);
    EXPECT_EQ(fast.quotient, reference.quotient) << n;
    EXPECT_EQ(fast.remainder, reference.remainder) << n;
    EXPECT_EQ(fast.quotient * d + fast.remainder, n);
  }
}

TEST(BigUint, ToU64OverflowThrows) {
  EXPECT_THROW(((BigUint(1) << 65)).to_u64(), std::overflow_error);
}

TEST(BigUint, LeadingZeroNormalization) {
  // (x + y) - y must compare equal to x even across limb boundaries.
  const BigUint x(7);
  const BigUint y = BigUint(1) << 96;
  EXPECT_EQ((x + y) - y, x);
}

}  // namespace
}  // namespace kar::rns

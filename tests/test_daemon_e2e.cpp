// End-to-end kard smoke (the ISSUE's restart acceptance): spawns the real
// `kard --stdin` binary (path injected as KAR_KARD_BINARY at compile time),
// drives the line protocol over pipes, and proves
//   * the scripted session works: install / failed install / query /
//     link-down reconvergence / snapshot / graceful shutdown;
//   * a restart from the shutdown snapshot answers every query with the
//     byte-identical response line the pre-restart daemon gave;
//   * kill -TERM mid-churn still drains, snapshots, and exits cleanly, and
//     the restarted daemon's re-serialized store is byte-identical to the
//     file the dying daemon wrote.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace kar {
namespace {

#ifndef KAR_KARD_BINARY
#error "KAR_KARD_BINARY must point at the kard executable"
#endif

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "kar_e2e_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A kard child process driven over stdin/stdout pipes.
class KardProc {
 public:
  explicit KardProc(const std::vector<std::string>& extra_args) {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      ADD_FAILURE() << "pipe(): " << std::strerror(errno);
      return;
    }
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<std::string> args = {KAR_KARD_BINARY, "--stdin"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(KAR_KARD_BINARY, argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~KardProc() {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  void send_line(const std::string& line) {
    const std::string data = line + "\n";
    ASSERT_EQ(::write(in_fd_, data.data(), data.size()),
              static_cast<ssize_t>(data.size()))
        << "write to kard failed";
  }

  /// Reads one '\n'-terminated response (without the newline). Empty on
  /// EOF or a 30 s timeout.
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{out_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 30000);
      if (ready <= 0) return "";
      char chunk[4096];
      const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string request(const std::string& line) {
    send_line(line);
    return read_line();
  }

  /// Closes stdin (EOF) and waits; returns the exit code (-1 on abnormal
  /// termination).
  int wait_exit() {
    if (in_fd_ >= 0) {
      ::close(in_fd_);
      in_fd_ = -1;
    }
    int status = 0;
    if (::waitpid(pid_, &status, 0) != pid_) return -1;
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
};

bool is_ok(const std::string& response) {
  return response.rfind("{\"ok\":true", 0) == 0;
}

TEST(DaemonE2E, ScriptedSessionWorks) {
  const std::string snap = temp_path("script.snap");
  std::remove(snap.c_str());
  KardProc kard({"--topology=rnp28", "--snapshot=" + snap});
  ASSERT_GT(kard.pid(), 0);

  EXPECT_NE(kard.request("ping").find("\"pong\":true"), std::string::npos);
  const std::string install = kard.request("install H-SW7 H-SW73");
  EXPECT_TRUE(is_ok(install)) << install;
  EXPECT_NE(install.find("\"key\":0"), std::string::npos);

  // A bad install fails with a structured error and no route slot.
  const std::string bad = kard.request("install H-SW7 NOPE");
  EXPECT_NE(bad.find("\"code\":\"unknown-node\""), std::string::npos) << bad;
  const std::string not_edge = kard.request("install SW7 SW73");
  EXPECT_NE(not_edge.find("\"code\":\"not-edge\""), std::string::npos);

  const std::string before = kard.request("query 0");
  EXPECT_TRUE(is_ok(before)) << before;
  EXPECT_NE(before.find("\"live\":true"), std::string::npos);

  // Fail a primary-path link: the route must reconverge onto a new path.
  EXPECT_TRUE(is_ok(kard.request("link-down SW7 SW13")));
  const std::string after = kard.request("query 0");
  EXPECT_TRUE(is_ok(after)) << after;
  EXPECT_NE(after, before) << "route did not reconverge";
  EXPECT_NE(after.find("\"live\":true"), std::string::npos);

  const std::string snapshot = kard.request("snapshot");
  EXPECT_TRUE(is_ok(snapshot)) << snapshot;
  EXPECT_FALSE(slurp(snap).empty());

  EXPECT_NE(kard.request("shutdown").find("\"shutting_down\":true"),
            std::string::npos);
  EXPECT_EQ(kard.wait_exit(), 0);
}

TEST(DaemonE2E, RestartFromSnapshotAnswersIdentically) {
  const std::string snap = temp_path("restart.snap");
  std::remove(snap.c_str());
  std::vector<std::string> queries;
  std::vector<std::string> answers;

  {
    KardProc kard({"--topology=rnp28", "--snapshot=" + snap});
    ASSERT_GT(kard.pid(), 0);
    ASSERT_TRUE(is_ok(kard.request("install H-SW7 H-SW73")));
    ASSERT_TRUE(is_ok(kard.request("install H-SW61 H-SW17")));
    ASSERT_TRUE(is_ok(kard.request("install H-SW7 H-SW107")));
    ASSERT_TRUE(is_ok(kard.request("link-down SW7 SW13")));
    ASSERT_TRUE(is_ok(kard.request("link-down SW61 SW67")));
    ASSERT_TRUE(is_ok(kard.request("withdraw 1")));
    for (int key = 0; key < 3; ++key) {
      queries.push_back("query " + std::to_string(key));
      answers.push_back(kard.request(queries.back()));
      ASSERT_FALSE(answers.back().empty());
    }
    // Graceful shutdown writes the snapshot.
    ASSERT_TRUE(is_ok(kard.request("shutdown")));
    ASSERT_EQ(kard.wait_exit(), 0);
  }

  const std::string written = slurp(snap);
  ASSERT_FALSE(written.empty());

  {
    KardProc kard({"--topology=rnp28", "--snapshot=" + snap, "--restore",
                   "--no-final-snapshot"});
    ASSERT_GT(kard.pid(), 0);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(kard.request(queries[i]), answers[i])
          << "restart changed the answer to: " << queries[i];
    }
    // Re-serializing the restored store reproduces the file byte for byte.
    const std::string second = temp_path("restart2.snap");
    std::remove(second.c_str());
    ASSERT_TRUE(is_ok(kard.request("snapshot " + second)));
    EXPECT_EQ(slurp(second), written) << "restore is not serialize^-1";
    ASSERT_TRUE(is_ok(kard.request("shutdown")));
    EXPECT_EQ(kard.wait_exit(), 0);
  }
}

TEST(DaemonE2E, SigtermMidChurnSnapshotsAndRestartsLossless) {
  const std::string snap = temp_path("sigterm.snap");
  std::remove(snap.c_str());
  {
    KardProc kard({"--topology=rnp28", "--snapshot=" + snap});
    ASSERT_GT(kard.pid(), 0);
    ASSERT_TRUE(is_ok(kard.request("install H-SW7 H-SW73")));
    ASSERT_TRUE(is_ok(kard.request("install H-SW61 H-SW17")));
    // Fire churn without waiting for responses, then SIGTERM mid-flight:
    // the daemon must drain in-flight epochs and snapshot on the way out.
    kard.send_line("link-down SW7 SW13");
    kard.send_line("install H-SW7 H-SW107");
    kard.send_line("link-up SW7 SW13");
    kard.send_line("link-down SW61 SW67");
    ::kill(kard.pid(), SIGTERM);
    EXPECT_EQ(kard.wait_exit(), 0) << "SIGTERM was not a graceful shutdown";
  }
  const std::string written = slurp(snap);
  ASSERT_FALSE(written.empty());

  {
    KardProc kard({"--topology=rnp28", "--snapshot=" + snap, "--restore",
                   "--no-final-snapshot"});
    ASSERT_GT(kard.pid(), 0);
    // The restored store re-serializes byte-identically — nothing the
    // dying daemon persisted was lost or reinterpreted.
    const std::string second = temp_path("sigterm2.snap");
    std::remove(second.c_str());
    ASSERT_TRUE(is_ok(kard.request("snapshot " + second)));
    EXPECT_EQ(slurp(second), written);
    // And it still serves: every key answers, and the store keeps working.
    const std::string stats = kard.request("stats");
    EXPECT_TRUE(is_ok(stats)) << stats;
    ASSERT_TRUE(is_ok(kard.request("shutdown")));
    EXPECT_EQ(kard.wait_exit(), 0);
  }
}

}  // namespace
}  // namespace kar

// Property-based sweeps (parameterized gtest): invariants that must hold
// across randomized topologies, routes and failure choices.
#include <gtest/gtest.h>

#include <set>

#include "analysis/markov.hpp"
#include "analysis/walks.hpp"
#include "routing/controller.hpp"
#include "routing/failover_install.hpp"
#include "routing/protection.hpp"
#include "rns/crt.hpp"
#include "rns/modular.hpp"
#include "support/testsupport.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using dataplane::DeflectionTechnique;
using topo::NodeId;
using topo::Scenario;

// ---------------------------------------------------------------------------
// CRT invariants over randomized bases.
// ---------------------------------------------------------------------------

class CrtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrtProperty, EncodeDecodeRoundTripsAndStaysInRange) {
  auto rng = testsupport::make_rng(GetParam(), "CrtProperty.RoundTrip");
  // Random pairwise-coprime basis of size 2..12.
  const std::size_t size = 2 + rng.below(11);
  const auto moduli =
      rns::next_coprime_ids(size, 2 + rng.below(50), {});
  const rns::RnsBasis basis(moduli);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint64_t> residues;
    for (const auto m : moduli) residues.push_back(rng.below(m));
    const rns::BigUint encoded = basis.encode(residues);
    EXPECT_LT(encoded, basis.range());
    EXPECT_EQ(basis.decode(encoded), residues);
    EXPECT_LE(encoded.bit_length(), basis.bit_length() + 1);
  }
}

TEST_P(CrtProperty, PermutationInvariance) {
  auto rng = testsupport::make_rng(GetParam() ^ 0xABCD, "CrtProperty.Permutation");
  const std::size_t size = 3 + rng.below(6);
  auto moduli = rns::next_coprime_ids(size, 3, {});
  std::vector<std::uint64_t> residues;
  for (const auto m : moduli) residues.push_back(rng.below(m));
  const rns::BigUint reference = rns::RnsBasis(moduli).encode(residues);
  // Shuffle (modulus, residue) pairs together: route ID must not change.
  std::vector<std::size_t> perm(moduli.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<std::uint64_t> shuffled_moduli, shuffled_residues;
  for (const std::size_t i : perm) {
    shuffled_moduli.push_back(moduli[i]);
    shuffled_residues.push_back(residues[i]);
  }
  EXPECT_EQ(rns::RnsBasis(shuffled_moduli).encode(shuffled_residues), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrtProperty, ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Routing invariants over random connected topologies.
// ---------------------------------------------------------------------------

class RandomTopologyProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  RandomTopologyProperty()
      : scenario(topo::make_random_connected(10 + GetParam() % 8,
                                             6 + GetParam() % 5, GetParam())),
        controller(scenario.topology) {}

  Scenario scenario;
  routing::Controller controller;
};

TEST_P(RandomTopologyProperty, HealthyRouteWalksExactlyThePath) {
  const auto route = controller.route_between(
      scenario.topology.at("SRC"), scenario.topology.at("DST"));
  ASSERT_TRUE(route.has_value());
  for (const auto technique :
       {DeflectionTechnique::kNone, DeflectionTechnique::kHotPotato,
        DeflectionTechnique::kAnyValidPort, DeflectionTechnique::kNotInputPort}) {
    analysis::WalkConfig config;
    config.technique = technique;
    auto rng = testsupport::make_rng(GetParam(), "WalkProperty.Delivers");
    const auto walk = analysis::walk_packet(scenario.topology, controller,
                                            *route, config, rng);
    EXPECT_TRUE(walk.delivered);
    EXPECT_EQ(walk.hops, route->primary_count);
    EXPECT_EQ(walk.deflections, 0u);
  }
}

TEST_P(RandomTopologyProperty, EncodedResiduesMatchDecodedPorts) {
  const auto route = controller.route_between(scenario.topology.at("SRC"),
                                              scenario.topology.at("DST"));
  ASSERT_TRUE(route.has_value());
  for (const auto& assignment : route->assignments) {
    EXPECT_EQ(route->route_id.mod_u64(assignment.switch_id), assignment.port);
  }
  EXPECT_LE(route->route_id.bit_length(), route->bit_length + 1);
}

TEST_P(RandomTopologyProperty, AutoFullProtectionIsLoopFreeAndAbsorbing) {
  const auto path = routing::shortest_path(
      scenario.topology, scenario.topology.at("SRC"), scenario.topology.at("DST"));
  ASSERT_TRUE(path.has_value());
  std::vector<NodeId> core(path->nodes.begin() + 1, path->nodes.end() - 1);
  const auto plan = routing::plan_driven_deflections(
      scenario.topology, core, scenario.topology.at("DST"));
  const auto route = controller.encode_path(scenario.topology.at("SRC"), core,
                                            scenario.topology.at("DST"), plan);

  // Fail each primary-path link in turn; the Markov chain must stay
  // well-posed and its absorption masses must sum to 1.
  for (std::size_t i = 0; i + 1 <= core.size(); ++i) {
    scenario.topology.repair_all();
    const NodeId from = core[i];
    const NodeId to = (i + 1 < core.size()) ? core[i + 1]
                                            : scenario.topology.at("DST");
    const auto link = scenario.topology.link_between(from, to);
    ASSERT_TRUE(link.has_value());
    scenario.topology.set_link_up(*link, false);
    try {
      const auto result = analysis::analyze_deflection(
          scenario.topology, route, DeflectionTechnique::kNotInputPort);
      EXPECT_NEAR(result.delivery_probability + result.wrong_edge_probability +
                      result.drop_probability,
                  1.0, 1e-9);
      EXPECT_GE(result.expected_hops, 0.0);
    } catch (const std::domain_error&) {
      // Legitimate outcome: NIP only prevents two-node ping-pong; longer
      // deterministic cycles (deflection into an upstream path switch whose
      // only NIP candidate leads back) can circulate forever. The simulator
      // bounds these with its hop budget.
    }
  }
  scenario.topology.repair_all();
}

TEST_P(RandomTopologyProperty, NipNeverImmediatelyReversesThroughASwitch) {
  // NIP's defining guarantee (Algorithm 1): no A -> B -> A ping-pong via a
  // core switch B — even under failures and random deflections.
  const auto route = controller.route_between(scenario.topology.at("SRC"),
                                              scenario.topology.at("DST"));
  ASSERT_TRUE(route.has_value());
  // Fail a deterministic primary link to force deflections.
  const auto& a0 = route->assignments[0];
  const auto next = scenario.topology.neighbor(a0.node, a0.port);
  ASSERT_TRUE(next.has_value());
  if (scenario.topology.kind(*next) == topo::NodeKind::kCoreSwitch) {
    scenario.topology.set_link_up(
        *scenario.topology.link_between(a0.node, *next), false);
  }
  analysis::WalkConfig config;
  config.technique = DeflectionTechnique::kNotInputPort;
  config.record_trace = true;
  config.max_hops = 512;
  auto rng = testsupport::make_rng(GetParam() * 31 + 7, "WalkProperty.Trace");
  for (int iter = 0; iter < 40; ++iter) {
    const auto walk = analysis::walk_packet(scenario.topology, controller,
                                            *route, config, rng);
    for (std::size_t k = 0; k + 2 < walk.trace.size(); ++k) {
      if (walk.trace[k] == walk.trace[k + 2] &&
          scenario.topology.kind(walk.trace[k + 1]) ==
              topo::NodeKind::kCoreSwitch) {
        FAIL() << "NIP ping-pong at "
               << scenario.topology.name(walk.trace[k + 1]);
      }
    }
  }
  scenario.topology.repair_all();
}

TEST_P(RandomTopologyProperty, MarkovAgreesWithMonteCarlo) {
  const auto route = controller.route_between(scenario.topology.at("SRC"),
                                              scenario.topology.at("DST"));
  ASSERT_TRUE(route.has_value());
  // Fail the last primary link (switch -> DST side is never failed; pick
  // the first core-to-core link if it exists).
  if (route->primary_count >= 2) {
    const auto& a = route->assignments[0];
    const auto b = scenario.topology.neighbor(a.node, a.port);
    ASSERT_TRUE(b.has_value());
    scenario.topology.set_link_up(
        *scenario.topology.link_between(a.node, *b), false);
  }
  const auto exact = analysis::analyze_deflection(
      scenario.topology, *route, DeflectionTechnique::kAnyValidPort);
  analysis::WalkConfig config;
  config.technique = DeflectionTechnique::kAnyValidPort;
  config.wrong_edge_policy = dataplane::WrongEdgePolicy::kBounceBack;
  config.max_hops = 2000;
  // Monte-Carlo with bounce-back differs from the chain only at wrong
  // edges; compare on delivery+wrong mass via delivered-or-absorbed rate.
  const auto sampled = analysis::sample_walks(scenario.topology, controller,
                                              *route, config, 1500, GetParam());
  if (exact.wrong_edge_probability < 1e-9) {
    EXPECT_NEAR(sampled.delivery_rate, exact.delivery_probability, 0.03);
  } else {
    EXPECT_GE(sampled.delivery_rate + 1e-9, exact.delivery_probability - 0.03);
  }
  scenario.topology.repair_all();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Grid-topology sweeps: structured multi-path fabrics.
// ---------------------------------------------------------------------------

struct GridCase {
  std::size_t rows;
  std::size_t cols;
  bool wrap;
};

class GridProperty : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridProperty, FullProtectionAccountsForEverySingleFailureOnPath) {
  const auto& param = GetParam();
  Scenario s = topo::make_grid(param.rows, param.cols, param.wrap);
  const routing::Controller controller(s.topology);
  const auto path = routing::shortest_path(s.topology, s.topology.at("SRC"),
                                           s.topology.at("DST"));
  ASSERT_TRUE(path.has_value());
  std::vector<NodeId> core(path->nodes.begin() + 1, path->nodes.end() - 1);
  const auto plan =
      routing::plan_driven_deflections(s.topology, core, s.topology.at("DST"));
  const auto route = controller.encode_path(s.topology.at("SRC"), core,
                                            s.topology.at("DST"), plan);
  // Fail each core-to-core primary link in turn. With NIP + full
  // protection, either the break switch has no deflection candidate left
  // (degree-2 dead end: certain drop) or the packet keeps moving and the
  // absorption masses account for every outcome.
  for (std::size_t i = 0; i + 1 < core.size(); ++i) {
    s.topology.repair_all();
    s.topology.set_link_up(*s.topology.link_between(core[i], core[i + 1]),
                           false);
    // NIP candidates at the break switch on first arrival: available ports
    // minus the input (the previous path element, SRC for i == 0).
    const NodeId input_node = (i == 0) ? s.topology.at("SRC") : core[i - 1];
    std::size_t candidates = 0;
    for (const topo::PortIndex port : s.topology.available_ports(core[i])) {
      if (s.topology.neighbor(core[i], port) != input_node) ++candidates;
    }
    const auto result = analysis::analyze_deflection(
        s.topology, route, DeflectionTechnique::kNotInputPort);
    const std::string context = std::to_string(param.rows) + "x" +
                                std::to_string(param.cols) + " link " +
                                std::to_string(i);
    EXPECT_NEAR(result.delivery_probability + result.wrong_edge_probability +
                    result.drop_probability,
                1.0, 1e-9)
        << context;
    if (candidates == 0) {
      EXPECT_NEAR(result.drop_probability, 1.0, 1e-9) << context;
    } else {
      EXPECT_GT(result.delivery_probability, 0.0) << context;
      // First failure on the path: the deflection candidates are all
      // off-path protected switches driven downhill — certain delivery.
      if (i == 0 && !param.wrap) {
        EXPECT_NEAR(result.delivery_probability, 1.0, 1e-9) << context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridProperty,
                         ::testing::Values(GridCase{2, 3, false},
                                           GridCase{3, 3, false},
                                           GridCase{3, 4, false},
                                           GridCase{4, 4, false},
                                           GridCase{3, 3, true},
                                           GridCase{4, 5, true}));

// ---------------------------------------------------------------------------
// Fast-failover baseline invariants on random topologies.
// ---------------------------------------------------------------------------

class FailoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailoverProperty, DownhillOnlyFibsNeverLoop) {
  // With uphill backups disabled, following the FIB from any switch toward
  // any destination must terminate (strictly decreasing distance), on any
  // random topology and under any single failure.
  Scenario s = topo::make_random_connected(10 + GetParam() % 6,
                                           5 + GetParam() % 4, GetParam());
  routing::FailoverInstallOptions options;
  options.allow_uphill_backups = false;
  options.max_ports_per_entry = 4;
  const auto fib = routing::install_failover_fibs(s.topology, {}, options);
  const NodeId dst = s.topology.at("DST");
  auto rng = testsupport::make_rng(GetParam(), "FailoverProperty.RandomFailure");
  // Fail one random core link.
  std::vector<topo::LinkId> core_links;
  for (topo::LinkId l = 0; l < s.topology.link_count(); ++l) {
    const auto& link = s.topology.link(l);
    if (s.topology.kind(link.a.node) == topo::NodeKind::kCoreSwitch &&
        s.topology.kind(link.b.node) == topo::NodeKind::kCoreSwitch) {
      core_links.push_back(l);
    }
  }
  if (!core_links.empty()) {
    s.topology.set_link_up(core_links[rng.below(core_links.size())], false);
  }
  for (const NodeId start : s.topology.nodes_of_kind(topo::NodeKind::kCoreSwitch)) {
    NodeId cur = start;
    std::size_t steps = 0;
    const std::size_t limit = s.topology.node_count() + 2;
    while (steps++ < limit) {
      const auto port = fib.select(s.topology, cur, dst);
      if (!port) break;  // dead end: no loop either
      const auto next = s.topology.neighbor(cur, *port);
      ASSERT_TRUE(next.has_value());
      if (*next == dst) break;
      cur = *next;
    }
    EXPECT_LE(steps, limit) << "FIB loop from " << s.topology.name(start);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Eq. 9 (bit length) monotonicity across protection levels, all scenarios.
// ---------------------------------------------------------------------------

class ScenarioBitLength
    : public ::testing::TestWithParam<Scenario (*)(topo::LinkParams)> {};

TEST_P(ScenarioBitLength, ProtectionCostsBitsMonotonically) {
  const Scenario s = GetParam()(topo::LinkParams{});
  const routing::Controller controller(s.topology);
  const auto u = controller.encode_scenario(s.route,
                                            topo::ProtectionLevel::kUnprotected);
  const auto p =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kPartial);
  const auto f = controller.encode_scenario(s.route, topo::ProtectionLevel::kFull);
  EXPECT_LE(u.bit_length, p.bit_length);
  EXPECT_LE(p.bit_length, f.bit_length);
  EXPECT_LE(u.assignments.size(), p.assignments.size());
  EXPECT_LE(p.assignments.size(), f.assignments.size());
  // Route IDs always fit their own basis bound.
  EXPECT_LE(u.route_id.bit_length(), u.bit_length + 1);
  EXPECT_LE(f.route_id.bit_length(), f.bit_length + 1);
}

INSTANTIATE_TEST_SUITE_P(PaperScenarios, ScenarioBitLength,
                         ::testing::Values(&topo::make_fig1_network,
                                           &topo::make_experimental15,
                                           &topo::make_rnp28,
                                           &topo::make_fig8_redundant));

}  // namespace
}  // namespace kar

#include "topology/builders.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rns/crt.hpp"
#include "rns/modular.hpp"

namespace kar::topo {
namespace {

// -- Fig. 1 walkthrough network ---------------------------------------------

TEST(Fig1Network, PortNumberingMatchesWorkedExample) {
  const Scenario s = make_fig1_network();
  const Topology& t = s.topology;
  EXPECT_EQ(t.node_count(), 6u);  // "6-node network"
  // SW4 port 0 -> SW7 (R mod 4 = 0).
  EXPECT_EQ(t.neighbor(t.at("SW4"), 0), t.at("SW7"));
  // SW7 port 0 -> SW4, port 1 -> SW5, port 2 -> SW11 (paper: deflection at
  // SW7 chooses "port 0 (SW4) or port 1 (SW5)").
  EXPECT_EQ(t.neighbor(t.at("SW7"), 0), t.at("SW4"));
  EXPECT_EQ(t.neighbor(t.at("SW7"), 1), t.at("SW5"));
  EXPECT_EQ(t.neighbor(t.at("SW7"), 2), t.at("SW11"));
  // SW11 port 0 -> D (44 mod 11 = 0).
  EXPECT_EQ(t.neighbor(t.at("SW11"), 0), t.at("D"));
  // SW5 port 0 -> SW11 (660 mod 5 = 0).
  EXPECT_EQ(t.neighbor(t.at("SW5"), 0), t.at("SW11"));
}

TEST(Fig1Network, SwitchIdsArePairwiseCoprime) {
  const Scenario s = make_fig1_network();
  EXPECT_TRUE(rns::pairwise_coprime(s.topology.all_switch_ids()));
}

TEST(Fig1Network, RouteMetadata) {
  const Scenario s = make_fig1_network();
  EXPECT_EQ(s.route.src_edge, "S");
  EXPECT_EQ(s.route.dst_edge, "D");
  EXPECT_EQ(s.route.core_path,
            (std::vector<std::string>{"SW4", "SW7", "SW11"}));
  ASSERT_EQ(s.route.partial_protection.size(), 1u);
  EXPECT_EQ(s.route.partial_protection[0].switch_name, "SW5");
}

// -- 15-node experimental network -------------------------------------------

TEST(Experimental15, HasFifteenCoprimeSwitches) {
  const Scenario s = make_experimental15();
  const auto ids = s.topology.all_switch_ids();
  EXPECT_EQ(ids.size(), 15u);
  EXPECT_TRUE(rns::pairwise_coprime(ids));
}

TEST(Experimental15, PrimaryRouteIsConnected) {
  const Scenario s = make_experimental15();
  const Topology& t = s.topology;
  const auto& path = s.route.core_path;
  ASSERT_EQ(path.size(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(t.port_to(t.at(path[i]), t.at(path[i + 1])).has_value())
        << path[i] << " -> " << path[i + 1];
  }
  // Edges attach where the paper says.
  EXPECT_TRUE(t.port_to(t.at("AS1"), t.at("SW10")).has_value());
  EXPECT_TRUE(t.port_to(t.at("AS3"), t.at("SW29")).has_value());
}

TEST(Experimental15, Table1BitLengths) {
  // The reconstruction must reproduce Table 1 exactly: 15 / 28 / 43 bits
  // with 4 / 7 / 10 switches.
  const Scenario s = make_experimental15();
  const Topology& t = s.topology;
  const auto collect = [&](ProtectionLevel level) {
    std::vector<std::uint64_t> ids;
    for (const auto& name : s.route.core_path) ids.push_back(t.switch_id(t.at(name)));
    for (const auto& p : s.route.protection_at(level)) {
      ids.push_back(t.switch_id(t.at(p.switch_name)));
    }
    return ids;
  };
  const auto unprotected = collect(ProtectionLevel::kUnprotected);
  const auto partial = collect(ProtectionLevel::kPartial);
  const auto full = collect(ProtectionLevel::kFull);
  EXPECT_EQ(unprotected.size(), 4u);
  EXPECT_EQ(partial.size(), 7u);
  EXPECT_EQ(full.size(), 10u);
  EXPECT_EQ(rns::route_id_bit_length(unprotected), 15u);
  EXPECT_EQ(rns::route_id_bit_length(partial), 28u);
  EXPECT_EQ(rns::route_id_bit_length(full), 43u);
}

TEST(Experimental15, Sw10DeflectionFanout) {
  // Paper §3.1: when SW10-SW7 fails, 2/3 of deflected packets go to SW17 or
  // SW37 and 1/3 to the protected branch: SW10's non-failed core neighbors
  // must be exactly {SW11, SW17, SW37}.
  const Scenario s = make_experimental15();
  const Topology& t = s.topology;
  std::vector<std::string> core_neighbors;
  for (const auto& [port, node] : t.neighbors(t.at("SW10"))) {
    (void)port;
    if (t.kind(node) == NodeKind::kCoreSwitch && node != t.at("SW7")) {
      core_neighbors.push_back(t.name(node));
    }
  }
  std::sort(core_neighbors.begin(), core_neighbors.end());
  EXPECT_EQ(core_neighbors,
            (std::vector<std::string>{"SW11", "SW17", "SW37"}));
}

TEST(Experimental15, ProtectionAssignmentsAreAdjacent) {
  const Scenario s = make_experimental15();
  const Topology& t = s.topology;
  for (const auto& p : s.route.protection_at(ProtectionLevel::kFull)) {
    EXPECT_TRUE(t.port_to(t.at(p.switch_name), t.at(p.next_hop_name)).has_value())
        << p.switch_name << " -> " << p.next_hop_name;
  }
}

TEST(Experimental15, SwitchIdsExceedPortCounts) {
  // KAR requirement: every port index must be a valid residue.
  const Scenario s = make_experimental15();
  const Topology& t = s.topology;
  for (const NodeId n : t.nodes_of_kind(NodeKind::kCoreSwitch)) {
    EXPECT_GT(t.switch_id(n), t.port_count(n) - 1) << t.name(n);
  }
}

// -- RNP 28-node backbone ----------------------------------------------------

TEST(Rnp28, TwentyEightNodesFortyLinks) {
  const Scenario s = make_rnp28();
  EXPECT_EQ(s.topology.all_switch_ids().size(), 28u);
  // 40 core links + 2 edge attachments.
  EXPECT_EQ(s.topology.link_count(), 42u);
  EXPECT_TRUE(rns::pairwise_coprime(s.topology.all_switch_ids()));
}

TEST(Rnp28, PrimaryRouteBoaVistaToSaoPaulo) {
  const Scenario s = make_rnp28();
  EXPECT_EQ(s.route.core_path,
            (std::vector<std::string>{"SW7", "SW13", "SW41", "SW73"}));
  const Topology& t = s.topology;
  for (std::size_t i = 0; i + 1 < s.route.core_path.size(); ++i) {
    EXPECT_TRUE(t.port_to(t.at(s.route.core_path[i]),
                          t.at(s.route.core_path[i + 1]))
                    .has_value());
  }
}

TEST(Rnp28, TextualDeflectionConstraints) {
  const Scenario s = make_rnp28();
  const Topology& t = s.topology;
  // SW7's only core alternative to SW13 is SW11 (§3.2).
  std::vector<std::string> sw7;
  for (const auto& [port, node] : t.neighbors(t.at("SW7"))) {
    (void)port;
    if (t.kind(node) == NodeKind::kCoreSwitch) sw7.push_back(t.name(node));
  }
  std::sort(sw7.begin(), sw7.end());
  EXPECT_EQ(sw7, (std::vector<std::string>{"SW11", "SW13"}));
  // SW11's only neighbors are SW7 and SW17.
  EXPECT_EQ(t.port_count(t.at("SW11")), 2u);
  EXPECT_TRUE(t.port_to(t.at("SW11"), t.at("SW17")).has_value());
  // SW13 deflection candidates (minus input SW7, minus failed SW41):
  // {SW29, SW17, SW47, SW37, SW71} — five, each 1/5.
  std::vector<std::string> sw13;
  for (const auto& [port, node] : t.neighbors(t.at("SW13"))) {
    (void)port;
    const std::string& name = t.name(node);
    if (name != "SW7" && name != "SW41") sw13.push_back(name);
  }
  std::sort(sw13.begin(), sw13.end());
  EXPECT_EQ(sw13, (std::vector<std::string>{"SW17", "SW29", "SW37", "SW47",
                                            "SW71"}));
  // SW41 deflects to {SW17, SW61} when SW41-SW73 fails (input SW13).
  std::vector<std::string> sw41;
  for (const auto& [port, node] : t.neighbors(t.at("SW41"))) {
    (void)port;
    const std::string& name = t.name(node);
    if (name != "SW13" && name != "SW73") sw41.push_back(name);
  }
  std::sort(sw41.begin(), sw41.end());
  EXPECT_EQ(sw41, (std::vector<std::string>{"SW17", "SW61"}));
}

TEST(Rnp28, ProtectionLinksExist) {
  const Scenario s = make_rnp28();
  const Topology& t = s.topology;
  // Paper: links SW17-SW71, SW61-SW67, SW67-SW71, SW71-SW73 as protection.
  for (const auto& [a, b] : {std::pair{"SW17", "SW71"}, {"SW61", "SW67"},
                             {"SW67", "SW71"}, {"SW71", "SW73"}}) {
    EXPECT_TRUE(t.link_between(t.at(a), t.at(b)).has_value()) << a << "-" << b;
  }
  ASSERT_EQ(s.route.partial_protection.size(), 4u);
}

// -- Fig. 8 redundant-path scenario -------------------------------------------

TEST(Fig8, RedundantPairConstraints) {
  const Scenario s = make_fig8_redundant();
  const Topology& t = s.topology;
  EXPECT_EQ(s.route.core_path,
            (std::vector<std::string>{"SW7", "SW13", "SW41", "SW73", "SW107",
                                      "SW113"}));
  // SW73's candidates on SW73-SW107 failure (input SW41) are {SW109, SW71}
  // plus its edge uplink; the text's 1/2-1/2 is over core candidates.
  std::vector<std::string> sw73;
  for (const auto& [port, node] : t.neighbors(t.at("SW73"))) {
    (void)port;
    const std::string& name = t.name(node);
    if (t.kind(node) == NodeKind::kCoreSwitch && name != "SW41" &&
        name != "SW107") {
      sw73.push_back(name);
    }
  }
  std::sort(sw73.begin(), sw73.end());
  EXPECT_EQ(sw73, (std::vector<std::string>{"SW109", "SW71"}));
  // SW109 connects exactly SW73 and SW113 ("If SW109 is chosen, the packet
  // will arrive at the destination").
  EXPECT_EQ(t.port_count(t.at("SW109")), 2u);
  EXPECT_TRUE(t.port_to(t.at("SW109"), t.at("SW113")).has_value());
}

// -- synthetic builders --------------------------------------------------------

TEST(SyntheticBuilders, LineTopology) {
  const Scenario s = make_line(5);
  EXPECT_EQ(s.topology.all_switch_ids().size(), 5u);
  EXPECT_TRUE(rns::pairwise_coprime(s.topology.all_switch_ids()));
  EXPECT_EQ(s.route.core_path.size(), 5u);
  EXPECT_EQ(s.topology.link_count(), 6u);  // 4 internal + 2 edge uplinks
}

TEST(SyntheticBuilders, GridTopology) {
  const Scenario s = make_grid(3, 4);
  EXPECT_EQ(s.topology.all_switch_ids().size(), 12u);
  EXPECT_TRUE(rns::pairwise_coprime(s.topology.all_switch_ids()));
  // Core path spans corner to corner: at least rows+cols-2 hops.
  EXPECT_GE(s.route.core_path.size(), 5u);
}

TEST(SyntheticBuilders, RandomConnectedIsDeterministicInSeed) {
  const Scenario a = make_random_connected(12, 6, 42);
  const Scenario b = make_random_connected(12, 6, 42);
  const Scenario c = make_random_connected(12, 6, 43);
  EXPECT_EQ(a.topology.link_count(), b.topology.link_count());
  EXPECT_EQ(a.route.core_path, b.route.core_path);
  // Different seed very likely differs somewhere; check it at least builds.
  EXPECT_TRUE(rns::pairwise_coprime(c.topology.all_switch_ids()));
}

TEST(AttachHostEdges, EveryEligibleSwitchGainsAHost) {
  Scenario s = make_rnp28();
  Topology& t = s.topology;
  const std::size_t links_before = t.link_count();
  const std::vector<NodeId> hosts = attach_host_edges(t);
  EXPECT_EQ(t.link_count(), links_before + hosts.size());
  for (const NodeId host : hosts) {
    EXPECT_EQ(t.kind(host), NodeKind::kEdgeNode);
    // Each host hangs off exactly one switch and is named after it.
    const auto& adjacent = t.neighbors(host);
    ASSERT_EQ(adjacent.size(), 1u);
    EXPECT_EQ(t.name(host), "H-" + t.name(adjacent.front().second));
  }
  // The KAR invariant survives: a host is only attached where the switch
  // still has a spare residue (port index < switch id).
  for (const NodeId n : t.nodes_of_kind(NodeKind::kCoreSwitch)) {
    EXPECT_GT(t.switch_id(n), t.port_count(n) - 1) << t.name(n);
  }
  // Every core switch now has either an edge attachment or a saturated
  // port space.
  for (const NodeId n : t.nodes_of_kind(NodeKind::kCoreSwitch)) {
    bool has_edge = false;
    for (const auto& [port, node] : t.neighbors(n)) {
      (void)port;
      has_edge = has_edge || t.kind(node) == NodeKind::kEdgeNode;
    }
    EXPECT_TRUE(has_edge || t.port_count(n) >= t.switch_id(n)) << t.name(n);
  }
}

TEST(SyntheticBuilders, RejectDegenerateSizes) {
  EXPECT_THROW(make_line(0), std::invalid_argument);
  EXPECT_THROW(make_grid(0, 3), std::invalid_argument);
  EXPECT_THROW(make_random_connected(1, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace kar::topo

#include "rns/crt.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "rns/modular.hpp"

namespace kar::rns {
namespace {

TEST(RnsBasis, PaperUnprotectedExample) {
  // §2.2: switches {4, 7, 11}, ports {0, 2, 0} -> R = 44, M = 308.
  const RnsBasis basis({4, 7, 11});
  EXPECT_EQ(basis.range().to_u64(), 308u);
  const std::vector<std::uint64_t> ports = {0, 2, 0};
  EXPECT_EQ(basis.encode(ports).to_u64(), 44u);
}

TEST(RnsBasis, PaperProtectedExample) {
  // §2.2: switches {4, 7, 11, 5}, ports {0, 2, 0, 0} -> R = 660, M = 1540.
  const RnsBasis basis({4, 7, 11, 5});
  EXPECT_EQ(basis.range().to_u64(), 1540u);
  const std::vector<std::uint64_t> ports = {0, 2, 0, 0};
  EXPECT_EQ(basis.encode(ports).to_u64(), 660u);
}

TEST(RnsBasis, DecodeRecoversResidues) {
  const RnsBasis basis({4, 7, 11, 5});
  EXPECT_EQ(basis.decode(BigUint(660)),
            (std::vector<std::uint64_t>{0, 2, 0, 0}));
  EXPECT_EQ(basis.decode(BigUint(44)), (std::vector<std::uint64_t>{0, 2, 0, 4}));
}

TEST(RnsBasis, EncodeDecodeRoundTripExhaustiveSmallBasis) {
  const RnsBasis basis({3, 5, 7});
  for (std::uint64_t r = 0; r < 105; ++r) {
    const auto residues = basis.decode(BigUint(r));
    EXPECT_EQ(basis.encode(residues).to_u64(), r);
  }
}

TEST(RnsBasis, SwitchOrderIsIrrelevant) {
  // §2.2: "the switch order is irrelevant to derive the route ID".
  const RnsBasis a({4, 7, 11, 5});
  const RnsBasis b({5, 11, 7, 4});
  const BigUint ra = a.encode(std::vector<std::uint64_t>{0, 2, 0, 0});
  const BigUint rb = b.encode(std::vector<std::uint64_t>{0, 0, 2, 0});
  EXPECT_EQ(ra, rb);
}

TEST(RnsBasis, RejectsNonCoprimeModuli) {
  EXPECT_THROW(RnsBasis({4, 6}), std::invalid_argument);
  EXPECT_THROW(RnsBasis({10, 15, 7}), std::invalid_argument);
}

TEST(RnsBasis, RejectsDegenerateModuli) {
  EXPECT_THROW(RnsBasis({}), std::invalid_argument);
  EXPECT_THROW(RnsBasis({1, 5}), std::invalid_argument);
  EXPECT_THROW(RnsBasis({0}), std::invalid_argument);
}

TEST(RnsBasis, RejectsOutOfRangeResidues) {
  const RnsBasis basis({4, 7});
  EXPECT_THROW(basis.encode(std::vector<std::uint64_t>{4, 0}),
               std::invalid_argument);
  EXPECT_THROW(basis.encode(std::vector<std::uint64_t>{0}), std::invalid_argument);
}

TEST(RnsBasis, LargeBasisBeyond64Bits) {
  // Ten primes around 100: M ~ 2^66 — must encode exactly via BigUint.
  const std::vector<std::uint64_t> moduli = {71, 73, 79, 83, 89,
                                             97, 101, 103, 107, 109};
  const RnsBasis basis(moduli);
  EXPECT_GT(basis.range().bit_length(), 64u);
  const std::vector<std::uint64_t> residues = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const BigUint r = basis.encode(residues);
  EXPECT_EQ(basis.decode(r), residues);
  EXPECT_LT(r, basis.range());
}

TEST(CrtEncode, FreeFunctionMatchesBasis) {
  const std::vector<Residue> congruences = {{4, 0}, {7, 2}, {11, 0}};
  EXPECT_EQ(crt_encode(congruences).to_u64(), 44u);
}

TEST(CeilLog2, EdgeCases) {
  EXPECT_EQ(ceil_log2(BigUint(0)), 0u);
  EXPECT_EQ(ceil_log2(BigUint(1)), 0u);
  EXPECT_EQ(ceil_log2(BigUint(2)), 1u);
  EXPECT_EQ(ceil_log2(BigUint(3)), 2u);
  EXPECT_EQ(ceil_log2(BigUint(4)), 2u);
  EXPECT_EQ(ceil_log2(BigUint(5)), 3u);
  EXPECT_EQ(ceil_log2(BigUint(1) << 64), 64u);
  EXPECT_EQ(ceil_log2((BigUint(1) << 64) + BigUint(1)), 65u);
}

TEST(RouteIdBitLength, PaperTable1Values) {
  // Table 1 for the 15-node network: 15 / 28 / 43 bits.
  const std::vector<std::uint64_t> unprotected = {10, 7, 13, 29};
  EXPECT_EQ(route_id_bit_length(unprotected), 15u);
  const std::vector<std::uint64_t> partial = {10, 7, 13, 29, 11, 19, 31};
  EXPECT_EQ(route_id_bit_length(partial), 28u);
  const std::vector<std::uint64_t> full = {10, 7, 13, 29, 11, 19, 31, 17, 37, 43};
  EXPECT_EQ(route_id_bit_length(full), 43u);
}

TEST(RouteIdBitLength, GrowsMonotonicallyWithSwitches) {
  std::vector<std::uint64_t> ids;
  std::size_t prev = 0;
  for (const std::uint64_t id : {5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL}) {
    ids.push_back(id);
    const std::size_t bits = route_id_bit_length(ids);
    EXPECT_GE(bits, prev);
    prev = bits;
  }
}

TEST(RnsBasis, EncodeMatchesEq4Manually) {
  // Cross-check the full Eq. 4 computation on the paper's protected basis.
  const std::vector<std::uint64_t> s = {4, 7, 11, 5};
  const std::vector<std::uint64_t> p = {0, 2, 0, 0};
  BigUint m(1);
  for (const auto si : s) m *= BigUint(si);
  BigUint sum;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const BigUint mi = m / BigUint(s[i]);
    const auto li = mod_inverse(mi.mod_u64(s[i]), s[i]);
    ASSERT_TRUE(li.has_value());
    sum += mi * BigUint(*li) * BigUint(p[i]);
  }
  EXPECT_EQ((sum % m).to_u64(), 660u);
}

TEST(RnsBasis, RandomizedRoundTrip) {
  common::Rng rng(12345);
  const std::vector<std::uint64_t> moduli = {7, 11, 13, 17, 19, 23, 29, 31};
  const RnsBasis basis(moduli);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint64_t> residues;
    residues.reserve(moduli.size());
    for (const auto m : moduli) residues.push_back(rng.below(m));
    const BigUint encoded = basis.encode(residues);
    EXPECT_LT(encoded, basis.range());
    EXPECT_EQ(basis.decode(encoded), residues);
  }
}

}  // namespace
}  // namespace kar::rns

// OpenFlow fast-failover baseline: FIB structure, controller installation,
// and the simulator's table-driven data-plane mode.
#include <gtest/gtest.h>

#include "routing/controller.hpp"
#include "routing/failover_install.hpp"
#include "sim/network.hpp"
#include "topology/builders.hpp"

namespace kar {
namespace {

using routing::FailoverFib;
using routing::FailoverInstallOptions;
using topo::NodeId;
using topo::Scenario;

TEST(FailoverFib, SelectsFirstAvailablePortInPriorityOrder) {
  Scenario s = topo::make_fig1_network();
  const NodeId sw7 = s.topology.at("SW7");
  const NodeId d = s.topology.at("D");
  FailoverFib fib;
  // SW7: primary port 2 (to SW11), backup port 1 (to SW5).
  fib.install(sw7, d, {2, 1});
  auto selection = fib.select_with_status(s.topology, sw7, d);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->port, 2u);
  EXPECT_FALSE(selection->failed_over);
  // Fail the primary: the group fails over to port 1.
  s.topology.fail_link("SW7", "SW11");
  selection = fib.select_with_status(s.topology, sw7, d);
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(selection->port, 1u);
  EXPECT_TRUE(selection->failed_over);
  // Fail the backup too: nothing left.
  s.topology.fail_link("SW7", "SW5");
  EXPECT_FALSE(fib.select(s.topology, sw7, d).has_value());
}

TEST(FailoverFib, MissingEntryAndEmptyInstall) {
  Scenario s = topo::make_fig1_network();
  FailoverFib fib;
  EXPECT_FALSE(
      fib.select(s.topology, s.topology.at("SW7"), s.topology.at("D")).has_value());
  EXPECT_THROW(fib.install(s.topology.at("SW7"), s.topology.at("D"), {}),
               std::invalid_argument);
}

TEST(FailoverFib, EntryAccountingAndReinstall) {
  Scenario s = topo::make_fig1_network();
  const NodeId sw7 = s.topology.at("SW7");
  const NodeId d = s.topology.at("D");
  FailoverFib fib;
  fib.install(sw7, d, {2, 1});
  EXPECT_EQ(fib.total_entries(), 2u);
  EXPECT_EQ(fib.entries_at(sw7), 2u);
  fib.install(sw7, d, {2});  // reinstall replaces, not accumulates
  EXPECT_EQ(fib.total_entries(), 1u);
  EXPECT_EQ(fib.entries_at(s.topology.at("SW4")), 0u);
}

TEST(FailoverInstall, PrimaryIsShortestPathNextHop) {
  const Scenario s = topo::make_experimental15();
  const auto fib = routing::install_failover_fibs(s.topology);
  // SW10's primary toward AS3 must be the port to SW7 (shortest path).
  const auto selection =
      fib.select(s.topology, s.topology.at("SW10"), s.topology.at("AS3"));
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(s.topology.neighbor(s.topology.at("SW10"), *selection),
            s.topology.at("SW7"));
}

TEST(FailoverInstall, EveryReachableSwitchGetsAnEntryPerDestination) {
  const Scenario s = topo::make_rnp28();
  const auto fib = routing::install_failover_fibs(s.topology);
  const auto edges = s.topology.nodes_of_kind(topo::NodeKind::kEdgeNode);
  const auto switches = s.topology.nodes_of_kind(topo::NodeKind::kCoreSwitch);
  for (const NodeId sw : switches) {
    EXPECT_GT(fib.entries_at(sw), 0u) << s.topology.name(sw);
    for (const NodeId dst : edges) {
      EXPECT_TRUE(fib.select(s.topology, sw, dst).has_value())
          << s.topology.name(sw) << " -> " << s.topology.name(dst);
    }
  }
  // State grows with both switches and destinations — the Table 2 point.
  EXPECT_GE(fib.total_entries(), switches.size() * edges.size());
}

TEST(FailoverInstall, DownhillOnlyModeInstallsLoopFreeBackups) {
  const Scenario s = topo::make_rnp28();
  FailoverInstallOptions options;
  options.allow_uphill_backups = false;
  options.max_ports_per_entry = 4;
  const auto fib = routing::install_failover_fibs(s.topology, {}, options);
  const auto dist = routing::distances_to(s.topology, s.topology.at("AS-SP"));
  for (const NodeId sw : s.topology.nodes_of_kind(topo::NodeKind::kCoreSwitch)) {
    const auto port = fib.select(s.topology, sw, s.topology.at("AS-SP"));
    if (!port) continue;
    const auto next = s.topology.neighbor(sw, *port);
    ASSERT_TRUE(next.has_value());
    EXPECT_LT(dist[*next], dist[sw]) << s.topology.name(sw);
  }
}

TEST(FailoverSim, TableModeForwardsAndFailsOver) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  const auto fib = routing::install_failover_fibs(s.topology);
  sim::NetworkConfig config;
  config.mode = sim::DataPlaneMode::kFailoverFib;
  config.failover_fib = &fib;
  sim::Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kUnprotected);
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;
  net.set_delivery_handler(route.dst_edge, [&](const dataplane::Packet& p) {
    ++delivered;
    hops = p.hop_count;
  });
  const auto send = [&] {
    dataplane::Packet p;
    p.transport = dataplane::Datagram{0};
    net.edge_at(route.src_edge).stamp(p, route, 100);
    net.inject(route.src_edge, std::move(p));
    net.events().run_all();
  };
  send();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(hops, 3u);  // SW4, SW7, SW11
  // Fail SW7-SW11: the group at SW7 fails over via SW5.
  net.fail_link_now(*s.topology.link_between(s.topology.at("SW7"),
                                             s.topology.at("SW11")));
  send();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(hops, 4u);  // SW4, SW7, SW5, SW11
  EXPECT_GT(net.counters().deflections, 0u);  // failed-over hops count
}

TEST(FailoverSim, MissingFibDropsCleanly) {
  Scenario s = topo::make_fig1_network();
  const routing::Controller controller(s.topology);
  sim::NetworkConfig config;
  config.mode = sim::DataPlaneMode::kFailoverFib;
  config.failover_fib = nullptr;  // nothing installed
  sim::Network net(s.topology, controller, config);
  const auto route =
      controller.encode_scenario(s.route, topo::ProtectionLevel::kUnprotected);
  dataplane::Packet p;
  p.transport = dataplane::Datagram{0};
  net.edge_at(route.src_edge).stamp(p, route, 100);
  net.inject(route.src_edge, std::move(p));
  net.events().run_all();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().drop_no_viable_port, 1u);
}

}  // namespace
}  // namespace kar

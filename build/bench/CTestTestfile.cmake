# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_bitlength")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/table2_comparison")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_state "/root/repo/build/bench/state_comparison")
set_tests_properties(bench_smoke_state PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_multi_failure "/root/repo/build/bench/multi_failure" "--sets=3" "--walks=50")
set_tests_properties(bench_smoke_multi_failure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/fig5_protection_tradeoff" "--runs=1" "--seconds=2")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7 "/root/repo/build/bench/fig7_rnp_backbone" "--runs=1" "--seconds=2")
set_tests_properties(bench_smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/fig8_redundant_path" "--duration=6" "--runs=1")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4 "/root/repo/build/bench/fig4_throughput_timeline" "--duration=9")
set_tests_properties(bench_smoke_fig4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_deflection "/root/repo/build/bench/deflection_analysis" "--walks=500")
set_tests_properties(bench_smoke_deflection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_latency "/root/repo/build/bench/latency_jitter" "--seconds=2")
set_tests_properties(bench_smoke_latency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_reaction "/root/repo/build/bench/controller_reaction" "--seconds=2")
set_tests_properties(bench_smoke_reaction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_detection "/root/repo/build/bench/detection_delay" "--seconds=2")
set_tests_properties(bench_smoke_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_failover "/root/repo/build/bench/failover_baseline" "--probes=100")
set_tests_properties(bench_smoke_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")

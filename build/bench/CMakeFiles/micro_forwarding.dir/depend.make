# Empty dependencies file for micro_forwarding.
# This may be replaced when dependencies are built.

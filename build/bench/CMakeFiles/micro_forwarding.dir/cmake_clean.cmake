file(REMOVE_RECURSE
  "CMakeFiles/micro_forwarding.dir/micro_forwarding.cpp.o"
  "CMakeFiles/micro_forwarding.dir/micro_forwarding.cpp.o.d"
  "micro_forwarding"
  "micro_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/state_comparison.dir/state_comparison.cpp.o"
  "CMakeFiles/state_comparison.dir/state_comparison.cpp.o.d"
  "state_comparison"
  "state_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for state_comparison.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for failover_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/failover_baseline.dir/failover_baseline.cpp.o"
  "CMakeFiles/failover_baseline.dir/failover_baseline.cpp.o.d"
  "failover_baseline"
  "failover_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/latency_jitter.dir/latency_jitter.cpp.o"
  "CMakeFiles/latency_jitter.dir/latency_jitter.cpp.o.d"
  "latency_jitter"
  "latency_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for latency_jitter.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig4_throughput_timeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_timeline.dir/fig4_throughput_timeline.cpp.o"
  "CMakeFiles/fig4_throughput_timeline.dir/fig4_throughput_timeline.cpp.o.d"
  "fig4_throughput_timeline"
  "fig4_throughput_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

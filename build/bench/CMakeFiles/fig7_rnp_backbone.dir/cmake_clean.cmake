file(REMOVE_RECURSE
  "CMakeFiles/fig7_rnp_backbone.dir/fig7_rnp_backbone.cpp.o"
  "CMakeFiles/fig7_rnp_backbone.dir/fig7_rnp_backbone.cpp.o.d"
  "fig7_rnp_backbone"
  "fig7_rnp_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rnp_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

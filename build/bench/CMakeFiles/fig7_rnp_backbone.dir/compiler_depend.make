# Empty compiler generated dependencies file for fig7_rnp_backbone.
# This may be replaced when dependencies are built.

# Empty dependencies file for controller_reaction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/controller_reaction.dir/controller_reaction.cpp.o"
  "CMakeFiles/controller_reaction.dir/controller_reaction.cpp.o.d"
  "controller_reaction"
  "controller_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/detection_delay.dir/detection_delay.cpp.o"
  "CMakeFiles/detection_delay.dir/detection_delay.cpp.o.d"
  "detection_delay"
  "detection_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for detection_delay.
# This may be replaced when dependencies are built.

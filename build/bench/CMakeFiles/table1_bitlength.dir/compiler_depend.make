# Empty compiler generated dependencies file for table1_bitlength.
# This may be replaced when dependencies are built.

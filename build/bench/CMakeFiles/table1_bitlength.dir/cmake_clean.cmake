file(REMOVE_RECURSE
  "CMakeFiles/table1_bitlength.dir/table1_bitlength.cpp.o"
  "CMakeFiles/table1_bitlength.dir/table1_bitlength.cpp.o.d"
  "table1_bitlength"
  "table1_bitlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bitlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

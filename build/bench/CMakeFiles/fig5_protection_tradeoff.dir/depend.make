# Empty dependencies file for fig5_protection_tradeoff.
# This may be replaced when dependencies are built.

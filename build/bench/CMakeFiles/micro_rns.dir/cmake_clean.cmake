file(REMOVE_RECURSE
  "CMakeFiles/micro_rns.dir/micro_rns.cpp.o"
  "CMakeFiles/micro_rns.dir/micro_rns.cpp.o.d"
  "micro_rns"
  "micro_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_rns.
# This may be replaced when dependencies are built.

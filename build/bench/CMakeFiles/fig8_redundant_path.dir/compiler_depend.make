# Empty compiler generated dependencies file for fig8_redundant_path.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_redundant_path.dir/fig8_redundant_path.cpp.o"
  "CMakeFiles/fig8_redundant_path.dir/fig8_redundant_path.cpp.o.d"
  "fig8_redundant_path"
  "fig8_redundant_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_redundant_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deflection_analysis.
# This may be replaced when dependencies are built.

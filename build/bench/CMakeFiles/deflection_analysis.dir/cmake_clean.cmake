file(REMOVE_RECURSE
  "CMakeFiles/deflection_analysis.dir/deflection_analysis.cpp.o"
  "CMakeFiles/deflection_analysis.dir/deflection_analysis.cpp.o.d"
  "deflection_analysis"
  "deflection_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflection_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

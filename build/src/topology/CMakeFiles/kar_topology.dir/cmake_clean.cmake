file(REMOVE_RECURSE
  "CMakeFiles/kar_topology.dir/builders.cpp.o"
  "CMakeFiles/kar_topology.dir/builders.cpp.o.d"
  "CMakeFiles/kar_topology.dir/graph.cpp.o"
  "CMakeFiles/kar_topology.dir/graph.cpp.o.d"
  "CMakeFiles/kar_topology.dir/io.cpp.o"
  "CMakeFiles/kar_topology.dir/io.cpp.o.d"
  "CMakeFiles/kar_topology.dir/scenario.cpp.o"
  "CMakeFiles/kar_topology.dir/scenario.cpp.o.d"
  "libkar_topology.a"
  "libkar_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libkar_topology.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/builders.cpp" "src/topology/CMakeFiles/kar_topology.dir/builders.cpp.o" "gcc" "src/topology/CMakeFiles/kar_topology.dir/builders.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/kar_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/kar_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/io.cpp" "src/topology/CMakeFiles/kar_topology.dir/io.cpp.o" "gcc" "src/topology/CMakeFiles/kar_topology.dir/io.cpp.o.d"
  "/root/repo/src/topology/scenario.cpp" "src/topology/CMakeFiles/kar_topology.dir/scenario.cpp.o" "gcc" "src/topology/CMakeFiles/kar_topology.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for kar_topology.
# This may be replaced when dependencies are built.

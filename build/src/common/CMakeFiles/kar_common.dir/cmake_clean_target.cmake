file(REMOVE_RECURSE
  "libkar_common.a"
)

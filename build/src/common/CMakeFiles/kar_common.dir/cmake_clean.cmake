file(REMOVE_RECURSE
  "CMakeFiles/kar_common.dir/strings.cpp.o"
  "CMakeFiles/kar_common.dir/strings.cpp.o.d"
  "libkar_common.a"
  "libkar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

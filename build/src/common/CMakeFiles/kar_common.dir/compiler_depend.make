# Empty compiler generated dependencies file for kar_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kar_core.dir/fabric.cpp.o"
  "CMakeFiles/kar_core.dir/fabric.cpp.o.d"
  "libkar_core.a"
  "libkar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

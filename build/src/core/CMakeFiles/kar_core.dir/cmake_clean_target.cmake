file(REMOVE_RECURSE
  "libkar_core.a"
)

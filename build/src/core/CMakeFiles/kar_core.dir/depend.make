# Empty dependencies file for kar_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kar_dataplane.dir/edge.cpp.o"
  "CMakeFiles/kar_dataplane.dir/edge.cpp.o.d"
  "CMakeFiles/kar_dataplane.dir/switch.cpp.o"
  "CMakeFiles/kar_dataplane.dir/switch.cpp.o.d"
  "libkar_dataplane.a"
  "libkar_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

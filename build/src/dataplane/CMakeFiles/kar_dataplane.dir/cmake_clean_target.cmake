file(REMOVE_RECURSE
  "libkar_dataplane.a"
)

# Empty compiler generated dependencies file for kar_dataplane.
# This may be replaced when dependencies are built.

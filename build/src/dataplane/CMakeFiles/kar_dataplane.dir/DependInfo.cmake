
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/edge.cpp" "src/dataplane/CMakeFiles/kar_dataplane.dir/edge.cpp.o" "gcc" "src/dataplane/CMakeFiles/kar_dataplane.dir/edge.cpp.o.d"
  "/root/repo/src/dataplane/switch.cpp" "src/dataplane/CMakeFiles/kar_dataplane.dir/switch.cpp.o" "gcc" "src/dataplane/CMakeFiles/kar_dataplane.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/kar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/kar_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libkar_routing.a"
)

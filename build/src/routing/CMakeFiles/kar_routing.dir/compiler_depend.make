# Empty compiler generated dependencies file for kar_routing.
# This may be replaced when dependencies are built.

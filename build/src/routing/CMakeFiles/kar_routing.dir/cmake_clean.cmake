file(REMOVE_RECURSE
  "CMakeFiles/kar_routing.dir/controller.cpp.o"
  "CMakeFiles/kar_routing.dir/controller.cpp.o.d"
  "CMakeFiles/kar_routing.dir/encodings.cpp.o"
  "CMakeFiles/kar_routing.dir/encodings.cpp.o.d"
  "CMakeFiles/kar_routing.dir/failover_fib.cpp.o"
  "CMakeFiles/kar_routing.dir/failover_fib.cpp.o.d"
  "CMakeFiles/kar_routing.dir/failover_install.cpp.o"
  "CMakeFiles/kar_routing.dir/failover_install.cpp.o.d"
  "CMakeFiles/kar_routing.dir/id_assign.cpp.o"
  "CMakeFiles/kar_routing.dir/id_assign.cpp.o.d"
  "CMakeFiles/kar_routing.dir/paths.cpp.o"
  "CMakeFiles/kar_routing.dir/paths.cpp.o.d"
  "CMakeFiles/kar_routing.dir/protection.cpp.o"
  "CMakeFiles/kar_routing.dir/protection.cpp.o.d"
  "libkar_routing.a"
  "libkar_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

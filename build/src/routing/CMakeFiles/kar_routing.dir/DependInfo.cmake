
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/controller.cpp" "src/routing/CMakeFiles/kar_routing.dir/controller.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/controller.cpp.o.d"
  "/root/repo/src/routing/encodings.cpp" "src/routing/CMakeFiles/kar_routing.dir/encodings.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/encodings.cpp.o.d"
  "/root/repo/src/routing/failover_fib.cpp" "src/routing/CMakeFiles/kar_routing.dir/failover_fib.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/failover_fib.cpp.o.d"
  "/root/repo/src/routing/failover_install.cpp" "src/routing/CMakeFiles/kar_routing.dir/failover_install.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/failover_install.cpp.o.d"
  "/root/repo/src/routing/id_assign.cpp" "src/routing/CMakeFiles/kar_routing.dir/id_assign.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/id_assign.cpp.o.d"
  "/root/repo/src/routing/paths.cpp" "src/routing/CMakeFiles/kar_routing.dir/paths.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/paths.cpp.o.d"
  "/root/repo/src/routing/protection.cpp" "src/routing/CMakeFiles/kar_routing.dir/protection.cpp.o" "gcc" "src/routing/CMakeFiles/kar_routing.dir/protection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/kar_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for kar_transport.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkar_transport.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kar_transport.dir/flows.cpp.o"
  "CMakeFiles/kar_transport.dir/flows.cpp.o.d"
  "CMakeFiles/kar_transport.dir/tcp.cpp.o"
  "CMakeFiles/kar_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/kar_transport.dir/udp.cpp.o"
  "CMakeFiles/kar_transport.dir/udp.cpp.o.d"
  "libkar_transport.a"
  "libkar_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kar_rns.dir/biguint.cpp.o"
  "CMakeFiles/kar_rns.dir/biguint.cpp.o.d"
  "CMakeFiles/kar_rns.dir/crt.cpp.o"
  "CMakeFiles/kar_rns.dir/crt.cpp.o.d"
  "CMakeFiles/kar_rns.dir/modular.cpp.o"
  "CMakeFiles/kar_rns.dir/modular.cpp.o.d"
  "libkar_rns.a"
  "libkar_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kar_rns.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rns/biguint.cpp" "src/rns/CMakeFiles/kar_rns.dir/biguint.cpp.o" "gcc" "src/rns/CMakeFiles/kar_rns.dir/biguint.cpp.o.d"
  "/root/repo/src/rns/crt.cpp" "src/rns/CMakeFiles/kar_rns.dir/crt.cpp.o" "gcc" "src/rns/CMakeFiles/kar_rns.dir/crt.cpp.o.d"
  "/root/repo/src/rns/modular.cpp" "src/rns/CMakeFiles/kar_rns.dir/modular.cpp.o" "gcc" "src/rns/CMakeFiles/kar_rns.dir/modular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

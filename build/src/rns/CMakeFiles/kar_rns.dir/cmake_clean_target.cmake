file(REMOVE_RECURSE
  "libkar_rns.a"
)

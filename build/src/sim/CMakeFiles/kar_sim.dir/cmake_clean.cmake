file(REMOVE_RECURSE
  "CMakeFiles/kar_sim.dir/event_queue.cpp.o"
  "CMakeFiles/kar_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/kar_sim.dir/network.cpp.o"
  "CMakeFiles/kar_sim.dir/network.cpp.o.d"
  "CMakeFiles/kar_sim.dir/reactive_controller.cpp.o"
  "CMakeFiles/kar_sim.dir/reactive_controller.cpp.o.d"
  "CMakeFiles/kar_sim.dir/trace_csv.cpp.o"
  "CMakeFiles/kar_sim.dir/trace_csv.cpp.o.d"
  "libkar_sim.a"
  "libkar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

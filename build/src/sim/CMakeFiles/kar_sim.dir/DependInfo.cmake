
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/kar_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/kar_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/kar_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/kar_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/reactive_controller.cpp" "src/sim/CMakeFiles/kar_sim.dir/reactive_controller.cpp.o" "gcc" "src/sim/CMakeFiles/kar_sim.dir/reactive_controller.cpp.o.d"
  "/root/repo/src/sim/trace_csv.cpp" "src/sim/CMakeFiles/kar_sim.dir/trace_csv.cpp.o" "gcc" "src/sim/CMakeFiles/kar_sim.dir/trace_csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/kar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/kar_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/kar_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

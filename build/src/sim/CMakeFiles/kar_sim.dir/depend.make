# Empty dependencies file for kar_sim.
# This may be replaced when dependencies are built.

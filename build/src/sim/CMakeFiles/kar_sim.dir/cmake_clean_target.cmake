file(REMOVE_RECURSE
  "libkar_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kar_stats.dir/summary.cpp.o"
  "CMakeFiles/kar_stats.dir/summary.cpp.o.d"
  "CMakeFiles/kar_stats.dir/timeseries.cpp.o"
  "CMakeFiles/kar_stats.dir/timeseries.cpp.o.d"
  "libkar_stats.a"
  "libkar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kar_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkar_stats.a"
)

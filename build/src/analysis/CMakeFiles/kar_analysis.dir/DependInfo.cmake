
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/latency.cpp" "src/analysis/CMakeFiles/kar_analysis.dir/latency.cpp.o" "gcc" "src/analysis/CMakeFiles/kar_analysis.dir/latency.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "src/analysis/CMakeFiles/kar_analysis.dir/markov.cpp.o" "gcc" "src/analysis/CMakeFiles/kar_analysis.dir/markov.cpp.o.d"
  "/root/repo/src/analysis/reorder.cpp" "src/analysis/CMakeFiles/kar_analysis.dir/reorder.cpp.o" "gcc" "src/analysis/CMakeFiles/kar_analysis.dir/reorder.cpp.o.d"
  "/root/repo/src/analysis/state_model.cpp" "src/analysis/CMakeFiles/kar_analysis.dir/state_model.cpp.o" "gcc" "src/analysis/CMakeFiles/kar_analysis.dir/state_model.cpp.o.d"
  "/root/repo/src/analysis/walks.cpp" "src/analysis/CMakeFiles/kar_analysis.dir/walks.cpp.o" "gcc" "src/analysis/CMakeFiles/kar_analysis.dir/walks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/kar_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/kar_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/kar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

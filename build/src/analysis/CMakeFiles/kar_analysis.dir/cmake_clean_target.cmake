file(REMOVE_RECURSE
  "libkar_analysis.a"
)

# Empty compiler generated dependencies file for kar_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kar_analysis.dir/latency.cpp.o"
  "CMakeFiles/kar_analysis.dir/latency.cpp.o.d"
  "CMakeFiles/kar_analysis.dir/markov.cpp.o"
  "CMakeFiles/kar_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/kar_analysis.dir/reorder.cpp.o"
  "CMakeFiles/kar_analysis.dir/reorder.cpp.o.d"
  "CMakeFiles/kar_analysis.dir/state_model.cpp.o"
  "CMakeFiles/kar_analysis.dir/state_model.cpp.o.d"
  "CMakeFiles/kar_analysis.dir/walks.cpp.o"
  "CMakeFiles/kar_analysis.dir/walks.cpp.o.d"
  "libkar_analysis.a"
  "libkar_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kar_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

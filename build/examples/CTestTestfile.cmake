# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_15node "/root/repo/build/examples/failover_15node" "--duration=3" "--technique=nip" "--level=partial")
set_tests_properties(example_failover_15node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rnp_backbone "/root/repo/build/examples/rnp_backbone" "--bits=48")
set_tests_properties(example_rnp_backbone PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_service_chain "/root/repo/build/examples/service_chain")
set_tests_properties(example_service_chain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multipath "/root/repo/build/examples/multipath")
set_tests_properties(example_multipath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for failover_15node.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/failover_15node.dir/failover_15node.cpp.o"
  "CMakeFiles/failover_15node.dir/failover_15node.cpp.o.d"
  "failover_15node"
  "failover_15node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_15node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

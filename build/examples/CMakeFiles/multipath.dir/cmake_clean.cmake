file(REMOVE_RECURSE
  "CMakeFiles/multipath.dir/multipath.cpp.o"
  "CMakeFiles/multipath.dir/multipath.cpp.o.d"
  "multipath"
  "multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

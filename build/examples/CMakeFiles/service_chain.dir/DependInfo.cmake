
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/service_chain.cpp" "examples/CMakeFiles/service_chain.dir/service_chain.cpp.o" "gcc" "examples/CMakeFiles/service_chain.dir/service_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/kar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/kar_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/kar_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/kar_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/kar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/kar_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

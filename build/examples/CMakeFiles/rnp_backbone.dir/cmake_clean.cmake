file(REMOVE_RECURSE
  "CMakeFiles/rnp_backbone.dir/rnp_backbone.cpp.o"
  "CMakeFiles/rnp_backbone.dir/rnp_backbone.cpp.o.d"
  "rnp_backbone"
  "rnp_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnp_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

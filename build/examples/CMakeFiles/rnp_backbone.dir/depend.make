# Empty dependencies file for rnp_backbone.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_id_assign.dir/test_id_assign.cpp.o"
  "CMakeFiles/test_id_assign.dir/test_id_assign.cpp.o.d"
  "test_id_assign"
  "test_id_assign.pdb"
  "test_id_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_id_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

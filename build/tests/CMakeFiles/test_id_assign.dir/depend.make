# Empty dependencies file for test_id_assign.
# This may be replaced when dependencies are built.

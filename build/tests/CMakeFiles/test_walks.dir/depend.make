# Empty dependencies file for test_walks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_walks.dir/test_walks.cpp.o"
  "CMakeFiles/test_walks.dir/test_walks.cpp.o.d"
  "test_walks"
  "test_walks.pdb"
  "test_walks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_crt.
# This may be replaced when dependencies are built.

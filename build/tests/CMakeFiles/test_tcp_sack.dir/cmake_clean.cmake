file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_sack.dir/test_tcp_sack.cpp.o"
  "CMakeFiles/test_tcp_sack.dir/test_tcp_sack.cpp.o.d"
  "test_tcp_sack"
  "test_tcp_sack.pdb"
  "test_tcp_sack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_sack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

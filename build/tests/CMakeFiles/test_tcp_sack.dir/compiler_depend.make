# Empty compiler generated dependencies file for test_tcp_sack.
# This may be replaced when dependencies are built.

#include "routing/id_assign.hpp"

#include <algorithm>
#include <stdexcept>

#include "rns/modular.hpp"

namespace kar::routing {

std::unordered_map<topo::NodeId, topo::SwitchId> assign_switch_ids(
    const topo::Topology& topo, IdStrategy strategy) {
  std::vector<topo::NodeId> switches =
      topo.nodes_of_kind(topo::NodeKind::kCoreSwitch);
  if (strategy == IdStrategy::kDegreeDescending) {
    std::stable_sort(switches.begin(), switches.end(),
                     [&](topo::NodeId a, topo::NodeId b) {
                       return topo.port_count(a) > topo.port_count(b);
                     });
  }
  std::unordered_map<topo::NodeId, topo::SwitchId> out;
  rns::CoprimePool pool;
  for (const topo::NodeId node : switches) {
    // The ID must exceed every port index: ports are 0..count-1, so any
    // id >= port_count works; also >= 2 for a valid modulus.
    const auto minimum = static_cast<topo::SwitchId>(
        std::max<std::size_t>(topo.port_count(node), 2));
    const topo::SwitchId id =
        pool.take(minimum, strategy == IdStrategy::kPrimesAscending,
                  switches.size());
    out.emplace(node, id);
  }
  return out;
}

topo::Topology relabel_topology(
    const topo::Topology& topo,
    const std::unordered_map<topo::NodeId, topo::SwitchId>& ids) {
  topo::Topology out;
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.kind(n) == topo::NodeKind::kCoreSwitch) {
      const auto it = ids.find(n);
      if (it == ids.end()) {
        throw std::invalid_argument("relabel_topology: missing id for " +
                                    topo.name(n));
      }
      out.add_switch("SW" + std::to_string(it->second), it->second);
    } else {
      out.add_edge_node(topo.name(n));
    }
  }
  // Node handles are insertion-ordered in both topologies, so they carry
  // over directly; links are re-added in order, preserving port indices.
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const topo::Link& link = topo.link(l);
    const topo::LinkId nl = out.add_link(link.a.node, link.b.node, link.params);
    out.set_link_up(nl, link.up);
  }
  return out;
}

}  // namespace kar::routing

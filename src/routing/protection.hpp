// Automatic driven-deflection protection planning (paper §2, §2.3).
//
// The paper hand-picks its protection sets; this planner generalizes the
// idea: every core switch off the primary path can be granted a residue
// pointing along its shortest path to the destination, turning the route ID
// into a destination-rooted logical tree ("a logical tree with its root at
// destination ... has been built"). Because the route-ID bit length grows
// with every added switch (Eq. 9), the planner adds switches in order of
// usefulness until a bit budget is exhausted — the paper's *partial
// protection* ("Instead of setting the alternative paths entirely, one can
// set part of them", §2.3).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "topology/graph.hpp"

namespace kar::routing {

/// Planning constraints.
struct PlannerOptions {
  /// Upper bound on the route-ID bit length (Eq. 9). Unlimited by default.
  std::size_t max_route_id_bits = static_cast<std::size_t>(-1);
  /// Upper bound on total switches in the route ID. Unlimited by default.
  std::size_t max_switches = static_cast<std::size_t>(-1);
  /// Only consider switches within this many hops of the primary path
  /// (1 = direct deflection candidates only). Unlimited by default.
  std::size_t max_distance_from_path = static_cast<std::size_t>(-1);
};

/// Plans protection assignments for `core_path` (ordered switch handles)
/// toward `dst_edge`. Returns (switch, next-hop) pairs, highest-value
/// first: switches nearer the primary path are added before distant ones,
/// and nearer-to-destination before farther, so truncation under a bit
/// budget keeps the most useful segments. Every returned assignment points
/// strictly "downhill" toward the destination, so driven deflection paths
/// are loop-free by construction.
[[nodiscard]] std::vector<std::pair<topo::NodeId, topo::NodeId>>
plan_driven_deflections(const topo::Topology& topo,
                        const std::vector<topo::NodeId>& core_path,
                        topo::NodeId dst_edge, const PlannerOptions& options = {});

}  // namespace kar::routing

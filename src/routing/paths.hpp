// Path computation for the KAR controller: Dijkstra shortest paths and
// Yen's k-shortest loopless paths over the core. The paper leaves the
// routing algorithm out of scope ("e.g. shortest path"); these are the
// standard choices a controller would use to pick primary and protection
// routes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/graph.hpp"

namespace kar::routing {

/// How link weights are derived for path computation.
enum class PathMetric : std::uint8_t {
  kHopCount,      ///< Every link costs 1 (the paper's "shortest path").
  kInverseRate,   ///< Cost 1e9 / rate_bps: prefers fat links.
  kDelay,         ///< Cost = propagation delay.
};

/// Options for path search.
struct PathOptions {
  PathMetric metric = PathMetric::kHopCount;
  /// When true (the paper's evaluation default), failed links are treated
  /// as usable — "the controller ignores all failure notifications".
  bool ignore_failures = true;
};

/// A path as an ordered node sequence (endpoints included) plus its cost.
struct Path {
  std::vector<topo::NodeId> nodes;
  double cost = 0.0;

  friend bool operator==(const Path&, const Path&) = default;
};

/// The weight of one link under a metric — the single cost function every
/// path routine here shares (exported so the incremental control plane's
/// dynamic SPTs price links identically to the full Dijkstra they mirror).
[[nodiscard]] double link_cost(const topo::Link& link, PathMetric metric);

/// Dijkstra from `src` to `dst`. Intermediate hops are restricted to core
/// switches (edge nodes do not forward). Returns nullopt when disconnected.
[[nodiscard]] std::optional<Path> shortest_path(const topo::Topology& topo,
                                                topo::NodeId src,
                                                topo::NodeId dst,
                                                const PathOptions& options = {});

/// Shortest-path distance (same rules) from every node to `dst`;
/// unreachable nodes get +infinity.
[[nodiscard]] std::vector<double> distances_to(const topo::Topology& topo,
                                               topo::NodeId dst,
                                               const PathOptions& options = {});

/// Yen's algorithm: up to `k` loopless shortest paths, ascending cost.
[[nodiscard]] std::vector<Path> k_shortest_paths(const topo::Topology& topo,
                                                 topo::NodeId src,
                                                 topo::NodeId dst, std::size_t k,
                                                 const PathOptions& options = {});

}  // namespace kar::routing

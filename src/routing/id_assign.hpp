// Switch-ID assignment strategies (paper §2: "The ID assignment can be
// done by local setup or by a network controller entity").
//
// The only hard requirements are that IDs are pairwise coprime and that
// each ID exceeds every port index the switch uses. Beyond that, the
// assignment determines route-ID bit length (Eq. 9): routes through
// switches with small IDs need fewer bits. The strategies here are used by
// the Table-1 ablation bench to quantify that effect.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/graph.hpp"

namespace kar::routing {

enum class IdStrategy : std::uint8_t {
  /// Smallest valid coprime IDs in node-insertion order.
  kAscending,
  /// Smallest valid coprime IDs to the highest-degree switches first —
  /// high-degree switches appear on more routes, so giving them cheap IDs
  /// minimizes typical route-ID bit lengths.
  kDegreeDescending,
  /// Primes in ascending order (skips composite candidates).
  kPrimesAscending,
};

/// Computes a fresh pairwise-coprime ID for every core switch of `topo`.
/// Every assigned ID is > the switch's port count (so any port index fits
/// as a residue) and the set is pairwise coprime.
[[nodiscard]] std::unordered_map<topo::NodeId, topo::SwitchId> assign_switch_ids(
    const topo::Topology& topo, IdStrategy strategy);

/// Rebuilds `topo` with the given switch IDs (same structure, same link
/// parameters and order, names rewritten to "SW<id>"; edge-node names kept).
[[nodiscard]] topo::Topology relabel_topology(
    const topo::Topology& topo,
    const std::unordered_map<topo::NodeId, topo::SwitchId>& ids);

}  // namespace kar::routing

// Alternative source-routing header encodings, for comparison against the
// KAR/RNS route ID (paper §4, Table 2 and the KeyFlow/SlickFlow lineage).
//
// Implemented schemes:
//   * kPortList  — the classic strict source route as a sequence of output
//     ports, each sized to its hop's port count (SlickFlow-style primary
//     path). Needs a pointer/shift mechanism in hardware; hop order fixed.
//   * kNodeList  — a sequence of global node identifiers (IP-style loose
//     source routing); each entry costs ceil(log2(#switches)).
//   * kKarRns    — the paper's CRT route ID (Eq. 9).
//
// The interesting structural difference: the two list encodings grow
// strictly with *path order* and cannot express unordered extra
// assignments, while the RNS route ID is order-free and accepts disjoint
// protection segments (§2.2) at the price of multiplicative growth.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "routing/encoded_route.hpp"
#include "topology/graph.hpp"

namespace kar::routing {

enum class HeaderScheme : std::uint8_t { kPortList, kNodeList, kKarRns };

[[nodiscard]] std::string_view to_string(HeaderScheme scheme);

/// Header-size accounting for one route under one scheme.
struct HeaderCost {
  HeaderScheme scheme;
  std::size_t bits = 0;
  /// True when the scheme can carry the route's protection assignments
  /// (driven deflections). List encodings cannot: they fix hop order.
  bool supports_protection = false;
};

/// Bits for the primary path only (ingress-to-egress core switches), under
/// `scheme`, on `topo`. For kKarRns this is Eq. 9 over the path's switch
/// IDs.
[[nodiscard]] HeaderCost primary_header_cost(const topo::Topology& topo,
                                             const std::vector<topo::NodeId>& core_path,
                                             HeaderScheme scheme);

/// Bits for a full encoded KAR route (primary + protection) under kKarRns,
/// and the hypothetical cost of the same *primary* path under the list
/// schemes (which cannot express the protection at all).
[[nodiscard]] std::vector<HeaderCost> compare_header_costs(
    const topo::Topology& topo, const EncodedRoute& route);

}  // namespace kar::routing

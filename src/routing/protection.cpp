#include "routing/protection.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "routing/paths.hpp"
#include "rns/biguint.hpp"
#include "rns/crt.hpp"

namespace kar::routing {

namespace {

/// Hop distance from every node to the nearest node of `sources` (BFS over
/// core switches, ignoring link state — protection is planned on the
/// intended topology).
std::vector<std::size_t> hops_from_set(const topo::Topology& topo,
                                       const std::vector<topo::NodeId>& sources) {
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(topo.node_count(), kUnreached);
  std::queue<topo::NodeId> frontier;
  for (const topo::NodeId s : sources) {
    dist[s] = 0;
    frontier.push(s);
  }
  while (!frontier.empty()) {
    const topo::NodeId cur = frontier.front();
    frontier.pop();
    for (const auto& [port, next] : topo.neighbors(cur)) {
      (void)port;
      if (topo.kind(next) != topo::NodeKind::kCoreSwitch) continue;
      if (dist[next] != kUnreached) continue;
      dist[next] = dist[cur] + 1;
      frontier.push(next);
    }
  }
  return dist;
}

}  // namespace

std::vector<std::pair<topo::NodeId, topo::NodeId>> plan_driven_deflections(
    const topo::Topology& topo, const std::vector<topo::NodeId>& core_path,
    topo::NodeId dst_edge, const PlannerOptions& options) {
  const PathOptions path_options{PathMetric::kHopCount, /*ignore_failures=*/true};
  const std::vector<double> to_dst = distances_to(topo, dst_edge, path_options);
  const std::vector<std::size_t> from_path = hops_from_set(topo, core_path);

  const std::unordered_set<topo::NodeId> on_path(core_path.begin(),
                                                 core_path.end());

  struct Candidate {
    topo::NodeId node;
    topo::NodeId next_hop;
    std::size_t path_distance;
    double dst_distance;
  };
  std::vector<Candidate> candidates;
  for (const topo::NodeId node : topo.nodes_of_kind(topo::NodeKind::kCoreSwitch)) {
    if (on_path.contains(node)) continue;
    if (to_dst[node] == std::numeric_limits<double>::infinity()) continue;
    if (from_path[node] == std::numeric_limits<std::size_t>::max()) continue;
    if (from_path[node] > options.max_distance_from_path) continue;
    // Next hop: the neighbor strictly closer to the destination; ties are
    // broken toward smaller switch IDs for determinism.
    topo::NodeId best = topo::kInvalidNode;
    for (const auto& [port, next] : topo.neighbors(node)) {
      (void)port;
      if (next != dst_edge && topo.kind(next) != topo::NodeKind::kCoreSwitch) {
        continue;
      }
      if (to_dst[next] + 1.0 != to_dst[node]) continue;  // not downhill
      if (best == topo::kInvalidNode) {
        best = next;
        continue;
      }
      const bool next_is_switch = topo.kind(next) == topo::NodeKind::kCoreSwitch;
      const bool best_is_switch =
          best != dst_edge && topo.kind(best) == topo::NodeKind::kCoreSwitch;
      if (next_is_switch && best_is_switch &&
          topo.switch_id(next) < topo.switch_id(best)) {
        best = next;
      }
    }
    if (best == topo::kInvalidNode) continue;
    candidates.push_back(Candidate{node, best, from_path[node], to_dst[node]});
  }

  // Most useful first: nearest to the path, then nearest to the
  // destination, then smallest switch ID (cheapest bits) as tiebreak.
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              if (a.path_distance != b.path_distance) {
                return a.path_distance < b.path_distance;
              }
              if (a.dst_distance != b.dst_distance) {
                return a.dst_distance < b.dst_distance;
              }
              return topo.switch_id(a.node) < topo.switch_id(b.node);
            });

  // Greedy add under the bit / count budget.
  rns::BigUint product(1);
  for (const topo::NodeId n : core_path) product *= rns::BigUint(topo.switch_id(n));

  std::vector<std::pair<topo::NodeId, topo::NodeId>> plan;
  std::size_t total_switches = core_path.size();
  for (const Candidate& c : candidates) {
    if (total_switches >= options.max_switches) break;
    const rns::BigUint with = product * rns::BigUint(topo.switch_id(c.node));
    if (rns::ceil_log2(with - rns::BigUint(1)) > options.max_route_id_bits) {
      continue;  // this switch is too expensive; a cheaper one may still fit
    }
    product = with;
    plan.emplace_back(c.node, c.next_hop);
    ++total_switches;
  }
  return plan;
}

}  // namespace kar::routing

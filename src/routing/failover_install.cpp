#include "routing/failover_install.hpp"

#include <algorithm>
#include <limits>

#include "routing/paths.hpp"

namespace kar::routing {

FailoverFib install_failover_fibs(
    const topo::Topology& topo, const std::vector<topo::NodeId>& destinations,
    const FailoverInstallOptions& options) {
  FailoverFib fib;
  std::vector<topo::NodeId> dsts = destinations;
  if (dsts.empty()) dsts = topo.nodes_of_kind(topo::NodeKind::kEdgeNode);

  const PathOptions path_options;  // hop metric; plan on the intact topology
  for (const topo::NodeId dst : dsts) {
    const std::vector<double> dist = distances_to(topo, dst, path_options);
    for (const topo::NodeId sw : topo.nodes_of_kind(topo::NodeKind::kCoreSwitch)) {
      if (dist[sw] == std::numeric_limits<double>::infinity()) continue;
      // Candidate ports ranked by the neighbor's distance to the
      // destination (strictly-downhill first => the primary is a
      // shortest-path next hop), stable on port index for determinism.
      struct Candidate {
        topo::PortIndex port;
        double neighbor_distance;
      };
      std::vector<Candidate> candidates;
      for (const auto& [port, neighbor] : topo.neighbors(sw)) {
        if (neighbor != dst &&
            topo.kind(neighbor) == topo::NodeKind::kEdgeNode) {
          continue;  // never detour through a foreign edge
        }
        if (dist[neighbor] == std::numeric_limits<double>::infinity()) continue;
        if (!options.allow_uphill_backups && dist[neighbor] >= dist[sw]) {
          continue;
        }
        candidates.push_back(Candidate{port, dist[neighbor]});
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.neighbor_distance < b.neighbor_distance;
                       });
      if (candidates.empty()) continue;
      std::vector<topo::PortIndex> ports;
      for (const Candidate& c : candidates) {
        if (ports.size() >= options.max_ports_per_entry) break;
        ports.push_back(c.port);
      }
      fib.install(sw, dst, std::move(ports));
    }
  }
  return fib;
}

}  // namespace kar::routing

// The encoded form of a KAR route: the route ID plus the basis it was
// built from (for inspection, tests and header sizing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rns/biguint.hpp"
#include "topology/graph.hpp"

namespace kar::routing {

/// One (switch, output-port) assignment inside a route ID.
struct PortAssignment {
  topo::NodeId node = topo::kInvalidNode;
  topo::SwitchId switch_id = 0;
  topo::PortIndex port = 0;
};

/// A fully encoded KAR route. Produced by the Controller; consumed by edge
/// nodes (who stamp `route_id` into packet headers).
struct EncodedRoute {
  rns::BigUint route_id;
  /// Every switch participating in the route ID: the primary path first
  /// (ingress to egress order), then protection assignments.
  std::vector<PortAssignment> assignments;
  /// Number of assignments that belong to the primary path.
  std::size_t primary_count = 0;
  topo::NodeId src_edge = topo::kInvalidNode;
  topo::NodeId dst_edge = topo::kInvalidNode;
  /// Maximum bit length of any route ID over this basis (paper Eq. 9).
  std::size_t bit_length = 0;

  /// Header bytes needed to carry the route ID (rounded up).
  [[nodiscard]] std::size_t route_id_bytes() const {
    return (bit_length + 7) / 8;
  }

  /// The switch IDs in the basis, assignment order.
  [[nodiscard]] std::vector<std::uint64_t> switch_ids() const {
    std::vector<std::uint64_t> out;
    out.reserve(assignments.size());
    for (const auto& a : assignments) out.push_back(a.switch_id);
    return out;
  }

  /// The residues (output ports) in the basis, assignment order.
  [[nodiscard]] std::vector<std::uint64_t> ports() const {
    std::vector<std::uint64_t> out;
    out.reserve(assignments.size());
    for (const auto& a : assignments) out.push_back(a.port);
    return out;
  }
};

}  // namespace kar::routing

#include "routing/paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace kar::routing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared Dijkstra core. When `banned_nodes`/`banned_links` are non-null the
/// respective elements are skipped (used by Yen's spur computation).
std::optional<Path> dijkstra(const topo::Topology& topo, topo::NodeId src,
                             topo::NodeId dst, const PathOptions& options,
                             const std::vector<bool>* banned_nodes,
                             const std::set<topo::LinkId>* banned_links) {
  const std::size_t n = topo.node_count();
  if (src >= n || dst >= n) throw std::out_of_range("dijkstra: bad endpoint");
  std::vector<double> dist(n, kInf);
  std::vector<topo::NodeId> parent(n, topo::kInvalidNode);
  using Item = std::pair<double, topo::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, cur] = heap.top();
    heap.pop();
    if (d > dist[cur]) continue;
    if (cur == dst) break;
    // Edge nodes do not forward transit traffic.
    if (cur != src && topo.kind(cur) == topo::NodeKind::kEdgeNode) continue;
    for (const auto& [port, next] : topo.neighbors(cur)) {
      const topo::LinkId link_id = topo.link_at(cur, port);
      const topo::Link& link = topo.link(link_id);
      if (!options.ignore_failures && !link.up) continue;
      if (banned_links && banned_links->contains(link_id)) continue;
      if (banned_nodes && (*banned_nodes)[next] && next != dst) continue;
      const double nd = d + link_cost(link, options.metric);
      if (nd < dist[next]) {
        dist[next] = nd;
        parent[next] = cur;
        heap.emplace(nd, next);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;
  Path path;
  path.cost = dist[dst];
  for (topo::NodeId cur = dst; cur != topo::kInvalidNode; cur = parent[cur]) {
    path.nodes.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

}  // namespace

double link_cost(const topo::Link& link, PathMetric metric) {
  switch (metric) {
    case PathMetric::kHopCount: return 1.0;
    case PathMetric::kInverseRate: return 1e9 / link.params.rate_bps;
    case PathMetric::kDelay: return link.params.delay_s;
  }
  throw std::logic_error("link_cost: bad metric");
}

std::optional<Path> shortest_path(const topo::Topology& topo, topo::NodeId src,
                                  topo::NodeId dst, const PathOptions& options) {
  return dijkstra(topo, src, dst, options, nullptr, nullptr);
}

std::vector<double> distances_to(const topo::Topology& topo, topo::NodeId dst,
                                 const PathOptions& options) {
  const std::size_t n = topo.node_count();
  std::vector<double> dist(n, kInf);
  using Item = std::pair<double, topo::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[dst] = 0.0;
  heap.emplace(0.0, dst);
  while (!heap.empty()) {
    const auto [d, cur] = heap.top();
    heap.pop();
    if (d > dist[cur]) continue;
    // Traverse links in reverse; costs are symmetric.
    if (cur != dst && topo.kind(cur) == topo::NodeKind::kEdgeNode) continue;
    for (const auto& [port, next] : topo.neighbors(cur)) {
      const topo::Link& link = topo.link(topo.link_at(cur, port));
      if (!options.ignore_failures && !link.up) continue;
      const double nd = d + link_cost(link, options.metric);
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.emplace(nd, next);
      }
    }
  }
  return dist;
}

std::vector<Path> k_shortest_paths(const topo::Topology& topo, topo::NodeId src,
                                   topo::NodeId dst, std::size_t k,
                                   const PathOptions& options) {
  std::vector<Path> result;
  if (k == 0) return result;
  const auto first = shortest_path(topo, src, dst, options);
  if (!first) return result;
  result.push_back(*first);

  // Candidate pool ordered by cost; lexicographic node order breaks ties
  // deterministically.
  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.nodes > b.nodes;
  };
  std::priority_queue<Path, std::vector<Path>, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each node of the previous path (except the last) is a spur point.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const topo::NodeId spur = prev.nodes[i];
      std::vector<topo::NodeId> root(prev.nodes.begin(),
                                     prev.nodes.begin() +
                                         static_cast<std::ptrdiff_t>(i + 1));
      // Ban links used by any accepted path sharing this root.
      std::set<topo::LinkId> banned_links;
      for (const Path& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          if (const auto l = topo.link_between(p.nodes[i], p.nodes[i + 1])) {
            banned_links.insert(*l);
          }
        }
      }
      // Ban root nodes (loopless requirement), except the spur itself.
      std::vector<bool> banned_nodes(topo.node_count(), false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j]] = true;

      const auto spur_path =
          dijkstra(topo, spur, dst, options, &banned_nodes, &banned_links);
      if (!spur_path) continue;
      Path total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      // Recompute the root cost.
      double root_cost = 0.0;
      for (std::size_t j = 0; j + 1 < root.size(); ++j) {
        const auto l = topo.link_between(root[j], root[j + 1]);
        root_cost += link_cost(topo.link(*l), options.metric);
      }
      total.cost = root_cost + spur_path->cost;
      candidates.push(std::move(total));
    }
    // Pop the best new candidate not already accepted.
    bool accepted = false;
    while (!candidates.empty()) {
      Path best = candidates.top();
      candidates.pop();
      if (std::find(result.begin(), result.end(), best) == result.end()) {
        result.push_back(std::move(best));
        accepted = true;
        break;
      }
    }
    if (!accepted) break;  // candidate space exhausted
  }
  return result;
}

}  // namespace kar::routing

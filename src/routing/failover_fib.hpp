// OpenFlow Fast-Failover baseline (paper Table 2, [14]): the conventional
// stateful alternative to KAR. Every switch holds, per destination edge, a
// priority list of output ports (an OpenFlow group of type fast-failover):
// traffic uses the first port whose link is up. Recovery is local and fast
// — but the core is stateful (entries scale with destinations), and unlike
// KAR's driven deflections the backup chains are not loop-free by
// construction (backup ports can point "uphill", producing forwarding
// loops that only a TTL bounds; this is measurable in the benches).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/graph.hpp"

namespace kar::routing {

/// Per-switch, per-destination port priority lists.
class FailoverFib {
 public:
  /// Installs the priority list for (switch, destination edge).
  void install(topo::NodeId switch_node, topo::NodeId dst_edge,
               std::vector<topo::PortIndex> ports_by_priority);

  /// The first available port for `dst_edge` at `switch_node`, or nullopt
  /// when every listed port is down or no entry exists.
  [[nodiscard]] std::optional<topo::PortIndex> select(
      const topo::Topology& topo, topo::NodeId switch_node,
      topo::NodeId dst_edge) const;

  /// Whether the selected port is not the top-priority one (i.e. the
  /// fast-failover group is currently failed over).
  struct Selection {
    topo::PortIndex port = 0;
    bool failed_over = false;
  };
  [[nodiscard]] std::optional<Selection> select_with_status(
      const topo::Topology& topo, topo::NodeId switch_node,
      topo::NodeId dst_edge) const;

  /// Total installed entries (sum of list lengths): the "core state" the
  /// paper's Table 2 charges this design with.
  [[nodiscard]] std::size_t total_entries() const noexcept { return entries_; }
  /// Entries at one switch.
  [[nodiscard]] std::size_t entries_at(topo::NodeId switch_node) const;

 private:
  struct Key {
    topo::NodeId node;
    topo::NodeId dst;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.node) << 32) ^ k.dst);
    }
  };

  std::unordered_map<Key, std::vector<topo::PortIndex>, KeyHash> fib_;
  std::unordered_map<topo::NodeId, std::size_t> per_switch_;
  std::size_t entries_ = 0;
};

}  // namespace kar::routing

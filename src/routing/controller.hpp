// The KAR network controller (paper §2: "the router component of network
// controller is in control of routing decisions").
//
// Responsibilities reproduced from the paper:
//   * pick a primary path (shortest path by default; pluggable metric);
//   * compose the route ID from the primary path plus driven-deflection
//     protection assignments (CRT encode, §2.2);
//   * re-encode the route for packets that arrive at the wrong edge node
//     (§2.1 final remark, "the controller recalculates the route ID based
//     on the best path from the edge node to the destination");
//   * during the evaluation, *ignore failure notifications* (§3: "the
//     controller ignores all failure notifications and keeps the same
//     route"), which is what forces recovery onto the data plane.
#pragma once

#include <optional>
#include <vector>

#include "routing/encoded_route.hpp"
#include "routing/paths.hpp"
#include "topology/graph.hpp"
#include "topology/scenario.hpp"

namespace kar::routing {

/// Stateless routing brain bound to one topology.
class Controller {
 public:
  /// The controller observes (but never mutates) the topology.
  explicit Controller(const topo::Topology& topology,
                      PathOptions path_options = {})
      : topo_(&topology), path_options_(path_options) {}

  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topo_; }

  /// Encodes an explicit core path (switch node handles, ingress→egress)
  /// terminating at `dst_edge`, plus driven-deflection protection
  /// assignments given as (switch node, next-hop node) pairs.
  ///
  /// Throws std::invalid_argument when the path is not physically
  /// connected, a protection switch duplicates a path switch, a port index
  /// is not smaller than its switch ID, or the switch IDs are not pairwise
  /// coprime.
  [[nodiscard]] EncodedRoute encode_path(
      topo::NodeId src_edge, const std::vector<topo::NodeId>& core_path,
      topo::NodeId dst_edge,
      const std::vector<std::pair<topo::NodeId, topo::NodeId>>& protection = {})
      const;

  /// Resolves a scenario route (names + protection level) and encodes it.
  [[nodiscard]] EncodedRoute encode_scenario(const topo::ScenarioRoute& route,
                                             topo::ProtectionLevel level) const;

  /// Computes a shortest path between two edge nodes and encodes it with
  /// the given protection assignments. Returns nullopt when disconnected.
  [[nodiscard]] std::optional<EncodedRoute> route_between(
      topo::NodeId src_edge, topo::NodeId dst_edge,
      const std::vector<std::pair<topo::NodeId, topo::NodeId>>& protection = {})
      const;

  /// Re-encode service for a packet that surfaced at the wrong edge node:
  /// best path from `at_edge` to `dst_edge`, reusing the protection
  /// assignments of `original` where they do not conflict with the new
  /// primary path. Follows the paper's evaluation policy of ignoring
  /// failures unless the constructor was told otherwise.
  [[nodiscard]] std::optional<EncodedRoute> reencode_from(
      topo::NodeId at_edge, const EncodedRoute& original) const;

 private:
  const topo::Topology* topo_;
  PathOptions path_options_;
};

}  // namespace kar::routing

#include "routing/controller.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "rns/crt.hpp"

namespace kar::routing {

namespace {

/// Resolves the output port from `from` toward `to`, with a readable error.
topo::PortIndex port_toward(const topo::Topology& topo, topo::NodeId from,
                            topo::NodeId to) {
  const auto port = topo.port_to(from, to);
  if (!port) {
    throw std::invalid_argument("Controller: " + topo.name(from) + " and " +
                                topo.name(to) + " are not adjacent");
  }
  return *port;
}

void check_residue_fits(const topo::Topology& topo, topo::NodeId node,
                        topo::PortIndex port) {
  const topo::SwitchId id = topo.switch_id(node);
  if (static_cast<topo::SwitchId>(port) >= id) {
    throw std::invalid_argument(
        "Controller: port " + std::to_string(port) + " of " + topo.name(node) +
        " does not fit its switch id " + std::to_string(id) +
        " (KAR requires id > every port index)");
  }
}

}  // namespace

EncodedRoute Controller::encode_path(
    topo::NodeId src_edge, const std::vector<topo::NodeId>& core_path,
    topo::NodeId dst_edge,
    const std::vector<std::pair<topo::NodeId, topo::NodeId>>& protection) const {
  const topo::Topology& t = *topo_;
  if (core_path.empty()) {
    throw std::invalid_argument("Controller: empty core path for route " +
                                t.name(src_edge) + " -> " + t.name(dst_edge));
  }
  const auto require_edge = [&](topo::NodeId node, const char* role) {
    if (t.kind(node) != topo::NodeKind::kEdgeNode) {
      throw std::invalid_argument(
          "Controller: route " + std::string(role) + " " + t.name(node) +
          " is a core switch (id " + std::to_string(t.switch_id(node)) +
          "), not an edge node");
    }
  };
  require_edge(src_edge, "source");
  require_edge(dst_edge, "destination");
  if (!t.port_to(src_edge, core_path.front())) {
    throw std::invalid_argument("Controller: source edge " + t.name(src_edge) +
                                " is not attached to " + t.name(core_path.front()));
  }

  EncodedRoute route;
  route.src_edge = src_edge;
  route.dst_edge = dst_edge;

  std::unordered_map<topo::NodeId, topo::PortIndex> seen;
  const auto add_assignment = [&](topo::NodeId node, topo::NodeId next) {
    if (t.kind(node) != topo::NodeKind::kCoreSwitch) {
      throw std::invalid_argument(
          "Controller: " + t.name(node) + " is an edge node, not a core " +
          "switch — only switches carry residues (next hop " + t.name(next) +
          ")");
    }
    const topo::PortIndex port = port_toward(t, node, next);
    check_residue_fits(t, node, port);
    const auto [it, inserted] = seen.emplace(node, port);
    if (!inserted) {
      if (it->second == port) return;  // same assignment twice is harmless
      throw std::invalid_argument(
          "Controller: conflicting port assignments for " + t.name(node) +
          " (switch id " + std::to_string(t.switch_id(node)) + "): port " +
          std::to_string(it->second) + " vs port " + std::to_string(port) +
          " (a switch holds exactly one residue per route ID)");
    }
    route.assignments.push_back(
        PortAssignment{node, t.switch_id(node), port});
  };

  // Primary path residues: each switch points at its successor; the egress
  // switch points at the destination edge.
  for (std::size_t i = 0; i < core_path.size(); ++i) {
    const topo::NodeId next =
        (i + 1 < core_path.size()) ? core_path[i + 1] : dst_edge;
    add_assignment(core_path[i], next);
  }
  route.primary_count = route.assignments.size();

  // Driven-deflection protection residues (order irrelevant; Eq. 4 is
  // commutative).
  for (const auto& [node, next] : protection) add_assignment(node, next);

  // CRT encode (validates pairwise coprimality of the basis).
  rns::RnsBasis basis(route.switch_ids());
  route.route_id = basis.encode(route.ports());
  route.bit_length = basis.bit_length();
  return route;
}

EncodedRoute Controller::encode_scenario(const topo::ScenarioRoute& route,
                                         topo::ProtectionLevel level) const {
  const topo::Topology& t = *topo_;
  std::vector<topo::NodeId> core;
  core.reserve(route.core_path.size());
  for (const std::string& name : route.core_path) core.push_back(t.at(name));
  std::vector<std::pair<topo::NodeId, topo::NodeId>> protection;
  for (const auto& a : route.protection_at(level)) {
    protection.emplace_back(t.at(a.switch_name), t.at(a.next_hop_name));
  }
  return encode_path(t.at(route.src_edge), core, t.at(route.dst_edge), protection);
}

std::optional<EncodedRoute> Controller::route_between(
    topo::NodeId src_edge, topo::NodeId dst_edge,
    const std::vector<std::pair<topo::NodeId, topo::NodeId>>& protection) const {
  const auto path = shortest_path(*topo_, src_edge, dst_edge, path_options_);
  if (!path || path->nodes.size() < 3) return std::nullopt;
  // Strip the edge endpoints to get the core path.
  std::vector<topo::NodeId> core(path->nodes.begin() + 1, path->nodes.end() - 1);
  return encode_path(src_edge, core, dst_edge, protection);
}

std::optional<EncodedRoute> Controller::reencode_from(
    topo::NodeId at_edge, const EncodedRoute& original) const {
  const auto path = shortest_path(*topo_, at_edge, original.dst_edge, path_options_);
  if (!path || path->nodes.size() < 3) return std::nullopt;
  std::vector<topo::NodeId> core(path->nodes.begin() + 1, path->nodes.end() - 1);

  // Keep the original protection assignments that do not collide with the
  // new primary path (a switch carries exactly one residue).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> protection;
  for (std::size_t i = original.primary_count; i < original.assignments.size();
       ++i) {
    const auto& a = original.assignments[i];
    bool on_new_path = false;
    for (const topo::NodeId n : core) {
      if (n == a.node) {
        on_new_path = true;
        break;
      }
    }
    if (on_new_path) continue;
    const auto next = topo_->neighbor(a.node, a.port);
    if (next) protection.emplace_back(a.node, *next);
  }
  return encode_path(at_edge, core, original.dst_edge, protection);
}

}  // namespace kar::routing

#include "routing/encodings.hpp"

#include <cmath>
#include <stdexcept>

#include "rns/crt.hpp"

namespace kar::routing {

namespace {

/// ceil(log2(n)) for small native values; 1 bit minimum so that even a
/// 1-port or 2-value field is addressable.
std::size_t bits_for(std::size_t n) {
  if (n <= 2) return 1;
  std::size_t bits = 0;
  std::size_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

std::string_view to_string(HeaderScheme scheme) {
  switch (scheme) {
    case HeaderScheme::kPortList: return "port-list";
    case HeaderScheme::kNodeList: return "node-list";
    case HeaderScheme::kKarRns: return "kar-rns";
  }
  throw std::logic_error("to_string: bad HeaderScheme");
}

HeaderCost primary_header_cost(const topo::Topology& topo,
                               const std::vector<topo::NodeId>& core_path,
                               HeaderScheme scheme) {
  HeaderCost cost;
  cost.scheme = scheme;
  switch (scheme) {
    case HeaderScheme::kPortList: {
      // One output-port field per hop, sized to that switch's port count,
      // plus a hop counter to find the active field.
      for (const topo::NodeId node : core_path) {
        cost.bits += bits_for(topo.port_count(node));
      }
      cost.bits += bits_for(core_path.size() + 1);  // cursor
      cost.supports_protection = false;
      break;
    }
    case HeaderScheme::kNodeList: {
      const std::size_t switches =
          topo.nodes_of_kind(topo::NodeKind::kCoreSwitch).size();
      cost.bits = core_path.size() * bits_for(switches) +
                  bits_for(core_path.size() + 1);
      cost.supports_protection = false;
      break;
    }
    case HeaderScheme::kKarRns: {
      std::vector<std::uint64_t> ids;
      ids.reserve(core_path.size());
      for (const topo::NodeId node : core_path) {
        ids.push_back(topo.switch_id(node));
      }
      cost.bits = rns::route_id_bit_length(ids);
      cost.supports_protection = true;
      break;
    }
  }
  return cost;
}

std::vector<HeaderCost> compare_header_costs(const topo::Topology& topo,
                                             const EncodedRoute& route) {
  std::vector<topo::NodeId> primary;
  primary.reserve(route.primary_count);
  for (std::size_t i = 0; i < route.primary_count; ++i) {
    primary.push_back(route.assignments[i].node);
  }
  std::vector<HeaderCost> out;
  out.push_back(primary_header_cost(topo, primary, HeaderScheme::kPortList));
  out.push_back(primary_header_cost(topo, primary, HeaderScheme::kNodeList));
  HeaderCost kar;
  kar.scheme = HeaderScheme::kKarRns;
  kar.bits = route.bit_length;  // includes the protection assignments
  kar.supports_protection = true;
  out.push_back(kar);
  return out;
}

}  // namespace kar::routing

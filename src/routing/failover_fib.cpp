#include "routing/failover_fib.hpp"

#include <stdexcept>

namespace kar::routing {

void FailoverFib::install(topo::NodeId switch_node, topo::NodeId dst_edge,
                          std::vector<topo::PortIndex> ports_by_priority) {
  if (ports_by_priority.empty()) {
    throw std::invalid_argument("FailoverFib::install: empty port list");
  }
  const Key key{switch_node, dst_edge};
  auto& slot = fib_[key];
  entries_ -= slot.size();
  per_switch_[switch_node] -= slot.size();
  slot = std::move(ports_by_priority);
  entries_ += slot.size();
  per_switch_[switch_node] += slot.size();
}

std::optional<FailoverFib::Selection> FailoverFib::select_with_status(
    const topo::Topology& topo, topo::NodeId switch_node,
    topo::NodeId dst_edge) const {
  const auto it = fib_.find(Key{switch_node, dst_edge});
  if (it == fib_.end()) return std::nullopt;
  bool first = true;
  for (const topo::PortIndex port : it->second) {
    if (topo.port_available(switch_node, port)) {
      return Selection{port, !first};
    }
    first = false;
  }
  return std::nullopt;
}

std::optional<topo::PortIndex> FailoverFib::select(const topo::Topology& topo,
                                                   topo::NodeId switch_node,
                                                   topo::NodeId dst_edge) const {
  const auto selection = select_with_status(topo, switch_node, dst_edge);
  if (!selection) return std::nullopt;
  return selection->port;
}

std::size_t FailoverFib::entries_at(topo::NodeId switch_node) const {
  const auto it = per_switch_.find(switch_node);
  return it == per_switch_.end() ? 0 : it->second;
}

}  // namespace kar::routing

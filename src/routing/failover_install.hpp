// Controller-side installation of OpenFlow Fast-Failover groups (the
// Table 2 baseline): per destination edge, each switch gets a priority
// list of ports — the shortest-path next hop first, then backup neighbors
// ordered by their distance to the destination.
#pragma once

#include <vector>

#include "routing/failover_fib.hpp"
#include "topology/graph.hpp"

namespace kar::routing {

struct FailoverInstallOptions {
  /// Ports per (switch, destination) group: 1 = plain shortest-path FIB
  /// (no protection), 2 = primary + one backup (typical fast-failover),
  /// larger values add deeper backup chains.
  std::size_t max_ports_per_entry = 2;
  /// When true, backup ports may point to neighbors farther from the
  /// destination than the switch itself (local repair that risks loops —
  /// the price the paper's Table 2 row pays for statefulness without
  /// global recomputation). When false, only downhill backups install,
  /// which is loop-free but covers fewer failures.
  bool allow_uphill_backups = true;
};

/// Builds fast-failover groups on every core switch for each destination
/// edge in `destinations` (all edge nodes when empty).
[[nodiscard]] FailoverFib install_failover_fibs(
    const topo::Topology& topo,
    const std::vector<topo::NodeId>& destinations = {},
    const FailoverInstallOptions& options = {});

}  // namespace kar::routing

#include "topogen/topogen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "rns/modular.hpp"
#include "routing/paths.hpp"
#include "topology/autoroute.hpp"

namespace kar::topogen {

namespace {

using topo::LinkParams;
using topo::NodeId;
using topo::Scenario;
using topo::Topology;

/// Staged graph: structure first, coprime IDs only once every degree is
/// known (the ID must exceed every port index, and the smallest valid ID
/// per switch minimizes Eq. 9 route-ID bit length).
class Draft {
 public:
  /// `extra_ports` reserves ID headroom for ports attached after
  /// realization (host edges); 1 allows the standard one-host attachment.
  std::size_t add_switch(std::string name, std::size_t extra_ports = 1) {
    nodes_.push_back({std::move(name), /*is_edge=*/false, 0, extra_ports});
    return nodes_.size() - 1;
  }

  std::size_t add_edge(std::string name) {
    nodes_.push_back({std::move(name), /*is_edge=*/true, 0, 0});
    return nodes_.size() - 1;
  }

  void add_link(std::size_t a, std::size_t b, LinkParams params) {
    ++nodes_[a].degree;
    ++nodes_[b].degree;
    links_.push_back({a, b, params});
  }

  [[nodiscard]] std::size_t degree(std::size_t node) const {
    return nodes_[node].degree;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& name(std::size_t node) const {
    return nodes_[node].name;
  }
  [[nodiscard]] bool linked(std::size_t a, std::size_t b) const {
    for (const DraftLink& l : links_) {
      if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return true;
    }
    return false;
  }

  /// Assigns smallest-first coprime IDs (minimum = degree + extra_ports,
  /// in insertion order) and materializes the Topology. Throws
  /// rns::IdPoolExhausted if the candidate space runs out.
  [[nodiscard]] Topology realize() const {
    rns::CoprimePool pool;
    Topology out;
    for (const DraftNode& node : nodes_) {
      if (node.is_edge) {
        out.add_edge_node(node.name);
      } else {
        const auto minimum = static_cast<std::uint64_t>(
            std::max<std::size_t>(node.degree + node.extra_ports, 2));
        out.add_switch(node.name, pool.take(minimum, /*primes_only=*/false,
                                            nodes_.size()));
      }
    }
    for (const DraftLink& link : links_) {
      out.add_link(static_cast<NodeId>(link.a), static_cast<NodeId>(link.b),
                   link.params);
    }
    return out;
  }

 private:
  struct DraftNode {
    std::string name;
    bool is_edge;
    std::size_t degree;
    std::size_t extra_ports;
  };
  struct DraftLink {
    std::size_t a, b;
    LinkParams params;
  };
  std::vector<DraftNode> nodes_;
  std::vector<DraftLink> links_;
};

/// Fills route.core_path with the BFS core path and derives protection
/// assignments from Yen's 2nd and 3rd loopless shortest paths: each
/// off-primary switch on an alternate path deflects toward its successor.
/// (Assignments only cover switches not already on the primary: the
/// encoder takes one residue per switch.)
void auto_route(Scenario& scenario) {
  Topology& topo = scenario.topology;
  const NodeId src = topo.at(scenario.route.src_edge);
  const NodeId dst = topo.at(scenario.route.dst_edge);
  scenario.route.core_path = topo::bfs_core_path(topo, src, dst);

  std::unordered_set<std::string> used(scenario.route.core_path.begin(),
                                       scenario.route.core_path.end());
  const auto paths = routing::k_shortest_paths(topo, src, dst, 3);
  const auto add_chain = [&](const routing::Path& path,
                             std::vector<topo::ProtectionAssignment>& out) {
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      const NodeId u = path.nodes[i];
      const NodeId v = path.nodes[i + 1];
      if (topo.kind(u) != topo::NodeKind::kCoreSwitch) continue;
      if (topo.kind(v) != topo::NodeKind::kCoreSwitch) continue;
      if (used.contains(topo.name(u))) continue;
      out.push_back({topo.name(u), topo.name(v)});
      used.insert(topo.name(u));
    }
  };
  if (paths.size() > 1) add_chain(paths[1], scenario.route.partial_protection);
  if (paths.size() > 2) {
    add_chain(paths[2], scenario.route.full_extra_protection);
  }
}

void apply_red(LinkParams& params, bool red) {
  if (red) params.red = topo::RedParams{};
}

// -- fat-tree ----------------------------------------------------------------

std::string pod_name(std::size_t p, const char* layer, std::size_t i) {
  return "pod" + std::to_string(p) + "/" + layer + std::to_string(i);
}

}  // namespace

Scenario make_fat_tree(const FatTreeOptions& options, LinkParams link) {
  const std::size_t k = options.k;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("make_fat_tree: k must be even and >= 2");
  }
  apply_red(link, options.red);
  const std::size_t half = k / 2;

  Draft draft;
  // Pods first (edge then agg per pod), cores last: edge switches have the
  // lowest degree (k/2) and therefore draw the smallest IDs — they appear
  // on every path, which keeps Eq. 9 bit lengths down.
  std::vector<std::vector<std::size_t>> edge(k), agg(k);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < half; ++i) {
      edge[p].push_back(draft.add_switch(pod_name(p, "edge", i)));
    }
    for (std::size_t i = 0; i < half; ++i) {
      agg[p].push_back(draft.add_switch(pod_name(p, "agg", i)));
    }
  }
  std::vector<std::vector<std::size_t>> core(half);
  for (std::size_t g = 0; g < half; ++g) {
    for (std::size_t j = 0; j < half; ++j) {
      core[g].push_back(
          draft.add_switch("core" + std::to_string(g) + "-" + std::to_string(j)));
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        draft.add_link(edge[p][e], agg[p][a], link);
      }
    }
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t j = 0; j < half; ++j) {
        draft.add_link(agg[p][a], core[a][j], link);
      }
    }
  }
  const std::size_t src = draft.add_edge("SRC");
  const std::size_t dst = draft.add_edge("DST");
  draft.add_link(src, edge[0][0], link);
  draft.add_link(dst, edge[k - 1][half - 1], link);

  Scenario s;
  s.name = "fat-tree-k" + std::to_string(k);
  s.description = "k=" + std::to_string(k) + " fat-tree/Clos: " +
                  std::to_string(5 * k * k / 4) + " switches (" +
                  std::to_string(k) + " pods, " + std::to_string(half * half) +
                  " cores), SRC in pod0, DST in pod" + std::to_string(k - 1) +
                  ".";
  s.topology = draft.realize();
  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  auto_route(s);
  return s;
}

// -- Internet2/Abilene -------------------------------------------------------

namespace {

struct Trunk {
  std::size_t a, b;
  double delay_s;  ///< One-way propagation, approx. route miles / c_fiber.
};

constexpr const char* kPops[] = {"SEA", "SNV", "LAX", "DEN", "KSC", "HOU",
                                 "CHI", "IPL", "ATL", "WAS", "NYC"};
constexpr std::size_t kPopCount = 11;
constexpr std::size_t SEA = 0, SNV = 1, LAX = 2, DEN = 3, KSC = 4, HOU = 5,
                      CHI = 6, IPL = 7, ATL = 8, WAS = 9, NYC = 10;

/// The Abilene footprint's 14 trunks with distance-derived delays.
constexpr Trunk kTrunks[] = {
    {SEA, SNV, 6.5e-3}, {SEA, DEN, 8.2e-3}, {SNV, LAX, 2.7e-3},
    {SNV, DEN, 7.6e-3}, {LAX, HOU, 11.0e-3}, {DEN, KSC, 4.5e-3},
    {KSC, HOU, 6.0e-3}, {KSC, IPL, 3.5e-3}, {HOU, ATL, 5.6e-3},
    {ATL, IPL, 4.2e-3}, {ATL, WAS, 4.3e-3}, {CHI, IPL, 1.4e-3},
    {CHI, NYC, 5.7e-3}, {NYC, WAS, 1.6e-3}};
/// Index into kTrunks of the designated bottleneck (Chicago-Indianapolis,
/// the shortest east-west trunk: everything from the midwest to the
/// Atlantic wants it).
constexpr std::size_t kBottleneckTrunk = 11;

}  // namespace

Scenario make_internet2(const Internet2Options& options, LinkParams link) {
  const std::size_t scale = options.scale;
  if (scale == 0) {
    throw std::invalid_argument("make_internet2: scale must be >= 1");
  }
  Draft draft;
  // Per-PoP routers. At scale 1 each PoP is a single router bearing the
  // PoP name; at scale N it is a ring "<pop>/r0".."<pop>/r{N-1}" and the
  // inter-PoP trunks spread round-robin across the ring members.
  // Bottleneck-adjacent routers reserve extra ID headroom so the traffic
  // compiler can fan several host edges onto them.
  std::vector<std::vector<std::size_t>> routers(kPopCount);
  for (std::size_t p = 0; p < kPopCount; ++p) {
    for (std::size_t r = 0; r < scale; ++r) {
      std::string name = scale == 1
                             ? std::string(kPops[p])
                             : std::string(kPops[p]) + "/r" + std::to_string(r);
      const bool bottleneck_pop = p == CHI || p == IPL;
      routers[p].push_back(
          draft.add_switch(std::move(name), bottleneck_pop ? 10 : 2));
    }
  }
  LinkParams intra = link;
  intra.rate_bps = options.trunk_rate_bps * 4.0;
  intra.delay_s = 0.1e-3;
  for (std::size_t p = 0; p < kPopCount; ++p) {
    for (std::size_t r = 0; r + 1 < scale; ++r) {
      draft.add_link(routers[p][r], routers[p][r + 1], intra);
    }
    if (scale > 2) draft.add_link(routers[p][scale - 1], routers[p][0], intra);
  }
  std::vector<std::size_t> attach_counter(kPopCount, 0);
  std::string bottleneck_a, bottleneck_b;
  for (std::size_t t = 0; t < std::size(kTrunks); ++t) {
    const Trunk& trunk = kTrunks[t];
    LinkParams params = link;
    params.rate_bps = options.trunk_rate_bps;
    params.delay_s = trunk.delay_s;
    const std::size_t ra = routers[trunk.a][attach_counter[trunk.a]++ % scale];
    const std::size_t rb = routers[trunk.b][attach_counter[trunk.b]++ % scale];
    if (t == kBottleneckTrunk) {
      params.rate_bps = options.trunk_rate_bps * options.bottleneck_fraction;
      apply_red(params, options.red);
      bottleneck_a = draft.name(ra);
      bottleneck_b = draft.name(rb);
    }
    draft.add_link(ra, rb, params);
  }
  // Route endpoints: across the bottleneck, Chicago-side to Atlanta, so
  // the scenario's primary path carries the congested trunk.
  const std::size_t src = draft.add_edge("SRC");
  const std::size_t dst = draft.add_edge("DST");
  std::size_t chi_attach = 0;
  for (std::size_t r = 0; r < scale; ++r) {
    if (draft.name(routers[CHI][r]) == bottleneck_a) chi_attach = r;
  }
  draft.add_link(src, routers[CHI][chi_attach], link);
  draft.add_link(dst, routers[ATL][0], link);

  Scenario s;
  s.name = scale == 1 ? "internet2" : "internet2-x" + std::to_string(scale);
  s.description =
      "Internet2/Abilene backbone (" + std::to_string(kPopCount * scale) +
      " routers, " + std::to_string(scale) +
      " per PoP), distance-derived delays, bottleneck " + bottleneck_a + "-" +
      bottleneck_b + " at " + std::to_string(options.bottleneck_fraction) +
      "x trunk rate.";
  s.topology = draft.realize();
  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  s.bottleneck_a = bottleneck_a;
  s.bottleneck_b = bottleneck_b;
  auto_route(s);
  return s;
}

// -- Waxman ------------------------------------------------------------------

namespace {

/// BFS component labels over a draft's links (switch-only drafts).
std::vector<std::size_t> components(std::size_t n,
                                    const std::vector<std::vector<std::size_t>>& adj) {
  std::vector<std::size_t> comp(n, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (comp[start] != static_cast<std::size_t>(-1)) continue;
    comp[start] = next;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop();
      for (const std::size_t nb : adj[cur]) {
        if (comp[nb] == static_cast<std::size_t>(-1)) {
          comp[nb] = next;
          frontier.push(nb);
        }
      }
    }
    ++next;
  }
  return comp;
}

/// The draft node (among `nodes`) farthest from `from` by BFS hops.
std::size_t bfs_farthest(std::size_t from, std::size_t n,
                         const std::vector<std::vector<std::size_t>>& adj) {
  std::vector<int> dist(n, -1);
  dist[from] = 0;
  std::queue<std::size_t> frontier;
  frontier.push(from);
  std::size_t farthest = from;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop();
    for (const std::size_t nb : adj[cur]) {
      if (dist[nb] < 0) {
        dist[nb] = dist[cur] + 1;
        if (dist[nb] > dist[farthest]) farthest = nb;
        frontier.push(nb);
      }
    }
  }
  return farthest;
}

}  // namespace

Scenario make_waxman(const WaxmanOptions& options, LinkParams link) {
  const std::size_t n = options.switches;
  if (n < 2) throw std::invalid_argument("make_waxman: need >= 2 switches");
  apply_red(link, options.red);
  common::Rng rng(options.seed);

  // Seeded placement in the unit square; delay scales with distance.
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist = [&](std::size_t i, std::size_t j) {
    return std::hypot(x[i] - x[j], y[i] - y[j]);
  };
  const double diameter = std::numbers::sqrt2;

  std::vector<std::vector<std::size_t>> adj(n);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double p =
          options.beta * std::exp(-dist(i, j) / (options.alpha * diameter));
      if (rng.chance(p)) {
        adj[i].push_back(j);
        adj[j].push_back(i);
        edges.emplace_back(i, j);
      }
    }
  }

  // Repair pass 1: splice every stranded component into the largest one
  // via the geometrically closest cross pair (deterministic; ties broken
  // by index order of the scan).
  {
    auto comp = components(n, adj);
    const std::size_t ncomp =
        1 + *std::max_element(comp.begin(), comp.end());
    if (ncomp > 1) {
      std::vector<std::size_t> size(ncomp, 0);
      for (const std::size_t c : comp) ++size[c];
      const std::size_t biggest = static_cast<std::size_t>(
          std::max_element(size.begin(), size.end()) - size.begin());
      for (std::size_t c = 0; c < ncomp; ++c) {
        if (c == biggest) continue;
        double best = 1e18;
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (comp[i] != c) continue;
          for (std::size_t j = 0; j < n; ++j) {
            if (comp[j] != biggest) continue;
            if (const double d = dist(i, j); d < best) {
              best = d;
              bi = i;
              bj = j;
            }
          }
        }
        adj[bi].push_back(bj);
        adj[bj].push_back(bi);
        edges.emplace_back(bi, bj);
        // Keep labels usable for later components: fold c into biggest.
        for (std::size_t i = 0; i < n; ++i) {
          if (comp[i] == c) comp[i] = biggest;
        }
      }
    }
  }

  // Repair pass 2: raise every node to min_degree by linking to the
  // nearest non-adjacent node (index order on ties).
  for (std::size_t i = 0; i < n; ++i) {
    while (adj[i].size() < options.min_degree) {
      double best = 1e18;
      std::size_t pick = n;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (std::find(adj[i].begin(), adj[i].end(), j) != adj[i].end()) {
          continue;
        }
        if (const double d = dist(i, j); d < best) {
          best = d;
          pick = j;
        }
      }
      if (pick == n) break;  // complete graph, cannot grow further
      adj[i].push_back(pick);
      adj[pick].push_back(i);
      edges.emplace_back(i, pick);
    }
  }

  Draft draft;
  for (std::size_t i = 0; i < n; ++i) {
    draft.add_switch("w" + std::to_string(i));
  }
  for (const auto& [a, b] : edges) {
    LinkParams params = link;
    params.delay_s = std::max(0.05e-3, dist(a, b) * 5e-3);
    draft.add_link(a, b, params);
  }
  const std::size_t src_sw = bfs_farthest(0, n, adj);
  const std::size_t dst_sw = bfs_farthest(src_sw, n, adj);
  const std::size_t src = draft.add_edge("SRC");
  const std::size_t dst = draft.add_edge("DST");
  draft.add_link(src, src_sw, link);
  draft.add_link(dst, dst_sw, link);

  Scenario s;
  s.name = "waxman-n" + std::to_string(n) + "-s" + std::to_string(options.seed);
  s.description = "Waxman random graph (n=" + std::to_string(n) +
                  ", alpha=" + std::to_string(options.alpha) +
                  ", beta=" + std::to_string(options.beta) + ", seed=" +
                  std::to_string(options.seed) +
                  "), LCC-spliced and repaired to min degree " +
                  std::to_string(options.min_degree) + ".";
  s.topology = draft.realize();
  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  auto_route(s);
  return s;
}

// -- Barabasi-Albert ---------------------------------------------------------

Scenario make_barabasi_albert(const BarabasiAlbertOptions& options,
                              LinkParams link) {
  const std::size_t n = options.switches;
  const std::size_t m = options.edges_per_arrival;
  if (m == 0) {
    throw std::invalid_argument("make_barabasi_albert: m must be >= 1");
  }
  if (n < m + 2) {
    throw std::invalid_argument(
        "make_barabasi_albert: need at least m + 2 switches");
  }
  apply_red(link, options.red);
  common::Rng rng(options.seed);

  std::vector<std::vector<std::size_t>> adj(n);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  // Every edge contributes both endpoints; uniform draws from this list
  // are degree-proportional (preferential attachment).
  std::vector<std::size_t> endpoints;
  const auto connect = [&](std::size_t a, std::size_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
    edges.emplace_back(a, b);
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  // Seed clique on m + 1 nodes keeps every early node eligible.
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = i + 1; j <= m; ++j) connect(i, j);
  }
  for (std::size_t v = m + 1; v < n; ++v) {
    std::unordered_set<std::size_t> targets;
    while (targets.size() < m) {
      const std::size_t pick = endpoints[rng.below(endpoints.size())];
      if (pick != v) targets.insert(pick);
    }
    // Deterministic attach order (unordered_set iteration is not).
    std::vector<std::size_t> ordered(targets.begin(), targets.end());
    std::sort(ordered.begin(), ordered.end());
    for (const std::size_t t : ordered) connect(v, t);
  }

  Draft draft;
  for (std::size_t i = 0; i < n; ++i) {
    draft.add_switch("b" + std::to_string(i));
  }
  for (const auto& [a, b] : edges) draft.add_link(a, b, link);
  const std::size_t src_sw = bfs_farthest(0, n, adj);
  const std::size_t dst_sw = bfs_farthest(src_sw, n, adj);
  const std::size_t src = draft.add_edge("SRC");
  const std::size_t dst = draft.add_edge("DST");
  draft.add_link(src, src_sw, link);
  draft.add_link(dst, dst_sw, link);

  Scenario s;
  s.name = "ba-n" + std::to_string(n) + "-s" + std::to_string(options.seed);
  s.description = "Barabasi-Albert preferential-attachment graph (n=" +
                  std::to_string(n) + ", m=" + std::to_string(m) + ", seed=" +
                  std::to_string(options.seed) + ").";
  s.topology = draft.realize();
  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  auto_route(s);
  return s;
}

// -- spec strings ------------------------------------------------------------

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad topology spec \"" + spec + "\": " + why +
                              "\n" + spec_grammar_help());
}

std::uint64_t spec_u64(const std::string& spec, const std::string& value) {
  const auto parsed = common::parse_u64(value);
  if (!parsed) bad_spec(spec, "bad integer: " + value);
  return *parsed;
}

double spec_double(const std::string& spec, const std::string& value) {
  const auto parsed = common::parse_double(value);
  if (!parsed) bad_spec(spec, "bad number: " + value);
  return *parsed;
}

}  // namespace

bool is_gen_spec(std::string_view spec) { return spec.starts_with("gen:"); }

std::string spec_grammar_help() {
  return "topology spec grammar: gen:<family>:key=value[,key=value...]\n"
         "  gen:fat-tree:k=8[,red=1]                k-ary fat-tree/Clos "
         "(5k^2/4 switches)\n"
         "  gen:internet2:scale=4[,rate=1e9,bneck=0.1,red=1]   Abilene "
         "backbone, scale routers/PoP\n"
         "  gen:waxman:n=250[,alpha=0.4,beta=0.4,seed=1,mindeg=2,red=1]\n"
         "  gen:ba:n=500[,m=2,seed=1,red=1]         Barabasi-Albert";
}

Scenario make_from_spec(const std::string& spec, LinkParams link) {
  if (!is_gen_spec(spec)) bad_spec(spec, "must start with gen:");
  const auto head = spec.find(':', 4);
  const std::string family =
      head == std::string::npos ? spec.substr(4) : spec.substr(4, head - 4);
  std::vector<std::pair<std::string, std::string>> opts;
  if (head != std::string::npos) {
    for (const std::string& part : common::split(spec.substr(head + 1), ',')) {
      if (part.empty()) continue;
      const auto eq = part.find('=');
      if (eq == std::string::npos) bad_spec(spec, "bad option " + part);
      opts.emplace_back(part.substr(0, eq), part.substr(eq + 1));
    }
  }

  if (family == "fat-tree" || family == "fattree") {
    FatTreeOptions options;
    for (const auto& [key, value] : opts) {
      if (key == "k") {
        options.k = static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "red") {
        options.red = spec_u64(spec, value) != 0;
      } else {
        bad_spec(spec, "unknown fat-tree option " + key);
      }
    }
    return make_fat_tree(options, link);
  }
  if (family == "internet2" || family == "abilene") {
    Internet2Options options;
    for (const auto& [key, value] : opts) {
      if (key == "scale") {
        options.scale = static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "rate") {
        options.trunk_rate_bps = spec_double(spec, value);
      } else if (key == "bneck") {
        options.bottleneck_fraction = spec_double(spec, value);
      } else if (key == "red") {
        options.red = spec_u64(spec, value) != 0;
      } else {
        bad_spec(spec, "unknown internet2 option " + key);
      }
    }
    return make_internet2(options, link);
  }
  if (family == "waxman") {
    WaxmanOptions options;
    for (const auto& [key, value] : opts) {
      if (key == "n") {
        options.switches = static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "alpha") {
        options.alpha = spec_double(spec, value);
      } else if (key == "beta") {
        options.beta = spec_double(spec, value);
      } else if (key == "seed") {
        options.seed = spec_u64(spec, value);
      } else if (key == "mindeg") {
        options.min_degree = static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "red") {
        options.red = spec_u64(spec, value) != 0;
      } else {
        bad_spec(spec, "unknown waxman option " + key);
      }
    }
    return make_waxman(options, link);
  }
  if (family == "ba" || family == "barabasi-albert") {
    BarabasiAlbertOptions options;
    for (const auto& [key, value] : opts) {
      if (key == "n") {
        options.switches = static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "m") {
        options.edges_per_arrival =
            static_cast<std::size_t>(spec_u64(spec, value));
      } else if (key == "seed") {
        options.seed = spec_u64(spec, value);
      } else if (key == "red") {
        options.red = spec_u64(spec, value) != 0;
      } else {
        bad_spec(spec, "unknown ba option " + key);
      }
    }
    return make_barabasi_albert(options, link);
  }
  bad_spec(spec, "unknown family " + family);
}

}  // namespace kar::topogen

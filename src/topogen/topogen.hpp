// Internet-scale topology generators: seeded, deterministic builders for
// the graph families the paper never reached (§4 evaluates at <= 28
// nodes).
//
// Four families, all emitting ready-to-route `topo::Scenario`s with
// pairwise-coprime switch IDs (assigned smallest-first through
// rns::CoprimePool, so Eq. 9 route-ID bit lengths stay minimal), a
// BFS-derived primary core path and Yen-derived protection assignments:
//
//   * k-ary fat-tree/Clos (datacenter): k pods x (k/2 edge + k/2 agg)
//     switches plus (k/2)^2 cores — 5k^2/4 switches, full pod/agg/core
//     wiring, structural names like "pod3/agg1";
//   * Internet2/Abilene backbone: the 11-PoP national footprint with
//     distance-derived delays and a designated bottleneck link
//     (Chicago-Indianapolis at a fraction of trunk rate), optionally
//     expanded to `scale` routers per PoP;
//   * Waxman random graphs: p(u,v) = beta * exp(-d(u,v) / (alpha * L))
//     over seeded uniform node placement;
//   * Barabasi-Albert preferential attachment: m edges per arriving node
//     onto an (m+1)-clique seed.
//
// The random families get a repair pass (connect stranded components into
// the largest one, then raise every node to a minimum degree) so every
// emitted graph is connected and usable for routing.
//
// Spec strings (`make_from_spec`) let CLI tools name generated topologies:
//
//   gen:fat-tree:k=8
//   gen:internet2:scale=4,bneck=0.1,red=1
//   gen:waxman:n=250,alpha=0.4,beta=0.4,seed=7
//   gen:ba:n=500,m=2,seed=3
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "topology/graph.hpp"
#include "topology/scenario.hpp"

namespace kar::topogen {

/// k-ary fat-tree knobs. `k` must be even and >= 2.
struct FatTreeOptions {
  std::size_t k = 4;
  /// Enable default RED AQM on every fabric link.
  bool red = false;
};

/// Internet2/Abilene backbone knobs.
struct Internet2Options {
  /// Routers per PoP (1 = the bare 11-node footprint; each PoP becomes a
  /// ring of `scale` routers with inter-PoP trunks spread across them).
  std::size_t scale = 1;
  /// Trunk serialization rate.
  double trunk_rate_bps = 1e9;
  /// Bottleneck rate as a fraction of the trunk rate.
  double bottleneck_fraction = 0.1;
  /// Enable default RED AQM on the bottleneck link.
  bool red = false;
};

/// Waxman random-graph knobs.
struct WaxmanOptions {
  std::size_t switches = 100;
  double alpha = 0.4;  ///< Distance decay scale (larger = longer links).
  double beta = 0.4;   ///< Overall link density.
  std::uint64_t seed = 1;
  std::size_t min_degree = 2;  ///< Repair pass raises every node to this.
  bool red = false;
};

/// Barabasi-Albert knobs.
struct BarabasiAlbertOptions {
  std::size_t switches = 100;
  std::size_t edges_per_arrival = 2;  ///< The BA "m"; seed clique is m+1.
  std::uint64_t seed = 1;
  bool red = false;
};

[[nodiscard]] topo::Scenario make_fat_tree(const FatTreeOptions& options,
                                           topo::LinkParams link = {});
[[nodiscard]] topo::Scenario make_internet2(const Internet2Options& options,
                                            topo::LinkParams link = {});
[[nodiscard]] topo::Scenario make_waxman(const WaxmanOptions& options,
                                         topo::LinkParams link = {});
[[nodiscard]] topo::Scenario make_barabasi_albert(
    const BarabasiAlbertOptions& options, topo::LinkParams link = {});

/// True when `spec` names a generated topology ("gen:...").
[[nodiscard]] bool is_gen_spec(std::string_view spec);

/// Builds the scenario a "gen:<family>:key=value,..." spec describes.
/// Throws std::invalid_argument (message includes the grammar) on unknown
/// families, keys, or malformed values.
[[nodiscard]] topo::Scenario make_from_spec(const std::string& spec,
                                            topo::LinkParams link = {});

/// One-line-per-family description of the spec grammar (for CLI help).
[[nodiscard]] std::string spec_grammar_help();

}  // namespace kar::topogen

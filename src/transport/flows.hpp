// Flow plumbing: demultiplexes edge deliveries to transport endpoints and
// bundles a TCP sender/receiver pair into an iperf-like bulk-transfer flow.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "routing/encoded_route.hpp"
#include "sim/network.hpp"
#include "transport/tcp.hpp"

namespace kar::transport {

/// Demultiplexes packets delivered at edge nodes to per-flow callbacks
/// keyed by (edge, flow id). Installs itself as the network's delivery
/// handler for each edge it learns about.
class FlowDispatcher {
 public:
  explicit FlowDispatcher(sim::Network& network) : net_(&network) {}

  using PacketHandler = std::function<void(const dataplane::Packet&)>;

  /// Registers `handler` for packets of `flow_id` delivered at `edge`.
  /// Throws std::invalid_argument on duplicate registration.
  void register_endpoint(topo::NodeId edge, std::uint64_t flow_id,
                         PacketHandler handler);

  /// Packets delivered with no registered endpoint (e.g. late stragglers
  /// after a flow was torn down).
  [[nodiscard]] std::uint64_t unclaimed_packets() const noexcept {
    return unclaimed_;
  }

 private:
  struct Key {
    topo::NodeId edge;
    std::uint64_t flow;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.edge) << 32) ^
                                        k.flow);
    }
  };

  sim::Network* net_;
  std::unordered_map<Key, PacketHandler, KeyHash> handlers_;
  std::unordered_map<topo::NodeId, bool> installed_;
  std::uint64_t unclaimed_ = 0;
};

/// An iperf-like bulk TCP transfer: unbounded data from the source edge to
/// the destination edge, ACKs flowing back on a reverse route, goodput
/// recorded in time bins. This is the measurement instrument behind
/// Figures 4, 5, 7 and 8.
class BulkTransferFlow {
 public:
  /// Routes are copied and kept alive by the flow. `forward` carries data
  /// src → dst; `reverse` carries ACKs dst → src.
  BulkTransferFlow(sim::Network& network, FlowDispatcher& dispatcher,
                   routing::EncodedRoute forward, routing::EncodedRoute reverse,
                   std::uint64_t flow_id, TcpParams params = {},
                   double goodput_bin_s = 1.0);

  BulkTransferFlow(const BulkTransferFlow&) = delete;
  BulkTransferFlow& operator=(const BulkTransferFlow&) = delete;

  /// Schedules transmission start/stop at absolute simulation times.
  void start_at(double time);
  void stop_at(double time);

  /// Replaces the data route in place (models a controller pushing a
  /// recomputed route ID to the ingress edge — the paper's "traditional
  /// approach" to failure reaction). Endpoints must match.
  void set_forward_route(routing::EncodedRoute route);
  /// Replaces the ACK route in place; endpoints must match.
  void set_reverse_route(routing::EncodedRoute route);

  [[nodiscard]] TcpSender& sender() noexcept { return *sender_; }
  [[nodiscard]] TcpReceiver& receiver() noexcept { return *receiver_; }
  [[nodiscard]] const TcpSender& sender() const noexcept { return *sender_; }
  [[nodiscard]] const TcpReceiver& receiver() const noexcept { return *receiver_; }

  /// Mean goodput (payload bytes delivered in order) over [t0, t1) in Mb/s.
  [[nodiscard]] double goodput_mbps(double t0, double t1) const {
    return receiver_->goodput().mbps_between(t0, t1);
  }

 private:
  sim::Network* net_;
  routing::EncodedRoute forward_;
  routing::EncodedRoute reverse_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace kar::transport

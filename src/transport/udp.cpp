#include "transport/udp.hpp"

#include <stdexcept>

namespace kar::transport {

using dataplane::Datagram;
using dataplane::Packet;

std::uint64_t send_datagram(sim::Network& network,
                            const routing::EncodedRoute& route,
                            std::uint64_t flow_id, std::uint64_t sequence,
                            std::size_t payload_bytes) {
  Packet packet;
  packet.transport = Datagram{sequence};
  packet.flow_id = flow_id;
  network.edge_at(route.src_edge).stamp(packet, route, payload_bytes);
  network.inject(route.src_edge, std::move(packet));
  return sequence;
}

CbrProbe::CbrProbe(sim::Network& network, FlowDispatcher& dispatcher,
                   routing::EncodedRoute route, std::uint64_t flow_id,
                   double interval_s, std::size_t payload_bytes)
    : net_(&network),
      route_(std::move(route)),
      flow_id_(flow_id),
      interval_s_(interval_s),
      payload_bytes_(payload_bytes) {
  dispatcher.register_endpoint(
      route_.dst_edge, flow_id_, [this](const Packet& packet) {
        if (const auto* datagram = std::get_if<Datagram>(&packet.transport)) {
          ++received_;
          if (on_receive_) on_receive_(datagram->sequence, packet);
        }
      });
}

void CbrProbe::tick() {
  if (!running_) return;
  send_datagram(*net_, route_, flow_id_, sent_, payload_bytes_);
  ++sent_;
  // Drift-free schedule: the k-th datagram goes out at exactly
  // start + k * interval, regardless of floating-point accumulation.
  net_->events().schedule_at(started_at_ + static_cast<double>(sent_) * interval_s_,
                             sim::EventKind::kTraffic,
                             [this] { tick(); });
}

void CbrProbe::start_at(double time) {
  net_->events().schedule_at(time, sim::EventKind::kTraffic, [this] {
    if (!running_) {
      running_ = true;
      started_at_ = net_->now();
      tick();
    }
  });
}

void CbrProbe::stop_at(double time) {
  net_->events().schedule_at(time, sim::EventKind::kTraffic,
                             [this] { running_ = false; });
}

void CbrProbe::set_route(routing::EncodedRoute route) {
  if (route.src_edge != route_.src_edge || route.dst_edge != route_.dst_edge) {
    throw std::invalid_argument("CbrProbe::set_route: endpoints must match");
  }
  route_ = std::move(route);
}

}  // namespace kar::transport

// Connectionless datagram sending: probe traffic for loss/stretch
// measurements and the constant-rate workloads used by a few benches.
#pragma once

#include <cstdint>
#include <functional>

#include "routing/encoded_route.hpp"
#include "sim/network.hpp"
#include "transport/flows.hpp"

namespace kar::transport {

/// Sends one datagram of `payload_bytes` along `route` right now.
/// Returns the sequence number used.
std::uint64_t send_datagram(sim::Network& network,
                            const routing::EncodedRoute& route,
                            std::uint64_t flow_id, std::uint64_t sequence,
                            std::size_t payload_bytes);

/// Constant-bit-rate datagram source with a per-delivery callback at the
/// receiving edge. Used to measure loss and path stretch around failures
/// without TCP dynamics in the way.
class CbrProbe {
 public:
  /// Emits `payload_bytes` datagrams every `interval_s` seconds between
  /// start_at() and stop_at(). Deliveries invoke `on_receive(sequence,
  /// packet)` via the dispatcher.
  CbrProbe(sim::Network& network, FlowDispatcher& dispatcher,
           routing::EncodedRoute route, std::uint64_t flow_id,
           double interval_s, std::size_t payload_bytes);

  CbrProbe(const CbrProbe&) = delete;
  CbrProbe& operator=(const CbrProbe&) = delete;

  void start_at(double time);
  void stop_at(double time);

  /// Swaps the route used for subsequent datagrams (models a controller
  /// pushing a recomputed route ID to the ingress edge). The new route must
  /// share both endpoints with the old one.
  void set_route(routing::EncodedRoute route);

  using ReceiveHandler =
      std::function<void(std::uint64_t sequence, const dataplane::Packet&)>;
  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  void tick();

  sim::Network* net_;
  routing::EncodedRoute route_;
  std::uint64_t flow_id_;
  double interval_s_;
  std::size_t payload_bytes_;
  bool running_ = false;
  double started_at_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  ReceiveHandler on_receive_;
};

}  // namespace kar::transport

// Reno/NewReno TCP with SACK and adaptive reordering detection, over the
// simulated KAR network.
//
// This is the measurement substrate that replaces iperf in the paper's
// evaluation. The mechanism that makes the paper's numbers move is TCP's
// sensitivity to *packet reordering*: deflected packets take longer paths,
// arrive out of order, trigger duplicate ACKs, and duplicate ACKs beyond
// the threshold trigger (spurious) fast retransmits and congestion-window
// reductions.
//
// Two operating points are supported, bracketing the paper's stack:
//   * plain NewReno (enable_sack = false): maximally reorder-sensitive;
//   * SACK + adaptive reordering (default): the receiver reports
//     out-of-order blocks (RFC 2018) and the sender, on discovering that a
//     presumed-lost segment was merely late, raises its duplicate-ACK
//     threshold like Linux's tcp_reordering metric — which is what let the
//     paper's emulated kernel stack hold ~75% of nominal throughput under
//     persistent deflection-induced reordering.
//
// Simplifications (documented, deliberate):
//   * sequence space counts MSS-sized segments, not bytes;
//   * no SYN/FIN handshake — flows are long-lived bulk transfers;
//   * every data segment is ACKed immediately (no delayed ACK);
//   * RTO per RFC 6298 with go-back-N retransmission after timeout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/rng.hpp"
#include "dataplane/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/encoded_route.hpp"
#include "sim/network.hpp"
#include "stats/timeseries.hpp"

namespace kar::transport {

/// Optional observability sinks for a TCP sender (src/obs/). Both are
/// nullable; with neither attached the hot path pays a single branch.
/// Counters land in `metrics` (kar_tcp_* families, tagged with `labels`);
/// retransmit/RTO instants and cwnd counter samples land in `trace`.
struct TcpObservability {
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::Labels labels;  ///< Constant labels, e.g. {{"flow", "1"}}.
};

/// Connection tuning knobs.
struct TcpParams {
  std::size_t mss_bytes = 1460;        ///< Payload bytes per data segment.
  double initial_rto_s = 1.0;          ///< RFC 6298 initial RTO.
  double min_rto_s = 0.2;              ///< Lower clamp (Linux-like).
  double max_rto_s = 60.0;
  std::uint64_t initial_cwnd_segments = 10;
  std::uint64_t receiver_window_segments = 512;
  std::uint32_t dupack_threshold = 3;  ///< Base duplicate-ACK threshold.
  bool enable_sack = true;             ///< RFC 2018 selective ACKs.
  /// Raise the effective dupack threshold when SACK reveals that a
  /// presumed-lost segment actually arrived late (Linux tcp_reordering).
  bool adaptive_reordering = true;
  std::uint32_t max_reordering = 300;  ///< Cap on the adapted threshold.
  /// Total data segments the flow offers; 0 = unbounded bulk transfer.
  /// Finite flows (the traffic engine's sized transfers) stop offering new
  /// data at this sequence; in-flight data is still retransmitted and the
  /// sender quiesces once everything is cumulatively ACKed.
  std::uint64_t limit_segments = 0;
  /// Multiplicative RTO timer jitter: each armed timer fires after
  /// rto * (1 + U[-jitter/2, +jitter/2]), drawn from a per-flow
  /// deterministic stream. Real stacks carry this kind of clock noise;
  /// without it a synchronized burst of flows phase-locks — every flow
  /// times out, collides, and re-doubles its RTO in lockstep forever
  /// (classic retry self-synchronization). 0 disables (legacy behavior,
  /// bit-exact).
  double rto_jitter = 0.0;
};

/// Sender-side counters for assertions and reporting.
struct TcpSenderStats {
  std::uint64_t segments_sent = 0;        ///< Data segments put on the wire.
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;          ///< All retransmitted segments.
  std::uint64_t fast_retransmits = 0;     ///< Fast-retransmit entries.
  std::uint64_t timeouts = 0;             ///< RTO expirations.
  std::uint64_t acks_received = 0;
  std::uint64_t dup_acks_received = 0;
  std::uint64_t sacked_segments = 0;      ///< Scoreboard insertions.
  std::uint64_t reorder_events = 0;       ///< Detected late (not lost) segments.
  std::uint64_t max_reorder_distance = 0; ///< Largest observed displacement.
};

/// Bulk-data Reno/NewReno(+SACK) sender. Created stopped; call start().
class TcpSender {
 public:
  /// Sends along `data_route` (stamped via the network's ingress edge).
  /// The network and route must outlive the sender.
  TcpSender(sim::Network& network, const routing::EncodedRoute& data_route,
            std::uint64_t flow_id, TcpParams params = {});

  /// Begins (unbounded) bulk transmission at the current simulation time.
  void start();
  /// Stops offering new data (in-flight data still gets retransmitted).
  void stop();

  /// Feeds an arriving (pure) ACK to the sender. Wired up by BulkTransferFlow.
  void on_ack(const dataplane::TcpSegment& segment);

  /// Attaches observability sinks (idempotent; call before start()).
  void set_observability(const TcpObservability& sinks);

  [[nodiscard]] const TcpSenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double cwnd_segments() const noexcept { return cwnd_; }
  [[nodiscard]] double ssthresh_segments() const noexcept { return ssthresh_; }
  [[nodiscard]] double srtt_s() const noexcept { return srtt_; }
  [[nodiscard]] std::uint64_t flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] bool in_fast_recovery() const noexcept { return in_recovery_; }
  /// True for finite flows (limit_segments != 0) once every offered
  /// segment has been cumulatively ACKed.
  [[nodiscard]] bool complete() const noexcept {
    return params_.limit_segments != 0 && snd_una_ >= params_.limit_segments;
  }
  /// Effective duplicate-ACK threshold after reordering adaptation.
  [[nodiscard]] std::uint32_t dupack_threshold() const noexcept {
    return dupthresh_;
  }

 private:
  void maybe_send();
  void send_segment(std::uint64_t seq, bool is_retransmit);
  void enter_fast_retransmit();
  /// SACK recovery (RFC 6675 pipe-style): fills the window with hole
  /// retransmissions first, then new data, based on an in-flight estimate.
  void recovery_send();
  /// First un-SACKed, un-retransmitted segment in [snd_una_, recover_).
  [[nodiscard]] std::optional<std::uint64_t> next_hole() const;
  void on_new_ack(std::uint64_t ack, std::uint64_t prev_highest_sacked);
  /// Merges SACK blocks into the scoreboard; returns true when new
  /// information arrived.
  bool merge_sack(const std::vector<dataplane::SackBlock>& blocks,
                  std::uint64_t prev_highest_sacked);
  void note_reordering(std::uint64_t distance);
  /// True when the loss-detection rule fires for snd_una_.
  [[nodiscard]] bool first_hole_lost() const;
  void restart_rto();
  void cancel_rto();
  void on_rto();
  void sample_rtt(std::uint64_t acked_up_to);
  /// Records a kTcp instant named `what` plus a cwnd counter sample.
  void trace_tcp(const char* what);

  sim::Network* net_;
  const routing::EncodedRoute* route_;
  std::uint64_t flow_id_;
  TcpParams params_;

  bool running_ = false;
  std::uint64_t snd_una_ = 0;   ///< Oldest unacknowledged segment.
  std::uint64_t snd_nxt_ = 0;   ///< Next segment index to transmit.
  std::uint64_t highest_sent_ = 0;  ///< One past the highest segment ever sent.
  double cwnd_ = 0;             ///< Congestion window (segments, fractional).
  double ssthresh_ = 0;
  std::uint32_t dup_acks_ = 0;
  std::uint32_t dupthresh_ = 3;  ///< Adapted duplicate-ACK threshold.
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;   ///< NewReno recovery point.

  /// SACK scoreboard: segments above snd_una_ known to have arrived.
  std::set<std::uint64_t> scoreboard_;
  /// Segments retransmitted and not yet cumulatively ACKed (Karn + used to
  /// distinguish genuine reordering from retransmission arrivals).
  std::set<std::uint64_t> retransmitted_;

  // RFC 6298 state.
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_ = 1.0;
  bool have_rtt_ = false;
  std::uint64_t rto_epoch_ = 0;  ///< Invalidates superseded timer events.
  bool rto_armed_ = false;
  common::Rng jitter_rng_;  ///< Per-flow RTO jitter stream (rto_jitter > 0).

  /// Send timestamps of unretransmitted segments (Karn's rule).
  std::unordered_map<std::uint64_t, double> send_time_;

  // Observability (all inert until set_observability).
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter m_retransmits_;
  obs::Counter m_fast_retransmits_;
  obs::Counter m_timeouts_;
  obs::Counter m_reorder_events_;
  obs::Histogram m_rtt_;

  TcpSenderStats stats_;
};

/// Receiver-side counters.
struct TcpReceiverStats {
  std::uint64_t segments_received = 0;      ///< All data arrivals (incl. dups).
  std::uint64_t duplicate_segments = 0;     ///< Below the cumulative ACK.
  std::uint64_t out_of_order_segments = 0;  ///< Arrived above the expected seq.
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered_segments = 0;     ///< In-order goodput, segments.
  std::uint64_t delivered_bytes = 0;        ///< In-order goodput, payload bytes.
};

/// TCP receiver: cumulative ACK + out-of-order reassembly buffer + SACK
/// block generation. Delivers in-order payload into a time-binned goodput
/// series.
class TcpReceiver {
 public:
  /// ACKs travel along `ack_route` (destination edge back to the source).
  TcpReceiver(sim::Network& network, const routing::EncodedRoute& ack_route,
              std::uint64_t flow_id, TcpParams params = {},
              double goodput_bin_s = 1.0);

  /// Feeds an arriving data segment. Wired up by BulkTransferFlow.
  void on_data(const dataplane::TcpSegment& segment);

  [[nodiscard]] const TcpReceiverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const stats::BinnedSeries& goodput() const noexcept {
    return goodput_;
  }
  [[nodiscard]] std::uint64_t next_expected() const noexcept { return next_expected_; }

  /// The SACK blocks that would accompany an ACK right now (exposed for
  /// tests); first block contains `latest_seq` when it is buffered.
  [[nodiscard]] std::vector<dataplane::SackBlock> sack_blocks(
      std::uint64_t latest_seq) const;

 private:
  void send_ack(std::uint64_t latest_seq);

  sim::Network* net_;
  const routing::EncodedRoute* route_;
  std::uint64_t flow_id_;
  TcpParams params_;
  std::uint64_t next_expected_ = 0;
  /// Out-of-order segments received (sparse, above next_expected_).
  std::map<std::uint64_t, std::uint32_t> ooo_;  // seq -> payload bytes
  stats::BinnedSeries goodput_;
  TcpReceiverStats stats_;
};

}  // namespace kar::transport

#include "transport/flows.hpp"

#include <stdexcept>

namespace kar::transport {

void FlowDispatcher::register_endpoint(topo::NodeId edge, std::uint64_t flow_id,
                                       PacketHandler handler) {
  if (!handler) throw std::invalid_argument("FlowDispatcher: null handler");
  const Key key{edge, flow_id};
  if (!handlers_.emplace(key, std::move(handler)).second) {
    throw std::invalid_argument("FlowDispatcher: duplicate endpoint");
  }
  if (!installed_[edge]) {
    installed_[edge] = true;
    net_->set_delivery_handler(edge, [this, edge](const dataplane::Packet& packet) {
      const auto it = handlers_.find(Key{edge, packet.flow_id});
      if (it == handlers_.end()) {
        ++unclaimed_;
        return;
      }
      it->second(packet);
    });
  }
}

BulkTransferFlow::BulkTransferFlow(sim::Network& network, FlowDispatcher& dispatcher,
                                   routing::EncodedRoute forward,
                                   routing::EncodedRoute reverse,
                                   std::uint64_t flow_id, TcpParams params,
                                   double goodput_bin_s)
    : net_(&network), forward_(std::move(forward)), reverse_(std::move(reverse)) {
  if (forward_.src_edge != reverse_.dst_edge ||
      forward_.dst_edge != reverse_.src_edge) {
    throw std::invalid_argument(
        "BulkTransferFlow: reverse route must mirror the forward route");
  }
  sender_ = std::make_unique<TcpSender>(network, forward_, flow_id, params);
  receiver_ =
      std::make_unique<TcpReceiver>(network, reverse_, flow_id, params, goodput_bin_s);

  // Data segments surface at the destination edge; ACKs at the source edge.
  dispatcher.register_endpoint(
      forward_.dst_edge, flow_id, [this](const dataplane::Packet& packet) {
        if (const auto* segment =
                std::get_if<dataplane::TcpSegment>(&packet.transport);
            segment && segment->has_data) {
          receiver_->on_data(*segment);
        }
      });
  dispatcher.register_endpoint(
      forward_.src_edge, flow_id, [this](const dataplane::Packet& packet) {
        if (const auto* segment =
                std::get_if<dataplane::TcpSegment>(&packet.transport);
            segment && !segment->has_data) {
          sender_->on_ack(*segment);
        }
      });
}

void BulkTransferFlow::set_forward_route(routing::EncodedRoute route) {
  if (route.src_edge != forward_.src_edge || route.dst_edge != forward_.dst_edge) {
    throw std::invalid_argument(
        "BulkTransferFlow::set_forward_route: endpoints must match");
  }
  // The sender holds a pointer to forward_; assignment updates it in place.
  forward_ = std::move(route);
}

void BulkTransferFlow::set_reverse_route(routing::EncodedRoute route) {
  if (route.src_edge != reverse_.src_edge || route.dst_edge != reverse_.dst_edge) {
    throw std::invalid_argument(
        "BulkTransferFlow::set_reverse_route: endpoints must match");
  }
  reverse_ = std::move(route);
}

void BulkTransferFlow::start_at(double time) {
  net_->events().schedule_at(time, sim::EventKind::kTraffic,
                             [this] { sender_->start(); });
}

void BulkTransferFlow::stop_at(double time) {
  net_->events().schedule_at(time, sim::EventKind::kTraffic,
                             [this] { sender_->stop(); });
}

}  // namespace kar::transport

#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kar::transport {

using dataplane::Packet;
using dataplane::SackBlock;
using dataplane::TcpSegment;

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(sim::Network& network, const routing::EncodedRoute& data_route,
                     std::uint64_t flow_id, TcpParams params)
    : net_(&network),
      route_(&data_route),
      flow_id_(flow_id),
      params_(params),
      cwnd_(static_cast<double>(params.initial_cwnd_segments)),
      ssthresh_(static_cast<double>(params.receiver_window_segments)),
      dupthresh_(params.dupack_threshold),
      rto_(params.initial_rto_s),
      jitter_rng_(common::derive_seed(flow_id, /*salt=*/0x52544f)) {}

void TcpSender::set_observability(const TcpObservability& sinks) {
  trace_ = sinks.trace;
  if (sinks.metrics != nullptr) {
    obs::MetricsRegistry& reg = *sinks.metrics;
    m_retransmits_ = reg.counter("kar_tcp_retransmits_total",
                                 "Retransmitted TCP segments", sinks.labels);
    m_fast_retransmits_ =
        reg.counter("kar_tcp_fast_retransmits_total",
                    "Fast-retransmit (dupack/SACK loss) entries", sinks.labels);
    m_timeouts_ = reg.counter("kar_tcp_timeouts_total", "RTO expirations",
                              sinks.labels);
    m_reorder_events_ = reg.counter(
        "kar_tcp_reorder_events_total",
        "Segments detected late (reordered), not lost", sinks.labels);
    m_rtt_ = reg.histogram(
        "kar_tcp_rtt_seconds", "Smoothed per-ACK RTT samples",
        {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0},
        sinks.labels);
  }
}

void TcpSender::trace_tcp(const char* what) {
  if (trace_ == nullptr) return;
  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  obs::TraceRecord instant;
  instant.cat = obs::TraceCategory::kTcp;
  instant.name = what;
  instant.ts_s = net_->now();
  instant.id = flow_id_;
  instant.args = {{"cwnd", fmt(cwnd_)},
                  {"ssthresh", fmt(ssthresh_)},
                  {"snd_una", std::to_string(snd_una_)},
                  {"dupthresh", std::to_string(dupthresh_)}};
  trace_->record(instant);
  // Counter sample so Perfetto/chrome://tracing draw cwnd as a track.
  obs::TraceRecord counter;
  counter.cat = obs::TraceCategory::kTcp;
  counter.name = "tcp cwnd flow " + std::to_string(flow_id_);
  counter.ts_s = net_->now();
  counter.counter = true;
  counter.id = flow_id_;
  counter.args = {{"cwnd", fmt(cwnd_)}, {"ssthresh", fmt(ssthresh_)}};
  trace_->record(counter);
}

void TcpSender::start() {
  running_ = true;
  maybe_send();
}

void TcpSender::stop() { running_ = false; }

void TcpSender::send_segment(std::uint64_t seq, bool is_retransmit) {
  if (seq >= highest_sent_) highest_sent_ = seq + 1;
  Packet packet;
  TcpSegment segment;
  segment.seq = seq;
  segment.has_data = true;
  segment.payload_bytes = static_cast<std::uint32_t>(params_.mss_bytes);
  packet.transport = segment;
  packet.flow_id = flow_id_;
  net_->edge_at(route_->src_edge).stamp(packet, *route_, params_.mss_bytes);
  net_->inject(route_->src_edge, std::move(packet));

  ++stats_.segments_sent;
  stats_.bytes_sent += params_.mss_bytes;
  if (is_retransmit) {
    ++stats_.retransmits;
    m_retransmits_.inc();
    send_time_.erase(seq);  // Karn: never sample RTT from retransmits
    retransmitted_.insert(seq);
  } else {
    send_time_[seq] = net_->now();
  }
  if (!rto_armed_) restart_rto();
}

void TcpSender::maybe_send() {
  if (!running_) return;
  const auto window = static_cast<std::uint64_t>(std::min(
      cwnd_, static_cast<double>(params_.receiver_window_segments)));
  while (snd_nxt_ < snd_una_ + window) {
    if (params_.limit_segments != 0 && snd_nxt_ >= params_.limit_segments) {
      break;  // finite flow: all offered data is sent (or in flight)
    }
    if (params_.enable_sack && snd_nxt_ < highest_sent_ &&
        scoreboard_.contains(snd_nxt_)) {
      // Go-back-N resend after an RTO: the receiver already holds this
      // segment (SACKed); skip it.
      ++snd_nxt_;
      continue;
    }
    // After an RTO snd_nxt_ is pulled back to snd_una_ (go-back-N), so
    // sends below highest_sent_ are retransmissions of the lost window.
    send_segment(snd_nxt_, /*is_retransmit=*/snd_nxt_ < highest_sent_);
    ++snd_nxt_;
  }
}

void TcpSender::restart_rto() {
  ++rto_epoch_;
  rto_armed_ = true;
  const std::uint64_t epoch = rto_epoch_;
  double delay = rto_;
  if (params_.rto_jitter > 0.0) {
    delay *= 1.0 + params_.rto_jitter * (jitter_rng_.uniform() - 0.5);
  }
  net_->events().schedule_in(delay, sim::EventKind::kTransportTimer,
                             [this, epoch] {
                               if (rto_armed_ && epoch == rto_epoch_) on_rto();
                             });
}

void TcpSender::cancel_rto() {
  rto_armed_ = false;
  ++rto_epoch_;
}

void TcpSender::on_rto() {
  // RFC 6298 §5: collapse to one segment, back off the timer, retransmit
  // the oldest outstanding segment, and restart slow start.
  ++stats_.timeouts;
  m_timeouts_.inc();
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  trace_tcp("rto");
  rto_ = std::min(rto_ * 2.0, params_.max_rto_s);
  send_time_.clear();  // Karn: outstanding samples are invalid now
  if (snd_una_ < highest_sent_) {
    // Go-back-N: everything outstanding is presumed lost; pull snd_nxt_
    // back so the window is retransmitted as the ACK clock restarts
    // (SACKed segments are skipped in maybe_send).
    snd_nxt_ = snd_una_;
    send_segment(snd_nxt_, /*is_retransmit=*/true);
    ++snd_nxt_;
  }
  restart_rto();
}

void TcpSender::sample_rtt(std::uint64_t acked_up_to) {
  // Use the newest segment at or below the cumulative ACK that still has a
  // valid (non-retransmitted) timestamp; drop all covered entries.
  double sample = -1.0;
  for (auto it = send_time_.begin(); it != send_time_.end();) {
    if (it->first < acked_up_to) {
      sample = std::max(sample, net_->now() - it->second);
      it = send_time_.erase(it);
    } else {
      ++it;
    }
  }
  if (sample < 0.0) return;
  m_rtt_.observe(sample);
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, params_.min_rto_s, params_.max_rto_s);
}

void TcpSender::note_reordering(std::uint64_t distance) {
  ++stats_.reorder_events;
  m_reorder_events_.inc();
  stats_.max_reorder_distance = std::max(stats_.max_reorder_distance, distance);
  if (!params_.adaptive_reordering) return;
  // Linux tcp_reordering: the dupack threshold follows the largest
  // displacement ever observed (a late packet that far back was not lost).
  const auto candidate = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(distance + 1, params_.max_reordering));
  dupthresh_ = std::max(dupthresh_, std::max(candidate, params_.dupack_threshold));
}

bool TcpSender::merge_sack(const std::vector<SackBlock>& blocks,
                           std::uint64_t prev_highest_sacked) {
  bool news = false;
  for (const SackBlock& block : blocks) {
    const std::uint64_t begin = std::max(block.begin, snd_una_);
    const std::uint64_t end = std::min(block.end, snd_nxt_);
    for (std::uint64_t seq = begin; seq < end; ++seq) {
      if (scoreboard_.insert(seq).second) {
        news = true;
        ++stats_.sacked_segments;
        // A never-retransmitted segment SACKed *below* already-SACKed data
        // arrived late, not lost: that is reordering, not loss.
        if (seq < prev_highest_sacked && !retransmitted_.contains(seq)) {
          note_reordering(prev_highest_sacked - seq);
        }
      }
    }
  }
  return news;
}

bool TcpSender::first_hole_lost() const {
  if (params_.enable_sack) {
    // RFC 6675-style: enough SACKed segments above the hole.
    return scoreboard_.size() >= dupthresh_;
  }
  return dup_acks_ >= dupthresh_;
}

std::optional<std::uint64_t> TcpSender::next_hole() const {
  const std::uint64_t limit = std::min(recover_, snd_nxt_);
  for (std::uint64_t seq = snd_una_; seq < limit; ++seq) {
    if (!scoreboard_.contains(seq) && !retransmitted_.contains(seq)) {
      return seq;
    }
  }
  return std::nullopt;
}

void TcpSender::recovery_send() {
  // RFC 6675-style pipe accounting: segments lost before recovery started
  // (un-SACKed, un-retransmitted holes below recover_) are NOT in flight;
  // retransmissions and post-entry new data are.
  const auto window = static_cast<std::uint64_t>(std::min(
      cwnd_, static_cast<double>(params_.receiver_window_segments)));
  const std::uint64_t new_base = std::max(recover_, snd_una_);
  const auto sacked_above_recover = static_cast<std::uint64_t>(
      std::distance(scoreboard_.lower_bound(new_base), scoreboard_.end()));
  const std::uint64_t new_data_out =
      (snd_nxt_ > new_base ? snd_nxt_ - new_base : 0) - sacked_above_recover;
  std::uint64_t in_flight = retransmitted_.size() + new_data_out;
  while (in_flight < window) {
    if (const auto hole = next_hole()) {
      send_segment(*hole, /*is_retransmit=*/true);
    } else if (running_ && (params_.limit_segments == 0 ||
                            snd_nxt_ < params_.limit_segments)) {
      send_segment(snd_nxt_, /*is_retransmit=*/snd_nxt_ < highest_sent_);
      ++snd_nxt_;
    } else {
      break;
    }
    ++in_flight;
  }
}

void TcpSender::enter_fast_retransmit() {
  // RFC 5681 fast retransmit + NewReno/SACK recovery entry.
  ++stats_.fast_retransmits;
  m_fast_retransmits_.inc();
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = ssthresh_ + static_cast<double>(params_.dupack_threshold);
  in_recovery_ = true;
  recover_ = snd_nxt_;
  trace_tcp("fast-retransmit");
  send_segment(snd_una_, /*is_retransmit=*/true);
  if (params_.enable_sack) recovery_send();
  restart_rto();
}

void TcpSender::on_new_ack(std::uint64_t ack, std::uint64_t prev_highest_sacked) {
  const std::uint64_t newly_acked = ack - snd_una_;
  // Reordering detection on cumulative advance: a segment that was never
  // retransmitted, never SACKed, and is below already-SACKed data arrived
  // late through the network.
  if (prev_highest_sacked > 0) {
    for (std::uint64_t seq = snd_una_; seq < ack; ++seq) {
      if (seq < prev_highest_sacked && !retransmitted_.contains(seq) &&
          !scoreboard_.contains(seq)) {
        note_reordering(prev_highest_sacked - seq);
      }
    }
  }
  sample_rtt(ack);
  // Scoreboard bookkeeping: everything below the cumulative ACK is done.
  scoreboard_.erase(scoreboard_.begin(), scoreboard_.lower_bound(ack));
  retransmitted_.erase(retransmitted_.begin(), retransmitted_.lower_bound(ack));

  if (in_recovery_) {
    if (ack >= recover_) {
      // Full ACK: leave recovery (NewReno).
      in_recovery_ = false;
      cwnd_ = ssthresh_;
      dup_acks_ = 0;
    } else {
      // Partial ACK: more holes remain below the recovery point.
      snd_una_ = ack;
      if (params_.enable_sack) {
        // Pipe-based repair: refill the window with hole retransmissions.
        recovery_send();
      } else {
        // Plain NewReno: one retransmission per partial ACK, deflated cwnd.
        send_segment(snd_una_, /*is_retransmit=*/true);
        cwnd_ = std::max(cwnd_ - static_cast<double>(newly_acked) + 1.0, 1.0);
        maybe_send();
      }
      restart_rto();
      return;
    }
  } else {
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly_acked);  // slow start
    } else {
      cwnd_ += static_cast<double>(newly_acked) / cwnd_;  // congestion avoidance
    }
  }
  snd_una_ = ack;
  if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
  if (snd_una_ == snd_nxt_ && snd_una_ == highest_sent_) {
    cancel_rto();
  } else {
    restart_rto();
  }
  maybe_send();
}

void TcpSender::on_ack(const TcpSegment& segment) {
  ++stats_.acks_received;
  const std::uint64_t ack = segment.ack;
  if (ack < snd_una_) return;  // stale (reordered on the reverse path)

  const std::uint64_t prev_highest_sacked =
      scoreboard_.empty() ? 0 : *scoreboard_.rbegin() + 1;
  bool sack_news = false;
  if (params_.enable_sack && !segment.sack.empty()) {
    sack_news = merge_sack(segment.sack, prev_highest_sacked);
  }

  if (ack > snd_una_) {
    on_new_ack(ack, prev_highest_sacked);
    return;
  }
  if (snd_nxt_ == snd_una_) return;  // nothing outstanding

  ++stats_.dup_acks_received;
  ++dup_acks_;
  if (in_recovery_) {
    if (params_.enable_sack) {
      recovery_send();  // pipe shrank by one delivered segment
    } else {
      cwnd_ += 1.0;  // NewReno window inflation per extra dup ACK
      maybe_send();
    }
    return;
  }
  // Loss detection: SACK scoreboard occupancy or raw dupack count.
  if ((params_.enable_sack && (sack_news || !segment.sack.empty()) &&
       first_hole_lost()) ||
      (!params_.enable_sack && first_hole_lost())) {
    enter_fast_retransmit();
  }
  maybe_send();
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(sim::Network& network,
                         const routing::EncodedRoute& ack_route,
                         std::uint64_t flow_id, TcpParams params,
                         double goodput_bin_s)
    : net_(&network),
      route_(&ack_route),
      flow_id_(flow_id),
      params_(params),
      goodput_(goodput_bin_s) {}

std::vector<SackBlock> TcpReceiver::sack_blocks(std::uint64_t latest_seq) const {
  std::vector<SackBlock> blocks;
  if (!params_.enable_sack || ooo_.empty()) return blocks;
  // Contiguous ranges of the reassembly buffer, ascending.
  std::vector<SackBlock> ranges;
  for (auto it = ooo_.begin(); it != ooo_.end(); ++it) {
    if (!ranges.empty() && ranges.back().end == it->first) {
      ranges.back().end = it->first + 1;
    } else {
      ranges.push_back(SackBlock{it->first, it->first + 1});
    }
  }
  // RFC 2018: the block containing the most recent arrival comes first.
  std::size_t first_index = ranges.size();
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (latest_seq >= ranges[i].begin && latest_seq < ranges[i].end) {
      first_index = i;
      break;
    }
  }
  if (first_index < ranges.size()) blocks.push_back(ranges[first_index]);
  // Then the highest remaining ranges (newest data), up to 3 total.
  for (std::size_t i = ranges.size(); i-- > 0 && blocks.size() < 3;) {
    if (i != first_index) blocks.push_back(ranges[i]);
  }
  return blocks;
}

void TcpReceiver::send_ack(std::uint64_t latest_seq) {
  Packet packet;
  TcpSegment segment;
  segment.ack = next_expected_;
  segment.has_data = false;
  segment.sack = sack_blocks(latest_seq);
  const std::size_t sack_option_bytes =
      segment.sack.empty() ? 0 : 2 + 8 * segment.sack.size();
  packet.transport = std::move(segment);
  packet.flow_id = flow_id_;
  net_->edge_at(route_->src_edge).stamp(packet, *route_, /*payload_bytes=*/0);
  packet.size_bytes += sack_option_bytes;
  net_->inject(route_->src_edge, std::move(packet));
  ++stats_.acks_sent;
}

void TcpReceiver::on_data(const TcpSegment& segment) {
  ++stats_.segments_received;
  const std::uint64_t seq = segment.seq;
  if (seq < next_expected_) {
    ++stats_.duplicate_segments;
  } else if (seq == next_expected_) {
    ++next_expected_;
    stats_.delivered_segments += 1;
    stats_.delivered_bytes += segment.payload_bytes;
    goodput_.add(net_->now(), static_cast<double>(segment.payload_bytes));
    // Drain any contiguous run from the reassembly buffer.
    auto it = ooo_.find(next_expected_);
    while (it != ooo_.end()) {
      stats_.delivered_segments += 1;
      stats_.delivered_bytes += it->second;
      goodput_.add(net_->now(), static_cast<double>(it->second));
      ooo_.erase(it);
      ++next_expected_;
      it = ooo_.find(next_expected_);
    }
  } else {
    ++stats_.out_of_order_segments;
    ooo_.emplace(seq, segment.payload_bytes);  // duplicate OOO arrivals collapse
  }
  // Immediate cumulative ACK on every arrival (dup ACKs included).
  send_ack(seq);
}

}  // namespace kar::transport

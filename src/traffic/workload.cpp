#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "routing/controller.hpp"
#include "topology/autoroute.hpp"
#include "topology/builders.hpp"
#include "transport/flows.hpp"

namespace kar::traffic {

using topo::LinkParams;
using topo::NodeId;

double exponential_interarrival(common::Rng& rng, double rate_per_s) {
  if (rate_per_s <= 0.0) {
    throw std::invalid_argument("exponential_interarrival: rate must be > 0");
  }
  // uniform() is in [0, 1); flip to (0, 1] so log() stays finite.
  return -std::log(1.0 - rng.uniform()) / rate_per_s;
}

std::uint64_t bounded_pareto(common::Rng& rng, double alpha,
                             std::uint64_t min_value,
                             std::uint64_t max_value) {
  if (alpha <= 0.0 || min_value == 0 || max_value < min_value) {
    throw std::invalid_argument("bounded_pareto: need alpha > 0 and 0 < min <= max");
  }
  if (min_value == max_value) return min_value;
  const double l = static_cast<double>(min_value);
  const double h = static_cast<double>(max_value);
  const double u = rng.uniform();
  // Inverse CDF of the Pareto truncated to [l, h].
  const double ratio = std::pow(l / h, alpha);
  const double x = l / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
  return static_cast<std::uint64_t>(
      std::clamp(x, l, h));
}

namespace {

/// Sampled start times for `spec.flows` flows, ascending.
std::vector<double> sample_starts(const WorkloadSpec& spec, common::Rng& rng) {
  std::vector<double> starts;
  starts.reserve(spec.flows);
  if (spec.arrivals == ArrivalProcess::kUniform) {
    const double spacing = 1.0 / spec.arrival_rate_per_s;
    for (std::size_t i = 0; i < spec.flows; ++i) {
      starts.push_back(static_cast<double>(i) * spacing);
    }
  } else {
    double t = 0.0;
    for (std::size_t i = 0; i < spec.flows; ++i) {
      t += exponential_interarrival(rng, spec.arrival_rate_per_s);
      starts.push_back(t);
    }
  }
  return starts;
}

std::uint64_t sample_size(const WorkloadSpec& spec, common::Rng& rng) {
  if (spec.sizes == SizeDistribution::kFixed) return spec.fixed_segments;
  return bounded_pareto(rng, spec.pareto_alpha, spec.min_segments,
                        spec.max_segments);
}

/// Attaches one host edge named `name` to `sw`, enforcing the KAR port
/// constraint (every port index must stay below the switch ID).
NodeId attach_host(topo::Topology& topo, NodeId sw, const std::string& name,
                   const LinkParams& params) {
  if (static_cast<topo::SwitchId>(topo.port_count(sw)) >= topo.switch_id(sw)) {
    throw std::invalid_argument(
        "Workload: switch " + topo.name(sw) + " (ID " +
        std::to_string(topo.switch_id(sw)) +
        ") has no port headroom for another host edge; lower host_fan or "
        "regenerate the topology with more ID headroom");
  }
  const NodeId host = topo.add_edge_node(name);
  topo.add_link(sw, host, params);
  return host;
}

/// Host access links must never be the constrained hop: comfortably above
/// the fastest core link they feed.
LinkParams host_link_params(double core_rate_bps) {
  LinkParams params;
  params.rate_bps = std::max(core_rate_bps * 4.0, 1e9);
  params.delay_s = 0.05e-3;
  params.queue_packets = 256;
  return params;
}

}  // namespace

Workload::Workload(topo::Scenario scenario, WorkloadSpec spec)
    : scenario_(std::move(scenario)), spec_(std::move(spec)) {
  if (spec_.flows == 0) {
    throw std::invalid_argument("Workload: spec.flows must be positive");
  }
  if (spec_.host_fan == 0) {
    throw std::invalid_argument("Workload: spec.host_fan must be positive");
  }
  if (!scenario_.bottleneck_a.empty()) {
    compile_bottleneck();
  } else {
    compile_mesh();
  }
}

void Workload::compile_bottleneck() {
  topo::Topology& topo = scenario_.topology;
  const auto a = topo.find(scenario_.bottleneck_a);
  const auto b = topo.find(scenario_.bottleneck_b);
  if (!a || !b) {
    throw std::invalid_argument("Workload: scenario designates bottleneck " +
                                scenario_.bottleneck_a + "-" +
                                scenario_.bottleneck_b +
                                " but the nodes do not exist");
  }
  // The access links only need to outrun the *uncongested* trunks around
  // the bottleneck, which themselves are faster than the bottleneck link.
  double core_rate = 0.0;
  for (std::size_t port = 0; port < topo.port_count(*a); ++port) {
    core_rate = std::max(
        core_rate, topo.link(topo.link_at(*a, static_cast<topo::PortIndex>(port)))
                       .params.rate_bps);
  }
  const LinkParams access = host_link_params(core_rate);

  std::vector<std::string> src_hosts, dst_hosts;
  for (std::size_t i = 0; i < spec_.host_fan; ++i) {
    const std::string sname = "H-src" + std::to_string(i);
    const std::string dname = "H-dst" + std::to_string(i);
    (void)attach_host(topo, *a, sname, access);
    (void)attach_host(topo, *b, dname, access);
    src_hosts.push_back(sname);
    dst_hosts.push_back(dname);
  }

  common::Rng rng(spec_.seed);
  const std::vector<double> starts = sample_starts(spec_, rng);
  plan_.reserve(spec_.flows);
  for (std::size_t i = 0; i < spec_.flows; ++i) {
    FlowPlan flow;
    flow.start_s = starts[i];
    flow.size_segments = sample_size(spec_, rng);
    // Round-robin over the host fans: flows spread across access links but
    // all funnel through the one bottleneck hop.
    flow.src_edge = src_hosts[i % src_hosts.size()];
    flow.dst_edge = dst_hosts[(i / src_hosts.size()) % dst_hosts.size()];
    flow.core_path = {scenario_.bottleneck_a, scenario_.bottleneck_b};
    plan_.push_back(std::move(flow));
  }
}

void Workload::compile_mesh() {
  topo::Topology& topo = scenario_.topology;
  common::Rng rng(spec_.seed);
  // One host per eligible switch, then sample distinct pairs.
  const std::vector<NodeId> hosts =
      topo::attach_host_edges(topo, host_link_params(0.0));
  if (hosts.size() < 2) {
    throw std::invalid_argument(
        "Workload: topology has fewer than two switches with host headroom");
  }
  const std::vector<double> starts = sample_starts(spec_, rng);
  plan_.reserve(spec_.flows);
  for (std::size_t i = 0; i < spec_.flows; ++i) {
    FlowPlan flow;
    flow.start_s = starts[i];
    flow.size_segments = sample_size(spec_, rng);
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    flow.src_edge = topo.name(src);
    flow.dst_edge = topo.name(dst);
    flow.core_path = topo::bfs_core_path(topo, src, dst);
    plan_.push_back(std::move(flow));
  }
}

WorkloadResult Workload::run(sim::NetworkConfig config) const {
  // The network mutates link state in place; run on a private copy so the
  // compiled workload stays reusable.
  topo::Topology topology = scenario_.topology;
  const routing::Controller controller(topology);
  sim::Network net(topology, controller, config);
  transport::FlowDispatcher dispatcher(net);

  std::vector<std::unique_ptr<transport::BulkTransferFlow>> flows;
  flows.reserve(plan_.size());
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const FlowPlan& p = plan_[i];
    topo::ScenarioRoute forward;
    forward.src_edge = p.src_edge;
    forward.dst_edge = p.dst_edge;
    forward.core_path = p.core_path;
    topo::ScenarioRoute reverse;
    reverse.src_edge = p.dst_edge;
    reverse.dst_edge = p.src_edge;
    reverse.core_path.assign(p.core_path.rbegin(), p.core_path.rend());

    transport::TcpParams tcp = spec_.tcp;
    tcp.limit_segments = p.size_segments;
    auto flow = std::make_unique<transport::BulkTransferFlow>(
        net, dispatcher,
        controller.encode_scenario(forward, topo::ProtectionLevel::kUnprotected),
        controller.encode_scenario(reverse, topo::ProtectionLevel::kUnprotected),
        /*flow_id=*/i, tcp, spec_.goodput_bin_s);
    flow->start_at(p.start_s);
    flow->stop_at(spec_.horizon_s);
    flows.push_back(std::move(flow));
  }

  // Concurrency probes: one sample per goodput bin plus one at every flow
  // arrival (the arrival instants are where concurrency peaks during a fast
  // ramp; bin-aligned probes alone can miss the all-alive moment). Counts
  // flows that have started and are not yet fully ACKed. Probes consume no
  // randomness and do not perturb packet events.
  WorkloadResult result;
  result.flows = plan_.size();
  const auto probe = [this, &flows, &result](double t) {
    std::size_t active = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (plan_[i].start_s <= t && !flows[i]->sender().complete()) ++active;
    }
    result.peak_concurrent = std::max(result.peak_concurrent, active);
  };
  const double probe_step = std::max(spec_.goodput_bin_s, 1e-3);
  for (double t = probe_step; t < spec_.horizon_s; t += probe_step) {
    net.events().schedule_at(t, [probe, t] { probe(t); });
  }
  for (const FlowPlan& p : plan_) {
    const double t = p.start_s;
    net.events().schedule_at(t, [probe, t] { probe(t); });
  }

  (void)net.events().run_until(spec_.horizon_s);
  // Post-horizon: no new data is offered; drain retransmissions and ACKs.
  (void)net.events().run_all();

  result.sim_end_s = net.events().now();
  double goodput_sum = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& flow = *flows[i];
    if (flow.sender().complete()) ++result.completed;
    result.segments_delivered += flow.receiver().stats().delivered_segments;
    result.retransmits += flow.sender().stats().retransmits;
    goodput_sum += flow.goodput_mbps(plan_[i].start_s, result.sim_end_s);
  }
  result.mean_goodput_mbps =
      goodput_sum / static_cast<double>(std::max<std::size_t>(flows.size(), 1));
  result.counters = net.counters();
  return result;
}

}  // namespace kar::traffic

// Heavy-traffic workload engine: turns (topology x arrival process x flow
// sizes) into a running sim::Network scenario with thousands of concurrent
// TCP flows.
//
// The paper's evaluation drives one iperf flow at a time; the questions
// that matter at Internet scale — does KAR's per-packet deflection still
// hold up when the bottleneck is congested by *other* traffic, does RED
// early-dropping interact badly with the reorder-tolerant stack — need a
// workload. This engine compiles a deterministic flow plan (seeded Poisson
// or uniform arrivals, fixed or bounded-Pareto sizes) against a generated
// scenario:
//
//   * bottleneck mode (scenario designates a bottleneck link, e.g.
//     topogen's Internet2 Chicago-Indianapolis trunk): host edges fan onto
//     the two bottleneck routers and every flow crosses the constrained
//     link — the classic many-flows-one-queue congestion experiment;
//   * mesh mode (no designated bottleneck): host edges attach to a seeded
//     sample of switches and flows pick random host pairs, routed along
//     BFS shortest core paths.
//
// Everything is seeded through common::Rng: the same spec compiles to the
// same plan and the same simulation, bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "topology/scenario.hpp"
#include "transport/tcp.hpp"

namespace kar::traffic {

/// Flow inter-arrival law.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< Exponential inter-arrivals at `arrival_rate_per_s`.
  kUniform,  ///< Evenly spaced over [0, flows / arrival_rate_per_s).
};

/// Flow-size law (in MSS-sized segments).
enum class SizeDistribution : std::uint8_t {
  kFixed,          ///< Every flow offers `fixed_segments` (0 = unbounded).
  kBoundedPareto,  ///< Heavy-tailed mice-and-elephants mix.
};

struct WorkloadSpec {
  std::size_t flows = 100;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double arrival_rate_per_s = 100.0;  ///< Mean flow arrival rate.
  SizeDistribution sizes = SizeDistribution::kBoundedPareto;
  double pareto_alpha = 1.2;          ///< Tail index (heavier when smaller).
  std::uint64_t min_segments = 8;     ///< Bounded-Pareto lower cutoff.
  std::uint64_t max_segments = 4096;  ///< Bounded-Pareto upper cutoff.
  std::uint64_t fixed_segments = 128;
  std::uint64_t seed = 1;
  /// Host edges fanned onto each bottleneck router (bottleneck mode) or
  /// attached across sampled switches (mesh mode).
  std::size_t host_fan = 8;
  /// Simulation cut-off: flows still incomplete at this time are stopped.
  double horizon_s = 60.0;
  /// Base TCP knobs; limit_segments is set per flow from the size law.
  /// RTO jitter defaults on here (unlike bare TcpParams): a workload's
  /// point is many simultaneous flows, and without timer noise their retry
  /// storms phase-lock and the bottleneck never drains.
  transport::TcpParams tcp = default_tcp();
  double goodput_bin_s = 1.0;

  [[nodiscard]] static transport::TcpParams default_tcp() {
    transport::TcpParams params;
    params.rto_jitter = 0.5;
    return params;
  }
};

/// One planned flow (before simulation).
struct FlowPlan {
  double start_s = 0.0;
  std::uint64_t size_segments = 0;  ///< 0 = unbounded, runs to horizon.
  std::string src_edge;
  std::string dst_edge;
  std::vector<std::string> core_path;
};

/// Post-simulation summary.
struct WorkloadResult {
  std::size_t flows = 0;
  std::size_t completed = 0;  ///< Finite flows fully ACKed by the horizon.
  std::size_t peak_concurrent = 0;  ///< Max simultaneously active flows.
  std::uint64_t segments_delivered = 0;
  std::uint64_t retransmits = 0;
  double mean_goodput_mbps = 0.0;  ///< Per-flow mean over each flow's life.
  double sim_end_s = 0.0;
  sim::NetworkCounters counters;  ///< Includes drop_aqm_early under RED.
};

/// Exponential inter-arrival sample (inverse transform; deterministic for
/// a given Rng state). Exposed for tests.
[[nodiscard]] double exponential_interarrival(common::Rng& rng,
                                              double rate_per_s);

/// Bounded-Pareto sample on [min_value, max_value] with tail index alpha
/// (inverse transform). Exposed for tests.
[[nodiscard]] std::uint64_t bounded_pareto(common::Rng& rng, double alpha,
                                           std::uint64_t min_value,
                                           std::uint64_t max_value);

/// A compiled workload: host edges attached, every flow's start time,
/// size and route fixed. Construction mutates a copy of the scenario
/// (attaching host edges); run() simulates it.
class Workload {
 public:
  /// Compiles `spec` against `scenario`. Throws std::invalid_argument on
  /// an empty spec or a scenario whose designated bottleneck nodes do not
  /// exist.
  Workload(topo::Scenario scenario, WorkloadSpec spec);

  [[nodiscard]] const topo::Scenario& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<FlowPlan>& plan() const noexcept {
    return plan_;
  }

  /// Simulates the compiled plan on a fresh network and returns the
  /// summary. Deterministic for a given (scenario, spec, config).
  [[nodiscard]] WorkloadResult run(sim::NetworkConfig config = {}) const;

 private:
  void compile_bottleneck();
  void compile_mesh();

  topo::Scenario scenario_;
  WorkloadSpec spec_;
  std::vector<FlowPlan> plan_;
};

}  // namespace kar::traffic

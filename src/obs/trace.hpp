// Bounded ring-buffer trace recorder: structured events beyond the packet
// CSV of sim/trace_csv — deflection decisions (with chosen out-port and
// residue), link up/down transitions, controller reactions, TCP
// retransmit/cwnd samples, phase spans. Exporters (obs/export.hpp) render
// the same records as JSONL or Chrome trace_event JSON (chrome://tracing,
// Perfetto).
//
// The ring holds the most recent `capacity` records; older records are
// overwritten and counted as dropped, so a recorder attached to a hot loop
// has bounded memory whatever the run length. Recording is mutex-guarded
// (recorders may be shared by hooks firing from different layers); code
// that wants zero overhead simply holds a null recorder pointer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kar::obs {

enum class TraceCategory : std::uint8_t {
  kPacket,      ///< Inject / deliver / drop.
  kDeflection,  ///< HP/AVP/NIP decisions that deviated from the residue.
  kLink,        ///< Link up/down transitions.
  kController,  ///< Controller reactions (wrong-edge re-encodes, recompute).
  kTcp,         ///< Retransmits, RTOs, cwnd samples.
  kPhase,       ///< Wall-time spans (setup / event loop / teardown).
  kOther,
};

[[nodiscard]] std::string_view to_string(TraceCategory category);

/// One recorded event. `ts_s` is simulation time (wall time for kPhase
/// spans); `dur_s > 0` makes it a complete span (Chrome "X"), `counter`
/// makes it a counter sample (Chrome "C"), otherwise it is an instant
/// (Chrome "i"). `tid` groups records into tracks (the campaign layer sets
/// it to the run index); args are small pre-rendered key/value pairs.
struct TraceRecord {
  TraceCategory cat = TraceCategory::kOther;
  std::string name;
  std::string node;  ///< Where it happened (empty when not tied to a node).
  double ts_s = 0.0;
  double dur_s = 0.0;
  bool counter = false;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;  ///< Packet / link / flow id; 0 when unused.
  std::vector<std::pair<std::string, std::string>> args;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Fixed-capacity ring of TraceRecords, oldest-overwritten.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 8192);

  void record(TraceRecord record);

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records ever offered, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const;
  /// Records lost to overwriting (recorded() - retained).
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;  // guarded by mutex_
  std::size_t next_ = 0;           // ring write position once full
  std::uint64_t total_ = 0;
};

}  // namespace kar::obs

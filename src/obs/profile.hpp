// Span timers and per-phase wall-time profiles.
//
// SpanTimer is a RAII stopwatch accumulating into a double (and optionally
// recording a kPhase span into a TraceRecorder). PhaseProfile is the
// setup / event-loop / teardown breakdown a single simulation run
// produces; profiles merge by addition, so a campaign's profile is the
// fold of its runs (wall times are inherently non-deterministic and are
// reported only — they never enter the determinism-checked aggregates).
//
// The event-kind breakdown *inside* the event loop lives with the queue
// itself (sim::EventLoopProfile in sim/event_queue.hpp): the queue is the
// only layer that sees every event fire.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace kar::obs {

/// The three wall-time phases of one simulation run.
enum class Phase : std::uint8_t { kSetup, kEventLoop, kTeardown };
inline constexpr std::size_t kPhaseCount = 3;

[[nodiscard]] std::string_view to_string(Phase phase);

/// Accumulated wall time per phase, mergeable across runs.
struct PhaseProfile {
  std::array<double, kPhaseCount> wall_s{};
  std::uint64_t runs = 0;  ///< How many runs were folded in.

  void add(Phase phase, double seconds) noexcept {
    wall_s[static_cast<std::size_t>(phase)] += seconds;
  }
  [[nodiscard]] double total_s() const noexcept {
    return wall_s[0] + wall_s[1] + wall_s[2];
  }
  void merge(const PhaseProfile& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) wall_s[i] += other.wall_s[i];
    runs += other.runs;
  }
  [[nodiscard]] bool empty() const noexcept { return runs == 0; }
};

/// RAII stopwatch: adds its elapsed wall time to `*sink` when stopped or
/// destroyed (once). When a recorder is given, also records a kPhase span.
class SpanTimer {
 public:
  explicit SpanTimer(double* sink, TraceRecorder* recorder = nullptr,
                     std::string name = {})
      : sink_(sink),
        recorder_(recorder),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() { stop(); }

  /// Stops the timer early; idempotent.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    if (sink_ != nullptr) *sink_ += elapsed;
    if (recorder_ != nullptr) {
      TraceRecord record;
      record.cat = TraceCategory::kPhase;
      record.name = name_.empty() ? "span" : name_;
      record.ts_s = 0.0;  // phase spans are wall-relative, not sim-time
      record.dur_s = elapsed;
      recorder_->record(std::move(record));
    }
  }

 private:
  double* sink_;
  TraceRecorder* recorder_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace kar::obs

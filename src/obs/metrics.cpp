#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kar::obs {

namespace {

/// Prometheus label-value escaping: backslash, quote and newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Shortest round-trip double rendering (same contract as runner::jsonl):
/// value-equal doubles always produce byte-equal text.
std::string shortest_double(double value) {
  if (!std::isfinite(value)) {
    if (std::isnan(value)) return "NaN";
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

double bits_to_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t double_to_bits(double value) { return std::bit_cast<std::uint64_t>(value); }

}  // namespace

std::string canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  return out;
}

std::string_view to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

namespace internal {

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1) {
  // std::atomic's default constructor need not value-initialize (and does
  // not on this toolchain): zero the buckets explicitly.
  for (auto& bucket : buckets) bucket.store(0, std::memory_order_relaxed);
}

void HistogramCell::observe(double value) noexcept {
  // First bucket whose (inclusive) upper bound holds the value; +Inf last.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds.begin());
  buckets[index].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits.load(std::memory_order_relaxed);
  while (!sum_bits.compare_exchange_weak(
      expected, double_to_bits(bits_to_double(expected) + value),
      std::memory_order_relaxed)) {
  }
}

}  // namespace internal

void Gauge::set(double value) noexcept {
  if (cell_ == nullptr) return;
  cell_->value.store(double_to_bits(value), std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  if (cell_ == nullptr) return;
  std::uint64_t expected = cell_->value.load(std::memory_order_relaxed);
  while (!cell_->value.compare_exchange_weak(
      expected, double_to_bits(bits_to_double(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

void Gauge::max(double value) noexcept {
  if (cell_ == nullptr) return;
  std::uint64_t expected = cell_->value.load(std::memory_order_relaxed);
  while (bits_to_double(expected) < value &&
         !cell_->value.compare_exchange_weak(expected, double_to_bits(value),
                                             std::memory_order_relaxed)) {
  }
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, family] : other.families) {
    Family& mine = families[name];
    if (mine.series.empty() && mine.help.empty()) {
      mine.type = family.type;
      mine.help = family.help;
      mine.bounds = family.bounds;
    }
    for (const auto& [labels, series] : family.series) {
      Series& target = mine.series[labels];
      switch (family.type) {
        case MetricType::kCounter:
          target.count += series.count;
          break;
        case MetricType::kGauge:
          // Per-scope gauges are treated as peaks across scopes.
          target.value = std::max(target.value, series.value);
          break;
        case MetricType::kHistogram:
          target.count += series.count;
          target.value += series.value;
          if (target.buckets.size() < series.buckets.size()) {
            target.buckets.resize(series.buckets.size(), 0);
          }
          for (std::size_t i = 0; i < series.buckets.size(); ++i) {
            target.buckets[i] += series.buckets[i];
          }
          break;
      }
    }
  }
}

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  for (const auto& [name, family] : families) {
    out += "# HELP " + name + ' ' + family.help + '\n';
    out += "# TYPE " + name + ' ';
    out += to_string(family.type);
    out += '\n';
    for (const auto& [labels, series] : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out += name;
          if (!labels.empty()) out += '{' + labels + '}';
          out += ' ' + std::to_string(series.count) + '\n';
          break;
        case MetricType::kGauge:
          out += name;
          if (!labels.empty()) out += '{' + labels + '}';
          out += ' ' + shortest_double(series.value) + '\n';
          break;
        case MetricType::kHistogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < series.buckets.size(); ++i) {
            cumulative += series.buckets[i];
            const std::string le = i < family.bounds.size()
                                       ? shortest_double(family.bounds[i])
                                       : "+Inf";
            out += name + "_bucket{";
            if (!labels.empty()) out += labels + ',';
            out += "le=\"" + le + "\"} " + std::to_string(cumulative) + '\n';
          }
          out += name + "_sum";
          if (!labels.empty()) out += '{' + labels + '}';
          out += ' ' + shortest_double(series.value) + '\n';
          out += name + "_count";
          if (!labels.empty()) out += '{' + labels + '}';
          out += ' ' + std::to_string(series.count) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  std::string out = "{";
  bool first = true;
  const auto key = [](const std::string& name, const std::string& labels) {
    // Series names may contain label quotes; escape for JSON keys.
    std::string text = labels.empty() ? name : name + '{' + labels + '}';
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return escaped;
  };
  for (const auto& [name, family] : families) {
    for (const auto& [labels, series] : family.series) {
      if (!first) out += ',';
      first = false;
      out += '"' + key(name, labels) + "\":";
      switch (family.type) {
        case MetricType::kCounter:
          out += std::to_string(series.count);
          break;
        case MetricType::kGauge:
          out += std::isfinite(series.value) ? shortest_double(series.value)
                                             : "null";
          break;
        case MetricType::kHistogram: {
          out += "{\"buckets\":[";
          for (std::size_t i = 0; i < series.buckets.size(); ++i) {
            if (i > 0) out += ',';
            out += std::to_string(series.buckets[i]);
          }
          out += "],\"sum\":";
          out += std::isfinite(series.value) ? shortest_double(series.value)
                                             : "null";
          out += ",\"count\":" + std::to_string(series.count) + '}';
          break;
        }
      }
    }
  }
  out += '}';
  return out;
}

void MetricsRegistry::disable_family(std::string_view family) {
  std::lock_guard<std::mutex> lock(mutex_);
  disabled_.emplace(family);
}

MetricsRegistry::FamilyState* MetricsRegistry::family_for(
    std::string_view name, MetricType type, std::string_view help,
    const std::vector<double>* bounds) {
  if (!enabled_ || disabled_.contains(name)) return nullptr;
  const auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second.type != type) {
      throw std::invalid_argument("MetricsRegistry: family " +
                                  std::string(name) +
                                  " already registered with another type");
    }
    return &it->second;
  }
  FamilyState state;
  state.type = type;
  state.help = std::string(help);
  if (bounds != nullptr) state.bounds = *bounds;
  return &families_.emplace(std::string(name), std::move(state)).first->second;
}

Counter MetricsRegistry::counter(std::string_view family, std::string_view help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyState* state = family_for(family, MetricType::kCounter, help, nullptr);
  if (state == nullptr) return Counter();
  auto [it, inserted] = state->scalars.try_emplace(canonical_labels(labels));
  if (inserted) it->second = &scalar_cells_.emplace_back();
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(std::string_view family, std::string_view help,
                             const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyState* state = family_for(family, MetricType::kGauge, help, nullptr);
  if (state == nullptr) return Gauge();
  auto [it, inserted] = state->scalars.try_emplace(canonical_labels(labels));
  if (inserted) it->second = &scalar_cells_.emplace_back();
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(std::string_view family,
                                     std::string_view help,
                                     std::vector<double> upper_bounds,
                                     const Labels& labels) {
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
    throw std::invalid_argument("MetricsRegistry: histogram bounds not sorted");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyState* state =
      family_for(family, MetricType::kHistogram, help, &upper_bounds);
  if (state == nullptr) return Histogram();
  auto [it, inserted] = state->histograms.try_emplace(canonical_labels(labels));
  if (inserted) {
    it->second = &histogram_cells_.emplace_back(std::move(upper_bounds));
  }
  return Histogram(it->second);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, state] : families_) {
    MetricsSnapshot::Family family;
    family.type = state.type;
    family.help = state.help;
    family.bounds = state.bounds;
    for (const auto& [labels, cell] : state.scalars) {
      MetricsSnapshot::Series series;
      const std::uint64_t raw = cell->value.load(std::memory_order_relaxed);
      if (state.type == MetricType::kCounter) {
        series.count = raw;
      } else {
        series.value = bits_to_double(raw);
      }
      family.series.emplace(labels, std::move(series));
    }
    for (const auto& [labels, cell] : state.histograms) {
      MetricsSnapshot::Series series;
      series.count = cell->count.load(std::memory_order_relaxed);
      series.value =
          bits_to_double(cell->sum_bits.load(std::memory_order_relaxed));
      series.buckets.reserve(cell->buckets.size());
      for (const auto& bucket : cell->buckets) {
        series.buckets.push_back(bucket.load(std::memory_order_relaxed));
      }
      family.series.emplace(labels, std::move(series));
    }
    snap.families.emplace(name, std::move(family));
  }
  return snap;
}

}  // namespace kar::obs

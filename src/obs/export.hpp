// Exporters for the observability layer:
//   * Prometheus text exposition — MetricsSnapshot::prometheus_text() plus
//     a file-writing convenience here;
//   * JSONL — one JSON object per TraceRecord per line (jq/pandas-ready);
//   * Chrome trace_event JSON — loads in chrome://tracing and Perfetto
//     (https://ui.perfetto.dev): instants as ph:"i", spans as ph:"X",
//     counter samples as ph:"C", with process/thread metadata so campaign
//     cells appear as processes and runs as threads.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kar::obs {

/// One Chrome-trace process: a named group of records. The campaign layer
/// maps each grid cell (technique x schedule) to a process and each traced
/// run to a thread (TraceRecord::tid).
struct ChromeTraceProcess {
  std::string name;
  std::vector<TraceRecord> records;
};

/// Renders one record as a single-line JSON object (no trailing newline).
/// Fields: cat, name, node, ts_s, dur_s, tid, id, plus args verbatim.
[[nodiscard]] std::string trace_record_json(const TraceRecord& record);

/// Writes records as JSON Lines, one per record.
void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceRecord>& records);

/// Writes `{"traceEvents":[...],"displayTimeUnit":"ms"}`. Timestamps are
/// simulation time converted to microseconds (the trace_event unit);
/// process/thread name metadata events precede the data. Deterministic:
/// equal inputs produce equal bytes.
void write_chrome_trace(std::ostream& out,
                        const std::vector<ChromeTraceProcess>& processes);

/// Convenience single-process overload (pid 1, name "kar").
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceRecord>& records);

/// Writes a snapshot's Prometheus text to `path` (truncating). Throws
/// std::runtime_error when the file cannot be opened.
void write_prometheus_file(const std::string& path,
                           const MetricsSnapshot& snapshot);

/// A complete HTTP/1.0 scrape response carrying the snapshot's Prometheus
/// text (Content-Type text/plain; version=0.0.4, Connection: close) — what
/// a scrape endpoint writes verbatim to an accepted connection.
[[nodiscard]] std::string http_scrape_response(const MetricsSnapshot& snapshot);

/// Writes a Chrome trace to `path` (truncating). Throws std::runtime_error
/// when the file cannot be opened.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<ChromeTraceProcess>& processes);

}  // namespace kar::obs

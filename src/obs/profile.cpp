#include "obs/profile.hpp"

namespace kar::obs {

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kSetup: return "setup";
    case Phase::kEventLoop: return "event-loop";
    case Phase::kTeardown: return "teardown";
  }
  return "unknown";
}

}  // namespace kar::obs

#include "obs/instrument.hpp"

#include <utility>

namespace kar::obs {

namespace {

Labels with_label(Labels labels, std::string key, std::string value) {
  labels.emplace_back(std::move(key), std::move(value));
  return labels;
}

}  // namespace

NetworkObserver::NetworkObserver(sim::Network& network,
                                 NetworkObserverOptions options)
    : net_(&network), trace_(options.trace), tid_(options.tid) {
  if (options.metrics == nullptr) return;
  MetricsRegistry& reg = *options.metrics;
  const Labels& base = options.labels;
  injected_ =
      reg.counter("kar_packets_injected_total", "Packets injected", base);
  delivered_ =
      reg.counter("kar_packets_delivered_total", "Packets delivered", base);
  hops_ = reg.counter("kar_hops_total", "Per-hop forwarding decisions", base);
  reencodes_ = reg.counter("kar_reencodes_total",
                           "Wrong-edge controller re-encodes", base);
  bounces_ = reg.counter("kar_bounces_total",
                         "Wrong-edge bounces back into the core", base);
  link_down_ = reg.counter("kar_link_transitions_total", "Link transitions",
                           with_label(base, "state", "down"));
  link_up_ = reg.counter("kar_link_transitions_total", "Link transitions",
                         with_label(base, "state", "up"));
  delivery_latency_ = reg.histogram(
      "kar_delivery_latency_seconds", "Inject-to-deliver latency",
      {1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1},
      base);
  delivery_hops_ =
      reg.histogram("kar_delivery_hops", "Hops taken by delivered packets",
                    {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128}, base);
  const topo::Topology& topo = net_->topology();
  for (const topo::NodeId node :
       topo.nodes_of_kind(topo::NodeKind::kCoreSwitch)) {
    deflections_by_switch_.emplace(
        node,
        reg.counter("kar_deflections_total", "Deflected forwarding decisions",
                    with_label(base, "switch", std::string(topo.name(node)))));
  }
  for (const auto reason :
       {dataplane::DropReason::kNoViablePort, dataplane::DropReason::kLinkFailed,
        dataplane::DropReason::kQueueOverflow,
        dataplane::DropReason::kTtlExceeded,
        dataplane::DropReason::kAqmEarly}) {
    drops_by_reason_.emplace(
        static_cast<std::uint8_t>(reason),
        reg.counter("kar_drops_total", "Dropped packets",
                    with_label(base, "reason", to_string(reason))));
  }
  // Data-plane residue-cache hit/miss/eviction counters: registered here,
  // updated inline by the forwarding fast path (docs/performance.md).
  network.attach_dataplane_metrics(reg, base);
}

void NetworkObserver::on_trace(const sim::TraceEvent& event) {
  const topo::Topology& topo = net_->topology();
  switch (event.kind) {
    case sim::TraceEvent::Kind::kInject:
      injected_.inc();
      inject_time_[event.packet_id] = event.time;
      hop_count_[event.packet_id] = 0;
      break;
    case sim::TraceEvent::Kind::kHop: {
      hops_.inc();
      if (auto it = hop_count_.find(event.packet_id); it != hop_count_.end()) {
        ++it->second;
      }
      if (!event.deflected) break;
      if (auto it = deflections_by_switch_.find(event.node);
          it != deflections_by_switch_.end()) {
        it->second.inc();
      }
      if (trace_ != nullptr) {
        TraceRecord record;
        record.cat = TraceCategory::kDeflection;
        record.name = "deflect";
        record.node = topo.name(event.node);
        record.ts_s = event.time;
        record.tid = tid_;
        record.id = event.packet_id;
        record.args = {{"out_port", std::to_string(event.out_port)},
                       {"in_port", std::to_string(event.in_port)}};
        if (event.packet != nullptr &&
            topo.kind(event.node) == topo::NodeKind::kCoreSwitch) {
          record.args.emplace_back(
              "residue", std::to_string(event.packet->kar.route_id.mod_u64(
                             topo.switch_id(event.node))));
        }
        trace_->record(record);
      }
      break;
    }
    case sim::TraceEvent::Kind::kDeliver: {
      delivered_.inc();
      if (auto it = inject_time_.find(event.packet_id);
          it != inject_time_.end()) {
        delivery_latency_.observe(event.time - it->second);
        inject_time_.erase(it);
      }
      if (auto it = hop_count_.find(event.packet_id); it != hop_count_.end()) {
        delivery_hops_.observe(static_cast<double>(it->second));
        hop_count_.erase(it);
      }
      break;
    }
    case sim::TraceEvent::Kind::kDrop: {
      if (auto it =
              drops_by_reason_.find(static_cast<std::uint8_t>(event.drop_reason));
          it != drops_by_reason_.end()) {
        it->second.inc();
      }
      inject_time_.erase(event.packet_id);
      hop_count_.erase(event.packet_id);
      if (trace_ != nullptr) {
        TraceRecord record;
        record.cat = TraceCategory::kPacket;
        record.name = "drop";
        record.node = topo.name(event.node);
        record.ts_s = event.time;
        record.tid = tid_;
        record.id = event.packet_id;
        record.args = {{"reason", to_string(event.drop_reason)}};
        trace_->record(record);
      }
      break;
    }
    case sim::TraceEvent::Kind::kReencode:
    case sim::TraceEvent::Kind::kBounce: {
      const bool reencode = event.kind == sim::TraceEvent::Kind::kReencode;
      (reencode ? reencodes_ : bounces_).inc();
      if (trace_ != nullptr) {
        TraceRecord record;
        record.cat = TraceCategory::kController;
        record.name = reencode ? "reencode" : "bounce";
        record.node = topo.name(event.node);
        record.ts_s = event.time;
        record.tid = tid_;
        record.id = event.packet_id;
        trace_->record(record);
      }
      break;
    }
  }
}

void NetworkObserver::on_link_state(topo::LinkId link, bool up) {
  (up ? link_up_ : link_down_).inc();
  if (trace_ == nullptr) return;
  const topo::Topology& topo = net_->topology();
  const topo::Link& l = topo.link(link);
  TraceRecord record;
  record.cat = TraceCategory::kLink;
  record.name = up ? "link-up" : "link-down";
  record.node = topo.name(l.a.node);
  record.ts_s = net_->now();
  record.tid = tid_;
  record.args = {{"peer", std::string(topo.name(l.b.node))},
                 {"link", std::to_string(link)}};
  trace_->record(record);
}

void NetworkObserver::install() {
  net_->set_trace_hook(
      [this](const sim::TraceEvent& event) { on_trace(event); });
  net_->set_link_state_hook(
      [this](topo::LinkId link, bool up) { on_link_state(link, up); });
}

}  // namespace kar::obs

// NetworkObserver: turns the simulator's per-packet trace events and link
// state transitions into metrics and trace records.
//
// The observer is a passive sink: it owns no hooks itself. Callers forward
// sim::TraceEvent / link transitions into on_trace()/on_link_state(),
// composing freely with other consumers of the network's single trace hook
// (e.g. faultgen::InvariantChecker). install() is a convenience for the
// common case where the observer is the only consumer.
//
// Metric families (all prefixed kar_, tagged with the constant labels
// passed at construction):
//   kar_packets_injected_total / kar_packets_delivered_total
//   kar_hops_total
//   kar_deflections_total{switch="..."}   (per core switch)
//   kar_reencodes_total / kar_bounces_total
//   kar_drops_total{reason="..."}
//   kar_link_transitions_total{state="down"|"up"}
//   kar_delivery_latency_seconds / kar_delivery_hops   (histograms)
//   kar_dataplane_residue_cache_{hits,misses,evictions}_total
//     (registered here, incremented inline by the forwarding fast path —
//      see docs/performance.md)
//
// Trace records (when a TraceRecorder is attached):
//   kDeflection "deflect"  — per deflection, with out/in port and the KAR
//                            residue route_id mod switch_id at that switch;
//   kPacket     "drop"     — with the drop reason;
//   kController "reencode"/"bounce" — edge recovery actions;
//   kLink       "link-down"/"link-up" — topology transitions.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace kar::obs {

/// Sinks and knobs for a NetworkObserver. Both sinks are optional; a null
/// registry disables metrics, a null recorder disables trace records.
struct NetworkObserverOptions {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  Labels labels;            ///< Constant labels, e.g. {{"technique", "nip"}}.
  std::uint32_t tid = 0;    ///< Thread id stamped on trace records.
};

class NetworkObserver {
 public:
  /// The network must outlive the observer; metric handles for every core
  /// switch and drop reason are created eagerly here so the hot path does
  /// no registry lookups.
  NetworkObserver(sim::Network& network, NetworkObserverOptions options);

  /// Feeds one packet trace event (call from the network's trace hook).
  void on_trace(const sim::TraceEvent& event);

  /// Feeds one link transition (call from the network's link-state hook).
  void on_link_state(topo::LinkId link, bool up);

  /// Installs both hooks directly on the network. Only valid when no other
  /// consumer needs them; otherwise compose manually.
  void install();

 private:
  sim::Network* net_;
  TraceRecorder* trace_;
  std::uint32_t tid_;

  Counter injected_;
  Counter delivered_;
  Counter hops_;
  Counter reencodes_;
  Counter bounces_;
  Counter link_down_;
  Counter link_up_;
  Histogram delivery_latency_;
  Histogram delivery_hops_;
  std::unordered_map<topo::NodeId, Counter> deflections_by_switch_;
  std::unordered_map<std::uint8_t, Counter> drops_by_reason_;

  /// In-flight bookkeeping for the delivery histograms (packet id ->
  /// inject time / hop count); erased on deliver and drop.
  std::unordered_map<std::uint64_t, double> inject_time_;
  std::unordered_map<std::uint64_t, std::uint64_t> hop_count_;
};

}  // namespace kar::obs

#include "obs/trace.hpp"

#include <stdexcept>

namespace kar::obs {

std::string_view to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::kPacket: return "packet";
    case TraceCategory::kDeflection: return "deflection";
    case TraceCategory::kLink: return "link";
    case TraceCategory::kController: return "controller";
    case TraceCategory::kTcp: return "tcp";
    case TraceCategory::kPhase: return "phase";
    case TraceCategory::kOther: return "other";
  }
  return "other";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRecorder: capacity must be positive");
  }
  ring_.reserve(capacity);
}

void TraceRecorder::record(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

}  // namespace kar::obs

#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>

namespace kar::obs {

namespace {

// Minimal JSON helpers, duplicated from runner/jsonl on purpose: obs sits
// below the runner in the dependency graph (runner -> faultgen -> obs), so
// it cannot link kar_runner. Same contracts: escaped strings, shortest
// round-trip doubles.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "null";
  return std::string(buf, end);
}

/// `{"k":"v",...}` from the record's args; values that parse as plain
/// numbers are emitted unquoted so Perfetto shows them as numbers.
std::string args_json(const TraceRecord& record) {
  std::string out = "{";
  bool first = true;
  const auto is_number = [](const std::string& text) {
    if (text.empty()) return false;
    double parsed = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    return ec == std::errc() && end == text.data() + text.size();
  };
  if (!record.node.empty()) {
    out += "\"node\":\"" + json_escape(record.node) + '"';
    first = false;
  }
  if (record.id != 0) {
    if (!first) out += ',';
    out += "\"id\":" + std::to_string(record.id);
    first = false;
  }
  for (const auto& [key, value] : record.args) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(key) + "\":";
    if (is_number(value)) {
      out += value;
    } else {
      out += '"' + json_escape(value) + '"';
    }
  }
  out += '}';
  return out;
}

/// One trace_event object. `ph` is "X" for spans, "C" for counter samples,
/// "i" for instants; `ts`/`dur` are microseconds.
std::string chrome_event_json(const TraceRecord& record, int pid) {
  std::string out = "{";
  out += "\"name\":\"" + json_escape(record.name) + "\"";
  out += ",\"cat\":\"" + std::string(to_string(record.cat)) + "\"";
  const char* ph = record.counter ? "C" : (record.dur_s > 0.0 ? "X" : "i");
  out += ",\"ph\":\"";
  out += ph;
  out += "\"";
  out += ",\"ts\":" + json_double(record.ts_s * 1e6);
  if (record.dur_s > 0.0 && !record.counter) {
    out += ",\"dur\":" + json_double(record.dur_s * 1e6);
  }
  out += ",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(record.tid);
  if (!record.counter && record.dur_s <= 0.0) {
    out += ",\"s\":\"t\"";  // instant scope: thread (only meaningful on "i")
  }
  out += ",\"args\":" + args_json(record);
  out += '}';
  return out;
}

std::string metadata_event(const char* name, int pid, std::uint32_t tid,
                           const std::string& value) {
  std::string out = "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(tid);
  out += ",\"args\":{\"name\":\"" + json_escape(value) + "\"}}";
  return out;
}

}  // namespace

std::string trace_record_json(const TraceRecord& record) {
  std::string out = "{";
  out += "\"cat\":\"" + std::string(to_string(record.cat)) + "\"";
  out += ",\"name\":\"" + json_escape(record.name) + "\"";
  if (!record.node.empty()) {
    out += ",\"node\":\"" + json_escape(record.node) + "\"";
  }
  out += ",\"ts_s\":" + json_double(record.ts_s);
  if (record.dur_s > 0.0) out += ",\"dur_s\":" + json_double(record.dur_s);
  out += ",\"tid\":" + std::to_string(record.tid);
  if (record.id != 0) out += ",\"id\":" + std::to_string(record.id);
  for (const auto& [key, value] : record.args) {
    out += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += '}';
  return out;
}

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceRecord>& records) {
  for (const TraceRecord& record : records) {
    out << trace_record_json(record) << '\n';
  }
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<ChromeTraceProcess>& processes) {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  };
  int pid = 1;
  for (const ChromeTraceProcess& process : processes) {
    emit(metadata_event("process_name", pid, 0, process.name));
    std::set<std::uint32_t> named_tids;
    for (const TraceRecord& record : process.records) {
      if (named_tids.insert(record.tid).second) {
        emit(metadata_event("thread_name", pid, record.tid,
                            "run " + std::to_string(record.tid)));
      }
      emit(chrome_event_json(record, pid));
    }
    ++pid;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceRecord>& records) {
  write_chrome_trace(out, std::vector<ChromeTraceProcess>{{"kar", records}});
}

void write_prometheus_file(const std::string& path,
                           const MetricsSnapshot& snapshot) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_prometheus_file: cannot open " + path);
  out << snapshot.prometheus_text();
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<ChromeTraceProcess>& processes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out, processes);
}

std::string http_scrape_response(const MetricsSnapshot& snapshot) {
  const std::string body = snapshot.prometheus_text();
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.0 200 OK\r\n";
  out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace kar::obs

// Simulator-wide metrics registry: counters, gauges and fixed-bucket
// histograms with Prometheus-style names and labels.
//
// Design goals (docs/observability.md):
//   * handle-based hot path — instrumented code holds a Counter/Gauge/
//     Histogram handle and updates it with one relaxed atomic op; the
//     registry mutex is only taken at registration and snapshot time;
//   * near-zero overhead when disabled — a handle created from a disabled
//     registry (or a disabled family) carries a null cell, and every update
//     is a single predictable branch (bench/micro_obs.cpp keeps this honest:
//     <2% on the forwarding hot loop);
//   * thread safety — registration and snapshotting are mutex-guarded,
//     updates are lock-free atomics, so the registry is safe under the
//     work-stealing runner and clean under sanitizers;
//   * deterministic aggregation — MetricsSnapshot is a value type ordered
//     by (family, labels); merging snapshots in run-index order yields
//     bit-identical results regardless of how the runs were scheduled
//     (the same contract as docs/runner.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kar::obs {

/// Label set for one series, e.g. {{"switch", "SW7"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical rendering of a label set: keys sorted, values escaped, joined
/// as `k1="v1",k2="v2"` — the exact text between braces in Prometheus
/// exposition format. Equal label sets always render to equal strings.
[[nodiscard]] std::string canonical_labels(const Labels& labels);

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType type);

namespace internal {

/// One histogram series: fixed upper bounds plus a +Inf bucket, a count and
/// a double sum maintained with CAS (portable pre-C++20-atomic-double).
struct HistogramCell {
  explicit HistogramCell(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  const std::vector<double> bounds;                  ///< Sorted upper bounds.
  std::deque<std::atomic<std::uint64_t>> buckets;    ///< bounds.size() + 1 (+Inf).
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_bits{0};            ///< Bit-cast double.
};

struct ScalarCell {
  std::atomic<std::uint64_t> value{0};  ///< Raw count or bit-cast double.
};

}  // namespace internal

/// Monotonic counter handle. Default-constructed or disabled handles are
/// inert: inc() is a null check and nothing else.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) noexcept {
    if (cell_ == nullptr) return;
    cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::ScalarCell* cell) noexcept : cell_(cell) {}
  internal::ScalarCell* cell_ = nullptr;
};

/// Gauge handle (a double that can move both ways).
class Gauge {
 public:
  Gauge() = default;

  void set(double value) noexcept;
  void add(double delta) noexcept;
  /// Raises the gauge to `value` if it is currently lower (peak tracking).
  void max(double value) noexcept;
  [[nodiscard]] bool enabled() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::ScalarCell* cell) noexcept : cell_(cell) {}
  internal::ScalarCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. Bucket semantics follow Prometheus:
/// a value lands in the first bucket whose upper bound is >= value
/// (upper bounds are inclusive); values above every bound go to +Inf.
class Histogram {
 public:
  Histogram() = default;

  void observe(double value) noexcept {
    if (cell_ == nullptr) return;
    cell_->observe(value);
  }
  [[nodiscard]] bool enabled() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::HistogramCell* cell) noexcept : cell_(cell) {}
  internal::HistogramCell* cell_ = nullptr;
};

/// Point-in-time value copy of a registry (or a deterministic fold of
/// many). Ordered maps make every rendering byte-stable.
struct MetricsSnapshot {
  struct Series {
    std::uint64_t count = 0;              ///< Counter value / histogram count.
    double value = 0.0;                   ///< Gauge value / histogram sum.
    std::vector<std::uint64_t> buckets;   ///< Histogram per-bucket (not cumulative).
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> bounds;           ///< Histogram upper bounds.
    std::map<std::string, Series> series; ///< Keyed by canonical label text.
  };

  std::map<std::string, Family> families;

  [[nodiscard]] bool empty() const noexcept { return families.empty(); }

  /// Deterministic fold: counters and histogram buckets/counts add, sums
  /// add, gauges take the maximum (per-run gauges are peaks). Merging a
  /// sequence of snapshots in a fixed order always produces the same bytes.
  void merge(const MetricsSnapshot& other);

  /// Prometheus text exposition format (exporters in obs/export.hpp render
  /// the same data as Chrome trace counters / JSON).
  [[nodiscard]] std::string prometheus_text() const;

  /// Deterministic single-line JSON object, for embedding in JSONL records:
  /// {"name{labels}":value,...}; histograms render as an object with
  /// buckets/sum/count. Doubles use shortest-round-trip formatting, so
  /// value-equal snapshots serialize to byte-equal text.
  [[nodiscard]] std::string json() const;
};

/// The registry. One per scope of interest (a campaign run, a bench run);
/// cheap enough to create per run, safe to share across threads.
class MetricsRegistry {
 public:
  /// A disabled registry hands out inert handles: every update is a null
  /// check. (Enabling later only affects handles created afterwards.)
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Disables one family by name: subsequently created handles of that
  /// family are inert. Must be called before the handles are created.
  void disable_family(std::string_view family);

  /// Registers (or finds) a series and returns its handle. The same
  /// (family, labels) pair always maps to the same underlying cell, so
  /// handle creation is idempotent. Throws std::invalid_argument when the
  /// family already exists with a different type.
  [[nodiscard]] Counter counter(std::string_view family, std::string_view help,
                                const Labels& labels = {});
  [[nodiscard]] Gauge gauge(std::string_view family, std::string_view help,
                            const Labels& labels = {});
  [[nodiscard]] Histogram histogram(std::string_view family,
                                    std::string_view help,
                                    std::vector<double> upper_bounds,
                                    const Labels& labels = {});

  /// Value copy of every registered series, ordered and ready to merge or
  /// export. Concurrent updates during the copy are torn at series
  /// granularity only (each load is atomic).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct FamilyState {
    MetricType type;
    std::string help;
    std::vector<double> bounds;
    std::map<std::string, internal::ScalarCell*> scalars;
    std::map<std::string, internal::HistogramCell*> histograms;
  };

  /// Looks up / creates the family, validating the type. Returns nullptr
  /// when the registry or the family is disabled.
  FamilyState* family_for(std::string_view name, MetricType type,
                          std::string_view help,
                          const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  bool enabled_;
  std::set<std::string, std::less<>> disabled_;
  std::map<std::string, FamilyState, std::less<>> families_;
  // Stable storage: handles point into these deques forever.
  std::deque<internal::ScalarCell> scalar_cells_;
  std::deque<internal::HistogramCell> histogram_cells_;
};

}  // namespace kar::obs

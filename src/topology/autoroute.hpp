// Shared route-derivation utilities for topology builders and generators.
//
// Every synthetic builder (line/grid/random) used to carry its own copy of
// the "find a core path between the two edge nodes" BFS; the topogen
// generators need the identical logic at 1000 switches. One implementation
// lives here; the builders and `src/topogen/` both route through it.
#pragma once

#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace kar::topo {

/// Names a core switch after its KAR ID, matching the paper's labels.
[[nodiscard]] std::string switch_label(SwitchId id);

/// BFS shortest core path between the switches adjacent to two edge nodes:
/// the names of the core switches strictly between `src_edge` and
/// `dst_edge`, ingress to egress. Intermediate edge nodes do not forward.
/// Throws std::logic_error when the endpoints are not connected.
[[nodiscard]] std::vector<std::string> bfs_core_path(const Topology& topo,
                                                     NodeId src_edge,
                                                     NodeId dst_edge);

}  // namespace kar::topo

#include "topology/graph.hpp"

#include <stdexcept>

namespace kar::topo {

NodeId Topology::add_switch(std::string name, SwitchId id) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Topology: duplicate node name " + name);
  }
  if (id < 2) {
    throw std::invalid_argument("Topology: switch id must be >= 2 for " + name);
  }
  if (by_switch_id_.contains(id)) {
    throw std::invalid_argument("Topology: duplicate switch id " +
                                std::to_string(id));
  }
  const auto handle = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(name, handle);
  by_switch_id_.emplace(id, handle);
  nodes_.push_back(Node{std::move(name), NodeKind::kCoreSwitch, id, {}});
  return handle;
}

NodeId Topology::add_edge_node(std::string name) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Topology: duplicate node name " + name);
  }
  const auto handle = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(name, handle);
  nodes_.push_back(Node{std::move(name), NodeKind::kEdgeNode, 0, {}});
  return handle;
}

LinkId Topology::add_link(NodeId a, NodeId b, LinkParams params) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Topology::add_link: bad node handle");
  }
  if (a == b) throw std::invalid_argument("Topology::add_link: self-loop");
  if (link_between(a, b)) {
    throw std::invalid_argument("Topology::add_link: parallel link between " +
                                nodes_[a].name + " and " + nodes_[b].name);
  }
  const auto id = static_cast<LinkId>(links_.size());
  const auto port_a = static_cast<PortIndex>(nodes_[a].ports.size());
  const auto port_b = static_cast<PortIndex>(nodes_[b].ports.size());
  nodes_[a].ports.push_back(id);
  nodes_[b].ports.push_back(id);
  links_.push_back(Link{{a, port_a}, {b, port_b}, params, /*up=*/true});
  return id;
}

const Topology::Node& Topology::node_ref(NodeId node) const {
  if (node >= nodes_.size()) {
    throw std::out_of_range("Topology: bad node handle");
  }
  return nodes_[node];
}

NodeKind Topology::kind(NodeId node) const { return node_ref(node).kind; }

const std::string& Topology::name(NodeId node) const { return node_ref(node).name; }

SwitchId Topology::switch_id(NodeId node) const {
  const Node& n = node_ref(node);
  if (n.kind != NodeKind::kCoreSwitch) {
    throw std::logic_error("Topology::switch_id: " + n.name + " is not a core switch");
  }
  return n.switch_id;
}

std::size_t Topology::port_count(NodeId node) const {
  return node_ref(node).ports.size();
}

std::optional<NodeId> Topology::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId Topology::at(const std::string& name) const {
  const auto found = find(name);
  if (!found) throw std::out_of_range("Topology: no node named " + name);
  return *found;
}

std::optional<NodeId> Topology::find_switch(SwitchId id) const {
  const auto it = by_switch_id_.find(id);
  if (it == by_switch_id_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].kind == kind) out.push_back(n);
  }
  return out;
}

std::vector<SwitchId> Topology::all_switch_ids() const {
  std::vector<SwitchId> out;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kCoreSwitch) out.push_back(n.switch_id);
  }
  return out;
}

LinkId Topology::link_at(NodeId node, PortIndex port) const {
  const Node& n = node_ref(node);
  if (port >= n.ports.size()) return kInvalidLink;
  return n.ports[port];
}

std::optional<NodeId> Topology::neighbor(NodeId node, PortIndex port) const {
  const LinkId id = link_at(node, port);
  if (id == kInvalidLink) return std::nullopt;
  const Link& l = links_[id];
  return l.a.node == node ? l.b.node : l.a.node;
}

std::optional<PortIndex> Topology::port_to(NodeId from, NodeId to) const {
  const Node& n = node_ref(from);
  for (PortIndex p = 0; p < n.ports.size(); ++p) {
    if (neighbor(from, p) == to) return p;
  }
  return std::nullopt;
}

std::vector<std::pair<PortIndex, NodeId>> Topology::neighbors(NodeId node) const {
  std::vector<std::pair<PortIndex, NodeId>> out;
  const Node& n = node_ref(node);
  for (PortIndex p = 0; p < n.ports.size(); ++p) {
    if (const auto other = neighbor(node, p)) out.emplace_back(p, *other);
  }
  return out;
}

const Link& Topology::link(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("Topology: bad link handle");
  return links_[id];
}

Link& Topology::link(LinkId id) {
  if (id >= links_.size()) throw std::out_of_range("Topology: bad link handle");
  return links_[id];
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) return std::nullopt;
  for (const LinkId id : nodes_[a].ports) {
    const Link& l = links_[id];
    if ((l.a.node == a && l.b.node == b) || (l.a.node == b && l.b.node == a)) {
      return id;
    }
  }
  return std::nullopt;
}

void Topology::set_link_up(LinkId id, bool up) { link(id).up = up; }

bool Topology::link_up(LinkId id) const { return link(id).up; }

bool Topology::port_available(NodeId node, PortIndex port) const {
  const LinkId id = link_at(node, port);
  return id != kInvalidLink && links_[id].up;
}

std::vector<PortIndex> Topology::available_ports(NodeId node) const {
  std::vector<PortIndex> out;
  const Node& n = node_ref(node);
  for (PortIndex p = 0; p < n.ports.size(); ++p) {
    if (port_available(node, p)) out.push_back(p);
  }
  return out;
}

void Topology::repair_all() {
  for (Link& l : links_) l.up = true;
}

LinkId Topology::fail_link(const std::string& a, const std::string& b) {
  const auto id = link_between(at(a), at(b));
  if (!id) {
    throw std::invalid_argument("Topology::fail_link: " + a + " and " + b +
                                " are not adjacent");
  }
  set_link_up(*id, false);
  return *id;
}

}  // namespace kar::topo

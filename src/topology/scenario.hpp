// Named experiment scenarios: a topology plus the route / protection
// configuration the paper evaluates on it (§3).
//
// A scenario pins down, by node name: the source and destination edge
// nodes, the primary core path, and the driven-deflection protection
// assignments (switch → next hop) for the partial and full protection
// levels. The routing module turns these into residues and a route ID.
#pragma once

#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace kar::topo {

/// One driven-deflection assignment: `switch_name` forwards deflected
/// traffic toward `next_hop_name` (paper §2, "Driven Deflections").
struct ProtectionAssignment {
  std::string switch_name;
  std::string next_hop_name;

  friend bool operator==(const ProtectionAssignment&,
                         const ProtectionAssignment&) = default;
};

/// The paper's three protection mechanisms (Table 1, Fig. 5).
enum class ProtectionLevel : std::uint8_t { kUnprotected, kPartial, kFull };

[[nodiscard]] std::string_view to_string(ProtectionLevel level);

/// A source-routed flow configuration on a scenario topology.
struct ScenarioRoute {
  std::string src_edge;
  std::string dst_edge;
  /// Core switches of the primary path, ingress to egress order.
  std::vector<std::string> core_path;
  /// Extra assignments for partial protection (paper's hand-picked sets).
  std::vector<ProtectionAssignment> partial_protection;
  /// Extra assignments (beyond partial) for full protection.
  std::vector<ProtectionAssignment> full_extra_protection;

  /// The protection assignments in force at `level` (partial ∪ extra for
  /// full; empty for unprotected).
  [[nodiscard]] std::vector<ProtectionAssignment> protection_at(
      ProtectionLevel level) const;
};

/// A complete, named experiment setup.
struct Scenario {
  std::string name;
  std::string description;
  Topology topology;
  ScenarioRoute route;
  /// Optional designated bottleneck link (node names, empty = none).
  /// Generated backbone scenarios mark the link heavy traffic should
  /// congest so workload compilers can aim flows through it.
  std::string bottleneck_a;
  std::string bottleneck_b;
};

}  // namespace kar::topo

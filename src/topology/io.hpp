// Text serialization for topologies.
//
// A simple line-oriented format so experiments can be described in files:
//
//   # comment
//   switch SW7 7
//   edge AS1
//   link SW7 SW13 rate=200e6 delay=0.5e-3 queue=100
//   down SW7 SW13          # start with this link failed
//
// plus Graphviz (dot) export for inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/graph.hpp"

namespace kar::topo {

/// Parses the text format above. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] Topology parse_topology(std::istream& in);
[[nodiscard]] Topology parse_topology_string(const std::string& text);

/// Serializes a topology back to the text format (round-trips with
/// parse_topology up to comment/ordering normalization).
[[nodiscard]] std::string serialize_topology(const Topology& topo);

/// Graphviz dot output: switches as boxes labelled "name (id)", edge nodes
/// as ellipses, failed links dashed red.
[[nodiscard]] std::string to_graphviz(const Topology& topo);

}  // namespace kar::topo

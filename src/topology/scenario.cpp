#include "topology/scenario.hpp"

#include <stdexcept>

namespace kar::topo {

std::string_view to_string(ProtectionLevel level) {
  switch (level) {
    case ProtectionLevel::kUnprotected: return "unprotected";
    case ProtectionLevel::kPartial: return "partial";
    case ProtectionLevel::kFull: return "full";
  }
  throw std::logic_error("to_string: bad ProtectionLevel");
}

std::vector<ProtectionAssignment> ScenarioRoute::protection_at(
    ProtectionLevel level) const {
  std::vector<ProtectionAssignment> out;
  if (level == ProtectionLevel::kUnprotected) return out;
  out = partial_protection;
  if (level == ProtectionLevel::kFull) {
    out.insert(out.end(), full_extra_protection.begin(),
               full_extra_protection.end());
  }
  return out;
}

}  // namespace kar::topo

#include "topology/io.hpp"

#include <locale>
#include <sstream>
#include <stdexcept>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace kar::topo {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("topology parse error at line " +
                              std::to_string(line) + ": " + message);
}

// Strict and locale-independent: the istringstream this replaced honoured
// the global locale, so a comma-decimal locale broke round-trips of
// serialize_topology output.
double parse_double_field(std::size_t line, const std::string& text) {
  const auto value = common::parse_double(text);
  if (!value) fail(line, "bad numeric value: " + text);
  return *value;
}

}  // namespace

Topology parse_topology(std::istream& in) {
  Topology topo;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line{common::trim(raw)};
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = std::string(common::trim(line.substr(0, hash)));
    }
    if (line.empty()) continue;
    const auto tokens = common::split(line, ' ');
    const std::string& verb = tokens[0];
    if (verb == "switch") {
      if (tokens.size() != 3) fail(line_no, "usage: switch <name> <id>");
      // std::stoull accepted trailing garbage ("3abc" parsed as 3); the
      // strict parser makes that a hard error.
      const auto id = common::parse_u64(tokens[2]);
      if (!id) fail(line_no, "bad switch id: " + tokens[2]);
      topo.add_switch(tokens[1], *id);
    } else if (verb == "edge") {
      if (tokens.size() != 2) fail(line_no, "usage: edge <name>");
      topo.add_edge_node(tokens[1]);
    } else if (verb == "link") {
      if (tokens.size() < 3) {
        fail(line_no, "usage: link <a> <b> [rate=..] [delay=..] [queue=..]");
      }
      const auto a = topo.find(tokens[1]);
      const auto b = topo.find(tokens[2]);
      if (!a) fail(line_no, "unknown node " + tokens[1]);
      if (!b) fail(line_no, "unknown node " + tokens[2]);
      LinkParams params;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) fail(line_no, "bad option " + tokens[i]);
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "rate") {
          params.rate_bps = parse_double_field(line_no, value);
        } else if (key == "delay") {
          params.delay_s = parse_double_field(line_no, value);
        } else if (key == "queue") {
          params.queue_packets =
              static_cast<std::size_t>(parse_double_field(line_no, value));
        } else {
          fail(line_no, "unknown link option " + key);
        }
      }
      topo.add_link(*a, *b, params);
    } else if (verb == "down") {
      if (tokens.size() != 3) fail(line_no, "usage: down <a> <b>");
      try {
        topo.fail_link(tokens[1], tokens[2]);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive " + verb);
    }
  }
  return topo;
}

Topology parse_topology_string(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream out;
  // Machine format: link rate/delay must serialize with '.' regardless of
  // the global locale, or the output stops round-tripping through
  // parse_topology.
  out.imbue(std::locale::classic());
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.kind(n) == NodeKind::kCoreSwitch) {
      out << "switch " << topo.name(n) << ' ' << topo.switch_id(n) << '\n';
    } else {
      out << "edge " << topo.name(n) << '\n';
    }
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    out << "link " << topo.name(link.a.node) << ' ' << topo.name(link.b.node)
        << " rate=" << link.params.rate_bps << " delay=" << link.params.delay_s
        << " queue=" << link.params.queue_packets << '\n';
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    if (!link.up) {
      out << "down " << topo.name(link.a.node) << ' ' << topo.name(link.b.node)
          << '\n';
    }
  }
  return out.str();
}

std::string to_graphviz(const Topology& topo) {
  std::ostringstream out;
  out << "graph kar {\n  node [fontname=\"Helvetica\"];\n";
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.kind(n) == NodeKind::kCoreSwitch) {
      out << "  \"" << topo.name(n) << "\" [shape=box, label=\"" << topo.name(n)
          << "\\nid=" << topo.switch_id(n) << "\"];\n";
    } else {
      out << "  \"" << topo.name(n) << "\" [shape=ellipse, style=filled, "
          << "fillcolor=lightgray];\n";
    }
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    out << "  \"" << topo.name(link.a.node) << "\" -- \""
        << topo.name(link.b.node) << "\"";
    if (!link.up) out << " [style=dashed, color=red]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace kar::topo

#include "topology/io.hpp"

#include <array>
#include <charconv>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace kar::topo {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("topology parse error at line " +
                              std::to_string(line) + ": " + message);
}

// Strict and locale-independent: the istringstream this replaced honoured
// the global locale, so a comma-decimal locale broke round-trips of
// serialize_topology output.
double parse_double_field(std::size_t line, const std::string& text) {
  const auto value = common::parse_double(text);
  if (!value) fail(line, "bad numeric value: " + text);
  return *value;
}

/// Shortest decimal form that round-trips through parse_double exactly.
/// `operator<<` truncated to 6 significant digits, so generated delays
/// like 1.2345678e-3 silently changed value across serialize→parse.
std::string format_double(double value) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  return std::string(buf.data(), res.ptr);
}

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool needs_escape(unsigned char c) {
  // Space splits tokens, '#' starts a comment, '%' is the escape
  // introducer itself; control bytes would corrupt the line format.
  return c <= 0x20 || c == '#' || c == '%' || c == 0x7f;
}

/// Percent-escapes a node name so it survives the space-tokenized,
/// '#'-commented line format. Names like "pod3/agg1" pass through
/// unchanged; "PoP 3" becomes "PoP%203".
std::string escape_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char ch : name) {
    const auto c = static_cast<unsigned char>(ch);
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0xf]);
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescape_name(std::size_t line, const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) fail(line, "truncated %-escape in " + token);
    const int hi = hex_value(token[i + 1]);
    const int lo = hex_value(token[i + 2]);
    if (hi < 0 || lo < 0) fail(line, "bad %-escape in " + token);
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace

Topology parse_topology(std::istream& in) {
  Topology topo;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line{common::trim(raw)};
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = std::string(common::trim(line.substr(0, hash)));
    }
    if (line.empty()) continue;
    const auto tokens = common::split(line, ' ');
    const std::string& verb = tokens[0];
    if (verb == "switch") {
      if (tokens.size() != 3) fail(line_no, "usage: switch <name> <id>");
      // std::stoull accepted trailing garbage ("3abc" parsed as 3); the
      // strict parser makes that a hard error.
      const auto id = common::parse_u64(tokens[2]);
      if (!id) fail(line_no, "bad switch id: " + tokens[2]);
      topo.add_switch(unescape_name(line_no, tokens[1]), *id);
    } else if (verb == "edge") {
      if (tokens.size() != 2) fail(line_no, "usage: edge <name>");
      topo.add_edge_node(unescape_name(line_no, tokens[1]));
    } else if (verb == "link") {
      if (tokens.size() < 3) {
        fail(line_no, "usage: link <a> <b> [rate=..] [delay=..] [queue=..]");
      }
      const auto a = topo.find(unescape_name(line_no, tokens[1]));
      const auto b = topo.find(unescape_name(line_no, tokens[2]));
      if (!a) fail(line_no, "unknown node " + tokens[1]);
      if (!b) fail(line_no, "unknown node " + tokens[2]);
      LinkParams params;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) fail(line_no, "bad option " + tokens[i]);
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "rate") {
          params.rate_bps = parse_double_field(line_no, value);
        } else if (key == "delay") {
          params.delay_s = parse_double_field(line_no, value);
        } else if (key == "queue") {
          params.queue_packets =
              static_cast<std::size_t>(parse_double_field(line_no, value));
        } else if (key == "red") {
          const auto parts = common::split(value, ':');
          if (parts.size() != 4) {
            fail(line_no, "usage: red=<min_th>:<max_th>:<max_p>:<weight>");
          }
          RedParams red;
          red.min_th = parse_double_field(line_no, parts[0]);
          red.max_th = parse_double_field(line_no, parts[1]);
          red.max_p = parse_double_field(line_no, parts[2]);
          red.weight = parse_double_field(line_no, parts[3]);
          params.red = red;
        } else {
          fail(line_no, "unknown link option " + key);
        }
      }
      topo.add_link(*a, *b, params);
    } else if (verb == "down") {
      if (tokens.size() != 3) fail(line_no, "usage: down <a> <b>");
      try {
        topo.fail_link(unescape_name(line_no, tokens[1]),
                       unescape_name(line_no, tokens[2]));
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive " + verb);
    }
  }
  return topo;
}

Topology parse_topology_string(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream out;
  // Machine format: link rate/delay must serialize with '.' regardless of
  // the global locale, or the output stops round-tripping through
  // parse_topology.
  out.imbue(std::locale::classic());
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.kind(n) == NodeKind::kCoreSwitch) {
      out << "switch " << escape_name(topo.name(n)) << ' ' << topo.switch_id(n)
          << '\n';
    } else {
      out << "edge " << escape_name(topo.name(n)) << '\n';
    }
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    out << "link " << escape_name(topo.name(link.a.node)) << ' '
        << escape_name(topo.name(link.b.node))
        << " rate=" << format_double(link.params.rate_bps)
        << " delay=" << format_double(link.params.delay_s)
        << " queue=" << link.params.queue_packets;
    if (link.params.red) {
      const RedParams& red = *link.params.red;
      out << " red=" << format_double(red.min_th) << ':'
          << format_double(red.max_th) << ':' << format_double(red.max_p)
          << ':' << format_double(red.weight);
    }
    out << '\n';
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    if (!link.up) {
      out << "down " << escape_name(topo.name(link.a.node)) << ' '
          << escape_name(topo.name(link.b.node)) << '\n';
    }
  }
  return out.str();
}

std::string to_graphviz(const Topology& topo) {
  std::ostringstream out;
  out << "graph kar {\n  node [fontname=\"Helvetica\"];\n";
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.kind(n) == NodeKind::kCoreSwitch) {
      out << "  \"" << topo.name(n) << "\" [shape=box, label=\"" << topo.name(n)
          << "\\nid=" << topo.switch_id(n) << "\"];\n";
    } else {
      out << "  \"" << topo.name(n) << "\" [shape=ellipse, style=filled, "
          << "fillcolor=lightgray];\n";
    }
  }
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(l);
    out << "  \"" << topo.name(link.a.node) << "\" -- \""
        << topo.name(link.b.node) << "\"";
    if (!link.up) out << " [style=dashed, color=red]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace kar::topo

#include "topology/builders.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "rns/modular.hpp"
#include "topology/autoroute.hpp"

namespace kar::topo {

namespace {

/// Short alias so the figure reconstructions below stay readable.
std::string sw(SwitchId id) { return switch_label(id); }

}  // namespace

Scenario make_fig1_network(LinkParams params) {
  Scenario s;
  s.name = "fig1";
  s.description =
      "Paper Fig. 1: 6-node walkthrough (S, D, switches 4/5/7/11); port "
      "numbering matches the worked example (R=44, R=660 with SW5).";
  Topology& t = s.topology;
  const NodeId src = t.add_edge_node("S");
  const NodeId dst = t.add_edge_node("D");
  const NodeId sw4 = t.add_switch("SW4", 4);
  const NodeId sw5 = t.add_switch("SW5", 5);
  const NodeId sw7 = t.add_switch("SW7", 7);
  const NodeId sw11 = t.add_switch("SW11", 11);
  // Link order fixes port indices to match §2.2:
  //   SW4:  port 0 -> SW7, port 1 -> S
  //   SW7:  port 0 -> SW4, port 1 -> SW5, port 2 -> SW11
  //   SW11: port 0 -> D,   port 1 -> SW5, port 2 -> SW7
  //   SW5:  port 0 -> SW11, port 1 -> SW7
  t.add_link(sw11, dst, params);
  t.add_link(sw4, sw7, params);
  t.add_link(sw5, sw11, params);
  t.add_link(sw7, sw5, params);
  t.add_link(sw7, sw11, params);
  t.add_link(src, sw4, params);

  s.route.src_edge = "S";
  s.route.dst_edge = "D";
  s.route.core_path = {"SW4", "SW7", "SW11"};
  s.route.partial_protection = {{"SW5", "SW11"}};
  s.route.full_extra_protection = {};
  return s;
}

Scenario make_experimental15(LinkParams params) {
  Scenario s;
  s.name = "experimental15";
  s.description =
      "Paper Fig. 2/3: 15-node experimental network; primary route "
      "SW10-SW7-SW13-SW29; partial protection via SW11-SW19-SW31; full adds "
      "SW37-SW17-SW43. Satisfies Table 1 bit lengths (15/28/43).";
  Topology& t = s.topology;
  // 15 pairwise-coprime switch IDs; {7, 10, 13, 17, 23, 29, 37} appear in
  // the paper's text, the rest complete the reconstruction (DESIGN.md §4).
  for (const SwitchId id : {7ULL, 10ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                            27ULL, 29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL,
                            53ULL}) {
    t.add_switch(sw(id), id);
  }
  t.add_edge_node("AS1");
  t.add_edge_node("AS2");
  t.add_edge_node("AS3");

  const auto link = [&](SwitchId a, SwitchId b) {
    t.add_link(t.at(sw(a)), t.at(sw(b)), params);
  };
  // Primary path.
  link(10, 7);
  link(7, 13);
  link(13, 29);
  // Partial-protection chain 11 -> 19 -> 31 -> 29 plus the deflection
  // entry points from the primary path.
  link(10, 11);
  link(11, 19);
  link(19, 31);
  link(31, 29);
  link(7, 19);
  link(13, 31);
  // Full-protection branch 37 -> 17 -> 43 -> 29 (covers SW10's other
  // deflection choices).
  link(10, 17);
  link(10, 37);
  link(37, 17);
  link(17, 43);
  link(43, 29);
  // Remaining fabric (hot-potato walks can roam here).
  link(19, 23);
  link(23, 47);
  link(17, 27);
  link(27, 41);
  link(41, 53);
  link(47, 53);
  link(37, 47);
  link(53, 29);
  // Edge attachments.
  t.add_link(t.at("AS1"), t.at(sw(10)), params);
  t.add_link(t.at("AS2"), t.at(sw(43)), params);
  t.add_link(t.at("AS3"), t.at(sw(29)), params);

  s.route.src_edge = "AS1";
  s.route.dst_edge = "AS3";
  s.route.core_path = {"SW10", "SW7", "SW13", "SW29"};
  s.route.partial_protection = {{"SW11", "SW19"}, {"SW19", "SW31"}, {"SW31", "SW29"}};
  s.route.full_extra_protection = {{"SW37", "SW17"}, {"SW17", "SW43"}, {"SW43", "SW29"}};
  return s;
}

namespace {

/// Shared RNP (Ipê) backbone fabric: 28 core switches, 40 links.
/// Reconstructed from §3.2's constraints (see DESIGN.md §4).
Topology build_rnp_fabric(LinkParams params) {
  Topology t;
  // Pairwise-coprime IDs: the primes 7..113 plus 5 (28 nodes). The IDs the
  // paper names (7, 11, 13, 17, 29, 37, 41, 47, 61, 67, 71, 73, 107, 109,
  // 113) keep their textual roles.
  for (const SwitchId id : {5ULL,  7ULL,  11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                            29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL, 53ULL,
                            59ULL, 61ULL, 67ULL, 71ULL, 73ULL, 79ULL, 83ULL,
                            89ULL, 97ULL, 101ULL, 103ULL, 107ULL, 109ULL,
                            113ULL}) {
    t.add_switch("SW" + std::to_string(id), id);
  }
  const auto link = [&](SwitchId a, SwitchId b) {
    t.add_link(t.at("SW" + std::to_string(a)), t.at("SW" + std::to_string(b)),
               params);
  };
  // Primary route Boa Vista (7) -> Sao Paulo (73).
  link(7, 13);
  link(13, 41);
  link(41, 73);
  // SW7's lone alternative: 7 -> 11 -> 17 (§3.2).
  link(7, 11);
  link(11, 17);
  // SW13 is highly connected: deflection candidates {29, 17, 47, 37, 71}.
  link(13, 29);
  link(13, 17);
  link(13, 47);
  link(13, 37);
  link(13, 71);
  // Protection links from the paper: 17-71, 61-67, 67-71, 71-73.
  link(17, 71);
  link(61, 67);
  link(67, 71);
  link(71, 73);
  // Fig. 8 support: 17-41 protection segment; SW41 deflects to {17, 61}.
  link(17, 41);
  link(41, 61);
  // Sao Paulo region and the redundant pair of Fig. 8.
  link(73, 107);
  link(73, 109);
  link(107, 113);
  link(109, 113);
  // North-east ring.
  link(29, 19);
  link(19, 23);
  link(23, 31);
  link(31, 37);
  // Center-west spurs.
  link(47, 53);
  link(47, 43);
  link(43, 59);
  link(53, 59);
  link(59, 61);
  // Southern chain hanging off Sao Paulo's region.
  link(107, 101);
  link(101, 103);
  link(103, 97);
  link(97, 89);
  link(89, 83);
  link(83, 79);
  link(79, 5);
  link(5, 113);
  // Cross links for redundancy (total 40).
  link(37, 47);
  link(53, 61);
  link(97, 101);
  return t;
}

}  // namespace

Scenario make_rnp28(LinkParams params) {
  Scenario s;
  s.name = "rnp28";
  s.description =
      "Paper Fig. 6: RNP/Ipe backbone (28 nodes, 40 links); route Boa Vista "
      "(SW7) -> Sao Paulo (SW73) with partial protection 17->71, 61->67, "
      "67->71, 71->73.";
  s.topology = build_rnp_fabric(params);
  Topology& t = s.topology;
  t.add_edge_node("AS1");    // Boa Vista customer
  t.add_edge_node("AS-SP");  // Sao Paulo international hub
  t.add_link(t.at("AS1"), t.at("SW7"), params);
  t.add_link(t.at("AS-SP"), t.at("SW73"), params);

  s.route.src_edge = "AS1";
  s.route.dst_edge = "AS-SP";
  s.route.core_path = {"SW7", "SW13", "SW41", "SW73"};
  s.route.partial_protection = {
      {"SW17", "SW71"}, {"SW61", "SW67"}, {"SW67", "SW71"}, {"SW71", "SW73"}};
  // The paper only evaluates partial protection on the RNP net; a fuller
  // set covering SW13's remaining deflection candidates is provided for the
  // ablation benches.
  s.route.full_extra_protection = {
      {"SW29", "SW13"}, {"SW47", "SW13"}, {"SW37", "SW13"}, {"SW11", "SW17"}};
  return s;
}

Scenario make_fig8_redundant(LinkParams params) {
  Scenario s;
  s.name = "fig8";
  s.description =
      "Paper Fig. 8: redundant-path worst case; route SW7..SW73-SW107-SW113 "
      "with protection 71->17->41; the SW73-SW109-SW113 path cannot be "
      "encoded, so recovery is a p=1/2 protection loop.";
  s.topology = build_rnp_fabric(params);
  Topology& t = s.topology;
  // Only the endpoints of this experiment attach edges: an extra edge at
  // SW73 would create a third deflection candidate, contradicting the
  // paper's "two possible next hops (SW109 or SW71)".
  t.add_edge_node("AS1");
  t.add_edge_node("AS-113");
  t.add_link(t.at("AS1"), t.at("SW7"), params);
  t.add_link(t.at("AS-113"), t.at("SW113"), params);

  s.route.src_edge = "AS1";
  s.route.dst_edge = "AS-113";
  s.route.core_path = {"SW7", "SW13", "SW41", "SW73", "SW107", "SW113"};
  s.route.partial_protection = {{"SW71", "SW17"}, {"SW17", "SW41"}};
  s.route.full_extra_protection = {};
  return s;
}

Scenario make_line(std::size_t num_switches, LinkParams params) {
  if (num_switches == 0) throw std::invalid_argument("make_line: zero switches");
  Scenario s;
  s.name = "line" + std::to_string(num_switches);
  s.description = "Synthetic line topology.";
  Topology& t = s.topology;
  const auto ids = rns::next_coprime_ids(num_switches, /*minimum=*/3, {});
  std::vector<NodeId> nodes;
  nodes.reserve(num_switches);
  for (std::size_t i = 0; i < num_switches; ++i) {
    nodes.push_back(t.add_switch(sw(ids[i]), ids[i]));
  }
  const NodeId src = t.add_edge_node("SRC");
  const NodeId dst = t.add_edge_node("DST");
  t.add_link(src, nodes.front(), params);
  for (std::size_t i = 0; i + 1 < num_switches; ++i) {
    t.add_link(nodes[i], nodes[i + 1], params);
  }
  t.add_link(nodes.back(), dst, params);

  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  for (const NodeId n : nodes) s.route.core_path.push_back(t.name(n));
  return s;
}

Scenario make_grid(std::size_t rows, std::size_t cols, bool wrap,
                   LinkParams params) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("make_grid: empty grid");
  Scenario s;
  s.name = "grid" + std::to_string(rows) + "x" + std::to_string(cols);
  s.description = "Synthetic grid topology.";
  Topology& t = s.topology;
  // Grid nodes have degree <= 4 (+1 for a possible edge attachment), so IDs
  // must be >= 6; start candidates at 7.
  const auto ids = rns::next_coprime_ids(rows * cols, /*minimum=*/7, {});
  std::vector<std::vector<NodeId>> grid(rows, std::vector<NodeId>(cols));
  std::size_t next = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      grid[r][c] = t.add_switch(sw(ids[next]), ids[next]);
      ++next;
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(grid[r][c], grid[r][c + 1], params);
      if (r + 1 < rows) t.add_link(grid[r][c], grid[r + 1][c], params);
    }
  }
  if (wrap) {
    for (std::size_t r = 0; r < rows && cols > 2; ++r) {
      t.add_link(grid[r][cols - 1], grid[r][0], params);
    }
    for (std::size_t c = 0; c < cols && rows > 2; ++c) {
      t.add_link(grid[rows - 1][c], grid[0][c], params);
    }
  }
  const NodeId src = t.add_edge_node("SRC");
  const NodeId dst = t.add_edge_node("DST");
  t.add_link(src, grid[0][0], params);
  t.add_link(dst, grid[rows - 1][cols - 1], params);

  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  s.route.core_path = bfs_core_path(t, src, dst);
  return s;
}

Scenario make_random_connected(std::size_t num_switches, std::size_t extra_links,
                               std::uint64_t seed, LinkParams params) {
  if (num_switches < 2) {
    throw std::invalid_argument("make_random_connected: need >= 2 switches");
  }
  Scenario s;
  s.name = "random" + std::to_string(num_switches) + "_" + std::to_string(seed);
  s.description = "Random connected topology (deterministic in seed).";
  Topology& t = s.topology;
  common::Rng rng(seed);
  // Degrees are bounded by num_switches; pick IDs comfortably above that.
  const auto ids =
      rns::next_coprime_ids(num_switches, /*minimum=*/num_switches + 2, {});
  std::vector<NodeId> nodes;
  nodes.reserve(num_switches);
  for (std::size_t i = 0; i < num_switches; ++i) {
    nodes.push_back(t.add_switch(sw(ids[i]), ids[i]));
  }
  // Random spanning tree: connect each node to a random earlier node.
  for (std::size_t i = 1; i < num_switches; ++i) {
    t.add_link(nodes[i], nodes[rng.below(i)], params);
  }
  // Extra links between random non-adjacent pairs.
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (extra_links + 1);
  while (added < extra_links && attempts < max_attempts) {
    ++attempts;
    const NodeId a = nodes[rng.below(num_switches)];
    const NodeId b = nodes[rng.below(num_switches)];
    if (a == b || t.link_between(a, b)) continue;
    t.add_link(a, b, params);
    ++added;
  }
  const NodeId src = t.add_edge_node("SRC");
  const NodeId dst = t.add_edge_node("DST");
  const NodeId src_sw = nodes[rng.below(num_switches)];
  NodeId dst_sw = src_sw;
  while (dst_sw == src_sw) dst_sw = nodes[rng.below(num_switches)];
  t.add_link(src, src_sw, params);
  t.add_link(dst, dst_sw, params);

  s.route.src_edge = "SRC";
  s.route.dst_edge = "DST";
  s.route.core_path = bfs_core_path(t, src, dst);
  return s;
}

std::vector<NodeId> attach_host_edges(Topology& topo, LinkParams params) {
  std::vector<NodeId> hosts;
  for (const NodeId sw : topo.nodes_of_kind(NodeKind::kCoreSwitch)) {
    // The new host port gets index port_count(sw); a KAR switch can only
    // use ports strictly below its ID as residues.
    if (static_cast<SwitchId>(topo.port_count(sw)) >= topo.switch_id(sw)) {
      continue;
    }
    const NodeId host = topo.add_edge_node("H-" + topo.name(sw));
    topo.add_link(sw, host, params);
    hosts.push_back(host);
  }
  return hosts;
}

}  // namespace kar::topo

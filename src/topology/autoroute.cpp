#include "topology/autoroute.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace kar::topo {

std::string switch_label(SwitchId id) { return "SW" + std::to_string(id); }

std::vector<std::string> bfs_core_path(const Topology& topo, NodeId src_edge,
                                       NodeId dst_edge) {
  std::vector<NodeId> parent(topo.node_count(), kInvalidNode);
  std::vector<bool> seen(topo.node_count(), false);
  std::queue<NodeId> frontier;
  seen[src_edge] = true;
  frontier.push(src_edge);
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    if (cur == dst_edge) break;
    // Edge nodes other than the endpoints do not forward.
    if (cur != src_edge && topo.kind(cur) == NodeKind::kEdgeNode) continue;
    for (const auto& [port, next] : topo.neighbors(cur)) {
      (void)port;
      if (!seen[next]) {
        seen[next] = true;
        parent[next] = cur;
        frontier.push(next);
      }
    }
  }
  if (!seen[dst_edge]) {
    throw std::logic_error("bfs_core_path: endpoints not connected");
  }
  std::vector<std::string> path;
  for (NodeId cur = parent[dst_edge]; cur != src_edge; cur = parent[cur]) {
    path.push_back(topo.name(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace kar::topo

// Builders for every topology the paper evaluates on, reconstructed from
// the text (the figure images are unavailable; see DESIGN.md §4 for the
// textual constraints each reconstruction satisfies), plus synthetic
// generators used by tests and ablation benches.
#pragma once

#include <cstdint>

#include "topology/graph.hpp"
#include "topology/scenario.hpp"

namespace kar::topo {

/// Paper Fig. 1: the 6-node walkthrough network. Switch IDs {4, 5, 7, 11};
/// edge nodes "S" and "D". Port numbering matches the worked example in
/// §2.2 exactly (R = 44 unprotected, R = 660 with SW5 protection).
[[nodiscard]] Scenario make_fig1_network(LinkParams params = {});

/// Paper Fig. 2/3: the 15-node experimental network. Primary route
/// SW10-SW7-SW13-SW29 (AS1 → AS3); partial protection {SW11→SW19→SW31→SW29};
/// full protection additionally {SW37→SW17→SW43→SW29}. Reproduces Table 1's
/// bit lengths (15 / 28 / 43) and the SW10-deflection 2/3-vs-1/3 split.
[[nodiscard]] Scenario make_experimental15(LinkParams params = {});

/// Paper Fig. 6: the 28-node, 40-link RNP (Ipê) national backbone. Route
/// Boa Vista (SW7) → São Paulo (SW73) with the paper's partial protection
/// links SW17-SW71, SW61-SW67, SW67-SW71, SW71-SW73.
[[nodiscard]] Scenario make_rnp28(LinkParams params = {});

/// Paper Fig. 8: the redundant-path worst case on the RNP backbone. Route
/// SW7→SW13→SW41→SW73→SW107→SW113 with protection SW71→SW17→SW41; the
/// parallel link SW73-SW109-SW113 cannot be encoded (one residue per
/// switch), producing the probabilistic protection loop the paper reports.
[[nodiscard]] Scenario make_fig8_redundant(LinkParams params = {});

/// Synthetic line topology SW_0 - SW_1 - ... - SW_{n-1} with edge nodes at
/// both ends; coprime switch IDs assigned automatically.
[[nodiscard]] Scenario make_line(std::size_t num_switches, LinkParams params = {});

/// Synthetic 2-D torus/grid (rows x cols switches, wraparound optional)
/// with an edge node at opposite corners. Used by property tests.
[[nodiscard]] Scenario make_grid(std::size_t rows, std::size_t cols,
                                 bool wrap = false, LinkParams params = {});

/// Random connected graph: `num_switches` switches, approximately
/// `extra_links` links beyond a random spanning tree, deterministic in
/// `seed`. Edge nodes attached to two distinct random switches.
[[nodiscard]] Scenario make_random_connected(std::size_t num_switches,
                                             std::size_t extra_links,
                                             std::uint64_t seed,
                                             LinkParams params = {});

/// Attaches one host edge node ("H-<switch name>") to every core switch
/// whose KAR ID still exceeds the new port index (the encoder's
/// id > port requirement; switches that cannot take another port are
/// skipped). Returns the new edge handles in switch insertion order — the
/// endpoint pool control-plane churn workloads draw random src-dst routes
/// from on the paper topologies (which ship with only 2-3 edge nodes).
[[nodiscard]] std::vector<NodeId> attach_host_edges(Topology& topo,
                                                    LinkParams params = {});

}  // namespace kar::topo

// Port-indexed network topology for the KAR routing system.
//
// KAR distinguishes *core switches* (which forward purely by
// `route_id mod switch_id`, paper §2) from *edge nodes* (which push/pop the
// route ID). This module models both plus bidirectional links with
// per-link rate/delay/queue parameters and an up/down failure state. Ports
// are dense indices assigned in the order links are attached — a switch's
// output-port index is exactly the residue the encoder stores for it, so a
// switch ID must exceed every port index it uses (validated by the
// encoder).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace kar::topo {

using NodeId = std::uint32_t;    ///< Dense node handle.
using LinkId = std::uint32_t;    ///< Dense link handle.
using PortIndex = std::uint32_t; ///< Per-node port number (0-based).
using SwitchId = std::uint64_t;  ///< KAR modulus; pairwise coprime across the core.

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// Core switches forward by modulo; edge nodes terminate the KAR domain.
enum class NodeKind : std::uint8_t { kCoreSwitch, kEdgeNode };

/// RED (Random Early Detection) AQM parameters for a link direction.
/// When set, the simulator probabilistically drops arriving packets as the
/// EWMA of the queue length climbs between `min_th` and `max_th`, instead
/// of waiting for drop-tail overflow. Absent (the default) means pure
/// drop-tail, which keeps every pre-existing scenario byte-identical.
struct RedParams {
  double min_th = 5.0;    ///< EWMA queue length where early drop begins.
  double max_th = 15.0;   ///< EWMA queue length where drop probability hits max_p.
  double max_p = 0.1;     ///< Drop probability at max_th (gentle ramp above).
  double weight = 0.002;  ///< EWMA weight per arrival (Floyd/Jacobson w_q).
};

/// Physical link properties used by the simulator.
struct LinkParams {
  double rate_bps = 200e6;       ///< Serialization rate (default: paper's 200 Mb/s).
  double delay_s = 0.5e-3;       ///< One-way propagation delay.
  std::size_t queue_packets = 100;  ///< Drop-tail queue capacity per direction.
  std::optional<RedParams> red;  ///< RED AQM; nullopt = drop-tail only.
};

/// One endpoint of a link.
struct LinkEnd {
  NodeId node = kInvalidNode;
  PortIndex port = 0;
};

/// A bidirectional link between two node ports.
struct Link {
  LinkEnd a;
  LinkEnd b;
  LinkParams params;
  bool up = true;
};

/// The KAR network graph.
class Topology {
 public:
  /// Adds a core switch with its (supposedly coprime) KAR ID.
  /// Name must be unique. Throws std::invalid_argument on duplicates.
  NodeId add_switch(std::string name, SwitchId id);

  /// Adds an edge node (no KAR ID; terminates the KAR domain).
  NodeId add_edge_node(std::string name);

  /// Connects two nodes with a new link; allocates the next free port index
  /// on each side and returns the link handle.
  LinkId add_link(NodeId a, NodeId b, LinkParams params = {});

  // -- node queries ----------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] NodeKind kind(NodeId node) const;
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] SwitchId switch_id(NodeId node) const;  ///< Throws for edge nodes.
  [[nodiscard]] std::size_t port_count(NodeId node) const;

  /// Node lookup by unique name; nullopt when absent.
  [[nodiscard]] std::optional<NodeId> find(const std::string& name) const;
  /// Node lookup by name that throws with a useful message when absent.
  [[nodiscard]] NodeId at(const std::string& name) const;
  /// Core switch lookup by KAR ID.
  [[nodiscard]] std::optional<NodeId> find_switch(SwitchId id) const;

  /// All node handles of a given kind, in insertion order.
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;
  /// Switch IDs of every core switch, in insertion order.
  [[nodiscard]] std::vector<SwitchId> all_switch_ids() const;

  // -- port / link queries ---------------------------------------------------
  /// The link attached to a port, or kInvalidLink when the port is unused.
  [[nodiscard]] LinkId link_at(NodeId node, PortIndex port) const;
  /// The node on the far side of a port; nullopt if no link is attached.
  [[nodiscard]] std::optional<NodeId> neighbor(NodeId node, PortIndex port) const;
  /// The local port that reaches `to`, if the nodes are adjacent.
  [[nodiscard]] std::optional<PortIndex> port_to(NodeId from, NodeId to) const;
  /// All (port, neighbor) pairs of a node.
  [[nodiscard]] std::vector<std::pair<PortIndex, NodeId>> neighbors(NodeId node) const;

  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] Link& link(LinkId id);
  /// The link joining two adjacent nodes, if any.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // -- failure state ---------------------------------------------------------
  void set_link_up(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const;
  /// True iff the port has a link and that link is up.
  [[nodiscard]] bool port_available(NodeId node, PortIndex port) const;
  /// Ports of `node` whose links are currently up.
  [[nodiscard]] std::vector<PortIndex> available_ports(NodeId node) const;
  /// Restores every link to the up state.
  void repair_all();

  /// Fails the link between two named nodes. Throws if they are not adjacent.
  LinkId fail_link(const std::string& a, const std::string& b);

 private:
  struct Node {
    std::string name;
    NodeKind kind;
    SwitchId switch_id = 0;                 // valid only for core switches
    std::vector<LinkId> ports;              // port index -> link
  };

  [[nodiscard]] const Node& node_ref(NodeId node) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<SwitchId, NodeId> by_switch_id_;
};

}  // namespace kar::topo

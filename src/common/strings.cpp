#include "common/strings.hpp"

#include <algorithm>
#include <stdexcept>

namespace kar::common {

std::vector<std::string> split(std::string_view text, char sep, bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    std::string_view piece = (end == std::string_view::npos)
                                 ? text.substr(start)
                                 : text.substr(start, end - start);
    if (keep_empty || !piece.empty()) out.emplace_back(piece);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

std::string csv_escape(std::string_view field, char sep) {
  const bool needs_quoting =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_row(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';  // doubled quote -> literal quote
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        throw std::invalid_argument(
            "split_csv_row: quote inside unquoted field");
      }
      quoted = true;
      ++i;
      continue;
    }
    if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (quoted) {
    throw std::invalid_argument("split_csv_row: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string fmt_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad_right(row[c], widths[c]);
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace kar::common

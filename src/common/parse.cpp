#include "common/parse.hpp"

#include <charconv>

namespace kar::common {

namespace {

/// True when from_chars consumed every character without error.
bool complete(const std::from_chars_result& result, const char* end) noexcept {
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  if (text.front() == '-' || text.front() == '+') return std::nullopt;
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  if (!complete(std::from_chars(text.data(), end, value), end)) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) noexcept {
  if (text.empty() || text.front() == '+') return std::nullopt;
  std::int64_t value = 0;
  const char* end = text.data() + text.size();
  if (!complete(std::from_chars(text.data(), end, value), end)) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty() || text.front() == '+') return std::nullopt;
  double value = 0;
  const char* end = text.data() + text.size();
  if (!complete(std::from_chars(text.data(), end, value), end)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace kar::common

// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unrecognised flags raise; positional arguments are collected.
// This keeps experiment harnesses self-describing without an external
// dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parse.hpp"

namespace kar::common {

/// Parsed command line: `--key=value` pairs plus positional arguments.
class Flags {
 public:
  Flags() = default;

  /// Parses argv. Throws std::invalid_argument on malformed input.
  static Flags parse(int argc, const char* const* argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        flags.positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags.values_[arg] = argv[++i];
      } else if (arg.rfind("no-", 0) == 0) {
        flags.values_[arg.substr(3)] = "false";
      } else {
        flags.values_[arg] = "true";
      }
    }
    return flags;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name);
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const auto value = parse_i64(it->second);
    if (!value) {
      throw std::invalid_argument("flag --" + name +
                                  ": not a number: " + it->second);
    }
    return *value;
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const auto value = parse_double(it->second);
    if (!value) {
      throw std::invalid_argument("flag --" + name +
                                  ": not a number: " + it->second);
    }
    return *value;
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kar::common

// Small string utilities shared across modules (splitting, trimming,
// joining, fixed-width table formatting for bench output).
#pragma once

#include <cstddef>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace kar::common {

/// Splits `text` on `sep`, optionally keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep,
                                             bool keep_empty = false);

/// RFC 4180 CSV field quoting: returns `field` unchanged unless it contains
/// the separator, a double quote, or a newline, in which case it is wrapped
/// in double quotes with embedded quotes doubled.
[[nodiscard]] std::string csv_escape(std::string_view field, char sep = ',');

/// Splits one CSV row into fields, honouring RFC 4180 quoting (the inverse
/// of writing csv_escape()d fields joined by `sep`). Quoted fields may
/// contain the separator and doubled quotes; a lone quote inside a quoted
/// field or an unterminated quote throws std::invalid_argument.
[[nodiscard]] std::vector<std::string> split_csv_row(std::string_view line,
                                                     char sep = ',');

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True if `text` begins with `prefix`.
[[nodiscard]] constexpr bool starts_with(std::string_view text,
                                         std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt_double(double value, int precision = 2);

/// Fixed-width left/right padding for plain-text tables.
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// Renders a simple ASCII table: header row plus data rows, columns padded
/// to the widest cell. Used by the experiment harnesses to print
/// paper-style tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kar::common

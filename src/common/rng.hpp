// Deterministic pseudo-random number generation for simulations.
//
// All randomness in the KAR library flows through `Rng` so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// SplitMix64-seeded xoshiro256**, a small, fast, high-quality generator
// (Blackman & Vigna). We deliberately avoid std::mt19937_64 for speed and
// avoid std::uniform_int_distribution for cross-platform determinism (the
// standard does not pin its algorithm).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace kar::common {

/// SplitMix64 finalizer: avalanches all 64 input bits. The shared mixing
/// core of Rng::reseed and derive_seed.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic per-index seed stream: one SplitMix64 step over
/// (master, index). Adjacent masters share no derived seeds, and the value
/// depends only on (master, index) — never on scheduling or job count —
/// which is what makes parallel campaigns bit-identical to serial ones.
/// Used for campaign run seeds and every other "run i of master seed s"
/// derivation in the repo.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t index) noexcept {
  return splitmix64_mix(master + 0x9e3779b97f4a7c15ULL * (index + 1));
}

/// Deterministic 64-bit PRNG (xoshiro256**), reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-seeds the generator in place via SplitMix64 expansion.
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      word = splitmix64_mix(seed);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's nearly-divisionless method;
  /// deterministic across platforms. `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound must be nonzero");
    // Lemire 2019: multiply-shift with rejection to remove modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t off = (span == 0) ? (*this)() : below(span);
    return lo + static_cast<std::int64_t>(off);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform() < p; }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[below(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derives an independent child generator (for per-run streams).
  Rng split() noexcept { return Rng((*this)() ^ 0xd2b74407b1ce6e93ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kar::common

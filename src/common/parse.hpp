// Strict, locale-independent numeric parsing.
//
// std::stod/stoull/istringstream-based parsing has two correctness holes
// this repo got bitten by: it consults the global locale (a comma-decimal
// locale breaks golden-trace round-trips), and it silently accepts trailing
// garbage ("3abc" parses as 3). These helpers sit on std::from_chars, which
// is locale-independent by specification, and succeed only when the entire
// input is consumed. Callers attach context (line / field) to the error
// they raise on nullopt.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace kar::common {

/// Parses the whole of `text` as an unsigned decimal 64-bit integer.
/// Strict: no whitespace, sign, prefix, or trailing characters. Returns
/// nullopt on any deviation (including overflow and empty input).
[[nodiscard]] std::optional<std::uint64_t> parse_u64(
    std::string_view text) noexcept;

/// Parses the whole of `text` as a signed decimal 64-bit integer. Strict:
/// an optional leading '-' only; nullopt on any deviation.
[[nodiscard]] std::optional<std::int64_t> parse_i64(
    std::string_view text) noexcept;

/// Parses the whole of `text` as a double (fixed or scientific notation,
/// the formats std::ostream and std::to_chars emit). Locale-independent:
/// the decimal separator is always '.'. nullopt on any deviation.
[[nodiscard]] std::optional<double> parse_double(
    std::string_view text) noexcept;

}  // namespace kar::common

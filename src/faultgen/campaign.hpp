// Fault-injection campaign engine: drives sim::Network through thousands
// of seeded, reproducible failure schedules with the runtime invariant
// checker attached, and reports every violation with its campaign seed and
// a greedily shrunk, replayable failure schedule.
//
// A campaign is (scenario × technique × protection × schedule family) run
// `runs` times; run i derives its own seed from the campaign seed, and that
// run seed alone determines the topology, the traffic and the failure
// schedule — so a reported seed replays the exact violating run.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctrlplane/engine_mode.hpp"
#include "dataplane/edge.hpp"
#include "dataplane/switch.hpp"
#include "faultgen/invariants.hpp"
#include "faultgen/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "stats/summary.hpp"
#include "topology/scenario.hpp"

namespace kar::faultgen {

/// Everything one campaign needs; fully value-typed for reproducibility.
struct CampaignConfig {
  /// Scenario family: "fig1", "fig2" (the 15-node experimental network),
  /// "rnp28", "fig8", "grid" (3x4), or "line" (5 switches).
  std::string topology = "fig1";
  dataplane::DeflectionTechnique technique =
      dataplane::DeflectionTechnique::kNotInputPort;
  /// Residue computation on every core switch (kFast = memoized
  /// PreparedMod reduction, kNaive = per-hop BigUint::mod_u64). Decisions
  /// are bit-identical either way (tests/test_fastpath_differential.cpp);
  /// the knob exists for that differential suite and for benchmarking.
  dataplane::ResiduePath residue_path = dataplane::ResiduePath::kFast;
  /// Reconvergence engine for any control plane attached to the run's
  /// network (sim::ReactiveController); forwarded into
  /// sim::NetworkConfig::route_engine. Campaign runs themselves follow the
  /// paper's static-controller policy, so this knob only matters to
  /// reaction-delay scenarios — it exists so the campaign smoke suites and
  /// the churn bench share one plumbing path (like `residue_path`).
  ctrlplane::EngineMode route_engine = ctrlplane::EngineMode::kIncremental;
  /// Core-switch batch size, forwarded into sim::NetworkConfig::batch_size
  /// (0 = per-packet). Aggregates are byte-identical at any value — the
  /// campaign smokes pin that by re-running once with --batch=32.
  std::size_t batch_size = 0;
  topo::ProtectionLevel protection = topo::ProtectionLevel::kPartial;
  dataplane::WrongEdgePolicy wrong_edge_policy =
      dataplane::WrongEdgePolicy::kReencode;
  ScheduleConfig schedule;
  std::size_t runs = 100;
  std::size_t packets_per_run = 20;
  /// <= 0 derives an interval that spreads packets over 60% of the horizon,
  /// so the failure schedule interleaves with live traffic.
  double inject_interval_s = 0.0;
  std::uint64_t seed = 1;
  std::uint32_t max_hops = 256;
  double failure_detection_delay_s = 0.0;
  /// Shrink the failure schedule of violating runs (greedy event removal).
  bool shrink = true;
  /// Replay budget for the shrinker.
  std::size_t max_shrink_replays = 200;
  /// Mutation passthrough to InvariantConfig (self-test support).
  std::optional<std::uint32_t> hop_budget_override;
  /// Event-count guard per run against pathological schedules.
  std::size_t max_events_per_run = 5'000'000;

  // --- Observability (src/obs/) ---------------------------------------
  /// Build a per-run MetricsRegistry (NetworkObserver) and carry its
  /// snapshot on RunResult; snapshots fold into CampaignResult::metrics in
  /// run-index order, so they are deterministic at any jobs count.
  bool collect_metrics = false;
  /// Record packet/link trace events for the first `trace_runs` runs into a
  /// bounded ring (`trace_ring_capacity` records per traced run).
  std::size_t trace_runs = 0;
  std::size_t trace_ring_capacity = 8192;
  /// Collect per-phase wall time and the event-kind breakdown. Wall times
  /// are non-deterministic by nature and excluded from canonical
  /// aggregates.
  bool profile = false;
};

/// Wall-time profile of one run (or the merge of many): the three
/// setup/event-loop/teardown phases plus the per-event-kind breakdown
/// measured inside sim::EventQueue.
struct RunProfile {
  obs::PhaseProfile phases;
  sim::EventLoopProfile events;

  void merge(const RunProfile& other) noexcept {
    phases.merge(other.phases);
    events.merge(other.events);
  }
  [[nodiscard]] bool empty() const noexcept { return phases.empty(); }
};

/// Outcome of one simulated run.
struct RunResult {
  std::uint64_t run_seed = 0;
  FailureSchedule schedule;
  sim::NetworkCounters counters;
  std::vector<Violation> violations;
  bool queue_drained = true;
  std::uint64_t delivered_hops = 0;  ///< Sum of hop counts over delivered packets.
  /// Observability payloads; empty unless the matching config knobs are on.
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceRecord> trace;
  RunProfile profile;
};

/// A violating run, post-shrinking: everything needed to replay it.
struct ViolationReport {
  std::uint64_t run_seed = 0;
  Violation first;
  std::size_t total_violations = 0;
  FailureSchedule original;
  FailureSchedule shrunk;
  /// Name-based rendering of `shrunk` (replayable without LinkId mapping).
  std::string shrunk_description;
};

/// Aggregate campaign outcome.
struct CampaignResult {
  std::size_t runs = 0;
  std::size_t schedule_events = 0;
  sim::NetworkCounters totals;
  stats::Summary delivery_rate;        ///< Per-run delivered / injected.
  stats::Summary hops_per_delivered;   ///< Per-run mean hops of delivered packets.
  std::vector<ViolationReport> reports;
  /// Fold of per-run metrics snapshots, in run-index order (deterministic).
  obs::MetricsSnapshot metrics;
  /// Concatenated trace records of the traced runs; TraceRecord::tid is
  /// rewritten to the run index.
  std::vector<obs::TraceRecord> trace;
  /// Merged wall-time profile (non-deterministic; reporting only).
  RunProfile profile;

  [[nodiscard]] bool ok() const noexcept { return reports.empty(); }
};

/// Builds the scenario a campaign runs on. Throws std::invalid_argument
/// for an unknown topology name.
[[nodiscard]] topo::Scenario make_campaign_scenario(const std::string& name);

/// The engine. Stateless between calls except for the config.
class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignConfig config);

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

  /// Runs the whole campaign: `runs` seeded scenarios, shrinking and
  /// reporting every violating run.
  [[nodiscard]] CampaignResult run() const;

  /// One seeded run. When `override_schedule` is set it replaces the
  /// generated schedule (the shrinker's replay path); traffic and network
  /// randomness still derive from `run_seed`. `cancel`, when set, is a
  /// cooperative stop flag polled between event-queue slices (the runner's
  /// per-run timeout): a cancelled run returns early with
  /// `queue_drained == false` and partial counters.
  ///
  /// Thread safety: const and self-contained (each call builds its own
  /// scenario, controller and network), so concurrent calls with distinct
  /// seeds are safe — the property the parallel runner relies on.
  ///
  /// `traced` opts this run into trace recording (the caller decides by run
  /// index; shrinker replays never trace).
  [[nodiscard]] RunResult run_one(
      std::uint64_t run_seed,
      const FailureSchedule* override_schedule = nullptr,
      const std::atomic<bool>* cancel = nullptr, bool traced = false) const;

  /// Greedy schedule shrinking: repeatedly drops events whose removal
  /// keeps the run violating, until a fixpoint (or the replay budget).
  [[nodiscard]] FailureSchedule shrink_schedule(
      std::uint64_t run_seed, const FailureSchedule& failing) const;

  /// The seed of run `index` (derived from the campaign seed).
  [[nodiscard]] std::uint64_t run_seed_at(std::size_t index) const noexcept;

 private:
  CampaignConfig config_;
};

/// Order-sensitive fold of RunResults into a CampaignResult: the single
/// aggregation path shared by CampaignEngine::run() and the parallel
/// runner (src/runner/campaign_runner.hpp). Feeding runs in run-index
/// order yields bit-identical aggregates regardless of how (or on how many
/// threads) the runs were produced — floating-point accumulation order is
/// fixed here, nowhere else.
class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(const CampaignEngine& engine);

  /// Folds one run in; for violating runs this shrinks the schedule via
  /// the engine (serial replays on the calling thread).
  void add(const RunResult& run);

  /// Finalizes the summaries and surrenders the result.
  [[nodiscard]] CampaignResult take();

 private:
  const CampaignEngine* engine_;
  CampaignResult result_;
  std::vector<double> delivery_rates_;
  std::vector<double> mean_hops_;
};

}  // namespace kar::faultgen

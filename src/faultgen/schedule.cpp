#include "faultgen/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kar::faultgen {

void FailureSchedule::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const LinkEvent& a, const LinkEvent& b) {
                     return a.time < b.time;
                   });
}

std::string FailureSchedule::describe(const topo::Topology& topo) const {
  std::ostringstream out;
  for (const LinkEvent& event : events) {
    const topo::Link& link = topo.link(event.link);
    out << "t=" << event.time << (event.fail ? " fail " : " repair ")
        << topo.name(link.a.node) << '-' << topo.name(link.b.node) << '\n';
  }
  return out.str();
}

std::string_view to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kRandomUpDown: return "updown";
    case ScheduleKind::kSrlgGroups: return "srlg";
    case ScheduleKind::kFlapping: return "flap";
    case ScheduleKind::kKFailureSweep: return "sweep";
  }
  throw std::logic_error("to_string: bad ScheduleKind");
}

ScheduleKind schedule_kind_from_string(std::string_view name) {
  if (name == "updown") return ScheduleKind::kRandomUpDown;
  if (name == "srlg") return ScheduleKind::kSrlgGroups;
  if (name == "flap") return ScheduleKind::kFlapping;
  if (name == "sweep") return ScheduleKind::kKFailureSweep;
  throw std::invalid_argument("unknown schedule kind: " + std::string(name));
}

std::vector<topo::LinkId> eligible_links(const topo::Topology& topo,
                                         const ScheduleConfig& config) {
  std::vector<topo::LinkId> links;
  for (topo::LinkId id = 0; id < topo.link_count(); ++id) {
    const topo::Link& link = topo.link(id);
    const bool touches_edge =
        topo.kind(link.a.node) == topo::NodeKind::kEdgeNode ||
        topo.kind(link.b.node) == topo::NodeKind::kEdgeNode;
    if (touches_edge && !config.include_edge_links) continue;
    links.push_back(id);
  }
  return links;
}

namespace {

/// Exponential holding time with the given mean (inverse-CDF sampling).
double exponential(common::Rng& rng, double mean) {
  // 1 - uniform() is in (0, 1], keeping the log finite.
  return -mean * std::log(1.0 - rng.uniform());
}

/// Draws `count` distinct elements of `pool` (order randomized).
std::vector<topo::LinkId> sample_without_replacement(
    std::vector<topo::LinkId> pool, std::size_t count, common::Rng& rng) {
  rng.shuffle(pool);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

void generate_updown(const std::vector<topo::LinkId>& links,
                     const ScheduleConfig& config, common::Rng& rng,
                     FailureSchedule& schedule) {
  for (const topo::LinkId link : links) {
    if (!rng.chance(config.per_link_failure_probability)) continue;
    const double down_at = rng.uniform() * config.horizon_s;
    schedule.events.push_back({down_at, link, /*fail=*/true});
    const double up_at = down_at + exponential(rng, config.mean_downtime_s);
    if (up_at < config.horizon_s) {
      schedule.events.push_back({up_at, link, /*fail=*/false});
    }
  }
}

void generate_srlg(const std::vector<topo::LinkId>& links,
                   const ScheduleConfig& config, common::Rng& rng,
                   FailureSchedule& schedule) {
  for (std::size_t g = 0; g < config.group_count; ++g) {
    const auto group =
        sample_without_replacement(links, config.group_size, rng);
    const double down_at = rng.uniform() * config.horizon_s;
    const double up_at = down_at + exponential(rng, config.mean_downtime_s);
    for (const topo::LinkId link : group) {
      schedule.events.push_back({down_at, link, /*fail=*/true});
      if (up_at < config.horizon_s) {
        schedule.events.push_back({up_at, link, /*fail=*/false});
      }
    }
  }
}

void generate_flapping(const std::vector<topo::LinkId>& links,
                       const ScheduleConfig& config, common::Rng& rng,
                       FailureSchedule& schedule) {
  const auto flappers =
      sample_without_replacement(links, config.flapping_links, rng);
  for (const topo::LinkId link : flappers) {
    // Random phase so several flappers are not synchronized.
    double t = rng.uniform() * config.flap_half_period_s;
    bool fail = true;
    while (t < config.horizon_s) {
      schedule.events.push_back({t, link, fail});
      fail = !fail;
      t += config.flap_half_period_s;
    }
  }
}

void generate_sweep(const std::vector<topo::LinkId>& links,
                    const ScheduleConfig& config, common::Rng& rng,
                    FailureSchedule& schedule) {
  const auto victims = sample_without_replacement(links, config.k_failures, rng);
  if (victims.empty()) return;
  // Failures staged evenly across the first half of the horizon, so traffic
  // keeps flowing while the failure set grows.
  const double stage = config.horizon_s / (2.0 * static_cast<double>(victims.size()));
  double t = stage;
  for (const topo::LinkId link : victims) {
    schedule.events.push_back({t, link, /*fail=*/true});
    t += stage;
  }
}

}  // namespace

FailureSchedule generate_schedule(const topo::Topology& topo,
                                  const ScheduleConfig& config,
                                  common::Rng& rng) {
  if (config.horizon_s <= 0.0) {
    throw std::invalid_argument("generate_schedule: horizon must be positive");
  }
  const std::vector<topo::LinkId> links = eligible_links(topo, config);
  FailureSchedule schedule;
  if (links.empty()) return schedule;
  switch (config.kind) {
    case ScheduleKind::kRandomUpDown:
      generate_updown(links, config, rng, schedule);
      break;
    case ScheduleKind::kSrlgGroups:
      generate_srlg(links, config, rng, schedule);
      break;
    case ScheduleKind::kFlapping:
      generate_flapping(links, config, rng, schedule);
      break;
    case ScheduleKind::kKFailureSweep:
      generate_sweep(links, config, rng, schedule);
      break;
  }
  schedule.sort();
  return schedule;
}

}  // namespace kar::faultgen

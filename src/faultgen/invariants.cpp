#include "faultgen/invariants.hpp"

#include <sstream>
#include <stdexcept>

namespace kar::faultgen {

using dataplane::DeflectionTechnique;
using sim::TraceEvent;

std::string_view to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kHopBudgetExceeded: return "hop-budget-exceeded";
    case Violation::Kind::kNipReturnedInputPort: return "nip-returned-input-port";
    case Violation::Kind::kForwardOnDownPort: return "forward-on-down-port";
    case Violation::Kind::kResidueMismatch: return "residue-mismatch";
    case Violation::Kind::kLifecycle: return "lifecycle";
    case Violation::Kind::kTimeNonMonotonic: return "time-non-monotonic";
    case Violation::Kind::kConservation: return "conservation";
  }
  throw std::logic_error("to_string: bad Violation::Kind");
}

InvariantChecker::InvariantChecker(const sim::Network& network,
                                   InvariantConfig config)
    : net_(&network),
      config_(config),
      hop_budget_(config.hop_budget_override.value_or(config.max_hops)) {}

void InvariantChecker::record(Violation::Kind kind, double time,
                              std::uint64_t packet_id, std::string detail) {
  if (violations_.size() >= config_.max_recorded) return;
  violations_.push_back(Violation{kind, time, packet_id, std::move(detail)});
}

void InvariantChecker::check_hop(const TraceEvent& event) {
  const topo::Topology& topo = net_->topology();
  PacketState& state = live_[event.packet_id];
  if (++state.hops > hop_budget_) {
    record(Violation::Kind::kHopBudgetExceeded, event.time, event.packet_id,
           "hop " + std::to_string(state.hops) + " at " +
               topo.name(event.node) + " exceeds budget " +
               std::to_string(hop_budget_));
  }
  // Port liveness: the forwarding decision just happened, so the detected
  // link state at `event.time` is exactly what the switch saw.
  if (!topo.port_available(event.node, event.out_port)) {
    record(Violation::Kind::kForwardOnDownPort, event.time, event.packet_id,
           topo.name(event.node) + " forwarded out detected-down port " +
               std::to_string(event.out_port));
  }
  if (config_.technique == DeflectionTechnique::kNotInputPort &&
      event.out_port == event.in_port) {
    record(Violation::Kind::kNipReturnedInputPort, event.time, event.packet_id,
           topo.name(event.node) + " returned packet out input port " +
               std::to_string(event.in_port));
  }
  // Residue match on unfailed (non-deflected) segments: Eq. 3.
  if (config_.check_residue && !event.deflected && event.packet != nullptr) {
    const std::uint64_t residue =
        event.packet->kar.route_id.mod_u64(topo.switch_id(event.node));
    if (residue != event.out_port) {
      std::ostringstream detail;
      detail << topo.name(event.node) << " followed port " << event.out_port
             << " but route ID " << event.packet->kar.route_id
             << " decodes to residue " << residue;
      record(Violation::Kind::kResidueMismatch, event.time, event.packet_id,
             detail.str());
    }
  }
}

void InvariantChecker::observe(const TraceEvent& event) {
  if (event.time < last_time_) {
    record(Violation::Kind::kTimeNonMonotonic, event.time, event.packet_id,
           "event at t=" + std::to_string(event.time) +
               " after t=" + std::to_string(last_time_));
  }
  last_time_ = std::max(last_time_, event.time);

  switch (event.kind) {
    case TraceEvent::Kind::kInject:
      if (live_.contains(event.packet_id)) {
        record(Violation::Kind::kLifecycle, event.time, event.packet_id,
               "packet injected twice");
        return;
      }
      ++injected_;
      live_.emplace(event.packet_id, PacketState{});
      break;
    case TraceEvent::Kind::kHop:
      if (!live_.contains(event.packet_id)) {
        record(Violation::Kind::kLifecycle, event.time, event.packet_id,
               "hop for a packet that is not in flight");
        return;
      }
      check_hop(event);
      break;
    case TraceEvent::Kind::kReencode:
    case TraceEvent::Kind::kBounce:
      if (!live_.contains(event.packet_id)) {
        record(Violation::Kind::kLifecycle, event.time, event.packet_id,
               "edge event for a packet that is not in flight");
      }
      break;
    case TraceEvent::Kind::kDeliver:
    case TraceEvent::Kind::kDrop: {
      const auto it = live_.find(event.packet_id);
      if (it == live_.end()) {
        record(Violation::Kind::kLifecycle, event.time, event.packet_id,
               "terminal event for a packet that is not in flight");
        return;
      }
      live_.erase(it);
      if (event.kind == TraceEvent::Kind::kDeliver) {
        ++delivered_;
      } else {
        ++dropped_;
      }
      break;
    }
  }
}

void InvariantChecker::finish(bool queue_drained) {
  const sim::NetworkCounters& counters = net_->counters();
  const auto check_count = [&](std::uint64_t observed, std::uint64_t counted,
                               const char* what) {
    if (observed != counted) {
      record(Violation::Kind::kConservation, last_time_, 0,
             std::string(what) + " mismatch: traced " +
                 std::to_string(observed) + ", network counted " +
                 std::to_string(counted));
    }
  };
  check_count(injected_, counters.injected, "injected");
  check_count(delivered_, counters.delivered, "delivered");
  check_count(dropped_, counters.total_drops(), "dropped");
  if (injected_ != delivered_ + dropped_ + live_.size()) {
    record(Violation::Kind::kConservation, last_time_, 0,
           "injected " + std::to_string(injected_) + " != delivered " +
               std::to_string(delivered_) + " + dropped " +
               std::to_string(dropped_) + " + in-flight " +
               std::to_string(live_.size()));
  }
  if (queue_drained && !live_.empty()) {
    record(Violation::Kind::kConservation, last_time_, 0,
           std::to_string(live_.size()) +
               " packet(s) vanished: still tracked after the event queue drained");
  }
}

}  // namespace kar::faultgen

#include "faultgen/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "obs/instrument.hpp"
#include "routing/controller.hpp"
#include "topogen/topogen.hpp"
#include "topology/builders.hpp"

namespace kar::faultgen {

using dataplane::Packet;

topo::Scenario make_campaign_scenario(const std::string& name) {
  if (topogen::is_gen_spec(name)) return topogen::make_from_spec(name);
  if (name == "fig1") return topo::make_fig1_network();
  if (name == "fig2" || name == "exp15") return topo::make_experimental15();
  if (name == "rnp28") return topo::make_rnp28();
  if (name == "fig8") return topo::make_fig8_redundant();
  if (name == "grid") return topo::make_grid(3, 4);
  if (name == "line") return topo::make_line(5);
  throw std::invalid_argument("make_campaign_scenario: unknown topology " +
                              name + "\n" + topogen::spec_grammar_help());
}

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {
  if (config_.runs == 0) {
    throw std::invalid_argument("CampaignEngine: runs must be positive");
  }
}

std::uint64_t CampaignEngine::run_seed_at(std::size_t index) const noexcept {
  return common::derive_seed(config_.seed, index);
}

RunResult CampaignEngine::run_one(std::uint64_t run_seed,
                                  const FailureSchedule* override_schedule,
                                  const std::atomic<bool>* cancel,
                                  bool traced) const {
  RunResult result;
  result.run_seed = run_seed;
  obs::SpanTimer setup_timer(
      config_.profile
          ? &result.profile.phases.wall_s[static_cast<std::size_t>(
                obs::Phase::kSetup)]
          : nullptr);

  topo::Scenario scenario = make_campaign_scenario(config_.topology);
  const routing::Controller controller(scenario.topology);
  // Routes are encoded before any failure, and the controller keeps them
  // (the paper's evaluation policy): recovery is the data plane's job.
  const routing::EncodedRoute route =
      controller.encode_scenario(scenario.route, config_.protection);

  sim::NetworkConfig net_config;
  net_config.technique = config_.technique;
  net_config.residue_path = config_.residue_path;
  net_config.route_engine = config_.route_engine;
  net_config.batch_size = config_.batch_size;
  net_config.wrong_edge_policy = config_.wrong_edge_policy;
  net_config.max_hops = config_.max_hops;
  net_config.failure_detection_delay_s = config_.failure_detection_delay_s;
  net_config.seed = run_seed;
  sim::Network net(scenario.topology, controller, net_config);

  InvariantConfig inv_config;
  inv_config.max_hops = config_.max_hops;
  inv_config.technique = config_.technique;
  inv_config.check_residue = true;
  inv_config.hop_budget_override = config_.hop_budget_override;
  InvariantChecker checker(net, inv_config);

  // Observability: per-run registry + optional bounded trace ring. The
  // observer composes with the invariant checker on the single trace hook;
  // neither consumes randomness nor alters event order, so determinism is
  // untouched.
  obs::MetricsRegistry registry(config_.collect_metrics);
  obs::TraceRecorder recorder(config_.trace_ring_capacity);
  obs::NetworkObserverOptions observer_options;
  observer_options.metrics = config_.collect_metrics ? &registry : nullptr;
  observer_options.trace = traced ? &recorder : nullptr;
  observer_options.labels = {
      {"technique", std::string(dataplane::to_string(config_.technique))},
      {"topology", config_.topology}};
  const bool observe = config_.collect_metrics || traced;
  std::optional<obs::NetworkObserver> observer;
  if (observe) observer.emplace(net, observer_options);
  net.set_trace_hook([&checker, &observer](const sim::TraceEvent& e) {
    checker.observe(e);
    if (observer.has_value()) observer->on_trace(e);
  });
  if (observe) {
    net.set_link_state_hook([&observer](topo::LinkId link, bool up) {
      observer->on_link_state(link, up);
    });
  }
  sim::EventLoopProfile* event_profile =
      config_.profile ? &result.profile.events : nullptr;
  net.events().set_profile(event_profile);

  if (override_schedule != nullptr) {
    result.schedule = *override_schedule;
  } else {
    common::Rng schedule_rng(run_seed ^ 0x5eedfa171c5c11edULL);
    result.schedule =
        generate_schedule(scenario.topology, config_.schedule, schedule_rng);
  }
  for (const LinkEvent& event : result.schedule.events) {
    net.events().schedule_at(event.time, [&net, event] {
      if (event.fail) {
        net.fail_link_now(event.link);
      } else {
        net.repair_link_now(event.link);
      }
    });
  }

  net.set_delivery_handler(route.dst_edge, [&result](const Packet& p) {
    result.delivered_hops += p.hop_count;
  });

  const double interval =
      config_.inject_interval_s > 0.0
          ? config_.inject_interval_s
          : 0.6 * config_.schedule.horizon_s /
                static_cast<double>(std::max<std::size_t>(config_.packets_per_run, 1));
  common::Rng traffic_rng(run_seed ^ 0x7aff1c0de5eed000ULL);
  for (std::size_t i = 0; i < config_.packets_per_run; ++i) {
    const double at = static_cast<double>(i) * interval;
    const std::size_t payload = 64 + traffic_rng.below(1137);  // 64..1200 B
    net.events().schedule_at(at, [&net, &route, i, payload] {
      Packet p;
      p.transport = dataplane::Datagram{static_cast<std::uint64_t>(i)};
      net.edge_at(route.src_edge).stamp(p, route, payload);
      net.inject(route.src_edge, std::move(p));
    });
  }

  setup_timer.stop();

  // Run in bounded slices, polling the cooperative cancel flag between
  // them: slicing does not change event order, so a never-cancelled run is
  // identical to one monolithic run_all().
  {
    obs::SpanTimer loop_timer(
        config_.profile
            ? &result.profile.phases.wall_s[static_cast<std::size_t>(
                  obs::Phase::kEventLoop)]
            : nullptr);
    constexpr std::size_t kEventSlice = 65'536;
    std::size_t processed = 0;
    while (!net.events().empty() && processed < config_.max_events_per_run) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
      processed += net.events().run_all(
          std::min(kEventSlice, config_.max_events_per_run - processed));
    }
  }

  obs::SpanTimer teardown_timer(
      config_.profile
          ? &result.profile.phases.wall_s[static_cast<std::size_t>(
                obs::Phase::kTeardown)]
          : nullptr);
  net.events().set_profile(nullptr);
  result.queue_drained = net.events().empty();
  checker.finish(result.queue_drained);
  result.counters = net.counters();
  result.violations = checker.violations();
  if (config_.profile) result.profile.phases.runs = 1;
  if (config_.collect_metrics) result.metrics = registry.snapshot();
  if (traced) result.trace = recorder.snapshot();
  return result;
}

FailureSchedule CampaignEngine::shrink_schedule(
    std::uint64_t run_seed, const FailureSchedule& failing) const {
  FailureSchedule current = failing;
  std::size_t replays = 0;
  bool improved = true;
  while (improved && replays < config_.max_shrink_replays) {
    improved = false;
    for (std::size_t i = 0; i < current.events.size(); ++i) {
      FailureSchedule candidate;
      candidate.events.reserve(current.events.size() - 1);
      for (std::size_t j = 0; j < current.events.size(); ++j) {
        if (j != i) candidate.events.push_back(current.events[j]);
      }
      ++replays;
      const RunResult replay = run_one(run_seed, &candidate);
      if (!replay.violations.empty()) {
        current = std::move(candidate);
        improved = true;
        break;  // restart the scan over the smaller schedule
      }
      if (replays >= config_.max_shrink_replays) break;
    }
  }
  return current;
}

CampaignResult CampaignEngine::run() const {
  CampaignAccumulator accumulator(*this);
  for (std::size_t i = 0; i < config_.runs; ++i) {
    accumulator.add(run_one(run_seed_at(i), nullptr, nullptr,
                            /*traced=*/i < config_.trace_runs));
  }
  return accumulator.take();
}

CampaignAccumulator::CampaignAccumulator(const CampaignEngine& engine)
    : engine_(&engine) {
  delivery_rates_.reserve(engine.config().runs);
  mean_hops_.reserve(engine.config().runs);
}

void CampaignAccumulator::add(const RunResult& run) {
  const CampaignConfig& config = engine_->config();
  const auto run_index = static_cast<std::uint32_t>(result_.runs);
  ++result_.runs;
  result_.schedule_events += run.schedule.size();
  // Observability folds: add() is called in run-index order (the runner's
  // reorder buffer guarantees it), so these are as deterministic as the
  // counter totals above.
  if (!run.metrics.empty()) result_.metrics.merge(run.metrics);
  if (!run.trace.empty()) {
    for (obs::TraceRecord record : run.trace) {
      record.tid = run_index;
      result_.trace.push_back(std::move(record));
    }
  }
  if (!run.profile.empty()) result_.profile.merge(run.profile);
  result_.totals.injected += run.counters.injected;
  result_.totals.delivered += run.counters.delivered;
  result_.totals.delivered_bytes += run.counters.delivered_bytes;
  result_.totals.hops += run.counters.hops;
  result_.totals.deflections += run.counters.deflections;
  result_.totals.reencodes += run.counters.reencodes;
  result_.totals.bounces += run.counters.bounces;
  result_.totals.drop_no_viable_port += run.counters.drop_no_viable_port;
  result_.totals.drop_link_failed += run.counters.drop_link_failed;
  result_.totals.drop_queue_overflow += run.counters.drop_queue_overflow;
  result_.totals.drop_ttl += run.counters.drop_ttl;
  result_.totals.drop_aqm_early += run.counters.drop_aqm_early;
  if (run.counters.injected > 0) {
    delivery_rates_.push_back(static_cast<double>(run.counters.delivered) /
                              static_cast<double>(run.counters.injected));
  }
  if (run.counters.delivered > 0) {
    mean_hops_.push_back(static_cast<double>(run.delivered_hops) /
                         static_cast<double>(run.counters.delivered));
  }
  if (!run.violations.empty()) {
    ViolationReport report;
    report.run_seed = run.run_seed;
    report.first = run.violations.front();
    report.total_violations = run.violations.size();
    report.original = run.schedule;
    report.shrunk = config.shrink
                        ? engine_->shrink_schedule(run.run_seed, run.schedule)
                        : run.schedule;
    const topo::Scenario scenario = make_campaign_scenario(config.topology);
    report.shrunk_description = report.shrunk.describe(scenario.topology);
    result_.reports.push_back(std::move(report));
  }
}

CampaignResult CampaignAccumulator::take() {
  result_.delivery_rate = stats::summarize(delivery_rates_);
  result_.hops_per_delivered = stats::summarize(mean_hops_);
  return std::move(result_);
}

}  // namespace kar::faultgen

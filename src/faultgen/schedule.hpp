// Seeded, reproducible link-failure schedules for adversarial campaigns.
//
// A schedule is a flat, time-sorted list of link fail/repair events that a
// campaign replays against a sim::Network. Four generator families cover
// the failure processes the resilience literature evaluates against
// (Chiesa et al., arXiv:1409.0034; Huang et al., arXiv:1603.01708):
//
//   * kRandomUpDown   — each eligible link independently fails at random
//                       times and stays down for a random holding time;
//   * kSrlgGroups     — shared-risk link groups: random sets of links fail
//                       (and repair) together, modelling fiber cuts;
//   * kFlapping       — a few links oscillate up/down on a short period,
//                       the worst case for detection-delay race conditions;
//   * kKFailureSweep  — k distinct links fail at staged times and never
//                       repair (the static-failover stress of Table 2's
//                       "multiple link failures" claim).
//
// Every generator is a pure function of (topology, config, rng) so a
// campaign seed fully determines the schedule — the property the
// violation reports and the schedule shrinker rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace kar::faultgen {

/// One timed link state change.
struct LinkEvent {
  double time = 0.0;
  topo::LinkId link = topo::kInvalidLink;
  bool fail = true;  ///< true = link goes down, false = link comes back up.

  friend bool operator==(const LinkEvent&, const LinkEvent&) = default;
};

/// A reproducible failure schedule: time-sorted link events.
struct FailureSchedule {
  std::vector<LinkEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  /// Stable-sorts the events by time (generators call this last).
  void sort();

  /// Human-readable, name-based rendering ("t=0.0125 fail SW7-SW11"), one
  /// event per line — the replayable form printed with violation reports.
  [[nodiscard]] std::string describe(const topo::Topology& topo) const;
};

/// Generator families (see file comment).
enum class ScheduleKind : std::uint8_t {
  kRandomUpDown,
  kSrlgGroups,
  kFlapping,
  kKFailureSweep,
};

[[nodiscard]] std::string_view to_string(ScheduleKind kind);
/// Parses "updown" / "srlg" / "flap" / "sweep".
[[nodiscard]] ScheduleKind schedule_kind_from_string(std::string_view name);

/// Knobs for every generator family; unused fields are ignored.
struct ScheduleConfig {
  ScheduleKind kind = ScheduleKind::kRandomUpDown;
  /// Schedule horizon: all events land in [0, horizon_s).
  double horizon_s = 0.5;
  /// kRandomUpDown: per-link probability of at least one failure episode.
  double per_link_failure_probability = 0.5;
  /// kRandomUpDown / kSrlgGroups: mean down time before the repair fires
  /// (exponentially distributed; a repair past the horizon is dropped,
  /// leaving the link down for the rest of the run).
  double mean_downtime_s = 0.1;
  /// kSrlgGroups: number of groups and links per group.
  std::size_t group_count = 2;
  std::size_t group_size = 2;
  /// kFlapping: number of flapping links and the half-period of the flap.
  std::size_t flapping_links = 1;
  double flap_half_period_s = 0.01;
  /// kKFailureSweep: number of staged permanent failures.
  std::size_t k_failures = 2;
  /// When false (default) edge-node uplinks never fail: failing the only
  /// ingress/egress port tells us nothing about deflection. When true all
  /// links are eligible.
  bool include_edge_links = false;
};

/// Links eligible for failure under `config` (insertion order).
[[nodiscard]] std::vector<topo::LinkId> eligible_links(
    const topo::Topology& topo, const ScheduleConfig& config);

/// Generates a schedule; deterministic in (topology, config, rng state).
[[nodiscard]] FailureSchedule generate_schedule(const topo::Topology& topo,
                                                const ScheduleConfig& config,
                                                common::Rng& rng);

}  // namespace kar::faultgen

// Runtime invariant checking for the KAR simulation loop.
//
// The checker consumes the per-packet trace stream of a sim::Network and
// asserts, while the simulation runs, the safety properties the paper's
// resilience claims rest on:
//
//   * hop budget    — no packet takes more than max_hops switch hops
//                     without being dropped with kTtlExceeded;
//   * NIP contract  — Not-the-Input-Port never forwards a packet back out
//                     the port it arrived on (Algorithm 1);
//   * port liveness — no switch forwards out a port whose failure has been
//                     detected (AVP/NIP deflect instead; kNone drops);
//   * residue match — every non-deflected hop follows the CRT-decoded
//                     residue: out_port == route_id mod switch_id (Eq. 3);
//   * lifecycle     — each injected packet has at most one terminal event
//                     (deliver or drop), and none after it;
//   * monotonicity  — trace timestamps never run backwards;
//   * conservation  — at end of run: injected == delivered + dropped +
//                     in-flight, cross-checked against NetworkCounters.
//
// Violations are recorded (never thrown) with the timestamp, packet and a
// human-readable detail line, so a campaign can report them alongside the
// run seed and a shrunk failure schedule.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/network.hpp"

namespace kar::faultgen {

/// One detected invariant violation.
struct Violation {
  enum class Kind : std::uint8_t {
    kHopBudgetExceeded,
    kNipReturnedInputPort,
    kForwardOnDownPort,
    kResidueMismatch,
    kLifecycle,
    kTimeNonMonotonic,
    kConservation,
  };
  Kind kind;
  double time = 0.0;
  std::uint64_t packet_id = 0;  ///< 0 when not packet-specific.
  std::string detail;
};

[[nodiscard]] std::string_view to_string(Violation::Kind kind);

/// Checker knobs. Defaults mirror the network's own configuration; the
/// mutation override exists so tests can prove the checker actually fires
/// (set a hop budget below the real one and watch it detect the "bug").
struct InvariantConfig {
  /// Hop budget packets must respect (normally NetworkConfig::max_hops).
  std::uint32_t max_hops = 4096;
  /// Technique the core runs; enables the NIP contract check.
  dataplane::DeflectionTechnique technique =
      dataplane::DeflectionTechnique::kNotInputPort;
  /// False for the failover-FIB baseline, whose hops ignore the route ID.
  bool check_residue = true;
  /// Mutation hook: overrides max_hops for the check only. Used by the
  /// self-tests to verify detection and shrinking end to end.
  std::optional<std::uint32_t> hop_budget_override;
  /// Record at most this many violations (campaigns shrink on the first).
  std::size_t max_recorded = 64;
};

/// Streaming invariant checker; attach with
/// `network.set_trace_hook([&](const sim::TraceEvent& e) { checker.observe(e); })`.
class InvariantChecker {
 public:
  /// `network` must outlive the checker; its topology is consulted for
  /// switch IDs and detected link state.
  InvariantChecker(const sim::Network& network, InvariantConfig config);

  /// Consumes one trace event (invoked from the simulation loop).
  void observe(const sim::TraceEvent& event);

  /// End-of-run checks. `queue_drained` says the event queue ran dry, in
  /// which case in-flight must be zero. Idempotent per run.
  void finish(bool queue_drained);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }

  /// Packets injected but not yet delivered or dropped.
  [[nodiscard]] std::size_t in_flight() const noexcept { return live_.size(); }

 private:
  void record(Violation::Kind kind, double time, std::uint64_t packet_id,
              std::string detail);
  void check_hop(const sim::TraceEvent& event);

  struct PacketState {
    std::uint32_t hops = 0;
  };

  const sim::Network* net_;
  InvariantConfig config_;
  std::uint32_t hop_budget_;
  std::vector<Violation> violations_;
  std::unordered_map<std::uint64_t, PacketState> live_;
  double last_time_ = 0.0;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace kar::faultgen

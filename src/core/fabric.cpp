#include "core/fabric.hpp"

#include <stdexcept>

namespace kar::core {

Fabric::Fabric(topo::Topology topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  controller_ = std::make_unique<routing::Controller>(topology_, options_.paths);
  network_ = std::make_unique<sim::Network>(topology_, *controller_,
                                            options_.network);
  dispatcher_ = std::make_unique<transport::FlowDispatcher>(*network_);
}

Fabric::Fabric(topo::Scenario scenario, Options options)
    : Fabric(std::move(scenario.topology), options) {
  scenario_route_ = std::move(scenario.route);
}

routing::EncodedRoute Fabric::route(const std::string& src_edge,
                                    const std::string& dst_edge) const {
  const auto encoded = controller_->route_between(topology_.at(src_edge),
                                                  topology_.at(dst_edge));
  if (!encoded) {
    throw std::invalid_argument("Fabric::route: " + src_edge + " and " +
                                dst_edge + " are not connected");
  }
  return *encoded;
}

routing::EncodedRoute Fabric::route_with_budget(
    const std::string& src_edge, const std::string& dst_edge,
    std::size_t max_route_id_bits) const {
  const topo::NodeId src = topology_.at(src_edge);
  const topo::NodeId dst = topology_.at(dst_edge);
  const auto path = routing::shortest_path(topology_, src, dst, options_.paths);
  if (!path || path->nodes.size() < 3) {
    throw std::invalid_argument("Fabric::route_with_budget: " + src_edge +
                                " and " + dst_edge + " are not connected");
  }
  std::vector<topo::NodeId> core(path->nodes.begin() + 1, path->nodes.end() - 1);
  routing::PlannerOptions planner;
  planner.max_route_id_bits = max_route_id_bits;
  const auto plan =
      routing::plan_driven_deflections(topology_, core, dst, planner);
  return controller_->encode_path(src, core, dst, plan);
}

routing::EncodedRoute Fabric::scenario_route_at(
    topo::ProtectionLevel level) const {
  if (!scenario_route_) {
    throw std::logic_error(
        "Fabric::scenario_route_at: fabric was not built from a scenario");
  }
  return controller_->encode_scenario(*scenario_route_, level);
}

std::unique_ptr<transport::BulkTransferFlow> Fabric::bulk_flow(
    routing::EncodedRoute forward, std::uint64_t flow_id,
    transport::TcpParams params, std::optional<routing::EncodedRoute> reverse,
    double goodput_bin_s) {
  if (!reverse) {
    const auto back =
        controller_->route_between(forward.dst_edge, forward.src_edge);
    if (!back) {
      throw std::invalid_argument(
          "Fabric::bulk_flow: no reverse path for ACK traffic");
    }
    reverse = *back;
  }
  return std::make_unique<transport::BulkTransferFlow>(
      *network_, *dispatcher_, std::move(forward), std::move(*reverse), flow_id,
      params, goodput_bin_s);
}

std::unique_ptr<transport::CbrProbe> Fabric::probe_stream(
    routing::EncodedRoute route, std::uint64_t flow_id, double interval_s,
    std::size_t payload_bytes) {
  return std::make_unique<transport::CbrProbe>(*network_, *dispatcher_,
                                               std::move(route), flow_id,
                                               interval_s, payload_bytes);
}

}  // namespace kar::core

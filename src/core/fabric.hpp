// High-level facade over the whole KAR stack: owns a topology, a
// controller, a simulated network and the flow plumbing, and exposes the
// handful of operations an experiment (or an adopter's control plane)
// actually performs — encode a route, optionally under a header-bit
// budget, start traffic, break things, observe.
//
// Everything the facade does can also be done with the individual modules
// (routing::Controller, sim::Network, transport::*); Fabric just removes
// the wiring boilerplate and enforces correct object lifetimes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "routing/controller.hpp"
#include "routing/protection.hpp"
#include "sim/network.hpp"
#include "topology/scenario.hpp"
#include "transport/flows.hpp"
#include "transport/udp.hpp"

namespace kar::core {

/// One self-contained KAR deployment (topology + controller + simulator).
class Fabric {
 public:
  struct Options {
    sim::NetworkConfig network;
    routing::PathOptions paths;
  };

  /// Takes ownership of the topology.
  explicit Fabric(topo::Topology topology, Options options = {});

  /// Builds a fabric from a named scenario, keeping its route metadata
  /// available through `scenario()`.
  explicit Fabric(topo::Scenario scenario, Options options = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // -- component access --------------------------------------------------
  [[nodiscard]] topo::Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const routing::Controller& controller() const noexcept {
    return *controller_;
  }
  [[nodiscard]] sim::Network& network() noexcept { return *network_; }
  [[nodiscard]] transport::FlowDispatcher& dispatcher() noexcept {
    return *dispatcher_;
  }
  [[nodiscard]] const std::optional<topo::ScenarioRoute>& scenario_route()
      const noexcept {
    return scenario_route_;
  }

  // -- routing -----------------------------------------------------------
  /// Shortest-path route between two edge nodes (by name), unprotected.
  /// Throws std::invalid_argument when disconnected or unknown names.
  [[nodiscard]] routing::EncodedRoute route(const std::string& src_edge,
                                            const std::string& dst_edge) const;

  /// Same, with automatically planned driven-deflection protection under a
  /// route-ID bit budget (§2.3 loose protection).
  [[nodiscard]] routing::EncodedRoute route_with_budget(
      const std::string& src_edge, const std::string& dst_edge,
      std::size_t max_route_id_bits) const;

  /// The scenario's configured route at a protection level (requires
  /// construction from a Scenario).
  [[nodiscard]] routing::EncodedRoute scenario_route_at(
      topo::ProtectionLevel level) const;

  // -- traffic -----------------------------------------------------------
  /// Creates a bulk TCP flow between two edges; data takes `forward`,
  /// ACKs take the reverse shortest path (or `reverse` when given).
  [[nodiscard]] std::unique_ptr<transport::BulkTransferFlow> bulk_flow(
      routing::EncodedRoute forward, std::uint64_t flow_id,
      transport::TcpParams params = {},
      std::optional<routing::EncodedRoute> reverse = std::nullopt,
      double goodput_bin_s = 1.0);

  /// Creates a constant-rate probe stream along `route`.
  [[nodiscard]] std::unique_ptr<transport::CbrProbe> probe_stream(
      routing::EncodedRoute route, std::uint64_t flow_id, double interval_s,
      std::size_t payload_bytes = 200);

  // -- operations ----------------------------------------------------------
  void fail_link_at(double time, const std::string& a, const std::string& b) {
    network_->fail_link_at(time, a, b);
  }
  void repair_link_at(double time, const std::string& a, const std::string& b) {
    network_->repair_link_at(time, a, b);
  }
  /// Advances the simulation to absolute time `t` (seconds).
  void run_until(double t) { network_->events().run_until(t); }
  /// Drains every scheduled event.
  void run_all() { network_->events().run_all(); }
  [[nodiscard]] double now() const noexcept { return network_->now(); }

 private:
  topo::Topology topology_;
  std::optional<topo::ScenarioRoute> scenario_route_;
  Options options_;
  std::unique_ptr<routing::Controller> controller_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<transport::FlowDispatcher> dispatcher_;
};

}  // namespace kar::core

#include "rns/crt.hpp"

#include <stdexcept>
#include <string>

#include "rns/modular.hpp"

namespace kar::rns {

RnsBasis::RnsBasis(std::vector<std::uint64_t> moduli) : moduli_(std::move(moduli)) {
  if (moduli_.empty()) {
    throw std::invalid_argument("RnsBasis: empty modulus set");
  }
  for (const std::uint64_t m : moduli_) {
    if (m < 2) {
      throw std::invalid_argument("RnsBasis: every modulus must be >= 2, got " +
                                  std::to_string(m));
    }
  }
  if (const auto violation = find_coprime_violation(moduli_)) {
    throw std::invalid_argument(
        "RnsBasis: moduli " + std::to_string(moduli_[violation->first_index]) +
        " and " + std::to_string(moduli_[violation->second_index]) +
        " share factor " + std::to_string(violation->common_factor));
  }

  range_ = BigUint(1);
  for (const std::uint64_t m : moduli_) range_ *= BigUint(m);
  bit_length_ = ceil_log2(range_ - BigUint(1));

  crt_coefficients_.reserve(moduli_.size());
  for (const std::uint64_t m : moduli_) {
    // M_i = M / s_i (Eq. 6); L_i = (M_i)^-1 mod s_i (Eq. 7).
    const BigUint big_mi = range_ / BigUint(m);
    const std::uint64_t mi_mod = big_mi.mod_u64(m);
    const auto li = mod_inverse(mi_mod, m);
    // Pairwise coprimality guarantees the inverse exists.
    if (!li) throw std::logic_error("RnsBasis: inverse must exist for coprime basis");
    crt_coefficients_.push_back((big_mi * BigUint(*li)) % range_);
  }
}

BigUint RnsBasis::encode(std::span<const std::uint64_t> residues) const {
  if (residues.size() != moduli_.size()) {
    throw std::invalid_argument("RnsBasis::encode: expected " +
                                std::to_string(moduli_.size()) + " residues, got " +
                                std::to_string(residues.size()));
  }
  BigUint sum;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    if (residues[i] >= moduli_[i]) {
      throw std::invalid_argument(
          "RnsBasis::encode: residue " + std::to_string(residues[i]) +
          " out of range for modulus " + std::to_string(moduli_[i]));
    }
    if (residues[i] != 0) {
      sum += crt_coefficients_[i] * BigUint(residues[i]);
    }
  }
  return sum % range_;
}

std::vector<std::uint64_t> RnsBasis::decode(const BigUint& value) const {
  std::vector<std::uint64_t> out;
  out.reserve(moduli_.size());
  for (const std::uint64_t m : moduli_) out.push_back(value.mod_u64(m));
  return out;
}

BigUint crt_encode(std::span<const Residue> residues) {
  std::vector<std::uint64_t> moduli;
  std::vector<std::uint64_t> values;
  moduli.reserve(residues.size());
  values.reserve(residues.size());
  for (const auto& [modulus, residue] : residues) {
    moduli.push_back(modulus);
    values.push_back(residue);
  }
  return RnsBasis(std::move(moduli)).encode(values);
}

std::size_t ceil_log2(const BigUint& x) {
  const std::size_t bits = x.bit_length();
  if (bits <= 1) return 0;  // x is 0 or 1
  // x is a power of two iff exactly one bit is set.
  int set_bits = 0;
  for (const std::uint32_t limb : x.limbs()) {
    set_bits += __builtin_popcount(limb);
    if (set_bits > 1) break;
  }
  return (set_bits == 1) ? bits - 1 : bits;
}

std::size_t route_id_bit_length(std::span<const std::uint64_t> switch_ids) {
  BigUint product(1);
  for (const std::uint64_t id : switch_ids) {
    if (id < 2) throw std::invalid_argument("route_id_bit_length: switch id < 2");
    product *= BigUint(id);
  }
  return ceil_log2(product - BigUint(1));
}

}  // namespace kar::rns

// Modular arithmetic building blocks for the KAR encoder: gcd, extended
// Euclid, modular multiplicative inverse (paper Eq. 7-8), and pairwise
// coprimality checks for switch-ID sets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace kar::rns {

/// Greatest common divisor (binary-safe via std implementation semantics).
[[nodiscard]] std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept;

/// Result of the extended Euclidean algorithm: g = gcd(a, b) = a*x + b*y.
struct ExtendedGcd {
  std::uint64_t g;
  std::int64_t x;
  std::int64_t y;
};

/// Extended Euclid over signed 64-bit Bezout coefficients. Inputs must be
/// small enough that the intermediate coefficients fit (always true for
/// switch IDs, which are < 2^32 in practice).
[[nodiscard]] ExtendedGcd extended_gcd(std::uint64_t a, std::uint64_t b) noexcept;

/// Modular multiplicative inverse of `a` modulo `m` (paper Eq. 7):
/// the x with (a*x) mod m == 1. Returns nullopt when gcd(a, m) != 1.
/// Precondition: m >= 1. For m == 1 the inverse is 0 by convention.
[[nodiscard]] std::optional<std::uint64_t> mod_inverse(std::uint64_t a,
                                                       std::uint64_t m);

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// True iff two values share no common factor (the KAR switch-ID rule:
/// "the set of Switch IDs in the network must be coprime integers").
[[nodiscard]] bool coprime(std::uint64_t a, std::uint64_t b) noexcept;

/// True iff every pair in `values` is coprime. Values of 0 are never
/// pairwise coprime with anything (gcd(0, x) == x); a lone {1} is accepted.
[[nodiscard]] bool pairwise_coprime(std::span<const std::uint64_t> values) noexcept;

/// Returns the first offending pair (indices) if the set is not pairwise
/// coprime; nullopt if it is. Used for diagnostics in ID assignment.
struct CoprimeViolation {
  std::size_t first_index;
  std::size_t second_index;
  std::uint64_t common_factor;
};
[[nodiscard]] std::optional<CoprimeViolation> find_coprime_violation(
    std::span<const std::uint64_t> values) noexcept;

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
/// Used by the switch-ID assigner to generate candidate IDs.
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

/// The first `count` integers >= `minimum` that are pairwise coprime with
/// each other and with everything in `existing`. Greedy smallest-first;
/// used to label topologies with valid KAR switch IDs.
[[nodiscard]] std::vector<std::uint64_t> next_coprime_ids(
    std::size_t count, std::uint64_t minimum,
    std::span<const std::uint64_t> existing);

}  // namespace kar::rns

// Modular arithmetic building blocks for the KAR encoder: gcd, extended
// Euclid, modular multiplicative inverse (paper Eq. 7-8), and pairwise
// coprimality checks for switch-ID sets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kar::rns {

/// Greatest common divisor (binary-safe via std implementation semantics).
[[nodiscard]] std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept;

/// Result of the extended Euclidean algorithm: g = gcd(a, b) = a*x + b*y.
struct ExtendedGcd {
  std::uint64_t g;
  std::int64_t x;
  std::int64_t y;
};

/// Extended Euclid over signed 64-bit Bezout coefficients. Inputs must be
/// small enough that the intermediate coefficients fit (always true for
/// switch IDs, which are < 2^32 in practice).
[[nodiscard]] ExtendedGcd extended_gcd(std::uint64_t a, std::uint64_t b) noexcept;

/// Modular multiplicative inverse of `a` modulo `m` (paper Eq. 7):
/// the x with (a*x) mod m == 1. Returns nullopt when gcd(a, m) != 1.
/// Precondition: m >= 1. For m == 1 the inverse is 0 by convention.
[[nodiscard]] std::optional<std::uint64_t> mod_inverse(std::uint64_t a,
                                                       std::uint64_t m);

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// True iff two values share no common factor (the KAR switch-ID rule:
/// "the set of Switch IDs in the network must be coprime integers").
[[nodiscard]] bool coprime(std::uint64_t a, std::uint64_t b) noexcept;

/// True iff every pair in `values` is coprime. Values of 0 are never
/// pairwise coprime with anything (gcd(0, x) == x); a lone {1} is accepted.
[[nodiscard]] bool pairwise_coprime(std::span<const std::uint64_t> values) noexcept;

/// Returns the first offending pair (indices) if the set is not pairwise
/// coprime; nullopt if it is. Used for diagnostics in ID assignment.
struct CoprimeViolation {
  std::size_t first_index;
  std::size_t second_index;
  std::uint64_t common_factor;
};
[[nodiscard]] std::optional<CoprimeViolation> find_coprime_violation(
    std::span<const std::uint64_t> values) noexcept;

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
/// Used by the switch-ID assigner to generate candidate IDs.
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

/// The first `count` integers >= `minimum` that are pairwise coprime with
/// each other and with everything in `existing`. Greedy smallest-first;
/// used to label topologies with valid KAR switch IDs.
[[nodiscard]] std::vector<std::uint64_t> next_coprime_ids(
    std::size_t count, std::uint64_t minimum,
    std::span<const std::uint64_t> existing);

/// Structured "no more valid switch IDs" diagnostic. Thrown by CoprimePool
/// (and everything layered on it: next_coprime_ids, assign_switch_ids, the
/// topology generators) instead of wrapping the candidate counter or
/// spinning to 2^64. Derives from std::overflow_error so callers that
/// handled the old failure mode keep working, but carries the structured
/// fields a controller needs to report the condition.
class IdPoolExhausted : public std::overflow_error {
 public:
  IdPoolExhausted(std::size_t requested, std::size_t assigned,
                  std::uint64_t minimum, std::uint64_t max_candidate);

  /// How many IDs the caller asked for in total.
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  /// How many were successfully assigned before the pool ran dry.
  [[nodiscard]] std::size_t assigned() const noexcept { return assigned_; }
  /// The minimum the failing allocation demanded.
  [[nodiscard]] std::uint64_t minimum() const noexcept { return minimum_; }
  /// The candidate ceiling the pool searched up to.
  [[nodiscard]] std::uint64_t max_candidate() const noexcept {
    return max_candidate_;
  }

 private:
  std::size_t requested_;
  std::size_t assigned_;
  std::uint64_t minimum_;
  std::uint64_t max_candidate_;
};

/// Incremental pairwise-coprime ID allocator.
///
/// The greedy gcd scan (`next_free_id`) checked every candidate against
/// every already-taken ID — O(candidates x taken) gcd calls, which turns
/// quadratic at the 100-1000 switch sizes the topology generators emit.
/// This pool exploits the structural fact that a candidate is coprime with
/// every taken value iff it shares no *prime factor* with any of them: it
/// maintains the set of consumed prime factors and trial-divides each
/// candidate against only that. Per-minimum resume cursors make repeated
/// allocations linear in candidates scanned overall (a rejected candidate
/// stays rejected forever, because the factor set only grows).
///
/// Produces exactly the same greedy smallest-first sequence as the gcd
/// scan, so existing golden-pinned topologies are unchanged.
class CoprimePool {
 public:
  /// Default candidate ceiling: far above any realistic switch-ID pool
  /// (the 1000th greedy coprime is 7919) but low enough that exhaustion
  /// surfaces as IdPoolExhausted in bounded time instead of UB/overflow.
  static constexpr std::uint64_t kDefaultMaxCandidate = 1ULL << 32;

  explicit CoprimePool(std::uint64_t max_candidate = kDefaultMaxCandidate);

  /// Reserves the prime factors of an existing ID so future take() calls
  /// stay coprime with it. Blocking 0 poisons the pool (gcd(0, x) == x:
  /// nothing is coprime with 0); blocking 1 reserves nothing.
  void block(std::uint64_t value);

  /// Smallest untaken candidate >= max(minimum, 2) coprime with everything
  /// taken or blocked so far. `primes_only` additionally requires the
  /// candidate to be prime. Throws IdPoolExhausted when the search passes
  /// the ceiling. `requested_hint` is carried into the exception so batch
  /// callers can report "assigned a of r".
  [[nodiscard]] std::uint64_t take(std::uint64_t minimum,
                                   bool primes_only = false,
                                   std::size_t requested_hint = 0);

  [[nodiscard]] std::size_t taken() const noexcept { return taken_; }

 private:
  /// True iff no prime factor of `candidate` has been consumed.
  [[nodiscard]] bool admissible(std::uint64_t candidate) const;
  /// Consumes every prime factor of `value`.
  void consume_factors(std::uint64_t value);

  std::vector<bool> used_small_;  ///< Dense bitmap for primes < 64k.
  std::unordered_set<std::uint64_t> used_large_;  ///< Sparse tail.
  /// Resume cursor per distinct (minimum, primes_only) start point: every
  /// candidate below the cursor is already taken or permanently rejected.
  std::unordered_map<std::uint64_t, std::uint64_t> resume_;
  std::uint64_t max_candidate_;
  std::size_t taken_ = 0;
  bool poisoned_ = false;  ///< A 0 was blocked: nothing is admissible.
};

}  // namespace kar::rns

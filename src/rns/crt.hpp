// Chinese-Remainder-Theorem route-ID encoding (paper §2.2, Eq. 1-9).
//
// A KAR route is the pair (S, P): pairwise-coprime switch IDs S and the
// output-port index p_i each switch s_i must use. The route ID R is the
// unique integer in [0, M), M = Π s_i, with R mod s_i == p_i for all i —
// reconstructed via the CRT. Core switches recover their port with a single
// modulo (BigUint::mod_u64); switch order is irrelevant (the sum in Eq. 4 is
// commutative), which is exactly what lets KAR graft disjoint protection
// segments into the same route ID (§2.2, "Driven Deflection Forwarding
// Paths").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rns/biguint.hpp"

namespace kar::rns {

/// One congruence: value ≡ `residue` (mod `modulus`). In KAR terms the
/// modulus is a switch ID and the residue that switch's output port.
struct Residue {
  std::uint64_t modulus;
  std::uint64_t residue;

  friend bool operator==(const Residue&, const Residue&) = default;
};

/// A fixed RNS basis (a set of pairwise-coprime moduli >= 2) with the
/// precomputed CRT coefficients M_i·L_i of Eq. 4. Encoding against a fixed
/// basis is O(N) BigUint multiply-adds.
class RnsBasis {
 public:
  /// Validates the moduli: each >= 2 and pairwise coprime.
  /// Throws std::invalid_argument otherwise.
  explicit RnsBasis(std::vector<std::uint64_t> moduli);

  [[nodiscard]] const std::vector<std::uint64_t>& moduli() const noexcept {
    return moduli_;
  }

  /// M = Π s_i (Eq. 1): the number of distinct route IDs this basis spans.
  [[nodiscard]] const BigUint& range() const noexcept { return range_; }

  /// Maximum route-ID bit length, ceil(log2(M-1)) (Eq. 9).
  [[nodiscard]] std::size_t bit_length() const noexcept { return bit_length_; }

  /// CRT reconstruction (Eq. 4): the unique R in [0, M) with
  /// R mod moduli()[i] == residues[i]. Throws std::invalid_argument if the
  /// residue count mismatches or any residue >= its modulus.
  [[nodiscard]] BigUint encode(std::span<const std::uint64_t> residues) const;

  /// Residue extraction (Eq. 3): the per-switch forwarding decision.
  [[nodiscard]] std::vector<std::uint64_t> decode(const BigUint& value) const;

 private:
  std::vector<std::uint64_t> moduli_;
  std::vector<BigUint> crt_coefficients_;  // M_i * L_i, reduced mod M
  BigUint range_;
  std::size_t bit_length_ = 0;
};

/// One-shot CRT encode of an arbitrary residue set.
[[nodiscard]] BigUint crt_encode(std::span<const Residue> residues);

/// ceil(log2(x)); 0 for x <= 1.
[[nodiscard]] std::size_t ceil_log2(const BigUint& x);

/// Paper Eq. 9 applied to a switch-ID set: bits required by the route ID.
[[nodiscard]] std::size_t route_id_bit_length(
    std::span<const std::uint64_t> switch_ids);

}  // namespace kar::rns

// Precomputed per-modulus reduction for the forwarding hot path.
//
// The KAR data plane is one arithmetic operation per hop: `R mod s_i`
// (paper Eq. 3). A switch's modulus s_i never changes, so the division can
// be traded for a multiply-high against a precomputed 64-bit reciprocal
// (Barrett reduction / Granlund–Montgomery "division by invariant
// integers"). PreparedMod carries that reciprocal; reduce() walks the
// route-ID limbs exactly like BigUint::mod_u64 but replaces every hardware
// division with multiply + shift + one conditional subtract.
//
// Switch IDs are < 2^32 in every deployment this repo models (they must be
// pairwise coprime and small for short route IDs, paper §2.2), which is the
// reciprocal's fast domain; divisors >= 2^32 fall back to 128-bit division
// so PreparedMod is a drop-in for any non-zero modulus.
#pragma once

#include <cstdint>

#include "rns/biguint.hpp"

namespace kar::rns {

/// Reduction state for one fixed divisor: `reduce(x) == x % divisor`, with
/// the per-call division cost precomputed away. Cheap to construct (one
/// hardware division), trivially copyable.
class PreparedMod {
 public:
  /// Throws std::domain_error on a zero divisor.
  explicit PreparedMod(std::uint64_t divisor);

  [[nodiscard]] std::uint64_t divisor() const noexcept { return divisor_; }

  /// `value % divisor` for a native value.
  [[nodiscard]] std::uint64_t reduce_u64(std::uint64_t value) const noexcept {
    if (reciprocal_ != 0) {
      // q = floor(value * floor(2^64/d) / 2^64) is floor(value/d) or one
      // less, so a single conditional subtract finishes the reduction.
      const std::uint64_t q = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(value) * reciprocal_) >> 64);
      std::uint64_t r = value - q * divisor_;
      if (r >= divisor_) r -= divisor_;
      return r;
    }
    return value % divisor_;  // divisor_ == 1 (always 0) or >= 2^32.
  }

  /// `value % divisor` for an arbitrary-precision value: the per-hop KAR
  /// residue. Bit-identical to BigUint::mod_u64(divisor()).
  [[nodiscard]] std::uint64_t reduce(const BigUint& value) const noexcept;

 private:
  std::uint64_t divisor_;
  /// floor(2^64 / divisor) when 2 <= divisor < 2^32; 0 disables the
  /// reciprocal path (divisor 1 or >= 2^32).
  std::uint64_t reciprocal_;
};

}  // namespace kar::rns

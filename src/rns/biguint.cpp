#include "rns/biguint.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

namespace kar::rns {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}  // namespace

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

BigUint BigUint::from_limbs(std::vector<std::uint32_t> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

void BigUint::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigUint: empty string");
  BigUint out;
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    if (text.size() == 2) {
      throw std::invalid_argument("BigUint: hex prefix with no digits");
    }
    for (const char c : text.substr(2)) {
      int digit = 0;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else throw std::invalid_argument("BigUint: bad hex digit");
      out <<= 4;
      out += BigUint(static_cast<std::uint64_t>(digit));
    }
    return out;
  }
  for (const char c : text) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigUint: bad decimal digit");
    out *= BigUint(10);
    out += BigUint(static_cast<std::uint64_t>(c - '0'));
  }
  return out;
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  return bits + (32 - static_cast<std::size_t>(__builtin_clz(top)));
}

std::uint64_t BigUint::to_u64() const {
  if (!fits_u64()) throw std::overflow_error("BigUint::to_u64: value exceeds 64 bits");
  std::uint64_t out = 0;
  if (limbs_.size() > 1) out = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) out |= limbs_[0];
  return out;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUint: negative subtraction result");
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  normalize();
  return *this;
}

BigUint operator*(const BigUint& lhs, const BigUint& rhs) {
  if (lhs.is_zero() || rhs.is_zero()) return {};
  std::vector<std::uint32_t> out(lhs.limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < lhs.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = lhs.limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur = out[i + j] + a * rhs.limbs_[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return BigUint::from_limbs(std::move(out));
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    std::uint32_t carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const std::uint64_t cur = (static_cast<std::uint64_t>(limbs_[i]) << bit_shift) | carry;
      limbs_[i] = static_cast<std::uint32_t>(cur);
      carry = static_cast<std::uint32_t>(cur >> 32);
    }
    if (carry) limbs_.push_back(carry);
  }
  return *this;
}

BigUint& BigUint::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(),
               limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      std::uint64_t cur = limbs_[i] >> bit_shift;
      if (i + 1 < limbs_.size()) {
        cur |= static_cast<std::uint64_t>(limbs_[i + 1]) << (32 - bit_shift);
      }
      limbs_[i] = static_cast<std::uint32_t>(cur);
    }
  }
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigUint& lhs, const BigUint& rhs) noexcept {
  if (lhs.limbs_.size() != rhs.limbs_.size()) {
    return lhs.limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUint::DivMod BigUint::divmod(const BigUint& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigUint: division by zero");
  if (*this < divisor) return {BigUint{}, *this};
  if (divisor.limbs_.size() == 1) {
    // Fast single-limb path.
    const std::uint64_t d = divisor.limbs_[0];
    std::vector<std::uint32_t> quo(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      quo[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(quo)), BigUint(rem)};
  }
  // General case: Knuth Algorithm D (TAOCP 4.3.1) on 32-bit limbs. O(m*n)
  // word operations instead of the O(bits * n) of bit-at-a-time division;
  // the CRT encoder's `sum % range` calls sit on this path.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set. The
  // dividend gains one extra (possibly zero) limb.
  const unsigned shift =
      static_cast<unsigned>(__builtin_clz(divisor.limbs_.back()));
  std::vector<std::uint32_t> un(limbs_.size() + 1, 0);
  std::vector<std::uint32_t> vn(n);
  if (shift == 0) {
    std::copy(limbs_.begin(), limbs_.end(), un.begin());
    std::copy(divisor.limbs_.begin(), divisor.limbs_.end(), vn.begin());
  } else {
    un[limbs_.size()] = limbs_.back() >> (32 - shift);
    for (std::size_t i = limbs_.size(); i-- > 1;) {
      un[i] = (limbs_[i] << shift) | (limbs_[i - 1] >> (32 - shift));
    }
    un[0] = limbs_[0] << shift;
    for (std::size_t i = n; i-- > 1;) {
      vn[i] = (divisor.limbs_[i] << shift) |
              (divisor.limbs_[i - 1] >> (32 - shift));
    }
    vn[0] = divisor.limbs_[0] << shift;
  }

  std::vector<std::uint32_t> quo(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient digit from the top two dividend limbs and
    // the top divisor limb, then refine with the second divisor limb until
    // the estimate is at most one too large.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // D4: multiply and subtract qhat * vn from un[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) - borrow -
                             static_cast<std::int64_t>(p & 0xFFFFFFFFULL);
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t top = static_cast<std::int64_t>(un[j + n]) -
                             static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(top);
    quo[j] = static_cast<std::uint32_t>(qhat);
    if (top < 0) {
      // D6: the (rare) estimate-off-by-one case — add the divisor back.
      --quo[j];
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = static_cast<std::uint64_t>(un[i + j]) +
                                vn[i] + add_carry;
        un[i + j] = static_cast<std::uint32_t>(s);
        add_carry = s >> 32;
      }
      un[j + n] =
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(un[j + n]) +
                                     add_carry);
    }
  }

  // D8: denormalize the remainder (un[0..n-1] >> shift).
  std::vector<std::uint32_t> rem(n);
  if (shift == 0) {
    std::copy(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n),
              rem.begin());
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      rem[i] = (un[i] >> shift) | (un[i + 1] << (32 - shift));
    }
    rem[n - 1] = un[n - 1] >> shift;
  }
  return {from_limbs(std::move(quo)), from_limbs(std::move(rem))};
}

BigUint::DivMod BigUint::divmod_binary(const BigUint& divisor) const {
  // Reference implementation: binary long division, one bit per step. Kept
  // as the differential oracle for divmod() and as the "before" side of
  // bench/micro_dataplane.cpp; not used on any production path.
  if (divisor.is_zero()) throw std::domain_error("BigUint: division by zero");
  if (*this < divisor) return {BigUint{}, *this};
  BigUint quotient;
  BigUint remainder;
  quotient.limbs_.assign(limbs_.size(), 0);
  const std::size_t total_bits = bit_length();
  for (std::size_t bit = total_bits; bit-- > 0;) {
    remainder <<= 1;
    const std::uint32_t limb = limbs_[bit / 32];
    if ((limb >> (bit % 32)) & 1U) {
      remainder += BigUint(1);
    }
    if (remainder >= divisor) {
      remainder -= divisor;
      quotient.limbs_[bit / 32] |= (1U << (bit % 32));
    }
  }
  quotient.normalize();
  return {std::move(quotient), std::move(remainder)};
}

std::uint64_t BigUint::mod_u64(std::uint64_t divisor) const {
  if (divisor == 0) throw std::domain_error("BigUint: division by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const auto cur = static_cast<__uint128_t>(rem) << 32 | limbs_[i];
    rem = static_cast<std::uint64_t>(cur % divisor);
  }
  return rem;
}

std::string BigUint::to_string() const {
  if (is_zero()) return "0";
  std::string digits;
  BigUint value = *this;
  const BigUint billion(1000000000ULL);
  while (!value.is_zero()) {
    auto [quo, rem] = value.divmod(billion);
    std::uint64_t chunk = rem.is_zero() ? 0 : rem.to_u64();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
    value = std::move(quo);
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(limbs_[i] >> shift) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::ostream& operator<<(std::ostream& os, const BigUint& value) {
  return os << value.to_string();
}

}  // namespace kar::rns

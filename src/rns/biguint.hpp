// Arbitrary-precision unsigned integers for KAR route identifiers.
//
// A KAR route ID lies in [0, M) where M is the product of the switch IDs in
// the route (paper Eq. 1 and Eq. 9). For long routes with full protection M
// easily exceeds 64 bits (e.g. ten 7-bit switch IDs ≈ 2^66), so the encoder
// works over this small arbitrary-precision type rather than a fixed-width
// integer. Only what the CRT encoder and header packing need is implemented:
// +, -, *, divmod, mod-by-small, comparisons, shifts, bit length, and
// decimal/hex conversion. Representation: little-endian 32-bit limbs,
// normalized (no high zero limbs; zero is an empty limb vector).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace kar::rns {

/// Unsigned arbitrary-precision integer.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a native unsigned value.
  BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// Parses a decimal string (optionally prefixed "0x" for hex).
  /// Throws std::invalid_argument on malformed input.
  static BigUint from_string(std::string_view text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// True iff the value fits in 64 bits.
  [[nodiscard]] bool fits_u64() const noexcept { return limbs_.size() <= 2; }

  /// Converts to uint64_t; throws std::overflow_error if it does not fit.
  [[nodiscard]] std::uint64_t to_u64() const;

  /// Decimal representation.
  [[nodiscard]] std::string to_string() const;

  /// Lower-case hexadecimal representation without prefix.
  [[nodiscard]] std::string to_hex() const;

  // -- arithmetic ------------------------------------------------------------
  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);  ///< Throws std::underflow_error if rhs > *this.
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator<<=(std::size_t bits);
  BigUint& operator>>=(std::size_t bits);

  friend BigUint operator+(BigUint lhs, const BigUint& rhs) { return lhs += rhs; }
  friend BigUint operator-(BigUint lhs, const BigUint& rhs) { return lhs -= rhs; }
  friend BigUint operator*(const BigUint& lhs, const BigUint& rhs);
  friend BigUint operator<<(BigUint lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigUint operator>>(BigUint lhs, std::size_t bits) { return lhs >>= bits; }

  /// Quotient and remainder in one pass (Knuth Algorithm D on 32-bit limbs
  /// for multi-limb divisors). Throws std::domain_error on /0.
  struct DivMod;  // { BigUint quotient; BigUint remainder; } — defined below.
  [[nodiscard]] DivMod divmod(const BigUint& divisor) const;

  /// Reference bit-at-a-time long division. Differential oracle for
  /// divmod() (tests) and the "before" side of bench/micro_dataplane.cpp;
  /// not used on any production path.
  [[nodiscard]] DivMod divmod_binary(const BigUint& divisor) const;

  friend BigUint operator/(const BigUint& lhs, const BigUint& rhs);
  friend BigUint operator%(const BigUint& lhs, const BigUint& rhs);

  /// Fast remainder by a native divisor (the forwarding operation
  /// `R mod switch_id`, paper Eq. 3). Throws std::domain_error on /0.
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t divisor) const;

  // -- comparisons -----------------------------------------------------------
  friend bool operator==(const BigUint& lhs, const BigUint& rhs) noexcept {
    return lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigUint& lhs,
                                          const BigUint& rhs) noexcept;

  friend std::ostream& operator<<(std::ostream& os, const BigUint& value);

  /// Read-only access to the limb vector (for tests and header packing).
  [[nodiscard]] const std::vector<std::uint32_t>& limbs() const noexcept {
    return limbs_;
  }

 private:
  void normalize() noexcept;
  static BigUint from_limbs(std::vector<std::uint32_t> limbs);

  std::vector<std::uint32_t> limbs_;  // little-endian base 2^32
};

struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint operator/(const BigUint& lhs, const BigUint& rhs) {
  return lhs.divmod(rhs).quotient;
}
inline BigUint operator%(const BigUint& lhs, const BigUint& rhs) {
  return lhs.divmod(rhs).remainder;
}

}  // namespace kar::rns

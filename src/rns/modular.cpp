#include "rns/modular.hpp"

#include <numeric>
#include <stdexcept>

namespace kar::rns {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  return std::gcd(a, b);
}

ExtendedGcd extended_gcd(std::uint64_t a, std::uint64_t b) noexcept {
  // Iterative extended Euclid keeping signed Bezout coefficients.
  std::int64_t old_x = 1, x = 0;
  std::int64_t old_y = 0, y = 1;
  auto old_r = static_cast<std::int64_t>(a);
  auto r = static_cast<std::int64_t>(b);
  while (r != 0) {
    const std::int64_t q = old_r / r;
    std::int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_x - q * x;
    old_x = x;
    x = tmp;
    tmp = old_y - q * y;
    old_y = y;
    y = tmp;
  }
  return {static_cast<std::uint64_t>(old_r), old_x, old_y};
}

std::optional<std::uint64_t> mod_inverse(std::uint64_t a, std::uint64_t m) {
  if (m == 0) throw std::domain_error("mod_inverse: modulus must be >= 1");
  if (m == 1) return 0;
  const auto [g, x, y] = extended_gcd(a % m, m);
  (void)y;
  if (g != 1) return std::nullopt;
  auto inv = x % static_cast<std::int64_t>(m);
  if (inv < 0) inv += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(inv);
}

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(a) * b % m);
}

bool coprime(std::uint64_t a, std::uint64_t b) noexcept {
  return std::gcd(a, b) == 1;
}

bool pairwise_coprime(std::span<const std::uint64_t> values) noexcept {
  return !find_coprime_violation(values).has_value();
}

std::optional<CoprimeViolation> find_coprime_violation(
    std::span<const std::uint64_t> values) noexcept {
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = i + 1; j < values.size(); ++j) {
      const std::uint64_t g = std::gcd(values[i], values[j]);
      if (g != 1) return CoprimeViolation{i, j, g};
    }
  }
  return std::nullopt;
}

namespace {

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t mod) noexcept {
  std::uint64_t result = 1;
  base %= mod;
  while (exp != 0) {
    if (exp & 1) result = mul_mod(result, base, mod);
    base = mul_mod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin bases covering all 64-bit integers.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (const std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::vector<std::uint64_t> next_coprime_ids(
    std::size_t count, std::uint64_t minimum,
    std::span<const std::uint64_t> existing) {
  CoprimePool pool;
  for (const std::uint64_t e : existing) pool.block(e);
  std::vector<std::uint64_t> chosen;
  chosen.reserve(count);
  while (chosen.size() < count) {
    chosen.push_back(pool.take(minimum, /*primes_only=*/false, count));
  }
  return chosen;
}

IdPoolExhausted::IdPoolExhausted(std::size_t requested, std::size_t assigned,
                                 std::uint64_t minimum,
                                 std::uint64_t max_candidate)
    : std::overflow_error(
          "coprime ID pool exhausted: assigned " + std::to_string(assigned) +
          " of " + std::to_string(requested) + " requested IDs (minimum " +
          std::to_string(minimum) + ", candidate ceiling " +
          std::to_string(max_candidate) + ")"),
      requested_(requested),
      assigned_(assigned),
      minimum_(minimum),
      max_candidate_(max_candidate) {}

namespace {

/// Primes below this bound live in the dense bitmap; larger factors (at
/// most one per 64-bit value after small-prime division) go to the sparse
/// set.
constexpr std::uint64_t kSmallPrimeBound = 1ULL << 16;

/// Calls `fn(p)` for every distinct prime factor of `value` (value >= 2).
template <typename Fn>
void for_each_prime_factor(std::uint64_t value, Fn&& fn) {
  if (value % 2 == 0) {
    fn(2);
    do { value /= 2; } while (value % 2 == 0);
  }
  for (std::uint64_t d = 3; d * d <= value; d += 2) {
    if (value % d == 0) {
      fn(d);
      do { value /= d; } while (value % d == 0);
    }
  }
  if (value > 1) fn(value);
}

}  // namespace

CoprimePool::CoprimePool(std::uint64_t max_candidate)
    : used_small_(kSmallPrimeBound, false), max_candidate_(max_candidate) {}

void CoprimePool::block(std::uint64_t value) {
  if (value == 0) {
    poisoned_ = true;  // gcd(0, x) == x: nothing is coprime with 0
    return;
  }
  if (value > 1) consume_factors(value);
}

void CoprimePool::consume_factors(std::uint64_t value) {
  for_each_prime_factor(value, [this](std::uint64_t p) {
    if (p < kSmallPrimeBound) {
      used_small_[p] = true;
    } else {
      used_large_.insert(p);
    }
  });
}

bool CoprimePool::admissible(std::uint64_t candidate) const {
  bool clean = true;
  for_each_prime_factor(candidate, [&](std::uint64_t p) {
    if (p < kSmallPrimeBound ? used_small_[p] : used_large_.contains(p)) {
      clean = false;
    }
  });
  return clean;
}

std::uint64_t CoprimePool::take(std::uint64_t minimum, bool primes_only,
                                std::size_t requested_hint) {
  const std::size_t requested =
      requested_hint != 0 ? requested_hint : taken_ + 1;
  if (poisoned_) {
    throw IdPoolExhausted(requested, taken_, minimum, max_candidate_);
  }
  const std::uint64_t start = minimum < 2 ? 2 : minimum;
  // Candidates below the cursor for this start point are taken or share a
  // factor with a taken value — and the factor set only grows, so they
  // never become admissible again.
  const std::uint64_t key = (start << 1) | static_cast<std::uint64_t>(primes_only);
  std::uint64_t candidate = std::max(start, resume_[key]);
  for (; candidate <= max_candidate_; ++candidate) {
    if (primes_only && !is_prime_u64(candidate)) continue;
    if (!admissible(candidate)) continue;
    consume_factors(candidate);
    ++taken_;
    resume_[key] = candidate + 1;
    return candidate;
  }
  throw IdPoolExhausted(requested, taken_, minimum, max_candidate_);
}

}  // namespace kar::rns

#include "rns/modular.hpp"

#include <numeric>
#include <stdexcept>

namespace kar::rns {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  return std::gcd(a, b);
}

ExtendedGcd extended_gcd(std::uint64_t a, std::uint64_t b) noexcept {
  // Iterative extended Euclid keeping signed Bezout coefficients.
  std::int64_t old_x = 1, x = 0;
  std::int64_t old_y = 0, y = 1;
  auto old_r = static_cast<std::int64_t>(a);
  auto r = static_cast<std::int64_t>(b);
  while (r != 0) {
    const std::int64_t q = old_r / r;
    std::int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_x - q * x;
    old_x = x;
    x = tmp;
    tmp = old_y - q * y;
    old_y = y;
    y = tmp;
  }
  return {static_cast<std::uint64_t>(old_r), old_x, old_y};
}

std::optional<std::uint64_t> mod_inverse(std::uint64_t a, std::uint64_t m) {
  if (m == 0) throw std::domain_error("mod_inverse: modulus must be >= 1");
  if (m == 1) return 0;
  const auto [g, x, y] = extended_gcd(a % m, m);
  (void)y;
  if (g != 1) return std::nullopt;
  auto inv = x % static_cast<std::int64_t>(m);
  if (inv < 0) inv += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(inv);
}

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(a) * b % m);
}

bool coprime(std::uint64_t a, std::uint64_t b) noexcept {
  return std::gcd(a, b) == 1;
}

bool pairwise_coprime(std::span<const std::uint64_t> values) noexcept {
  return !find_coprime_violation(values).has_value();
}

std::optional<CoprimeViolation> find_coprime_violation(
    std::span<const std::uint64_t> values) noexcept {
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = i + 1; j < values.size(); ++j) {
      const std::uint64_t g = std::gcd(values[i], values[j]);
      if (g != 1) return CoprimeViolation{i, j, g};
    }
  }
  return std::nullopt;
}

namespace {

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t mod) noexcept {
  std::uint64_t result = 1;
  base %= mod;
  while (exp != 0) {
    if (exp & 1) result = mul_mod(result, base, mod);
    base = mul_mod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin bases covering all 64-bit integers.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (const std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::vector<std::uint64_t> next_coprime_ids(
    std::size_t count, std::uint64_t minimum,
    std::span<const std::uint64_t> existing) {
  std::vector<std::uint64_t> chosen;
  chosen.reserve(count);
  std::uint64_t candidate = minimum < 2 ? 2 : minimum;
  while (chosen.size() < count) {
    bool ok = true;
    for (const std::uint64_t e : existing) {
      if (std::gcd(candidate, e) != 1) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const std::uint64_t c : chosen) {
        if (std::gcd(candidate, c) != 1) {
          ok = false;
          break;
        }
      }
    }
    if (ok) chosen.push_back(candidate);
    ++candidate;
    if (candidate == 0) {
      throw std::overflow_error("next_coprime_ids: candidate space exhausted");
    }
  }
  return chosen;
}

}  // namespace kar::rns

#include "rns/prepared_mod.hpp"

#include <stdexcept>

namespace kar::rns {

PreparedMod::PreparedMod(std::uint64_t divisor)
    : divisor_(divisor), reciprocal_(0) {
  if (divisor == 0) throw std::domain_error("PreparedMod: division by zero");
  if (divisor >= 2 && divisor < (1ULL << 32)) {
    // floor(2^64 / divisor) via 128-bit arithmetic; fits in 64 bits because
    // divisor >= 2.
    reciprocal_ = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(1) << 64) / divisor);
  }
}

std::uint64_t PreparedMod::reduce(const BigUint& value) const noexcept {
  const auto& limbs = value.limbs();
  std::uint64_t rem = 0;
  if (reciprocal_ != 0) {
    // rem < divisor < 2^32, so (rem << 32) | limb fits in 64 bits and the
    // reciprocal path applies at every step.
    for (std::size_t i = limbs.size(); i-- > 0;) {
      rem = reduce_u64((rem << 32) | limbs[i]);
    }
    return rem;
  }
  if (divisor_ == 1) return 0;
  // divisor >= 2^32: the partial value needs 128 bits, same as mod_u64.
  for (std::size_t i = limbs.size(); i-- > 0;) {
    const auto cur = (static_cast<__uint128_t>(rem) << 32) | limbs[i];
    rem = static_cast<std::uint64_t>(cur % divisor_);
  }
  return rem;
}

}  // namespace kar::rns

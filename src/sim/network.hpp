// Packet-level network simulator: the emulation substrate of the paper's
// evaluation (Mininet + modified OpenFlow software switch), rebuilt as a
// deterministic discrete-event simulation.
//
// Model:
//   * each link direction is a serializing server (rate = link rate) with a
//     drop-tail queue and fixed propagation delay;
//   * each core switch applies the KAR forwarding pipeline (modulo +
//     deflection) with a constant processing latency;
//   * link failures take effect immediately: queued and in-flight packets
//     on the failed link are lost, and switches see the port as
//     unavailable from that instant (local failure detection);
//   * edge nodes stamp/strip route IDs and run the wrong-edge policy.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "ctrlplane/engine_mode.hpp"
#include "dataplane/arena.hpp"
#include "dataplane/batch.hpp"
#include "dataplane/edge.hpp"
#include "obs/metrics.hpp"
#include "routing/failover_fib.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/switch.hpp"
#include "routing/controller.hpp"
#include "sim/event_queue.hpp"
#include "topology/graph.hpp"

namespace kar::sim {

/// Which forwarding engine the core switches run.
enum class DataPlaneMode : std::uint8_t {
  kKar,          ///< Modulo forwarding + deflection (this paper).
  kFailoverFib,  ///< OpenFlow fast-failover baseline (Table 2 comparator).
};

/// Simulation knobs.
struct NetworkConfig {
  DataPlaneMode mode = DataPlaneMode::kKar;
  /// Required when mode == kFailoverFib; must outlive the network.
  const routing::FailoverFib* failover_fib = nullptr;
  dataplane::DeflectionTechnique technique =
      dataplane::DeflectionTechnique::kNotInputPort;
  dataplane::WrongEdgePolicy wrong_edge_policy =
      dataplane::WrongEdgePolicy::kReencode;
  /// Per-hop switch processing latency (software switch forwarding cost).
  double switch_latency_s = 20e-6;
  /// How long after a physical failure the adjacent switches *detect* it
  /// (loss-of-signal / BFD). During the window the port still looks up, so
  /// traffic is blackholed into the dead link — deflection can only start
  /// once detection fires. 0 = instantaneous detection (the paper's
  /// implicit assumption).
  double failure_detection_delay_s = 0.0;
  /// Hop budget per packet; guards unbounded random walks (HP) and the
  /// Fig. 8 protection loop against infinite circulation.
  std::uint32_t max_hops = 4096;
  std::uint64_t seed = 1;
  /// Which residue implementation the core switches run. kFast (default):
  /// PreparedMod reduction + per-switch memo cache, reused across every
  /// hop of the run. kNaive: recompute BigUint::mod_u64 per packet per hop
  /// — the differential oracle (tests/test_fastpath_differential.cpp).
  dataplane::ResiduePath residue_path = dataplane::ResiduePath::kFast;
  /// Which reconvergence engine a control plane attached to this network
  /// (sim::ReactiveController) runs: affected-set incremental (default) or
  /// the full-recompute oracle. The data plane ignores this knob.
  ctrlplane::EngineMode route_engine = ctrlplane::EngineMode::kIncremental;
  /// Core-switch batch size. 0 (default) is the per-packet path — the
  /// differential oracle. N > 0 stages same-instant switch arrivals into
  /// PacketBatches of up to N and sweeps each through
  /// KarSwitch::forward_batch; any event that could change what a staged
  /// decision observes (link state, route installs, edge traffic) flushes
  /// open batches first, which keeps traces and counters byte-identical to
  /// the per-packet path at every batch size
  /// (tests/test_fastpath_differential.cpp, docs/dataplane_batching.md).
  /// Ignored in kFailoverFib mode.
  std::size_t batch_size = 0;
};

/// Aggregate data-plane counters.
struct NetworkCounters {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t hops = 0;
  std::uint64_t deflections = 0;
  std::uint64_t reencodes = 0;
  std::uint64_t bounces = 0;
  std::uint64_t drop_no_viable_port = 0;
  std::uint64_t drop_link_failed = 0;
  std::uint64_t drop_queue_overflow = 0;
  std::uint64_t drop_ttl = 0;
  std::uint64_t drop_aqm_early = 0;

  [[nodiscard]] std::uint64_t total_drops() const noexcept {
    return drop_no_viable_port + drop_link_failed + drop_queue_overflow +
           drop_ttl + drop_aqm_early;
  }
};

/// Optional per-packet trace events (tests, debugging, walk analysis,
/// runtime invariant checking).
struct TraceEvent {
  enum class Kind : std::uint8_t { kInject, kHop, kDeliver, kDrop, kReencode, kBounce };
  Kind kind;
  double time;
  std::uint64_t packet_id;
  topo::NodeId node;                ///< Where the event happened.
  topo::PortIndex out_port;         ///< For kHop: chosen output port.
  bool deflected;                   ///< For kHop: deviated from the residue.
  dataplane::DropReason drop_reason;  ///< For kDrop.
  /// For kHop at a core switch: the port the packet arrived on.
  topo::PortIndex in_port = 0;
  /// The packet at the moment of the event. Non-owning; valid only for the
  /// duration of the hook call — copy what you need.
  const dataplane::Packet* packet = nullptr;
};

/// The simulated KAR network.
class Network {
 public:
  /// `topology` is mutated by failure injection and must outlive the
  /// network; `controller` serves wrong-edge re-encodes.
  Network(topo::Topology& topology, const routing::Controller& controller,
          NetworkConfig config = {});

  [[nodiscard]] EventQueue& events() noexcept { return events_; }
  [[nodiscard]] double now() const noexcept { return events_.now(); }
  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const NetworkCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  /// The edge-node object bound to `node` (for route stamping).
  /// Throws std::invalid_argument if `node` is not an edge node.
  [[nodiscard]] const dataplane::EdgeNode& edge_at(topo::NodeId node) const;

  /// Registers the handler invoked when a packet is delivered at `edge`.
  using DeliveryHandler = std::function<void(const dataplane::Packet&)>;
  void set_delivery_handler(topo::NodeId edge, DeliveryHandler handler);

  /// Installs a trace hook receiving every packet event (may be empty).
  void set_trace_hook(std::function<void(const TraceEvent&)> hook) {
    trace_ = std::move(hook);
  }

  /// Installs a hook invoked on every link state change (failure/repair),
  /// with the link and its new state. Models the data plane's failure
  /// notifications toward a control plane (which may react with delay).
  using LinkStateHook = std::function<void(topo::LinkId, bool up)>;
  void set_link_state_hook(LinkStateHook hook) { link_state_hook_ = std::move(hook); }

  /// Injects a packet from `edge` into the core at the current time. The
  /// packet must already be stamped (see EdgeNode::stamp).
  void inject(topo::NodeId edge, dataplane::Packet packet);

  /// Batch admission: injects a burst of stamped packets from `edge` as
  /// one back-to-back train. The train serializes on the uplink for its
  /// total wire time and every packet is handed to the far switch at the
  /// train's arrival instant — which is what lets the batched data plane
  /// sweep the whole burst as one PacketBatch. Admission (ids, inject
  /// traces, queue-overflow drops) is per packet in order, and the event
  /// schedule is identical whether the network then forwards per packet or
  /// per batch, so this is the workload the differential suite drives both
  /// modes with.
  void inject_burst(topo::NodeId edge, std::vector<dataplane::Packet> packets);

  /// Schedules a bidirectional link failure / repair.
  void fail_link_at(double time, const std::string& node_a, const std::string& node_b);
  void repair_link_at(double time, const std::string& node_a, const std::string& node_b);

  /// Direct (immediate) failure control.
  void fail_link_now(topo::LinkId link);
  void repair_link_now(topo::LinkId link);

  /// One route-table entry change inside an install epoch; `route` is
  /// copied, nullptr withdraws the key.
  struct RouteInstall {
    std::uint64_t key = 0;
    const routing::EncodedRoute* route = nullptr;
  };

  /// Applies one batched control-plane update epoch atomically (the
  /// simulator is single-threaded: all entries land between two events)
  /// and advances the table to `version`. Versions must be monotonic;
  /// a stale epoch (version < current) throws std::invalid_argument —
  /// equal versions are allowed so an initial load can install in stages.
  void install_routes(std::uint64_t version, const std::vector<RouteInstall>& batch);

  /// The last installed epoch version (0 before any install).
  [[nodiscard]] std::uint64_t route_table_version() const noexcept {
    return route_table_version_;
  }
  /// The installed route under `key`, or nullptr when absent/withdrawn.
  [[nodiscard]] const routing::EncodedRoute* installed_route(std::uint64_t key) const;
  [[nodiscard]] std::size_t installed_route_count() const noexcept {
    return installed_.size();
  }

  /// Registers the residue-cache counter families
  /// (kar_dataplane_residue_cache_{hits,misses,evictions}_total) in
  /// `registry` and binds them to every core switch's cache. The series are
  /// shared across switches (one network-wide total per family).
  /// obs::NetworkObserver calls this when metrics are enabled.
  void attach_dataplane_metrics(obs::MetricsRegistry& registry,
                                const obs::Labels& labels);

  /// Sum of the per-switch residue-cache stats (tests, benches).
  [[nodiscard]] dataplane::ResidueCache::Stats residue_cache_stats() const;

  /// Counters of the batched forwarding path (all zero in per-packet mode).
  struct BatchPathStats {
    std::uint64_t staged = 0;         ///< Packets routed through staging.
    std::uint64_t batches = 0;        ///< forward_batch sweeps performed.
    std::uint64_t state_flushes = 0;  ///< Flushes forced by non-arrival events
                                      ///< (link state, injects, edge traffic).
    std::size_t max_occupancy = 0;    ///< Largest batch swept.
  };
  [[nodiscard]] const BatchPathStats& batch_stats() const noexcept {
    return batch_stats_;
  }

 private:
  struct DirectionState {
    double busy_until = 0.0;
    std::size_t queued = 0;
    std::uint64_t epoch = 0;  ///< Bumped on failure: invalidates in-flight packets.
    // RED AQM state (only touched when the link carries RedParams).
    double red_avg = 0.0;          ///< EWMA of the queue length at arrivals.
    double red_last_arrival = 0.0; ///< For idle-time decay of the average.
    std::uint64_t red_count = 0;   ///< Arrivals since the last early drop.
  };

  /// RED admission test for one arrival at a link direction carrying
  /// RedParams. Updates the EWMA and drop counter; true = enqueue.
  [[nodiscard]] bool red_admit(const topo::RedParams& red,
                               DirectionState& state, double tx_time);

  void arrive_at(topo::NodeId node, topo::PortIndex in_port, dataplane::Packet&& packet);
  void forward_from_switch(topo::NodeId node, topo::PortIndex in_port,
                           dataplane::Packet&& packet);
  /// Everything after a forwarding decision: counters, TTL, trace, and the
  /// switch-latency transmit — shared by the per-packet and batched paths.
  void apply_decision(topo::NodeId node, topo::PortIndex in_port,
                      dataplane::Packet&& packet,
                      const dataplane::ForwardDecision& decision);
  void transmit(topo::NodeId from, topo::PortIndex out_port, dataplane::Packet&& packet);
  /// Schedules one packet's delivery at the far end of a link (the shared
  /// tail of transmit() and inject_burst()).
  void schedule_link_delivery(topo::LinkId link_id, int dir, double arrival,
                              std::uint64_t epoch, topo::NodeId far_node,
                              topo::PortIndex far_port, dataplane::Packet&& packet);
  void drop(const dataplane::Packet& packet, topo::NodeId at, dataplane::DropReason reason);
  void trace(TraceEvent event);

  // -- batched forwarding (config_.batch_size > 0, kKar mode only) -----------
  [[nodiscard]] bool batching() const noexcept { return batch_.has_value(); }
  /// Stages a switch arrival into the open batch; schedules the flush event
  /// and sweeps early when the batch fills.
  void stage_arrival(topo::NodeId node, topo::PortIndex in_port,
                     dataplane::Packet&& packet);
  /// Sweeps every staged arrival now, in arrival order, grouping
  /// consecutive same-switch runs into PacketBatches.
  void flush_batches();
  /// Cooperative flush: called before any operation whose observable order
  /// relative to staged decisions matters (link state changes, route
  /// installs, injects, edge processing, drops). No-op when idle.
  void maybe_flush() {
    if (batching() && !pending_.empty()) {
      ++batch_stats_.state_flushes;
      flush_batches();
    }
  }

  topo::Topology* topo_;
  const routing::Controller* controller_;
  NetworkConfig config_;
  EventQueue events_;
  common::Rng rng_;
  NetworkCounters counters_;
  // Indexed by NodeId; exactly one of the two is engaged per node.
  std::vector<std::optional<dataplane::KarSwitch>> switches_;
  std::vector<std::optional<dataplane::EdgeNode>> edges_;
  std::unordered_map<topo::NodeId, DeliveryHandler> delivery_;
  std::vector<std::array<DirectionState, 2>> link_state_;  // per link
  /// Physical link state; diverges from the topology's (detected) state
  /// during the failure-detection window.
  std::vector<bool> physically_up_;
  std::function<void(const TraceEvent&)> trace_;
  LinkStateHook link_state_hook_;
  std::uint64_t next_packet_id_ = 1;
  /// Control-plane route table (install_routes); keyed by RouteKey.
  std::unordered_map<std::uint64_t, routing::EncodedRoute> installed_;
  std::uint64_t route_table_version_ = 0;

  /// Batched-path state (engaged iff config_.batch_size > 0 in kKar mode).
  /// All capacity is reserved at construction; the steady-state staging /
  /// sweep cycle allocates nothing.
  struct PendingArrival {
    topo::NodeId node;
    topo::PortIndex in_port;
    dataplane::Packet packet;
  };
  std::vector<PendingArrival> pending_;
  bool flush_scheduled_ = false;
  std::unique_ptr<dataplane::BumpArena> arena_;
  std::optional<dataplane::PacketBatch> batch_;
  BatchPathStats batch_stats_;
};

}  // namespace kar::sim

// Discrete-event scheduler. Events fire in timestamp order; ties fire in
// scheduling order (FIFO), which keeps simulations deterministic.
//
// Observability: every event carries a coarse EventKind tag; attaching an
// EventLoopProfile makes step() account each fired event's count and wall
// time per kind (the event-kind breakdown behind `--profile`). With no
// profile attached the only cost is the one-byte tag.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <vector>

namespace kar::sim {

/// Coarse classification of scheduled events, for the observability
/// profile. kGeneric is the untagged default.
enum class EventKind : std::uint8_t {
  kGeneric = 0,
  kLinkArrival,     ///< Packet arriving at the far end of a link.
  kSwitchProcess,   ///< Core switch processing latency before transmit.
  kEdgeProcess,     ///< Edge node re-injection (re-encode / bounce).
  kLinkState,       ///< Link failure / repair / detection firing.
  kTraffic,         ///< Traffic-source injections and flow start/stop.
  kTransportTimer,  ///< Transport-layer timers (TCP RTO).
  kBatchFlush,      ///< Same-instant sweep of staged batched arrivals.
};
inline constexpr std::size_t kEventKindCount = 8;

[[nodiscard]] std::string_view to_string(EventKind kind);

/// Per-kind count + wall-time accounting for an event loop; merges by
/// addition (a campaign profile is the fold of its runs' profiles).
struct EventLoopProfile {
  struct KindStats {
    std::uint64_t count = 0;
    double wall_s = 0.0;
  };
  std::array<KindStats, kEventKindCount> kinds{};

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (const KindStats& k : kinds) total += k.count;
    return total;
  }
  [[nodiscard]] double total_wall_s() const noexcept {
    double total = 0.0;
    for (const KindStats& k : kinds) total += k.wall_s;
    return total;
  }
  void merge(const EventLoopProfile& other) noexcept {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      kinds[i].count += other.kinds[i].count;
      kinds[i].wall_s += other.kinds[i].wall_s;
    }
  }
};

/// A minimal deterministic event queue.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time in seconds (starts at 0).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedules `fn` at absolute time `time` (>= now, else clamped to now).
  void schedule_at(double time, Handler fn) {
    schedule_at(time, EventKind::kGeneric, std::move(fn));
  }
  void schedule_at(double time, EventKind kind, Handler fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_in(double delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }
  void schedule_in(double delay, EventKind kind, Handler fn) {
    schedule_at(now_ + delay, kind, std::move(fn));
  }

  /// Attaches (or detaches, with nullptr) per-kind event accounting. The
  /// profile must outlive its attachment; timing costs two clock reads per
  /// event, so attach only when profiling is wanted.
  void set_profile(EventLoopProfile* profile) noexcept { profile_ = profile; }

  /// Runs the next event. Returns false when the queue is empty.
  bool step();

  /// Runs every event with timestamp <= `t`, then advances now to `t`
  /// (even if idle). Returns the number of events processed.
  std::size_t run_until(double t);

  /// Runs until the queue drains or `max_events` were processed.
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = static_cast<std::size_t>(-1));

 private:
  struct Entry {
    double time;
    std::uint64_t seq;  // tiebreak: FIFO among same-time events
    EventKind kind;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventLoopProfile* profile_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace kar::sim

// Discrete-event scheduler. Events fire in timestamp order; ties fire in
// scheduling order (FIFO), which keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace kar::sim {

/// A minimal deterministic event queue.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time in seconds (starts at 0).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedules `fn` at absolute time `time` (>= now, else clamped to now).
  void schedule_at(double time, Handler fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_in(double delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs the next event. Returns false when the queue is empty.
  bool step();

  /// Runs every event with timestamp <= `t`, then advances now to `t`
  /// (even if idle). Returns the number of events processed.
  std::size_t run_until(double t);

  /// Runs until the queue drains or `max_events` were processed.
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = static_cast<std::size_t>(-1));

 private:
  struct Entry {
    double time;
    std::uint64_t seq;  // tiebreak: FIFO among same-time events
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace kar::sim

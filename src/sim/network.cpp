#include "sim/network.hpp"

#include <stdexcept>
#include <utility>

namespace kar::sim {

using dataplane::DropReason;
using dataplane::ForwardDecision;
using dataplane::Packet;

Network::Network(topo::Topology& topology, const routing::Controller& controller,
                 NetworkConfig config)
    : topo_(&topology),
      controller_(&controller),
      config_(config),
      rng_(config.seed) {
  const std::size_t n = topology.node_count();
  switches_.resize(n);
  edges_.resize(n);
  for (topo::NodeId node = 0; node < n; ++node) {
    if (topology.kind(node) == topo::NodeKind::kCoreSwitch) {
      switches_[node].emplace(topology, node, config_.technique,
                              config_.residue_path);
    } else {
      edges_[node].emplace(topology, node, controller, config_.wrong_edge_policy);
    }
  }
  link_state_.resize(topology.link_count());
  physically_up_.assign(topology.link_count(), true);
}

const dataplane::EdgeNode& Network::edge_at(topo::NodeId node) const {
  if (node >= edges_.size() || !edges_[node]) {
    throw std::invalid_argument("Network::edge_at: not an edge node");
  }
  return *edges_[node];
}

void Network::set_delivery_handler(topo::NodeId edge, DeliveryHandler handler) {
  if (edge >= edges_.size() || !edges_[edge]) {
    throw std::invalid_argument("Network: not an edge node");
  }
  delivery_[edge] = std::move(handler);
}

void Network::trace(TraceEvent event) {
  if (trace_) trace_(event);
}

void Network::drop(const Packet& packet, topo::NodeId at, DropReason reason) {
  switch (reason) {
    case DropReason::kNoViablePort: ++counters_.drop_no_viable_port; break;
    case DropReason::kLinkFailed: ++counters_.drop_link_failed; break;
    case DropReason::kQueueOverflow: ++counters_.drop_queue_overflow; break;
    case DropReason::kTtlExceeded: ++counters_.drop_ttl; break;
  }
  trace(TraceEvent{TraceEvent::Kind::kDrop, now(), packet.packet_id, at, 0,
                   false, reason, 0, &packet});
}

void Network::inject(topo::NodeId edge, Packet packet) {
  if (edge >= edges_.size() || !edges_[edge]) {
    throw std::invalid_argument("Network::inject: not an edge node");
  }
  if (topo_->port_count(edge) == 0) {
    throw std::logic_error("Network::inject: edge node has no uplink");
  }
  packet.packet_id = next_packet_id_++;
  packet.created_at = now();
  ++counters_.injected;
  trace(TraceEvent{TraceEvent::Kind::kInject, now(), packet.packet_id, edge, 0,
                   false, DropReason::kNoViablePort, 0, &packet});
  // Edge nodes use their (single) uplink, port 0.
  transmit(edge, 0, std::move(packet));
}

void Network::transmit(topo::NodeId from, topo::PortIndex out_port,
                       Packet&& packet) {
  const topo::LinkId link_id = topo_->link_at(from, out_port);
  if (link_id == topo::kInvalidLink) {
    drop(packet, from, DropReason::kNoViablePort);
    return;
  }
  const topo::Link& link = topo_->link(link_id);
  if (!link.up) {
    drop(packet, from, DropReason::kLinkFailed);
    return;
  }
  const int dir = (link.a.node == from) ? 0 : 1;
  DirectionState& state = link_state_[link_id][static_cast<std::size_t>(dir)];
  if (state.queued >= link.params.queue_packets) {
    drop(packet, from, DropReason::kQueueOverflow);
    return;
  }
  const double start = std::max(now(), state.busy_until);
  const double tx_time =
      static_cast<double>(packet.size_bytes) * 8.0 / link.params.rate_bps;
  state.busy_until = start + tx_time;
  const double arrival = state.busy_until + link.params.delay_s;
  ++state.queued;

  const topo::LinkEnd& far = (dir == 0) ? link.b : link.a;
  const std::uint64_t epoch = state.epoch;
  const topo::NodeId far_node = far.node;
  const topo::PortIndex far_port = far.port;
  events_.schedule_at(
      arrival, EventKind::kLinkArrival,
      [this, link_id, dir, epoch, far_node, far_port,
       pkt = std::move(packet)]() mutable {
        DirectionState& st = link_state_[link_id][static_cast<std::size_t>(dir)];
        if (st.queued > 0) --st.queued;
        // The link failed while the packet was queued or on the wire — or
        // it was dead all along and the sender had not detected it yet.
        if (st.epoch != epoch || !physically_up_[link_id] ||
            !topo_->link(link_id).up) {
          drop(pkt, far_node, DropReason::kLinkFailed);
          return;
        }
        arrive_at(far_node, far_port, std::move(pkt));
      });
}

void Network::arrive_at(topo::NodeId node, topo::PortIndex in_port,
                        Packet&& packet) {
  if (edges_[node]) {
    Packet pkt = std::move(packet);
    const auto verdict = edges_[node]->receive(pkt);
    switch (verdict) {
      case dataplane::EdgeNode::Verdict::kDeliver: {
        ++counters_.delivered;
        counters_.delivered_bytes += pkt.size_bytes;
        trace(TraceEvent{TraceEvent::Kind::kDeliver, now(), pkt.packet_id, node,
                         0, false, DropReason::kNoViablePort, 0, &pkt});
        const auto it = delivery_.find(node);
        if (it != delivery_.end() && it->second) it->second(pkt);
        return;
      }
      case dataplane::EdgeNode::Verdict::kReinject: {
        const bool reencoded =
            edges_[node]->policy() == dataplane::WrongEdgePolicy::kReencode;
        if (reencoded) {
          ++counters_.reencodes;
          trace(TraceEvent{TraceEvent::Kind::kReencode, now(), pkt.packet_id,
                           node, 0, false, DropReason::kNoViablePort, 0, &pkt});
        } else {
          ++counters_.bounces;
          trace(TraceEvent{TraceEvent::Kind::kBounce, now(), pkt.packet_id,
                           node, 0, false, DropReason::kNoViablePort, 0, &pkt});
        }
        // Back out of the uplink after the edge's processing latency.
        events_.schedule_in(config_.switch_latency_s, EventKind::kEdgeProcess,
                            [this, node, p = std::move(pkt)]() mutable {
                              transmit(node, 0, std::move(p));
                            });
        return;
      }
      case dataplane::EdgeNode::Verdict::kDrop:
        drop(pkt, node, DropReason::kNoViablePort);
        return;
    }
    return;
  }
  forward_from_switch(node, in_port, std::move(packet));
}

void Network::forward_from_switch(topo::NodeId node, topo::PortIndex in_port,
                                  Packet&& packet) {
  ForwardDecision decision;
  if (config_.mode == DataPlaneMode::kFailoverFib) {
    // Table-driven fast-failover baseline: the route ID is ignored.
    const auto selection =
        config_.failover_fib
            ? config_.failover_fib->select_with_status(*topo_, node,
                                                       packet.dst_edge)
            : std::nullopt;
    if (!selection) {
      drop(packet, node, DropReason::kNoViablePort);
      return;
    }
    decision.action = ForwardDecision::Action::kForward;
    decision.out_port = selection->port;
    decision.deflected = selection->failed_over;
  } else {
    decision = switches_[node]->forward(packet, in_port, rng_);
  }
  if (decision.action == ForwardDecision::Action::kDrop) {
    drop(packet, node, decision.drop_reason);
    return;
  }
  packet.hop_count += 1;
  ++counters_.hops;
  if (packet.hop_count > config_.max_hops) {
    drop(packet, node, DropReason::kTtlExceeded);
    return;
  }
  if (decision.deflected) {
    packet.deflection_count += 1;
    ++counters_.deflections;
  }
  if (decision.marked_hot_potato) packet.kar.deflected = true;
  trace(TraceEvent{TraceEvent::Kind::kHop, now(), packet.packet_id, node,
                   decision.out_port, decision.deflected,
                   DropReason::kNoViablePort, in_port, &packet});
  const topo::PortIndex out = decision.out_port;
  events_.schedule_in(config_.switch_latency_s, EventKind::kSwitchProcess,
                      [this, node, out, p = std::move(packet)]() mutable {
                        transmit(node, out, std::move(p));
                      });
}

void Network::fail_link_now(topo::LinkId link) {
  // Physical failure: everything queued or in flight dies immediately.
  physically_up_[link] = false;
  for (auto& dir : link_state_[link]) {
    ++dir.epoch;
    dir.busy_until = now();
  }
  if (config_.failure_detection_delay_s > 0.0) {
    // Until detection, the port still looks usable: switches keep sending
    // into the dead link (the epoch check blackholes those packets). Only
    // after the detection window does the link state flip and deflection
    // kick in. A repair that races the detection bumps the epoch and
    // cancels it.
    const std::uint64_t epoch = link_state_[link][0].epoch;
    events_.schedule_in(config_.failure_detection_delay_s, EventKind::kLinkState,
                        [this, link, epoch] {
      if (link_state_[link][0].epoch != epoch) return;  // repaired meanwhile
      topo_->set_link_up(link, false);
      if (link_state_hook_) link_state_hook_(link, /*up=*/false);
    });
    return;
  }
  topo_->set_link_up(link, false);
  if (link_state_hook_) link_state_hook_(link, /*up=*/false);
}

void Network::repair_link_now(topo::LinkId link) {
  physically_up_[link] = true;
  topo_->set_link_up(link, true);
  for (auto& dir : link_state_[link]) {
    ++dir.epoch;  // anything stale from before the repair is gone
    dir.busy_until = now();
  }
  if (link_state_hook_) link_state_hook_(link, /*up=*/true);
}

void Network::install_routes(std::uint64_t version,
                             const std::vector<RouteInstall>& batch) {
  if (version < route_table_version_) {
    throw std::invalid_argument(
        "Network::install_routes: stale epoch " + std::to_string(version) +
        " (table is at " + std::to_string(route_table_version_) + ")");
  }
  for (const RouteInstall& entry : batch) {
    if (entry.route != nullptr) {
      installed_[entry.key] = *entry.route;
    } else {
      installed_.erase(entry.key);
    }
  }
  route_table_version_ = version;
}

const routing::EncodedRoute* Network::installed_route(std::uint64_t key) const {
  const auto it = installed_.find(key);
  return it == installed_.end() ? nullptr : &it->second;
}

void Network::attach_dataplane_metrics(obs::MetricsRegistry& registry,
                                       const obs::Labels& labels) {
  const obs::Counter hits = registry.counter(
      "kar_dataplane_residue_cache_hits_total",
      "Residue-cache lookups answered from the memo", labels);
  const obs::Counter misses = registry.counter(
      "kar_dataplane_residue_cache_misses_total",
      "Residue-cache lookups that ran the PreparedMod reduction", labels);
  const obs::Counter evictions = registry.counter(
      "kar_dataplane_residue_cache_evictions_total",
      "Residue-cache entries overwritten by a colliding route ID", labels);
  for (auto& sw : switches_) {
    if (sw) sw->residue_cache().bind_counters(hits, misses, evictions);
  }
}

dataplane::ResidueCache::Stats Network::residue_cache_stats() const {
  dataplane::ResidueCache::Stats total;
  for (const auto& sw : switches_) {
    if (!sw) continue;
    const auto& stats = sw->residue_cache().stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

void Network::fail_link_at(double time, const std::string& node_a,
                           const std::string& node_b) {
  const auto link = topo_->link_between(topo_->at(node_a), topo_->at(node_b));
  if (!link) {
    throw std::invalid_argument("Network::fail_link_at: " + node_a + " and " +
                                node_b + " are not adjacent");
  }
  events_.schedule_at(time, EventKind::kLinkState,
                      [this, id = *link] { fail_link_now(id); });
}

void Network::repair_link_at(double time, const std::string& node_a,
                             const std::string& node_b) {
  const auto link = topo_->link_between(topo_->at(node_a), topo_->at(node_b));
  if (!link) {
    throw std::invalid_argument("Network::repair_link_at: " + node_a + " and " +
                                node_b + " are not adjacent");
  }
  events_.schedule_at(time, EventKind::kLinkState,
                      [this, id = *link] { repair_link_now(id); });
}

}  // namespace kar::sim

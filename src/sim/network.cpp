#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace kar::sim {

using dataplane::DropReason;
using dataplane::ForwardDecision;
using dataplane::Packet;

Network::Network(topo::Topology& topology, const routing::Controller& controller,
                 NetworkConfig config)
    : topo_(&topology),
      controller_(&controller),
      config_(config),
      rng_(config.seed) {
  const std::size_t n = topology.node_count();
  switches_.resize(n);
  edges_.resize(n);
  for (topo::NodeId node = 0; node < n; ++node) {
    if (topology.kind(node) == topo::NodeKind::kCoreSwitch) {
      switches_[node].emplace(topology, node, config_.technique,
                              config_.residue_path);
    } else {
      edges_[node].emplace(topology, node, controller, config_.wrong_edge_policy);
    }
  }
  link_state_.resize(topology.link_count());
  physically_up_.assign(topology.link_count(), true);
  if (config_.batch_size > 0 && config_.mode == DataPlaneMode::kKar) {
    // Batch-pool setup: the one moment the batched path may allocate.
    // The arena holds exactly one batch's SoA columns; staging capacity is
    // bounded by the batch size (stage_arrival sweeps when full).
    arena_ = std::make_unique<dataplane::BumpArena>(
        dataplane::PacketBatch::arena_bytes(config_.batch_size));
    batch_.emplace(*arena_, config_.batch_size);
    pending_.reserve(config_.batch_size);
  }
}

const dataplane::EdgeNode& Network::edge_at(topo::NodeId node) const {
  if (node >= edges_.size() || !edges_[node]) {
    throw std::invalid_argument("Network::edge_at: not an edge node");
  }
  return *edges_[node];
}

void Network::set_delivery_handler(topo::NodeId edge, DeliveryHandler handler) {
  if (edge >= edges_.size() || !edges_[edge]) {
    throw std::invalid_argument("Network: not an edge node");
  }
  delivery_[edge] = std::move(handler);
}

void Network::trace(TraceEvent event) {
  if (trace_) trace_(event);
}

void Network::drop(const Packet& packet, topo::NodeId at, DropReason reason) {
  switch (reason) {
    case DropReason::kNoViablePort: ++counters_.drop_no_viable_port; break;
    case DropReason::kLinkFailed: ++counters_.drop_link_failed; break;
    case DropReason::kQueueOverflow: ++counters_.drop_queue_overflow; break;
    case DropReason::kTtlExceeded: ++counters_.drop_ttl; break;
    case DropReason::kAqmEarly: ++counters_.drop_aqm_early; break;
  }
  trace(TraceEvent{TraceEvent::Kind::kDrop, now(), packet.packet_id, at, 0,
                   false, reason, 0, &packet});
}

void Network::inject(topo::NodeId edge, Packet packet) {
  if (edge >= edges_.size() || !edges_[edge]) {
    throw std::invalid_argument("Network::inject: not an edge node");
  }
  if (topo_->port_count(edge) == 0) {
    throw std::logic_error("Network::inject: edge node has no uplink");
  }
  maybe_flush();  // the inject trace must not overtake staged decisions
  packet.packet_id = next_packet_id_++;
  packet.created_at = now();
  ++counters_.injected;
  trace(TraceEvent{TraceEvent::Kind::kInject, now(), packet.packet_id, edge, 0,
                   false, DropReason::kNoViablePort, 0, &packet});
  // Edge nodes use their (single) uplink, port 0.
  transmit(edge, 0, std::move(packet));
}

void Network::inject_burst(topo::NodeId edge, std::vector<Packet> packets) {
  if (edge >= edges_.size() || !edges_[edge]) {
    throw std::invalid_argument("Network::inject_burst: not an edge node");
  }
  if (topo_->port_count(edge) == 0) {
    throw std::logic_error("Network::inject_burst: edge node has no uplink");
  }
  maybe_flush();
  if (packets.empty()) return;
  for (Packet& packet : packets) {
    packet.packet_id = next_packet_id_++;
    packet.created_at = now();
    ++counters_.injected;
    trace(TraceEvent{TraceEvent::Kind::kInject, now(), packet.packet_id, edge,
                     0, false, DropReason::kNoViablePort, 0, &packet});
  }
  const topo::LinkId link_id = topo_->link_at(edge, 0);
  if (link_id == topo::kInvalidLink) {
    for (const Packet& packet : packets) {
      drop(packet, edge, DropReason::kNoViablePort);
    }
    return;
  }
  const topo::Link& link = topo_->link(link_id);
  if (!link.up) {
    for (const Packet& packet : packets) {
      drop(packet, edge, DropReason::kLinkFailed);
    }
    return;
  }
  const int dir = (link.a.node == edge) ? 0 : 1;
  DirectionState& state = link_state_[link_id][static_cast<std::size_t>(dir)];
  // Per-packet admission against the drop-tail queue, then the admitted
  // train serializes back to back; every admitted packet arrives at the
  // train's last-byte instant (one batch at the ingress switch).
  const double start = std::max(now(), state.busy_until);
  double total_tx = 0.0;
  std::size_t admitted = 0;
  for (const Packet& packet : packets) {
    if (state.queued + admitted >= link.params.queue_packets) break;
    total_tx +=
        static_cast<double>(packet.size_bytes) * 8.0 / link.params.rate_bps;
    ++admitted;
  }
  for (std::size_t i = admitted; i < packets.size(); ++i) {
    drop(packets[i], edge, DropReason::kQueueOverflow);
  }
  if (admitted == 0) return;
  state.busy_until = start + total_tx;
  const double arrival = state.busy_until + link.params.delay_s;
  state.queued += admitted;

  const topo::LinkEnd& far = (dir == 0) ? link.b : link.a;
  const std::uint64_t epoch = state.epoch;
  for (std::size_t i = 0; i < admitted; ++i) {
    schedule_link_delivery(link_id, dir, arrival, epoch, far.node, far.port,
                           std::move(packets[i]));
  }
}

void Network::transmit(topo::NodeId from, topo::PortIndex out_port,
                       Packet&& packet) {
  const topo::LinkId link_id = topo_->link_at(from, out_port);
  if (link_id == topo::kInvalidLink) {
    maybe_flush();
    drop(packet, from, DropReason::kNoViablePort);
    return;
  }
  const topo::Link& link = topo_->link(link_id);
  if (!link.up) {
    maybe_flush();
    drop(packet, from, DropReason::kLinkFailed);
    return;
  }
  const int dir = (link.a.node == from) ? 0 : 1;
  DirectionState& state = link_state_[link_id][static_cast<std::size_t>(dir)];
  const double tx_time =
      static_cast<double>(packet.size_bytes) * 8.0 / link.params.rate_bps;
  if (link.params.red && !red_admit(*link.params.red, state, tx_time)) {
    maybe_flush();
    drop(packet, from, DropReason::kAqmEarly);
    return;
  }
  if (state.queued >= link.params.queue_packets) {
    maybe_flush();
    drop(packet, from, DropReason::kQueueOverflow);
    return;
  }
  const double start = std::max(now(), state.busy_until);
  state.busy_until = start + tx_time;
  const double arrival = state.busy_until + link.params.delay_s;
  ++state.queued;

  const topo::LinkEnd& far = (dir == 0) ? link.b : link.a;
  schedule_link_delivery(link_id, dir, arrival, state.epoch, far.node,
                         far.port, std::move(packet));
}

bool Network::red_admit(const topo::RedParams& red, DirectionState& state,
                        double tx_time) {
  // Floyd/Jacobson RED: EWMA the instantaneous queue at every arrival,
  // decaying through idle periods as if empty-queue arrivals had kept the
  // average fresh (one virtual arrival per transmission time).
  double& avg = state.red_avg;
  if (state.queued == 0 && state.busy_until <= now()) {
    const double idle_s = now() - state.red_last_arrival;
    if (tx_time > 0.0 && idle_s > 0.0) {
      avg *= std::pow(1.0 - red.weight, idle_s / tx_time);
    }
  } else {
    avg = (1.0 - red.weight) * avg +
          red.weight * static_cast<double>(state.queued);
  }
  state.red_last_arrival = now();
  if (avg < red.min_th) {
    state.red_count = 0;
    return true;
  }
  if (avg >= red.max_th) {
    state.red_count = 0;
    return false;
  }
  // Between the thresholds: drop with probability p_a, uniformized by the
  // count of arrivals since the last drop so drops spread out in time.
  ++state.red_count;
  const double pb =
      red.max_p * (avg - red.min_th) / (red.max_th - red.min_th);
  const double denom = 1.0 - static_cast<double>(state.red_count - 1) * pb;
  const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
  if (rng_.chance(pa)) {
    state.red_count = 0;
    return false;
  }
  return true;
}

void Network::schedule_link_delivery(topo::LinkId link_id, int dir,
                                     double arrival, std::uint64_t epoch,
                                     topo::NodeId far_node,
                                     topo::PortIndex far_port,
                                     Packet&& packet) {
  events_.schedule_at(
      arrival, EventKind::kLinkArrival,
      [this, link_id, dir, epoch, far_node, far_port,
       pkt = std::move(packet)]() mutable {
        DirectionState& st = link_state_[link_id][static_cast<std::size_t>(dir)];
        if (st.queued > 0) --st.queued;
        // The link failed while the packet was queued or on the wire — or
        // it was dead all along and the sender had not detected it yet.
        if (st.epoch != epoch || !physically_up_[link_id] ||
            !topo_->link(link_id).up) {
          maybe_flush();  // this drop's trace must stay in arrival order
          drop(pkt, far_node, DropReason::kLinkFailed);
          return;
        }
        arrive_at(far_node, far_port, std::move(pkt));
      });
}

void Network::arrive_at(topo::NodeId node, topo::PortIndex in_port,
                        Packet&& packet) {
  if (edges_[node]) {
    // Edge processing traces (deliver/reencode/bounce) must land after the
    // decisions of every switch arrival that preceded this event.
    maybe_flush();
    Packet pkt = std::move(packet);
    const auto verdict = edges_[node]->receive(pkt);
    switch (verdict) {
      case dataplane::EdgeNode::Verdict::kDeliver: {
        ++counters_.delivered;
        counters_.delivered_bytes += pkt.size_bytes;
        trace(TraceEvent{TraceEvent::Kind::kDeliver, now(), pkt.packet_id, node,
                         0, false, DropReason::kNoViablePort, 0, &pkt});
        const auto it = delivery_.find(node);
        if (it != delivery_.end() && it->second) it->second(pkt);
        return;
      }
      case dataplane::EdgeNode::Verdict::kReinject: {
        const bool reencoded =
            edges_[node]->policy() == dataplane::WrongEdgePolicy::kReencode;
        if (reencoded) {
          ++counters_.reencodes;
          trace(TraceEvent{TraceEvent::Kind::kReencode, now(), pkt.packet_id,
                           node, 0, false, DropReason::kNoViablePort, 0, &pkt});
        } else {
          ++counters_.bounces;
          trace(TraceEvent{TraceEvent::Kind::kBounce, now(), pkt.packet_id,
                           node, 0, false, DropReason::kNoViablePort, 0, &pkt});
        }
        // Back out of the uplink after the edge's processing latency.
        events_.schedule_in(config_.switch_latency_s, EventKind::kEdgeProcess,
                            [this, node, p = std::move(pkt)]() mutable {
                              transmit(node, 0, std::move(p));
                            });
        return;
      }
      case dataplane::EdgeNode::Verdict::kDrop:
        drop(pkt, node, DropReason::kNoViablePort);
        return;
    }
    return;
  }
  forward_from_switch(node, in_port, std::move(packet));
}

void Network::forward_from_switch(topo::NodeId node, topo::PortIndex in_port,
                                  Packet&& packet) {
  if (config_.mode == DataPlaneMode::kFailoverFib) {
    // Table-driven fast-failover baseline: the route ID is ignored.
    const auto selection =
        config_.failover_fib
            ? config_.failover_fib->select_with_status(*topo_, node,
                                                       packet.dst_edge)
            : std::nullopt;
    if (!selection) {
      drop(packet, node, DropReason::kNoViablePort);
      return;
    }
    ForwardDecision decision;
    decision.action = ForwardDecision::Action::kForward;
    decision.out_port = selection->port;
    decision.deflected = selection->failed_over;
    apply_decision(node, in_port, std::move(packet), decision);
    return;
  }
  if (batching()) {
    stage_arrival(node, in_port, std::move(packet));
    return;
  }
  const ForwardDecision decision =
      switches_[node]->forward(packet, in_port, rng_);
  apply_decision(node, in_port, std::move(packet), decision);
}

void Network::apply_decision(topo::NodeId node, topo::PortIndex in_port,
                             Packet&& packet,
                             const ForwardDecision& decision) {
  if (decision.action == ForwardDecision::Action::kDrop) {
    drop(packet, node, decision.drop_reason);
    return;
  }
  packet.hop_count += 1;
  ++counters_.hops;
  if (packet.hop_count > config_.max_hops) {
    drop(packet, node, DropReason::kTtlExceeded);
    return;
  }
  if (decision.deflected) {
    packet.deflection_count += 1;
    ++counters_.deflections;
  }
  if (decision.marked_hot_potato) packet.kar.deflected = true;
  trace(TraceEvent{TraceEvent::Kind::kHop, now(), packet.packet_id, node,
                   decision.out_port, decision.deflected,
                   DropReason::kNoViablePort, in_port, &packet});
  const topo::PortIndex out = decision.out_port;
  events_.schedule_in(config_.switch_latency_s, EventKind::kSwitchProcess,
                      [this, node, out, p = std::move(packet)]() mutable {
                        transmit(node, out, std::move(p));
                      });
}

void Network::stage_arrival(topo::NodeId node, topo::PortIndex in_port,
                            Packet&& packet) {
  pending_.push_back(PendingArrival{node, in_port, std::move(packet)});
  ++batch_stats_.staged;
  if (pending_.size() >= config_.batch_size) {
    // Full: sweep now. Any flush event still in the queue finds nothing.
    flush_batches();
    return;
  }
  if (!flush_scheduled_) {
    // Same-instant flush: scheduled now, so its sequence number is larger
    // than every already-queued arrival at this timestamp — all of them
    // stage before the sweep runs. Whenever pending_ is non-empty exactly
    // one such event is in flight, so no staged decision can outlive the
    // current instant.
    flush_scheduled_ = true;
    events_.schedule_at(now(), EventKind::kBatchFlush, [this] {
      flush_scheduled_ = false;
      flush_batches();
    });
  }
}

void Network::flush_batches() {
  const std::size_t total = pending_.size();
  if (total == 0) return;
  // Sweep in arrival order, grouping consecutive same-switch runs — the
  // order (and thus every trace, counter and RNG draw) is exactly the
  // per-packet path's.
  std::size_t i = 0;
  while (i < total) {
    const topo::NodeId node = pending_[i].node;
    batch_->clear();
    std::size_t j = i;
    while (j < total && pending_[j].node == node && !batch_->full()) {
      batch_->push(&pending_[j].packet, pending_[j].in_port);
      ++j;
    }
    switches_[node]->forward_batch(*batch_, rng_);
    ++batch_stats_.batches;
    if (batch_->size() > batch_stats_.max_occupancy) {
      batch_stats_.max_occupancy = batch_->size();
    }
    const dataplane::ForwardDecision* decisions = batch_->decisions();
    for (std::size_t k = i; k < j; ++k) {
      apply_decision(node, pending_[k].in_port, std::move(pending_[k].packet),
                     decisions[k - i]);
    }
    i = j;
  }
  pending_.clear();
}

void Network::fail_link_now(topo::LinkId link) {
  maybe_flush();  // staged decisions must not observe the new link state
  // Physical failure: everything queued or in flight dies immediately.
  physically_up_[link] = false;
  for (auto& dir : link_state_[link]) {
    ++dir.epoch;
    dir.busy_until = now();
  }
  if (config_.failure_detection_delay_s > 0.0) {
    // Until detection, the port still looks usable: switches keep sending
    // into the dead link (the epoch check blackholes those packets). Only
    // after the detection window does the link state flip and deflection
    // kick in. A repair that races the detection bumps the epoch and
    // cancels it.
    const std::uint64_t epoch = link_state_[link][0].epoch;
    events_.schedule_in(config_.failure_detection_delay_s, EventKind::kLinkState,
                        [this, link, epoch] {
      if (link_state_[link][0].epoch != epoch) return;  // repaired meanwhile
      maybe_flush();  // detection flips what staged decisions would observe
      topo_->set_link_up(link, false);
      if (link_state_hook_) link_state_hook_(link, /*up=*/false);
    });
    return;
  }
  topo_->set_link_up(link, false);
  if (link_state_hook_) link_state_hook_(link, /*up=*/false);
}

void Network::repair_link_now(topo::LinkId link) {
  maybe_flush();  // staged decisions must not observe the new link state
  physically_up_[link] = true;
  topo_->set_link_up(link, true);
  for (auto& dir : link_state_[link]) {
    ++dir.epoch;  // anything stale from before the repair is gone
    dir.busy_until = now();
  }
  if (link_state_hook_) link_state_hook_(link, /*up=*/true);
}

void Network::install_routes(std::uint64_t version,
                             const std::vector<RouteInstall>& batch) {
  maybe_flush();  // table swaps sit between decision generations
  if (version < route_table_version_) {
    throw std::invalid_argument(
        "Network::install_routes: stale epoch " + std::to_string(version) +
        " (table is at " + std::to_string(route_table_version_) + ")");
  }
  for (const RouteInstall& entry : batch) {
    if (entry.route != nullptr) {
      installed_[entry.key] = *entry.route;
    } else {
      installed_.erase(entry.key);
    }
  }
  route_table_version_ = version;
}

const routing::EncodedRoute* Network::installed_route(std::uint64_t key) const {
  const auto it = installed_.find(key);
  return it == installed_.end() ? nullptr : &it->second;
}

void Network::attach_dataplane_metrics(obs::MetricsRegistry& registry,
                                       const obs::Labels& labels) {
  const obs::Counter hits = registry.counter(
      "kar_dataplane_residue_cache_hits_total",
      "Residue-cache lookups answered from the memo", labels);
  const obs::Counter misses = registry.counter(
      "kar_dataplane_residue_cache_misses_total",
      "Residue-cache lookups that ran the PreparedMod reduction", labels);
  const obs::Counter evictions = registry.counter(
      "kar_dataplane_residue_cache_evictions_total",
      "Residue-cache entries overwritten by a colliding route ID", labels);
  for (auto& sw : switches_) {
    if (sw) sw->residue_cache().bind_counters(hits, misses, evictions);
  }
}

dataplane::ResidueCache::Stats Network::residue_cache_stats() const {
  dataplane::ResidueCache::Stats total;
  for (const auto& sw : switches_) {
    if (!sw) continue;
    const auto& stats = sw->residue_cache().stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

void Network::fail_link_at(double time, const std::string& node_a,
                           const std::string& node_b) {
  const auto link = topo_->link_between(topo_->at(node_a), topo_->at(node_b));
  if (!link) {
    throw std::invalid_argument("Network::fail_link_at: " + node_a + " and " +
                                node_b + " are not adjacent");
  }
  events_.schedule_at(time, EventKind::kLinkState,
                      [this, id = *link] { fail_link_now(id); });
}

void Network::repair_link_at(double time, const std::string& node_a,
                             const std::string& node_b) {
  const auto link = topo_->link_between(topo_->at(node_a), topo_->at(node_b));
  if (!link) {
    throw std::invalid_argument("Network::repair_link_at: " + node_a + " and " +
                                node_b + " are not adjacent");
  }
  events_.schedule_at(time, EventKind::kLinkState,
                      [this, id = *link] { repair_link_now(id); });
}

}  // namespace kar::sim

#include "sim/trace_csv.hpp"

#include <iomanip>
#include <limits>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/parse.hpp"
#include "common/strings.hpp"

namespace kar::sim {

std::string_view to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kInject: return "inject";
    case TraceEvent::Kind::kHop: return "hop";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kReencode: return "reencode";
    case TraceEvent::Kind::kBounce: return "bounce";
  }
  throw std::logic_error("to_string: bad TraceEvent::Kind");
}

namespace {

TraceEvent::Kind kind_from_string(std::size_t line, const std::string& text) {
  for (const auto kind :
       {TraceEvent::Kind::kInject, TraceEvent::Kind::kHop,
        TraceEvent::Kind::kDeliver, TraceEvent::Kind::kDrop,
        TraceEvent::Kind::kReencode, TraceEvent::Kind::kBounce}) {
    if (text == to_string(kind)) return kind;
  }
  throw std::invalid_argument("trace csv line " + std::to_string(line) +
                              ": unknown event kind " + text);
}

}  // namespace

TraceCsvWriter::TraceCsvWriter(std::ostream& out) : out_(&out) {
  // CSV is a machine format: pin the classic "C" locale on the sink so an
  // imbued or global comma-decimal locale can neither change the decimal
  // separator (corrupting the time field) nor inject digit grouping.
  out_->imbue(std::locale::classic());
  *out_ << kHeader << '\n';
}

void TraceCsvWriter::write(const TraceEvent& event, const topo::Topology& topo) {
  // String fields go through csv_escape so commas/quotes in node names or
  // drop reasons cannot corrupt the row structure.
  *out_ << to_string(event.kind) << ','
        << std::setprecision(12) << event.time << ',' << event.packet_id << ','
        << common::csv_escape(topo.name(event.node)) << ',' << event.out_port
        << ',' << (event.deflected ? 1 : 0) << ',';
  if (event.kind == TraceEvent::Kind::kDrop) {
    *out_ << common::csv_escape(dataplane::to_string(event.drop_reason));
  }
  *out_ << '\n';
  ++rows_;
}

void TraceCsvWriter::write(const TraceRecord& record) {
  *out_ << to_string(record.kind) << ','
        << std::setprecision(12) << record.time << ',' << record.packet_id
        << ',' << common::csv_escape(record.node) << ',' << record.out_port
        << ',' << (record.deflected ? 1 : 0) << ','
        << common::csv_escape(record.drop_reason) << '\n';
  ++rows_;
}

std::function<void(const TraceEvent&)> TraceCsvWriter::hook(const Network& network) {
  const topo::Topology* topo = &network.topology();
  return [this, topo](const TraceEvent& event) { write(event, *topo); };
}

std::vector<TraceRecord> parse_trace_csv(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line == TraceCsvWriter::kHeader) continue;
    std::vector<std::string> fields;
    try {
      fields = common::split_csv_row(line);
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": " + error.what());
    }
    if (fields.size() != 7) {
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": expected 7 fields, got " +
                                  std::to_string(fields.size()));
    }
    TraceRecord record;
    record.kind = kind_from_string(line_no, fields[0]);
    // Strict, locale-independent numeric fields: trailing garbage or a
    // non-"C" decimal separator is a malformed row, not a silent truncation.
    const auto bad_field = [line_no](const char* field,
                                     const std::string& value) {
      return std::invalid_argument(
          "trace csv line " + std::to_string(line_no) + ": bad " + field +
          " field \"" + value + "\"");
    };
    const auto time = common::parse_double(fields[1]);
    if (!time) throw bad_field("time", fields[1]);
    record.time = *time;
    const auto packet_id = common::parse_u64(fields[2]);
    if (!packet_id) throw bad_field("packet_id", fields[2]);
    record.packet_id = *packet_id;
    record.node = fields[3];
    const auto out_port = common::parse_u64(fields[4]);
    if (!out_port ||
        *out_port > std::numeric_limits<topo::PortIndex>::max()) {
      throw bad_field("out_port", fields[4]);
    }
    record.out_port = static_cast<topo::PortIndex>(*out_port);
    record.deflected = fields[5] == "1";
    record.drop_reason = fields[6];
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace kar::sim

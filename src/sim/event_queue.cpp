#include "sim/event_queue.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace kar::sim {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kGeneric: return "generic";
    case EventKind::kLinkArrival: return "link-arrival";
    case EventKind::kSwitchProcess: return "switch-process";
    case EventKind::kEdgeProcess: return "edge-process";
    case EventKind::kLinkState: return "link-state";
    case EventKind::kTraffic: return "traffic";
    case EventKind::kTransportTimer: return "transport-timer";
    case EventKind::kBatchFlush: return "batch-flush";
  }
  return "generic";
}

void EventQueue::schedule_at(double time, EventKind kind, Handler fn) {
  if (!fn) throw std::invalid_argument("EventQueue: null handler");
  if (time < now_) time = now_;  // no scheduling into the past
  heap_.push(Entry{time, next_seq_++, kind, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  if (profile_ == nullptr) {
    entry.fn();
    return true;
  }
  const auto start = std::chrono::steady_clock::now();
  entry.fn();
  EventLoopProfile::KindStats& stats =
      profile_->kinds[static_cast<std::size_t>(entry.kind)];
  ++stats.count;
  stats.wall_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return true;
}

std::size_t EventQueue::run_until(double t) {
  std::size_t processed = 0;
  while (!heap_.empty() && heap_.top().time <= t) {
    step();
    ++processed;
  }
  if (now_ < t) now_ = t;
  return processed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) ++processed;
  return processed;
}

}  // namespace kar::sim

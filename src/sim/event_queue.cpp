#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace kar::sim {

void EventQueue::schedule_at(double time, Handler fn) {
  if (!fn) throw std::invalid_argument("EventQueue: null handler");
  if (time < now_) time = now_;  // no scheduling into the past
  heap_.push(Entry{time, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  entry.fn();
  return true;
}

std::size_t EventQueue::run_until(double t) {
  std::size_t processed = 0;
  while (!heap_.empty() && heap_.top().time <= t) {
    step();
    ++processed;
  }
  if (now_ < t) now_ = t;
  return processed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) ++processed;
  return processed;
}

}  // namespace kar::sim

// CSV export / import of packet traces: lets experiments be inspected
// offline (spreadsheets, pandas) and replayed in tests. One row per
// TraceEvent; node names resolved against the topology.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace kar::sim {

/// A parsed trace row (names instead of handles, so traces survive
/// topology rebuilds).
struct TraceRecord {
  TraceEvent::Kind kind;
  double time = 0.0;
  std::uint64_t packet_id = 0;
  std::string node;
  topo::PortIndex out_port = 0;
  bool deflected = false;
  std::string drop_reason;  ///< Empty unless kind == kDrop.

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

[[nodiscard]] std::string_view to_string(TraceEvent::Kind kind);

/// Streams trace events as CSV rows. Attach to a network via
/// `network.set_trace_hook(writer.hook(network))`; the header row is
/// written on construction.
class TraceCsvWriter {
 public:
  explicit TraceCsvWriter(std::ostream& out);

  /// A hook bound to `network`'s topology (for node names). The writer
  /// must outlive the network's use of the hook.
  [[nodiscard]] std::function<void(const TraceEvent&)> hook(const Network& network);

  /// Writes one event directly.
  void write(const TraceEvent& event, const topo::Topology& topo);

  /// Writes one already-resolved record (round-trip companion of
  /// parse_trace_csv; lets tests exercise arbitrary field contents).
  void write(const TraceRecord& record);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  static constexpr const char* kHeader =
      "kind,time_s,packet_id,node,out_port,deflected,drop_reason";

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Parses a CSV trace produced by TraceCsvWriter. String fields (node,
/// drop_reason) follow RFC 4180 quoting, so values containing commas,
/// quotes, or newlines-escaped-on-write round-trip intact. Throws
/// std::invalid_argument with a line number on malformed input.
[[nodiscard]] std::vector<TraceRecord> parse_trace_csv(std::istream& in);

}  // namespace kar::sim

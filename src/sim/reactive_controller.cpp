#include "sim/reactive_controller.hpp"

#include <utility>

namespace kar::sim {

ReactiveController::ReactiveController(Network& network, double reaction_delay_s)
    : net_(&network),
      delay_(reaction_delay_s),
      mode_(network.config().route_engine) {
  if (mode_ == ctrlplane::EngineMode::kIncremental) {
    store_.emplace(net_->topology());
    ctrlplane::EngineConfig config;
    config.mode = ctrlplane::EngineMode::kIncremental;
    // Match the legacy reaction path: bare shortest-path encodings, hop
    // metric (route_between with no protection assignments).
    config.plan_protection = false;
    engine_.emplace(net_->topology(), *store_, config);
  }
  net_->set_link_state_hook(
      [this](topo::LinkId link, bool up) { on_link_event(link, up); });
}

void ReactiveController::watch_flow(topo::NodeId src_edge, topo::NodeId dst_edge,
                                    RouteUpdateHandler on_update) {
  if (engine_.has_value()) {
    // Flow index == route key (both dense registration orders). The initial
    // encoding converges against the current topology and is installed at
    // the engine's current version; handlers only fire on reactions, as in
    // the legacy path.
    const ctrlplane::RouteKey key = engine_->add_route(src_edge, dst_edge);
    const ctrlplane::StoredRoute& entry = store_->get(key);
    if (entry.live) {
      const std::vector<Network::RouteInstall> batch{
          Network::RouteInstall{key, &entry.route}};
      net_->install_routes(engine_->version(), batch);
    }
  }
  flows_.push_back(WatchedFlow{src_edge, dst_edge, std::move(on_update)});
}

void ReactiveController::on_link_event(topo::LinkId link, bool up) {
  if (engine_.has_value()) {
    pending_events_.push_back(ctrlplane::LinkChange{link, up});
  }
  // A burst of simultaneous link events produces one reaction after the
  // delay (the controller batches what it learned).
  const std::uint64_t epoch = ++pending_epoch_;
  net_->events().schedule_in(delay_, EventKind::kLinkState, [this, epoch] {
    if (epoch == pending_epoch_) react();
  });
}

void ReactiveController::react() {
  ++reactions_;
  if (engine_.has_value()) {
    react_incremental();
  } else {
    react_full_recompute();
  }
}

void ReactiveController::react_incremental() {
  std::vector<ctrlplane::LinkChange> events = std::move(pending_events_);
  pending_events_.clear();
  const ctrlplane::EpochResult epoch = engine_->apply(events);
  recomputes_ += epoch.updated.size();
  std::vector<Network::RouteInstall> batch;
  batch.reserve(epoch.updated.size());
  for (const ctrlplane::RouteKey key : epoch.updated) {
    const ctrlplane::StoredRoute& entry = store_->get(key);
    batch.push_back(
        Network::RouteInstall{key, entry.live ? &entry.route : nullptr});
  }
  net_->install_routes(epoch.version, batch);
  // Only flows whose route actually changed (and still exists) hear about
  // it — the affected-set contract.
  for (const ctrlplane::RouteKey key : epoch.updated) {
    const ctrlplane::StoredRoute& entry = store_->get(key);
    if (!entry.live) continue;
    const WatchedFlow& flow = flows_[key];
    if (flow.on_update) flow.on_update(entry.route);
  }
}

void ReactiveController::react_full_recompute() {
  // The original reaction path, preserved verbatim as the reference mode:
  // full Dijkstra per watched flow on the topology as it is *now*, every
  // routed flow's handler invoked whether or not anything changed.
  routing::PathOptions options;
  options.ignore_failures = false;
  const routing::Controller aware(net_->topology(), options);
  recomputes_ += flows_.size();
  for (const WatchedFlow& flow : flows_) {
    const auto route = aware.route_between(flow.src, flow.dst);
    if (route && flow.on_update) flow.on_update(*route);
  }
}

}  // namespace kar::sim

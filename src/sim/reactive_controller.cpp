#include "sim/reactive_controller.hpp"

namespace kar::sim {

ReactiveController::ReactiveController(Network& network, double reaction_delay_s)
    : net_(&network), delay_(reaction_delay_s) {
  net_->set_link_state_hook([this](topo::LinkId, bool) { on_link_event(); });
}

void ReactiveController::watch_flow(topo::NodeId src_edge, topo::NodeId dst_edge,
                                    RouteUpdateHandler on_update) {
  flows_.push_back(WatchedFlow{src_edge, dst_edge, std::move(on_update)});
}

void ReactiveController::on_link_event() {
  // A burst of simultaneous link events produces one reaction after the
  // delay (the controller batches what it learned).
  const std::uint64_t epoch = ++pending_epoch_;
  net_->events().schedule_in(delay_, EventKind::kLinkState, [this, epoch] {
    if (epoch == pending_epoch_) react();
  });
}

void ReactiveController::react() {
  ++reactions_;
  // Recompute on the topology as it is *now*, avoiding failed links.
  routing::PathOptions options;
  options.ignore_failures = false;
  const routing::Controller aware(net_->topology(), options);
  for (const WatchedFlow& flow : flows_) {
    const auto route = aware.route_between(flow.src, flow.dst);
    if (route && flow.on_update) flow.on_update(*route);
  }
}

}  // namespace kar::sim

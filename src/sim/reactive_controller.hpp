// The "traditional approach" to failure reaction (paper §1): the data
// plane notifies the controller, the controller — after a notification +
// recomputation delay — recomputes failure-avoiding routes and pushes the
// fresh route IDs to the ingress edges. KAR's whole point is making this
// path unnecessary for liveness; implementing it turns the paper's
// motivation into a measurable baseline (bench/controller_reaction).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "routing/controller.hpp"
#include "sim/network.hpp"

namespace kar::sim {

/// Watches link-state changes on a Network and, after a configurable
/// reaction delay, recomputes registered flows' routes on the surviving
/// topology and hands them to per-flow update callbacks.
class ReactiveController {
 public:
  /// `reaction_delay_s` models notification transport + controller
  /// processing + rule installation (the window in which in-flight traffic
  /// is lost when no data-plane protection exists).
  ReactiveController(Network& network, double reaction_delay_s);

  ReactiveController(const ReactiveController&) = delete;
  ReactiveController& operator=(const ReactiveController&) = delete;

  using RouteUpdateHandler = std::function<void(const routing::EncodedRoute&)>;

  /// Registers a flow to keep routed: on every link event, a new shortest
  /// path from `src_edge` to `dst_edge` avoiding failed links is encoded
  /// and passed to `on_update` (not called when no route exists).
  void watch_flow(topo::NodeId src_edge, topo::NodeId dst_edge,
                  RouteUpdateHandler on_update);

  [[nodiscard]] std::uint64_t reactions() const noexcept { return reactions_; }
  [[nodiscard]] double reaction_delay_s() const noexcept { return delay_; }

 private:
  void on_link_event();
  void react();

  struct WatchedFlow {
    topo::NodeId src;
    topo::NodeId dst;
    RouteUpdateHandler on_update;
  };

  Network* net_;
  double delay_;
  std::vector<WatchedFlow> flows_;
  std::uint64_t reactions_ = 0;
  std::uint64_t pending_epoch_ = 0;  ///< Coalesces bursts of link events.
};

}  // namespace kar::sim

// The "traditional approach" to failure reaction (paper §1): the data
// plane notifies the controller, the controller — after a notification +
// recomputation delay — recomputes failure-avoiding routes and pushes the
// fresh route IDs to the ingress edges. KAR's whole point is making this
// path unnecessary for liveness; implementing it turns the paper's
// motivation into a measurable baseline (bench/controller_reaction).
//
// Since the incremental control plane landed, the default reaction path
// runs on ctrlplane::ReconvergenceEngine: link events reconverge only the
// affected route set, the result is installed into the network as one
// versioned epoch, and only flows whose route actually changed see their
// update callback. NetworkConfig::route_engine == kFullRecompute restores
// the original behavior — full Dijkstra per watched flow per reaction,
// every callback invoked — as the differential baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ctrlplane/engine.hpp"
#include "ctrlplane/route_store.hpp"
#include "routing/controller.hpp"
#include "sim/network.hpp"

namespace kar::sim {

/// Watches link-state changes on a Network and, after a configurable
/// reaction delay, reconverges registered flows' routes on the surviving
/// topology and hands them to per-flow update callbacks.
class ReactiveController {
 public:
  /// `reaction_delay_s` models notification transport + controller
  /// processing + rule installation (the window in which in-flight traffic
  /// is lost when no data-plane protection exists). The engine mode is
  /// taken from the network's config (NetworkConfig::route_engine).
  ReactiveController(Network& network, double reaction_delay_s);

  ReactiveController(const ReactiveController&) = delete;
  ReactiveController& operator=(const ReactiveController&) = delete;

  using RouteUpdateHandler = std::function<void(const routing::EncodedRoute&)>;

  /// Registers a flow to keep routed: on every link event, a new shortest
  /// path from `src_edge` to `dst_edge` avoiding failed links is encoded
  /// and passed to `on_update` (not called when no route exists; under the
  /// incremental engine, also not called when the flow's route is
  /// untouched by the event).
  void watch_flow(topo::NodeId src_edge, topo::NodeId dst_edge,
                  RouteUpdateHandler on_update);

  [[nodiscard]] std::uint64_t reactions() const noexcept { return reactions_; }
  [[nodiscard]] double reaction_delay_s() const noexcept { return delay_; }
  [[nodiscard]] ctrlplane::EngineMode engine_mode() const noexcept { return mode_; }
  /// Shortest-path recomputations across all reactions: the incremental
  /// engine counts affected routes only, the legacy full recompute counts
  /// every watched flow on every reaction — the satellite metric
  /// bench/churn_convergence exists to compare.
  [[nodiscard]] std::uint64_t route_recomputes() const noexcept {
    return recomputes_;
  }

 private:
  void on_link_event(topo::LinkId link, bool up);
  void react();
  void react_incremental();
  void react_full_recompute();

  struct WatchedFlow {
    topo::NodeId src;
    topo::NodeId dst;
    RouteUpdateHandler on_update;
  };

  Network* net_;
  double delay_;
  ctrlplane::EngineMode mode_;
  std::vector<WatchedFlow> flows_;
  /// Incremental mode: the engine over the network's topology. Flow i is
  /// route key i (both are dense registration orders).
  std::optional<ctrlplane::RouteStore> store_;
  std::optional<ctrlplane::ReconvergenceEngine> engine_;
  std::vector<ctrlplane::LinkChange> pending_events_;
  std::uint64_t reactions_ = 0;
  std::uint64_t recomputes_ = 0;
  std::uint64_t pending_epoch_ = 0;  ///< Coalesces bursts of link events.
};

}  // namespace kar::sim

// Time-binned counters for throughput-over-time measurements (paper
// Fig. 4's 1-second throughput timeline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kar::stats {

/// Accumulates (timestamp, amount) events into fixed-width bins starting
/// at t=0. Used to turn per-packet deliveries into Mb/s curves.
class BinnedSeries {
 public:
  /// `bin_width` in the same unit as the timestamps (seconds). Must be > 0.
  explicit BinnedSeries(double bin_width);

  /// Adds `amount` (e.g. bytes) at time `t` (t >= 0).
  void add(double t, double amount);

  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }

  /// Sum accumulated in bin `index` (0 if the bin was never touched).
  [[nodiscard]] double bin_sum(std::size_t index) const;

  /// Start time of bin `index`.
  [[nodiscard]] double bin_start(std::size_t index) const {
    return static_cast<double>(index) * bin_width_;
  }

  /// Per-bin rate: sum / bin_width. With byte amounts this yields bytes/s.
  [[nodiscard]] double bin_rate(std::size_t index) const {
    return bin_sum(index) / bin_width_;
  }

  /// Per-bin rate converted to Mbit/s, assuming byte amounts.
  [[nodiscard]] double bin_mbps(std::size_t index) const {
    return bin_rate(index) * 8.0 / 1e6;
  }

  /// Total accumulated over [t0, t1) (whole bins only; callers align
  /// boundaries to bin width).
  [[nodiscard]] double sum_between(double t0, double t1) const;

  /// Mean rate over [t0, t1) in Mbit/s (byte amounts).
  [[nodiscard]] double mbps_between(double t0, double t1) const {
    return (t1 > t0) ? sum_between(t0, t1) * 8.0 / 1e6 / (t1 - t0) : 0.0;
  }

 private:
  double bin_width_;
  std::vector<double> bins_;
};

}  // namespace kar::stats

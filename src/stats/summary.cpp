#include "stats/summary.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace kar::stats {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double sq = 0.0;
    for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.variance = sq / static_cast<double>(s.n - 1);
    s.stddev = std::sqrt(s.variance);
    s.ci95_half_width =
        t_quantile_975(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

double t_quantile_975(std::size_t dof) {
  // Two-sided 95% CI => 0.975 quantile.
  static constexpr std::array<double, 31> kTable = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof == 0) return 0.0;
  if (dof < kTable.size()) return kTable[dof];
  return 1.96;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: bad p");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace kar::stats

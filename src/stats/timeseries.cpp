#include "stats/timeseries.hpp"

#include <cmath>
#include <stdexcept>

namespace kar::stats {

BinnedSeries::BinnedSeries(double bin_width) : bin_width_(bin_width) {
  if (!(bin_width > 0.0)) {
    throw std::invalid_argument("BinnedSeries: bin width must be positive");
  }
}

void BinnedSeries::add(double t, double amount) {
  if (t < 0.0) throw std::invalid_argument("BinnedSeries: negative timestamp");
  const auto index = static_cast<std::size_t>(t / bin_width_);
  if (index >= bins_.size()) bins_.resize(index + 1, 0.0);
  bins_[index] += amount;
}

double BinnedSeries::bin_sum(std::size_t index) const {
  return index < bins_.size() ? bins_[index] : 0.0;
}

double BinnedSeries::sum_between(double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  const auto first = static_cast<std::size_t>(t0 / bin_width_);
  const auto last = static_cast<std::size_t>(std::ceil(t1 / bin_width_));
  double total = 0.0;
  for (std::size_t i = first; i < last && i < bins_.size(); ++i) {
    total += bins_[i];
  }
  return total;
}

}  // namespace kar::stats

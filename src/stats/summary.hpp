// Summary statistics with Student-t confidence intervals, matching the
// paper's methodology ("we run the performance test iperf for 30 times ...
// to obtain a confidence interval of 95%", §3.1).
#pragma once

#include <cstddef>
#include <vector>

namespace kar::stats {

/// Descriptive statistics over a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the 95% confidence interval for the mean (Student t).
  double ci95_half_width = 0.0;

  [[nodiscard]] double ci_low() const { return mean - ci95_half_width; }
  [[nodiscard]] double ci_high() const { return mean + ci95_half_width; }
};

/// Computes the summary of `samples` (empty input yields a zero summary;
/// a single sample has an undefined CI, reported as 0).
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Two-sided 97.5% Student-t quantile for `dof` degrees of freedom
/// (table-backed through dof=30, 1.96 asymptote beyond).
[[nodiscard]] double t_quantile_975(std::size_t dof);

/// The p-th percentile (0..100) by linear interpolation; input is copied
/// and sorted. Throws std::invalid_argument for empty input or bad p.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace kar::stats

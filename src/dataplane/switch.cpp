#include "dataplane/switch.hpp"

#include <cctype>
#include <stdexcept>
#include <string>

#include "dataplane/batch.hpp"

namespace kar::dataplane {

std::string_view to_string(DeflectionTechnique technique) {
  switch (technique) {
    case DeflectionTechnique::kNone: return "none";
    case DeflectionTechnique::kHotPotato: return "hp";
    case DeflectionTechnique::kAnyValidPort: return "avp";
    case DeflectionTechnique::kNotInputPort: return "nip";
  }
  throw std::logic_error("to_string: bad DeflectionTechnique");
}

DeflectionTechnique technique_from_string(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "none") return DeflectionTechnique::kNone;
  if (lower == "hp") return DeflectionTechnique::kHotPotato;
  if (lower == "avp") return DeflectionTechnique::kAnyValidPort;
  if (lower == "nip") return DeflectionTechnique::kNotInputPort;
  throw std::invalid_argument("unknown deflection technique \"" +
                              std::string(name) +
                              "\" (expected one of: none|hp|avp|nip)");
}

KarSwitch::KarSwitch(const topo::Topology& topology, topo::NodeId node,
                     DeflectionTechnique technique, ResiduePath residue_path)
    : topo_(&topology),
      node_(node),
      switch_id_(topology.switch_id(node)),  // throws for non-switches
      technique_(technique),
      residue_path_(residue_path),
      prepared_mod_(switch_id_) {}

ForwardDecision KarSwitch::random_among_available(
    std::optional<topo::PortIndex> excluded_port, bool marked,
    common::Rng& rng) const {
  std::vector<topo::PortIndex> candidates = topo_->available_ports(node_);
  if (excluded_port) {
    std::erase(candidates, *excluded_port);
  }
  if (candidates.empty()) {
    ForwardDecision decision;
    decision.action = ForwardDecision::Action::kDrop;
    decision.drop_reason = DropReason::kNoViablePort;
    return decision;
  }
  ForwardDecision decision;
  decision.action = ForwardDecision::Action::kForward;
  decision.out_port = candidates[rng.below(candidates.size())];
  decision.deflected = true;
  decision.marked_hot_potato = marked;
  return decision;
}

ForwardDecision KarSwitch::forward(const Packet& packet,
                                   std::optional<topo::PortIndex> in_port,
                                   common::Rng& rng) const {
  // A Hot-Potato packet already in random-walk mode never consults the
  // residue again.
  if (technique_ == DeflectionTechnique::kHotPotato && packet.kar.deflected) {
    return random_among_available(std::nullopt, /*marked=*/false, rng);
  }

  const std::uint64_t residue_port = (residue_path_ == ResiduePath::kFast)
                                         ? residue_fast(packet.kar.route_id)
                                         : residue(packet.kar.route_id);
  const bool residue_is_port =
      residue_port < topo_->port_count(node_) &&
      topo_->port_available(node_, static_cast<topo::PortIndex>(residue_port));
  const auto out = static_cast<topo::PortIndex>(residue_port);

  switch (technique_) {
    case DeflectionTechnique::kNone: {
      ForwardDecision decision;
      if (residue_is_port) {
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
      } else {
        decision.action = ForwardDecision::Action::kDrop;
        decision.drop_reason = DropReason::kNoViablePort;
      }
      return decision;
    }
    case DeflectionTechnique::kHotPotato: {
      if (residue_is_port) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      // First deflection: mark the packet; it random-walks from here on.
      return random_among_available(std::nullopt, /*marked=*/true, rng);
    }
    case DeflectionTechnique::kAnyValidPort: {
      if (residue_is_port) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      return random_among_available(std::nullopt, /*marked=*/false, rng);
    }
    case DeflectionTechnique::kNotInputPort: {
      if (residue_is_port && (!in_port || out != *in_port)) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      return random_among_available(in_port, /*marked=*/false, rng);
    }
  }
  throw std::logic_error("KarSwitch::forward: bad technique");
}

namespace {

/// random_among_available against a hoisted availability snapshot: same
/// candidate order (ascending ports, excluded port skipped in place), same
/// single rng draw — so the batched path consumes the RNG stream exactly
/// like the per-packet path, without building a candidate vector.
/// Inline limb-equality for the batch residue sweep. BigUint::operator==
/// round-trips through an out-of-line library call that dominates a scan
/// this hot. Narrow routes (one or two limbs) want the scalar compare;
/// wide ones want the vectorized builtin memcmp — a match (the common
/// case: batch-mates share flows) must touch every limb either way, and
/// the early-exit scalar loop serializes at one limb per cycle.
inline bool same_route(const rns::BigUint& a, const rns::BigUint& b) noexcept {
  const auto& la = a.limbs();
  const auto& lb = b.limbs();
  if (la.size() != lb.size()) return false;
  if (la.size() > 2) {
    return __builtin_memcmp(la.data(), lb.data(),
                            la.size() * sizeof(std::uint32_t)) == 0;
  }
  for (std::size_t j = 0; j < la.size(); ++j) {
    if (la[j] != lb[j]) return false;
  }
  return true;
}

ForwardDecision random_from_snapshot(const std::vector<topo::PortIndex>& avail,
                                     std::optional<topo::PortIndex> excluded,
                                     bool marked, common::Rng& rng) {
  std::size_t count = avail.size();
  bool skip_excluded = false;
  if (excluded) {
    for (const topo::PortIndex p : avail) {
      if (p == *excluded) {
        skip_excluded = true;
        --count;
        break;
      }
    }
  }
  ForwardDecision decision;
  if (count == 0) {
    decision.action = ForwardDecision::Action::kDrop;
    decision.drop_reason = DropReason::kNoViablePort;
    return decision;
  }
  const std::uint64_t pick = rng.below(count);
  std::uint64_t index = 0;
  for (const topo::PortIndex p : avail) {
    if (skip_excluded && p == *excluded) continue;
    if (index == pick) {
      decision.action = ForwardDecision::Action::kForward;
      decision.out_port = p;
      decision.deflected = true;
      decision.marked_hot_potato = marked;
      return decision;
    }
    ++index;
  }
  throw std::logic_error("random_from_snapshot: pick out of range");
}

}  // namespace

void KarSwitch::forward_batch(PacketBatch& batch, common::Rng& rng) const {
  batch.stats_ = BatchStats{};
  const std::size_t n = batch.size();
  if (n == 0) return;

  // One topology scan per (switch, batch): the availability snapshot every
  // deflection draw and residue-usability check below reads from.
  const std::size_t ports = topo_->port_count(node_);
  avail_scratch_.clear();
  for (topo::PortIndex p = 0; p < ports; ++p) {
    if (topo_->port_available(node_, p)) avail_scratch_.push_back(p);
  }

  const bool hp = technique_ == DeflectionTechnique::kHotPotato;

  // Hoist the column pointers (and fold stats into locals): stores through
  // one column must not force the optimizer to reload the others from the
  // batch object on every iteration.
  Packet* const* const packets = batch.packets_;
  const topo::PortIndex* const in_ports = batch.in_ports_;
  std::uint64_t* const residues = batch.residues_;
  ForwardDecision* const decisions = batch.decisions_;
  const rns::BigUint** const route_keys = batch.route_keys_;
  std::uint64_t* const route_residues = batch.route_residues_;
  ForwardDecision* const route_decisions = batch.route_decisions_;
  std::uint32_t forwarded = 0, dropped = 0, deflected = 0, marked = 0;

  // Single pass in push order (the RNG-order contract). The route-ID
  // column is grouped into distinct routes as it streams by: the first
  // packet of a group runs the one reduction (PreparedMod, memoized for
  // wide routes) and the one port probe, materialized as the group's
  // residue-outcome decision template; every later member copies the
  // template and only the deflection fallbacks draw from the RNG, exactly
  // where forward() would. HP packets already in random-walk mode never
  // consult the residue, exactly like forward(). Amortizing the probe over
  // the batch is legal because nothing observable changes between two
  // packets of one batch (see the flush discipline in sim/network.cpp).
  std::size_t routes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // The batch streams pointer-chased Packet objects (and, for wide
    // routes, their heap limb arrays); at batch sizes past the L1 working
    // set those chases dominate the loop. Two-stage prefetch: pull the
    // Packet itself well ahead, then — once that line is resident — the
    // limb array of a closer packet.
    if (i + 8 < n) __builtin_prefetch(packets[i + 8]);
    if (i + 4 < n) {
      __builtin_prefetch(packets[i + 4]->kar.route_id.limbs().data());
    }
    const Packet& packet = *packets[i];
    if (hp && packet.kar.deflected) {
      decisions[i] =
          random_from_snapshot(avail_scratch_, std::nullopt, false, rng);
    } else {
      const rns::BigUint& route_id = packet.kar.route_id;
      std::size_t group = 0;
      while (group < routes && route_keys[group] != &route_id &&
             !same_route(*route_keys[group], route_id)) {
        ++group;
      }
      if (group == routes) {
        const std::uint64_t residue_port =
            (residue_path_ == ResiduePath::kFast) ? residue_fast(route_id)
                                                  : residue(route_id);
        route_keys[routes] = &route_id;
        route_residues[routes] = residue_port;
        ForwardDecision templ;
        if (residue_port < ports &&
            topo_->port_available(
                node_, static_cast<topo::PortIndex>(residue_port))) {
          templ.action = ForwardDecision::Action::kForward;
          templ.out_port = static_cast<topo::PortIndex>(residue_port);
        } else {
          templ.action = ForwardDecision::Action::kDrop;
          templ.drop_reason = DropReason::kNoViablePort;
        }
        route_decisions[routes] = templ;
        ++routes;
      }
      residues[i] = route_residues[group];
      // Write the template straight into the column and test it in place:
      // carrying the struct through a register-resident local measurably
      // serializes this loop, a memory-to-memory copy does not.
      decisions[i] = route_decisions[group];
      switch (technique_) {
        case DeflectionTechnique::kNone:
          break;  // the template already is the final decision
        case DeflectionTechnique::kHotPotato:
          if (decisions[i].action != ForwardDecision::Action::kForward) {
            decisions[i] = random_from_snapshot(avail_scratch_, std::nullopt,
                                                /*marked=*/true, rng);
          }
          break;
        case DeflectionTechnique::kAnyValidPort:
          if (decisions[i].action != ForwardDecision::Action::kForward) {
            decisions[i] = random_from_snapshot(avail_scratch_, std::nullopt,
                                                /*marked=*/false, rng);
          }
          break;
        case DeflectionTechnique::kNotInputPort: {
          const topo::PortIndex in = in_ports[i];
          if (decisions[i].action != ForwardDecision::Action::kForward ||
              (in != kNoInPort && decisions[i].out_port == in)) {
            decisions[i] = random_from_snapshot(
                avail_scratch_,
                in == kNoInPort ? std::nullopt
                                : std::optional<topo::PortIndex>(in),
                /*marked=*/false, rng);
          }
          break;
        }
      }
    }
    const ForwardDecision& d = decisions[i];
    if (d.action == ForwardDecision::Action::kForward) {
      ++forwarded;
      if (d.deflected) ++deflected;
      if (d.marked_hot_potato) ++marked;
    } else {
      ++dropped;
    }
  }
  batch.stats_.distinct_routes = static_cast<std::uint32_t>(routes);
  batch.stats_.forwarded = forwarded;
  batch.stats_.dropped = dropped;
  batch.stats_.deflected = deflected;
  batch.stats_.marked_hot_potato = marked;
}

}  // namespace kar::dataplane

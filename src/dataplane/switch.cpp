#include "dataplane/switch.hpp"

#include <cctype>
#include <stdexcept>
#include <string>

namespace kar::dataplane {

std::string_view to_string(DeflectionTechnique technique) {
  switch (technique) {
    case DeflectionTechnique::kNone: return "none";
    case DeflectionTechnique::kHotPotato: return "hp";
    case DeflectionTechnique::kAnyValidPort: return "avp";
    case DeflectionTechnique::kNotInputPort: return "nip";
  }
  throw std::logic_error("to_string: bad DeflectionTechnique");
}

DeflectionTechnique technique_from_string(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "none") return DeflectionTechnique::kNone;
  if (lower == "hp") return DeflectionTechnique::kHotPotato;
  if (lower == "avp") return DeflectionTechnique::kAnyValidPort;
  if (lower == "nip") return DeflectionTechnique::kNotInputPort;
  throw std::invalid_argument("unknown deflection technique \"" +
                              std::string(name) +
                              "\" (expected one of: none|hp|avp|nip)");
}

KarSwitch::KarSwitch(const topo::Topology& topology, topo::NodeId node,
                     DeflectionTechnique technique, ResiduePath residue_path)
    : topo_(&topology),
      node_(node),
      switch_id_(topology.switch_id(node)),  // throws for non-switches
      technique_(technique),
      residue_path_(residue_path),
      prepared_mod_(switch_id_) {}

ForwardDecision KarSwitch::random_among_available(
    std::optional<topo::PortIndex> excluded_port, bool marked,
    common::Rng& rng) const {
  std::vector<topo::PortIndex> candidates = topo_->available_ports(node_);
  if (excluded_port) {
    std::erase(candidates, *excluded_port);
  }
  if (candidates.empty()) {
    ForwardDecision decision;
    decision.action = ForwardDecision::Action::kDrop;
    decision.drop_reason = DropReason::kNoViablePort;
    return decision;
  }
  ForwardDecision decision;
  decision.action = ForwardDecision::Action::kForward;
  decision.out_port = candidates[rng.below(candidates.size())];
  decision.deflected = true;
  decision.marked_hot_potato = marked;
  return decision;
}

ForwardDecision KarSwitch::forward(const Packet& packet,
                                   std::optional<topo::PortIndex> in_port,
                                   common::Rng& rng) const {
  // A Hot-Potato packet already in random-walk mode never consults the
  // residue again.
  if (technique_ == DeflectionTechnique::kHotPotato && packet.kar.deflected) {
    return random_among_available(std::nullopt, /*marked=*/false, rng);
  }

  const std::uint64_t residue_port = (residue_path_ == ResiduePath::kFast)
                                         ? residue_fast(packet.kar.route_id)
                                         : residue(packet.kar.route_id);
  const bool residue_is_port =
      residue_port < topo_->port_count(node_) &&
      topo_->port_available(node_, static_cast<topo::PortIndex>(residue_port));
  const auto out = static_cast<topo::PortIndex>(residue_port);

  switch (technique_) {
    case DeflectionTechnique::kNone: {
      ForwardDecision decision;
      if (residue_is_port) {
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
      } else {
        decision.action = ForwardDecision::Action::kDrop;
        decision.drop_reason = DropReason::kNoViablePort;
      }
      return decision;
    }
    case DeflectionTechnique::kHotPotato: {
      if (residue_is_port) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      // First deflection: mark the packet; it random-walks from here on.
      return random_among_available(std::nullopt, /*marked=*/true, rng);
    }
    case DeflectionTechnique::kAnyValidPort: {
      if (residue_is_port) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      return random_among_available(std::nullopt, /*marked=*/false, rng);
    }
    case DeflectionTechnique::kNotInputPort: {
      if (residue_is_port && (!in_port || out != *in_port)) {
        ForwardDecision decision;
        decision.action = ForwardDecision::Action::kForward;
        decision.out_port = out;
        return decision;
      }
      return random_among_available(in_port, /*marked=*/false, rng);
    }
  }
  throw std::logic_error("KarSwitch::forward: bad technique");
}

}  // namespace kar::dataplane

// KAR edge nodes (paper §2): the boundary between host protocols and the
// KAR core. The ingress edge stamps the route ID onto packets; the egress
// edge strips it and delivers. An edge that receives a packet *not*
// addressed to it applies one of the paper's two policies (§2.1 final
// remark): bounce the packet back unchanged, or ask the controller to
// re-encode the route ID from here to the destination (the policy used in
// all of the paper's tests).
#pragma once

#include <cstdint>
#include <optional>

#include "dataplane/packet.hpp"
#include "routing/controller.hpp"
#include "topology/graph.hpp"

namespace kar::dataplane {

/// What to do with a packet that surfaces at the wrong edge (§2.1).
enum class WrongEdgePolicy : std::uint8_t {
  /// Return the packet to the core unchanged; it keeps walking.
  kBounceBack,
  /// Ask the controller for a fresh route ID from this edge (paper default).
  kReencode,
};

/// Fixed per-packet overhead of the host headers (Ethernet+IP+TCP-ish),
/// excluding the variable-size KAR route-ID field.
inline constexpr std::size_t kBaseHeaderBytes = 54;

/// One KAR edge node.
class EdgeNode {
 public:
  /// `controller` is consulted only for wrong-edge re-encoding; the
  /// referenced objects must outlive the edge node.
  EdgeNode(const topo::Topology& topology, topo::NodeId node,
           const routing::Controller& controller,
           WrongEdgePolicy policy = WrongEdgePolicy::kReencode);

  [[nodiscard]] topo::NodeId node() const noexcept { return node_; }
  [[nodiscard]] WrongEdgePolicy policy() const noexcept { return policy_; }

  /// Stamps a freshly created packet with `route` (ingress, Fig. 1 Step
  /// II): sets the route ID, endpoints and the wire size for
  /// `payload_bytes` of payload. Throws if this edge is not the route's
  /// source.
  void stamp(Packet& packet, const routing::EncodedRoute& route,
             std::size_t payload_bytes) const;

  /// Handling verdict for a packet arriving at this edge.
  enum class Verdict : std::uint8_t {
    kDeliver,    ///< Packet is addressed here; KAR header removed.
    kReinject,   ///< Packet was re-encoded or bounced; send it back out.
    kDrop,       ///< No route back to the destination.
  };

  /// Processes an arriving packet. On kReinject the packet's KAR header has
  /// been updated (re-encode) or left untouched (bounce) and the packet
  /// should be transmitted out of this edge's uplink again.
  [[nodiscard]] Verdict receive(Packet& packet) const;

 private:
  const topo::Topology* topo_;
  topo::NodeId node_;
  const routing::Controller* controller_;
  WrongEdgePolicy policy_;
};

}  // namespace kar::dataplane

// Bump-pointer arenas for the batched forwarding fast path.
//
// The steady-state data plane must not touch the heap (ISSUE 6: batched
// zero-alloc data plane, guarded by tests/test_zero_alloc.cpp). A BumpArena
// grabs one block up front — at topology load / batch-pool setup, the only
// moment allocation is allowed — and then hands out aligned slices with a
// pointer bump. reset() is O(1) and recycles the whole block for the next
// campaign; nothing is ever returned piecemeal, which is exactly the
// lifetime a PacketBatch has (filled, swept, applied, cleared).
//
// thread_arena() gives each thread its own lazily constructed arena so the
// parallel campaign runner's workers never contend or share batch storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>

namespace kar::dataplane {

/// Fixed-capacity bump allocator. Allocation is pointer arithmetic; the
/// single backing block is heap-allocated once, in the constructor.
/// Exhaustion throws std::bad_alloc rather than growing — a grown arena
/// would silently re-introduce steady-state heap traffic, the exact bug
/// class this type exists to make impossible.
class BumpArena {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;  // 1 MiB

  explicit BumpArena(std::size_t capacity_bytes = kDefaultCapacity)
      : block_(new std::byte[capacity_bytes]), capacity_(capacity_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// An aligned slice of `bytes`; throws std::bad_alloc when the block is
  /// exhausted (size the arena at setup, never mid-campaign).
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t)) {
    // Align the address, not the offset: operator new[] only guarantees
    // max_align_t for the backing block itself.
    const auto base = reinterpret_cast<std::uintptr_t>(block_.get());
    const std::uintptr_t aligned =
        (base + used_ + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    const std::size_t offset = static_cast<std::size_t>(aligned - base);
    if (offset + bytes > capacity_ || offset + bytes < offset) {
      throw std::bad_alloc();
    }
    used_ = offset + bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return reinterpret_cast<void*>(aligned);
  }

  /// A value-initialized array of `count` Ts. T must be trivially
  /// destructible: reset() drops storage without running destructors.
  /// (Element-wise placement new — placement array-new may carve an
  /// implementation-defined cookie out of the slice.)
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena::reset never runs destructors");
    T* slice = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (slice + i) T();
    return slice;
  }

  /// Recycles the whole block (O(1)); outstanding pointers become invalid.
  void reset() noexcept { used_ = 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  /// Peak bytes ever live at once — stable across reset()/reuse cycles by
  /// construction, which tests use to prove campaigns do not creep.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

/// The calling thread's arena (lazily constructed, thread lifetime). Batch
/// pools built on it never cross threads, matching the campaign runner's
/// one-network-per-worker model.
inline BumpArena& thread_arena() {
  thread_local BumpArena arena;
  return arena;
}

}  // namespace kar::dataplane

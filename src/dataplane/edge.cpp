#include "dataplane/edge.hpp"

#include <stdexcept>

namespace kar::dataplane {

EdgeNode::EdgeNode(const topo::Topology& topology, topo::NodeId node,
                   const routing::Controller& controller, WrongEdgePolicy policy)
    : topo_(&topology), node_(node), controller_(&controller), policy_(policy) {
  if (topology.kind(node) != topo::NodeKind::kEdgeNode) {
    throw std::invalid_argument("EdgeNode: " + topology.name(node) +
                                " is not an edge node");
  }
}

void EdgeNode::stamp(Packet& packet, const routing::EncodedRoute& route,
                     std::size_t payload_bytes) const {
  if (route.src_edge != node_) {
    throw std::invalid_argument("EdgeNode::stamp: route does not start at " +
                                topo_->name(node_));
  }
  packet.kar.route_id = route.route_id;
  packet.kar.deflected = false;
  packet.src_edge = node_;
  packet.dst_edge = route.dst_edge;
  packet.size_bytes = kBaseHeaderBytes + route.route_id_bytes() + payload_bytes;
}

EdgeNode::Verdict EdgeNode::receive(Packet& packet) const {
  if (packet.dst_edge == node_) {
    // Egress (Fig. 1 Step VI): strip the KAR header and deliver.
    packet.kar.route_id = rns::BigUint{};
    packet.kar.deflected = false;
    return Verdict::kDeliver;
  }
  switch (policy_) {
    case WrongEdgePolicy::kBounceBack:
      // Unchanged re-entry; an HP packet keeps its random-walk marking.
      return Verdict::kReinject;
    case WrongEdgePolicy::kReencode: {
      // The controller computes a fresh route ID from this edge to the
      // destination, reusing compatible protection assignments.
      routing::EncodedRoute original;
      original.route_id = packet.kar.route_id;
      original.dst_edge = packet.dst_edge;
      // Only the destination and route ID matter for reencode_from's
      // protection-reuse; reconstructing assignments from the ID alone is
      // not possible, so re-encode without them (a fresh unprotected path).
      const auto fresh = controller_->reencode_from(node_, original);
      if (!fresh) return Verdict::kDrop;
      packet.kar.route_id = fresh->route_id;
      packet.kar.deflected = false;  // fresh route: HP marking cleared
      packet.reencode_count += 1;
      return Verdict::kReinject;
    }
  }
  throw std::logic_error("EdgeNode::receive: bad policy");
}

}  // namespace kar::dataplane

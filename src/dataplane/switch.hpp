// The KAR core switch: stateless modulo forwarding plus the paper's three
// deflection techniques (§2.1).
//
//   * Hot-Potato (HP): reference lower bound. On the first deflection the
//     packet is marked and thereafter follows a completely random walk.
//   * Any Valid Port (AVP): always applies the modulo; when the residue is
//     not a usable port, picks a random active port (the input port is a
//     legal choice).
//   * Not the Input Port (NIP): Algorithm 1 — like AVP but the input port
//     is never chosen, even when the modulo selects it; avoids two-node
//     ping-pong loops.
//
// A switch holds no per-flow state: its entire forwarding input is its own
// ID, the packet's route ID, the input port, and which local ports are up.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/residue_cache.hpp"
#include "rns/prepared_mod.hpp"
#include "topology/graph.hpp"

namespace kar::dataplane {

class PacketBatch;  // dataplane/batch.hpp

/// Deflection technique selector (paper §2.1). kNone is the paper's
/// "no deflection" baseline: packets facing an unusable port are dropped.
enum class DeflectionTechnique : std::uint8_t {
  kNone,
  kHotPotato,
  kAnyValidPort,
  kNotInputPort,
};

[[nodiscard]] std::string_view to_string(DeflectionTechnique technique);
/// Parses "none" / "hp" / "avp" / "nip" (case-insensitive). Throws
/// std::invalid_argument listing the valid options on anything else.
[[nodiscard]] DeflectionTechnique technique_from_string(std::string_view name);

/// Which residue implementation forward() consults. kFast (the default)
/// runs PreparedMod reduction through the ResidueCache memo; kNaive
/// recomputes BigUint::mod_u64 per packet per hop. The two are
/// bit-identical by contract (tests/test_fastpath_differential.cpp);
/// kNaive exists as the differential oracle and benchmark baseline.
enum class ResiduePath : std::uint8_t { kFast, kNaive };

/// Outcome of one forwarding decision.
struct ForwardDecision {
  enum class Action : std::uint8_t { kForward, kDrop };
  Action action = Action::kDrop;
  topo::PortIndex out_port = 0;
  /// True when the packet did not follow its encoded residue this hop
  /// (either the residue port was unusable or HP random-walk mode).
  bool deflected = false;
  /// True when this hop *started* the packet's random walk (HP marking).
  bool marked_hot_potato = false;
  DropReason drop_reason = DropReason::kNoViablePort;
};

/// Stateless forwarding engine for one core switch.
class KarSwitch {
 public:
  /// Binds to a core switch of `topology`. The topology must outlive the
  /// switch. Throws std::invalid_argument if `node` is not a core switch.
  KarSwitch(const topo::Topology& topology, topo::NodeId node,
            DeflectionTechnique technique,
            ResiduePath residue_path = ResiduePath::kFast);

  [[nodiscard]] topo::NodeId node() const noexcept { return node_; }
  [[nodiscard]] topo::SwitchId switch_id() const noexcept { return switch_id_; }
  [[nodiscard]] DeflectionTechnique technique() const noexcept { return technique_; }
  [[nodiscard]] ResiduePath residue_path() const noexcept { return residue_path_; }

  /// The pure modulo decision (paper Eq. 3): `route_id mod switch_id`,
  /// computed the naive way. This is the reference semantics every fast
  /// path must reproduce bit-for-bit.
  [[nodiscard]] std::uint64_t residue(const rns::BigUint& route_id) const {
    return route_id.mod_u64(switch_id_);
  }

  /// The same residue through the prepared-reciprocal reduction, gated on
  /// route width (what forward() uses on the kFast path). Routes of <= 64
  /// bits reduce directly — at that width the memo's digest + limb compare
  /// costs more than the reduction it saves (the 0.82x narrow-route
  /// regression in BENCH_dataplane.json) — while wider routes go through
  /// the ResidueCache memo. Bit-identical to residue() either way.
  [[nodiscard]] std::uint64_t residue_fast(const rns::BigUint& route_id) const {
    if (route_id.fits_u64()) return prepared_mod_.reduce(route_id);
    return cache_.lookup(route_id, prepared_mod_);
  }

  /// The memo cache (stats inspection and metrics binding).
  [[nodiscard]] ResidueCache& residue_cache() const noexcept { return cache_; }

  /// One forwarding decision. `in_port` is the port the packet arrived on;
  /// pass std::nullopt for locally originated probes. Randomness is drawn
  /// from `rng` (uniform across candidate ports, matching the paper's
  /// assumption).
  [[nodiscard]] ForwardDecision forward(const Packet& packet,
                                        std::optional<topo::PortIndex> in_port,
                                        common::Rng& rng) const;

  /// One forwarding decision per packet of `batch`, filling the batch's
  /// residue/decision columns and folding counter material into its stats.
  ///
  /// Contract: the decision sequence — including every RNG draw — is
  /// identical to calling forward() on each packet in push order
  /// (tests/test_batch.cpp). The batch amortizations (port-availability
  /// snapshot hoisted per batch, residues computed once per distinct route)
  /// are sound only while nothing observable changes mid-batch; callers
  /// must not fail/repair links or install routes between push() and this
  /// call (sim::Network flushes open batches before such events).
  ///
  /// Steady-state zero-alloc: after the first call (which sizes the port
  /// scratch) this performs no heap allocation as long as every route ID
  /// is <= 64 bits or already memoized (tests/test_zero_alloc.cpp).
  void forward_batch(PacketBatch& batch, common::Rng& rng) const;

 private:
  [[nodiscard]] ForwardDecision random_among_available(
      std::optional<topo::PortIndex> excluded_port, bool marked, common::Rng& rng) const;

  const topo::Topology* topo_;
  topo::NodeId node_;
  topo::SwitchId switch_id_;
  DeflectionTechnique technique_;
  ResiduePath residue_path_;
  rns::PreparedMod prepared_mod_;
  /// Pure-function memo; mutating it never changes a decision, so the
  /// switch keeps value semantics for callers holding it const.
  mutable ResidueCache cache_;
  /// Per-batch snapshot of the available ports (forward_batch hoists one
  /// topology scan per batch instead of one per deflection). Scratch only —
  /// refilled every batch; capacity is retained so steady state is
  /// alloc-free.
  mutable std::vector<topo::PortIndex> avail_scratch_;
};

}  // namespace kar::dataplane

// PacketBatch: the unit of work of the batched KAR data plane (ISSUE 6).
//
// A batch is a fixed-capacity, arena-backed, structure-of-arrays view over
// up to `capacity` packets visiting one core switch together. The switch
// processes the whole batch in one KarSwitch::forward_batch call:
//
//   * one residue sweep per (switch, batch) — the route-ID column is
//     grouped into distinct routes first, so PreparedMod reduction and the
//     ResidueCache are consulted once per distinct route, not per packet;
//   * the output-port fan-out is computed column-wise into `decisions()`;
//   * per-packet counter material is folded into `stats()` so callers
//     touch the metrics registry once per batch instead of once per packet.
//
// The batch owns no packets and performs no allocation after construction:
// every column lives in the BumpArena passed in (per-thread in production,
// see arena.hpp), so the steady-state fill → sweep → apply → clear cycle is
// zero-heap (tests/test_zero_alloc.cpp pins this).
//
// Semantics contract: forward_batch over a batch is decision-for-decision
// and RNG-draw-for-RNG-draw identical to calling KarSwitch::forward on each
// packet in push order (tests/test_batch.cpp, tests/
// test_fastpath_differential.cpp). The amortizations above are legal only
// because nothing observable changes between two packets of one batch —
// the simulator guarantees that by flushing open batches before any
// link-state change or route install lands (sim/network.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dataplane/arena.hpp"
#include "dataplane/packet.hpp"
#include "rns/biguint.hpp"
#include "topology/graph.hpp"

namespace kar::dataplane {

struct ForwardDecision;  // dataplane/switch.hpp

/// "No input port" marker for locally originated probes (the SoA stand-in
/// for std::optional<PortIndex>).
inline constexpr topo::PortIndex kNoInPort = static_cast<topo::PortIndex>(-1);

/// Per-batch fold of everything the per-packet path would have counted one
/// packet at a time. One registry touch per field per batch.
struct BatchStats {
  std::uint32_t forwarded = 0;
  std::uint32_t dropped = 0;
  std::uint32_t deflected = 0;
  std::uint32_t marked_hot_potato = 0;
  /// Distinct route IDs seen by the residue sweep (== residue computations
  /// performed; the amortization factor is size() / distinct_routes).
  std::uint32_t distinct_routes = 0;
};

/// Fixed-capacity SoA view over packets visiting one switch together.
class PacketBatch {
 public:
  /// Carves every column out of `arena` up front; the arena must outlive
  /// the batch and not be reset() while the batch is in use.
  PacketBatch(BumpArena& arena, std::size_t capacity);

  /// Upper bound on the arena bytes one batch of `capacity` needs (every
  /// column plus worst-case alignment padding) — size arenas with this so
  /// column growth never silently outpaces a hand-computed budget.
  [[nodiscard]] static std::size_t arena_bytes(std::size_t capacity) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Appends a packet (non-owning; the packet must outlive the sweep).
  /// `in_port` is the arrival port or kNoInPort. Precondition: !full().
  void push(Packet* packet, topo::PortIndex in_port) noexcept {
    packets_[size_] = packet;
    in_ports_[size_] = in_port;
    ++size_;
  }

  /// Forgets the packets and zeroes stats; columns stay allocated.
  void clear() noexcept {
    size_ = 0;
    stats_ = BatchStats{};
  }

  // -- columns ---------------------------------------------------------------
  [[nodiscard]] Packet* const* packets() const noexcept { return packets_; }
  [[nodiscard]] const topo::PortIndex* in_ports() const noexcept { return in_ports_; }
  /// Residue column, valid after forward_batch (undefined for HP packets
  /// already in random-walk mode, which never consult the residue).
  [[nodiscard]] const std::uint64_t* residues() const noexcept { return residues_; }
  /// Decision column, valid after forward_batch.
  [[nodiscard]] const ForwardDecision* decisions() const noexcept { return decisions_; }
  [[nodiscard]] const BatchStats& stats() const noexcept { return stats_; }

 private:
  friend class KarSwitch;  // fills the output columns in forward_batch

  std::size_t capacity_;
  std::size_t size_ = 0;
  Packet** packets_;
  topo::PortIndex* in_ports_;
  std::uint64_t* residues_;
  ForwardDecision* decisions_;
  /// Residue-sweep scratch: distinct route IDs seen in this batch, their
  /// residues, and the residue-outcome decision template shared by every
  /// packet of the group (most batches carry a handful of flows, so the
  /// sweep scans this linearly). Later group members copy the template, so
  /// reduction and topology probe run once per group, not per packet.
  const rns::BigUint** route_keys_;
  std::uint64_t* route_residues_;
  ForwardDecision* route_decisions_;
  BatchStats stats_;
};

}  // namespace kar::dataplane

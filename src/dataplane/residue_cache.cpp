#include "dataplane/residue_cache.hpp"

#include <bit>

namespace kar::dataplane {

ResidueCache::ResidueCache(std::size_t capacity)
    : capacity_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)) {}

std::uint64_t ResidueCache::digest(const rns::BigUint& route_id) noexcept {
  // FNV-1a, 64-bit, one step per limb.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint32_t limb : route_id.limbs()) {
    h = (h ^ limb) * 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t ResidueCache::lookup(const rns::BigUint& route_id,
                                   const rns::PreparedMod& mod) {
  if (entries_.empty()) entries_.resize(capacity_);
  const std::uint64_t d = digest(route_id);
  Entry& entry = entries_[d & (capacity_ - 1)];
  if (entry.valid && entry.digest == d && entry.key == route_id.limbs()) {
    ++stats_.hits;
    hits_.inc();
    return entry.residue;
  }
  ++stats_.misses;
  misses_.inc();
  const std::uint64_t residue = mod.reduce(route_id);
  if (entry.valid) {
    ++stats_.evictions;
    evictions_.inc();
  }
  entry.digest = d;
  entry.key = route_id.limbs();
  entry.residue = residue;
  entry.valid = true;
  return residue;
}

void ResidueCache::clear() noexcept {
  entries_.clear();
}

}  // namespace kar::dataplane

#include "dataplane/batch.hpp"

#include <stdexcept>

#include "dataplane/switch.hpp"

namespace kar::dataplane {

PacketBatch::PacketBatch(BumpArena& arena, std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketBatch: capacity must be nonzero");
  }
  packets_ = arena.alloc_array<Packet*>(capacity);
  in_ports_ = arena.alloc_array<topo::PortIndex>(capacity);
  residues_ = arena.alloc_array<std::uint64_t>(capacity);
  decisions_ = arena.alloc_array<ForwardDecision>(capacity);
  route_keys_ = arena.alloc_array<const rns::BigUint*>(capacity);
  route_residues_ = arena.alloc_array<std::uint64_t>(capacity);
  route_decisions_ = arena.alloc_array<ForwardDecision>(capacity);
}

std::size_t PacketBatch::arena_bytes(std::size_t capacity) noexcept {
  const std::size_t per_slot =
      sizeof(Packet*) + sizeof(topo::PortIndex) + 2 * sizeof(std::uint64_t) +
      2 * sizeof(ForwardDecision) + sizeof(const rns::BigUint*);
  // Seven columns, each at most one max_align_t of padding in front.
  return capacity * per_slot + 7 * alignof(std::max_align_t);
}

}  // namespace kar::dataplane
